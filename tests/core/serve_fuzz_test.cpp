// Adversarial-input matrix for ServeEngine::handle_line: random bytes,
// deeply nested and truncated JSON, huge numbers, invalid UTF-8,
// shuffled/garbled real requests. The contract under test is absolute —
// every input line yields exactly one parseable {"ok":...} reply line,
// and nothing ever throws or crashes the engine. Seeded with splitmix64
// so a failure reproduces from the printed case index.
#include "core/serve.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pml::core {
namespace {

/// Model-less engine: the heuristic floor answers everything, so the
/// fuzz loop exercises parsing/validation without paying for compiles.
ServeOptions fuzz_options() {
  ServeOptions o;
  o.async_compile = false;
  o.compile = CompileOptions::sweep({2}, {16}, {1024});
  return o;
}

/// The one invariant: a structured reply, never an exception. Replies to
/// broken input must be ok:false with the error taxonomy attached.
void expect_structured_reply(ServeEngine& engine, const std::string& line,
                             const std::string& label) {
  std::string reply;
  ASSERT_NO_THROW(reply = engine.handle_line(line)) << label;
  ASSERT_FALSE(reply.empty()) << label;
  Json parsed;
  ASSERT_NO_THROW(parsed = Json::parse(reply)) << label << ": " << reply;
  ASSERT_TRUE(parsed.contains("ok")) << label << ": " << reply;
  if (!parsed.at("ok").as_bool()) {
    EXPECT_TRUE(parsed.contains("error")) << label << ": " << reply;
    EXPECT_TRUE(parsed.contains("code")) << label << ": " << reply;
    EXPECT_TRUE(parsed.contains("status")) << label << ": " << reply;
  }
}

TEST(ServeFuzz, RandomByteLinesAlwaysGetStructuredErrors) {
  ServeEngine engine(fuzz_options());
  std::uint64_t state = 0x5eedf00d2024ULL;
  for (int i = 0; i < 512; ++i) {
    const std::size_t len = splitmix64(state) % 256;
    std::string line;
    line.reserve(len);
    for (std::size_t b = 0; b < len; ++b) {
      char c = static_cast<char>(splitmix64(state) & 0xff);
      if (c == '\n') c = ' ';  // transports never hand the engine a newline
      line.push_back(c);
    }
    expect_structured_reply(engine, line, "random bytes case " +
                                              std::to_string(i));
  }
}

TEST(ServeFuzz, DeeplyNestedAndTruncatedJson) {
  ServeEngine engine(fuzz_options());
  // Nesting past the parser's depth bound, in every bracket flavor.
  expect_structured_reply(engine, std::string(100'000, '['), "deep arrays");
  expect_structured_reply(engine, std::string(100'000, '{'), "deep objects");
  std::string mixed;
  for (int i = 0; i < 50'000; ++i) mixed += "{\"op\":[";
  expect_structured_reply(engine, mixed, "deep mixed");

  // Every prefix of a valid request is itself an input the engine must
  // survive (mid-request disconnects surface exactly these).
  const std::string valid =
      R"({"op":"select","cluster":"MRI","collective":"allgather",)"
      R"("nodes":2,"ppn":16,"msg_bytes":1024,"wait":true})";
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    expect_structured_reply(engine, valid.substr(0, cut),
                            "truncation at " + std::to_string(cut));
  }
}

TEST(ServeFuzz, HugeAndPathologicalNumbers) {
  ServeEngine engine(fuzz_options());
  for (const char* number :
       {"1e308", "1e309", "-1e308", "9223372036854775808",
        "18446744073709551616", "-9223372036854775809", "1e-300", "0.5",
        "-1", "-0", "1e999999", "123456789012345678901234567890"}) {
    for (const char* field : {"nodes", "ppn", "msg_bytes", "deadline_ms"}) {
      std::string line =
          R"({"op":"select","cluster":"MRI","collective":"allgather",)"
          R"("nodes":2,"ppn":16,"msg_bytes":1024,"wait":false)";
      line += ",\"";
      line += field;
      line += "\":";
      line += number;
      line += "}";
      // Duplicate keys are fine (last wins in most parsers, first here —
      // either way the reply must be structured).
      expect_structured_reply(
          engine, line, std::string(field) + " = " + number);
    }
  }
}

TEST(ServeFuzz, InvalidUtf8AndControlBytesInStrings) {
  ServeEngine engine(fuzz_options());
  const std::vector<std::string> payloads = {
      std::string("\xff\xfe\xfd"),            // not UTF-8 at all
      std::string("\xc3"),                    // truncated 2-byte sequence
      std::string("\xe2\x82"),                // truncated 3-byte sequence
      std::string("\xf0\x9f\x92"),            // truncated 4-byte sequence
      std::string("a\x00vb", 4),              // embedded NUL
      std::string("\x01\x02\x03\x1f"),        // raw control characters
      std::string("\xed\xa0\x80"),            // UTF-16 surrogate half
  };
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    std::string line = R"({"op":"select","cluster":")";
    line += payloads[i];
    line += R"(","collective":"allgather","nodes":2,"ppn":16,)"
            R"("msg_bytes":1024})";
    expect_structured_reply(engine, line,
                            "utf8 payload " + std::to_string(i));
    // The raw bytes as the whole line, too.
    expect_structured_reply(engine, payloads[i],
                            "raw payload " + std::to_string(i));
  }
}

TEST(ServeFuzz, GarbledRealRequestsNeverCrash) {
  ServeEngine engine(fuzz_options());
  const std::vector<std::string> seeds = {
      R"({"op":"select","cluster":"MRI","collective":"allgather","nodes":2,"ppn":16,"msg_bytes":1024})",
      R"({"op":"table","cluster":"RI","wait":true})",
      R"({"op":"stats"})",
      R"({"op":"health"})",
      R"({"op":"ping"})",
  };
  std::uint64_t state = 0xfacadeULL;
  for (int i = 0; i < 512; ++i) {
    std::string line = seeds[splitmix64(state) % seeds.size()];
    // 1-4 random single-byte mutations: flip, insert, or delete.
    const int edits = 1 + static_cast<int>(splitmix64(state) % 4);
    for (int e = 0; e < edits && !line.empty(); ++e) {
      const std::size_t at = splitmix64(state) % line.size();
      switch (splitmix64(state) % 3) {
        case 0:
          line[at] = static_cast<char>(splitmix64(state) & 0xff);
          break;
        case 1:
          line.insert(at, 1, static_cast<char>(splitmix64(state) & 0xff));
          break;
        default:
          line.erase(at, 1);
          break;
      }
    }
    std::erase(line, '\n');
    expect_structured_reply(engine, line, "garble case " + std::to_string(i));
  }
  // The engine survived; it must still answer real requests afterwards.
  const Json pong = Json::parse(engine.handle_line(R"({"op":"ping"})"));
  EXPECT_TRUE(pong.at("ok").as_bool());
}

}  // namespace
}  // namespace pml::core
