#include "core/features.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pml::core {
namespace {

TEST(Features, FourteenFeaturesInFixedOrder) {
  EXPECT_EQ(feature_count(), 14u);  // paper: 14 features (§V-C)
  EXPECT_EQ(feature_names()[0], "num_nodes");
  EXPECT_EQ(feature_names()[1], "ppn");
  EXPECT_EQ(feature_names()[2], "msg_size");
  EXPECT_EQ(feature_names().back(), "hca_link_width");
}

TEST(Features, IndexLookup) {
  EXPECT_EQ(feature_index("msg_size"), 2u);
  EXPECT_EQ(feature_index("l3_cache_mb"), 4u);
  EXPECT_THROW(feature_index("no_such_feature"), TuningError);
}

TEST(Features, ExtractionMatchesSpec) {
  const auto& frontera = sim::cluster_by_name("Frontera");
  const auto row = extract_features(frontera, 16, 56, 4096);
  ASSERT_EQ(row.size(), 14u);
  EXPECT_DOUBLE_EQ(row[0], 16.0);
  EXPECT_DOUBLE_EQ(row[1], 56.0);
  EXPECT_DOUBLE_EQ(row[2], 4096.0);
  EXPECT_DOUBLE_EQ(row[feature_index("cpu_max_clock_ghz")],
                   frontera.hw.cpu_max_clock_ghz);
  EXPECT_DOUBLE_EQ(row[feature_index("l3_cache_mb")], frontera.hw.l3_cache_mb);
  EXPECT_DOUBLE_EQ(row[feature_index("hca_link_speed_gbps")],
                   frontera.hw.hca_link_speed_gbps);
}

TEST(Features, ExtractionRejectsBadJobShape) {
  const auto& c = sim::cluster_by_name("RI");
  EXPECT_THROW(extract_features(c, 0, 4, 64), TuningError);
  EXPECT_THROW(extract_features(c, 2, 0, 64), TuningError);
}

TEST(Features, DifferentClustersDifferOnlyInHardwareColumns) {
  const auto a = extract_features(sim::cluster_by_name("Frontera"), 4, 8, 256);
  const auto b = extract_features(sim::cluster_by_name("MRI"), 4, 8, 256);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  bool any_hw_differs = false;
  for (std::size_t i = 3; i < a.size(); ++i) {
    any_hw_differs = any_hw_differs || a[i] != b[i];
  }
  EXPECT_TRUE(any_hw_differs);
}

TEST(Features, ProjectSelectsColumns) {
  const std::vector<double> full = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  const auto projected = project_features(full, {2, 4, 13});
  EXPECT_EQ(projected, (std::vector<double>{2, 4, 13}));
  EXPECT_THROW(project_features(full, {14}), TuningError);
}

}  // namespace
}  // namespace pml::core
