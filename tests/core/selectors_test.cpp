#include "core/selectors.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "coll/cost.hpp"
#include "common/error.hpp"

namespace pml::core {
namespace {

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }

/// Every selector must return a valid selection across a broad sweep —
/// single-node worlds (flat only) and multi-node grids (where leader
/// schedules are also in play).
class SelectorContract
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SelectorContract, AlwaysReturnsSupportedSelection) {
  const auto [nodes, ppn] = GetParam();
  MvapichDefaultSelector mvapich;
  OpenMpiDefaultSelector ompi;
  RandomSelector random_sel(1);
  OracleSelector oracle;
  HeuristicSelector heuristic;
  Selector* selectors[] = {&mvapich, &ompi, &random_sel, &oracle, &heuristic};
  const sim::Topology topo{nodes, ppn};
  for (Selector* s : selectors) {
    for (const auto collective :
         {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
      for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 4) {
        const coll::Selection sel =
            s->select(collective, frontera(), topo, msg);
        EXPECT_TRUE(coll::selection_supports(sel, topo))
            << s->name() << " " << sel.encode() << " topo=" << nodes << "x"
            << ppn;
        EXPECT_EQ(sel.collective(), collective) << s->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, SelectorContract,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 3, 8, 28, 56)));

TEST(FirstSupported, PrefersEarlierEntries) {
  EXPECT_EQ(first_supported({coll::Algorithm::kAaRecursiveDoubling,
                             coll::Algorithm::kAaPairwise},
                            16),
            coll::Algorithm::kAaRecursiveDoubling);
  // p=12 is not a power of two: RD is skipped.
  EXPECT_EQ(first_supported({coll::Algorithm::kAaRecursiveDoubling,
                             coll::Algorithm::kAaPairwise},
                            12),
            coll::Algorithm::kAaPairwise);
}

TEST(FirstSupported, ThrowsWhenNothingFits) {
  EXPECT_THROW(first_supported({coll::Algorithm::kAaRecursiveDoubling}, 12),
               TuningError);
}

TEST(MvapichDefault, MessageSizeThresholdsMonotone) {
  // Small alltoall -> Bruck; large -> Pairwise (never back to Bruck).
  MvapichDefaultSelector s;
  const sim::Topology topo{4, 8};
  bool seen_pairwise = false;
  for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 1) {
    const auto a = s.select(coll::Collective::kAlltoall, frontera(), topo, msg);
    if (a == coll::Algorithm::kAaPairwise) seen_pairwise = true;
    if (seen_pairwise) {
      EXPECT_NE(a, coll::Algorithm::kAaBruck);
    }
  }
  EXPECT_TRUE(seen_pairwise);
}

TEST(MvapichDefault, IgnoresHardware) {
  // The static table gives identical answers on different clusters — its
  // defining weakness (paper §VII-C).
  MvapichDefaultSelector s;
  const sim::Topology topo{2, 16};
  for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 2) {
    EXPECT_EQ(s.select(coll::Collective::kAlltoall, frontera(), topo, msg),
              s.select(coll::Collective::kAlltoall,
                       sim::cluster_by_name("MRI"), topo, msg));
  }
}

TEST(OpenMpiDefault, DiffersFromMvapichSomewhere) {
  MvapichDefaultSelector mv;
  OpenMpiDefaultSelector om;
  const sim::Topology topo{4, 14};
  bool differ = false;
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 1) {
      differ = differ || mv.select(collective, frontera(), topo, msg) !=
                             om.select(collective, frontera(), topo, msg);
    }
  }
  EXPECT_TRUE(differ);
}

TEST(RandomSelectorTest, CoversAllValidSelections) {
  RandomSelector s(5);
  const sim::Topology topo{2, 8};
  std::set<std::string> seen;
  for (int i = 0; i < 400; ++i) {
    seen.insert(
        s.select(coll::Collective::kAlltoall, frontera(), topo, 64).encode());
  }
  EXPECT_EQ(seen.size(),
            coll::valid_selections(coll::Collective::kAlltoall, topo).size());
}

TEST(OracleSelectorTest, MatchesExhaustiveArgmin) {
  OracleSelector s;
  const sim::Topology topo{2, 8};
  for (std::uint64_t msg = 1; msg <= (1u << 18); msg <<= 3) {
    const auto choice =
        s.select(coll::Collective::kAllgather, frontera(), topo, msg);
    const double chosen = coll::analytic_cost(frontera(), topo, choice, msg);
    for (const auto& sel :
         coll::valid_selections(coll::Collective::kAllgather, topo)) {
      EXPECT_LE(chosen, coll::analytic_cost(frontera(), topo, sel, msg) + 1e-15);
    }
  }
}

TEST(OracleSelectorTest, AdaptsToHardware) {
  // Unlike the static defaults, the oracle must change its answer across
  // clusters somewhere in the sweep (it sees the actual cost model).
  OracleSelector s;
  const sim::Topology topo{2, 16};
  bool differ = false;
  for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 1) {
    differ = differ ||
             s.select(coll::Collective::kAlltoall, frontera(), topo, msg) !=
                 s.select(coll::Collective::kAlltoall,
                          sim::cluster_by_name("MRI"), topo, msg);
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace pml::core
