#include "core/framework.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "coll/cost.hpp"
#include "common/error.hpp"

namespace pml::core {
namespace {

/// Small, fast training configuration for tests: a handful of clusters and
/// a compact forest (still enough signal to be meaningfully better than
/// chance on unseen hardware).
TrainOptions fast_options() {
  TrainOptions options;
  options.forest.n_trees = 25;
  return options;
}

std::vector<sim::ClusterSpec> small_training_set() {
  // Architecturally diverse subset (Intel/AMD/ARM, QDR..HDR, OPA).
  std::vector<sim::ClusterSpec> out;
  for (const char* name :
       {"RI", "RI2", "Rome", "Haswell", "Catalyst", "Bridges", "Spock"}) {
    out.push_back(sim::cluster_by_name(name));
  }
  return out;
}

const PmlFramework& shared_framework() {
  static const PmlFramework fw =
      PmlFramework::train(small_training_set(), fast_options());
  return fw;
}

TEST(Framework, SelectsValidAlgorithmsOnUnseenCluster) {
  auto fw = shared_framework();  // copy: select() is non-const
  const auto& mri = sim::cluster_by_name("MRI");
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    for (const int ppn : {7, 16, 28}) {  // includes non-pow2 worlds
      const sim::Topology topo{3, ppn};
      for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 3) {
        const coll::Selection sel = fw.select(collective, mri, topo, msg);
        EXPECT_TRUE(coll::selection_supports(sel, topo));
        EXPECT_EQ(sel.collective(), collective);
      }
    }
  }
}

TEST(Framework, SelectManyAndSelectBatchMatchScalarSelect) {
  auto fw = shared_framework();
  const auto& mri = sim::cluster_by_name("MRI");

  // select_many: one cell's whole message sweep in a single batched
  // inference must reproduce the per-size select() loop exactly (this is
  // what makes batched tuning-table compiles bit-identical to scalar).
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 1) {
    sizes.push_back(msg);
  }
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    for (const int ppn : {7, 16, 28}) {
      const sim::Topology topo{3, ppn};
      std::vector<coll::Selection> batched(sizes.size());
      fw.select_many(collective, mri, topo, sizes, batched);
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_EQ(batched[i], fw.select(collective, mri, topo, sizes[i]))
            << "ppn " << ppn << " msg " << sizes[i];
      }
    }
  }

  // select_batch: mixed topologies in one micro-batch (the serve
  // coalescer's shape) must also match query-by-query inference.
  std::vector<PmlFramework::SelectQuery> queries;
  for (const int nodes : {2, 3, 4}) {
    for (const int ppn : {7, 16}) {
      for (const std::uint64_t msg : {1u, 4096u, 1u << 20}) {
        queries.push_back(
            PmlFramework::SelectQuery{sim::Topology{nodes, ppn}, msg});
      }
    }
  }
  std::vector<coll::Selection> out(queries.size());
  fw.select_batch(coll::Collective::kAlltoall, mri, queries, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(out[i], fw.select(coll::Collective::kAlltoall, mri,
                                queries[i].topo, queries[i].msg_bytes))
        << "query " << i;
  }

  // Shape mismatches fail loudly.
  std::vector<coll::Selection> wrong(queries.size() + 1);
  EXPECT_THROW(
      fw.select_batch(coll::Collective::kAlltoall, mri, queries, wrong),
      TuningError);
}

TEST(Framework, BeatsRandomSelectionOnUnseenCluster) {
  auto fw = shared_framework();
  RandomSelector random_sel(3);
  const auto& mri = sim::cluster_by_name("MRI");
  const sim::Topology topo{4, 64};
  double log_ratio = 0.0;
  int n = 0;
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    for (std::uint64_t msg = 1; msg <= (1u << 15); msg <<= 1) {
      const double t_fw = coll::analytic_cost(
          mri, topo, fw.select(collective, mri, topo, msg), msg);
      double t_rand = 0.0;
      for (int i = 0; i < 8; ++i) {
        t_rand += coll::analytic_cost(
            mri, topo, random_sel.select(collective, mri, topo, msg), msg);
      }
      t_rand /= 8.0;
      log_ratio += std::log(t_rand / t_fw);
      ++n;
    }
  }
  EXPECT_GT(std::exp(log_ratio / n), 1.3);  // well above parity
}

TEST(Framework, NearOracleOnTrainingCluster) {
  auto fw = shared_framework();
  OracleSelector oracle;
  const auto& rome = sim::cluster_by_name("Rome");  // in the training set
  const sim::Topology topo{4, 32};
  double log_ratio = 0.0;
  int n = 0;
  for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 1) {
    const double t_fw = coll::analytic_cost(
        rome, topo, fw.select(coll::Collective::kAlltoall, rome, topo, msg),
        msg);
    const double t_orc = coll::analytic_cost(
        rome, topo, oracle.select(coll::Collective::kAlltoall, rome, topo, msg),
        msg);
    log_ratio += std::log(t_fw / t_orc);
    ++n;
  }
  EXPECT_LT(std::exp(log_ratio / n), 1.15);  // within 15% of optimal
}

TEST(Framework, CompileForProducesCompleteTable) {
  auto fw = shared_framework();
  const auto& mri = sim::cluster_by_name("MRI");
  const std::vector<int> nodes = {1, 2, 4};
  const std::vector<int> ppns = {64, 128};
  const auto sizes = sim::power_of_two_sizes(16);
  const TuningTable table = fw.compile_for(mri, CompileOptions::sweep(nodes, ppns, sizes));
  EXPECT_EQ(table.cluster_name(), "MRI");
  EXPECT_EQ(table.job_count(), 2u * 3u * 2u);  // collectives x nodes x ppns
  EXPECT_GT(fw.inference_seconds(), 0.0);
  EXPECT_LT(fw.inference_seconds(), 1.0);  // paper: "less than a second"
  // Table answers must match direct inference.
  for (std::uint64_t msg = 1; msg <= (1u << 15); msg <<= 2) {
    EXPECT_EQ(table.lookup(coll::Collective::kAlltoall, 4, 64, msg),
              fw.select(coll::Collective::kAlltoall, mri,
                        sim::Topology{4, 64}, msg));
  }
}

TEST(Framework, CompileOrCachedReusesExistingTable) {
  auto fw = shared_framework();
  const auto& mri = sim::cluster_by_name("MRI");
  const std::vector<int> nodes = {1, 2};
  const std::vector<int> ppns = {64};
  const auto sizes = sim::power_of_two_sizes(8);

  TuningTable cache;
  const TuningTable& first =
      fw.compile_or_cached(mri, CompileOptions::sweep(nodes, ppns, sizes), cache);
  EXPECT_EQ(first.cluster_name(), "MRI");
  const double first_inference = fw.inference_seconds();

  // Second call: the cached table short-circuits the ML path (Fig. 4).
  const TuningTable& second =
      fw.compile_or_cached(mri, CompileOptions::sweep(nodes, ppns, sizes), cache);
  EXPECT_EQ(&second, &cache);
  EXPECT_EQ(fw.inference_seconds(), first_inference);  // no new inference

  // A different cluster invalidates the cache.
  const auto& frontera = sim::cluster_by_name("Frontera");
  const TuningTable& third =
      fw.compile_or_cached(frontera, CompileOptions::sweep(nodes, ppns, sizes), cache);
  EXPECT_EQ(third.cluster_name(), "Frontera");
}

TEST(Framework, CompileOrCachedRecompilesWhenSweepChanges) {
  // Regression: the cache hit used to key on cluster name only, so a call
  // with different node/ppn/message sweeps silently returned a stale table.
  auto fw = shared_framework();
  const auto& mri = sim::cluster_by_name("MRI");
  const std::vector<int> nodes = {1, 2};
  const std::vector<int> ppns = {64};
  const auto sizes = sim::power_of_two_sizes(8);

  TuningTable cache;
  fw.compile_or_cached(mri, CompileOptions::sweep(nodes, ppns, sizes), cache);
  EXPECT_EQ(cache.job_count(), 2u * 2u * 1u);

  const std::vector<int> more_nodes = {1, 2, 4, 8};
  const TuningTable& recompiled =
      fw.compile_or_cached(mri, CompileOptions::sweep(more_nodes, ppns, sizes), cache);
  EXPECT_EQ(recompiled.job_count(), 2u * 4u * 1u);
  EXPECT_TRUE(recompiled.has(coll::Collective::kAllgather, 8, 64));

  // Changing only the message sweep also invalidates the cache.
  const double before = fw.inference_seconds();
  const auto more_sizes = sim::power_of_two_sizes(12);
  fw.compile_or_cached(mri, CompileOptions::sweep(more_nodes, ppns, more_sizes), cache);
  EXPECT_NE(fw.inference_seconds(), before);
  EXPECT_TRUE(cache.matches_sweep(more_nodes, ppns, more_sizes));

  // And an identical sweep still hits.
  const double after = fw.inference_seconds();
  fw.compile_or_cached(mri, CompileOptions::sweep(more_nodes, ppns, more_sizes), cache);
  EXPECT_EQ(fw.inference_seconds(), after);
}

TEST(Framework, CompileOrCachedRecompilesWhenHardwareChangesUnderOneName) {
  // Regression: the in-memory cache used to match on cluster name + sweep
  // only, so two same-named specs with different silicon silently shared
  // one table. Coverage now requires the hardware fingerprint to match.
  auto fw = shared_framework();
  sim::ClusterSpec original = sim::cluster_by_name("MRI");
  sim::ClusterSpec respeced = original;
  respeced.hw.cores = original.hw.cores * 2;
  respeced.hw.mem_bw_gbs = original.hw.mem_bw_gbs / 2.0;
  ASSERT_NE(original.hardware_fingerprint(), respeced.hardware_fingerprint());

  const CompileOptions options =
      CompileOptions::sweep({1, 2}, {64}, sim::power_of_two_sizes(8));
  TuningTable cache;
  fw.compile_or_cached(original, options, cache);
  EXPECT_TRUE(cache.matches_cluster(original));
  EXPECT_FALSE(cache.matches_cluster(respeced));

  const double before = fw.inference_seconds();
  fw.compile_or_cached(respeced, options, cache);
  EXPECT_NE(fw.inference_seconds(), before);  // recompiled, no stale reuse
  EXPECT_TRUE(cache.matches_cluster(respeced));

  // The fingerprint is provenance: it survives a JSON round trip.
  const TuningTable back = TuningTable::from_json(cache.to_json());
  EXPECT_TRUE(back.matches_cluster(respeced));
  EXPECT_EQ(back.cluster_fingerprint(), respeced.hardware_fingerprint());
}

TEST(Framework, ParallelTrainingIsByteIdenticalToSerial) {
  TrainOptions serial_options = fast_options();
  serial_options.forest.n_trees = 8;
  serial_options.threads = 1;
  TrainOptions parallel_options = serial_options;
  parallel_options.threads = 4;
  std::vector<sim::ClusterSpec> clusters = {sim::cluster_by_name("RI"),
                                            sim::cluster_by_name("Rome")};
  const auto serial_fw = PmlFramework::train(clusters, serial_options);
  const auto parallel_fw = PmlFramework::train(clusters, parallel_options);
  EXPECT_EQ(serial_fw.to_json().dump(), parallel_fw.to_json().dump());
}

TEST(Framework, JsonRoundTripPreservesSelections) {
  auto fw = shared_framework();
  const Json bundle = fw.to_json();
  auto restored = PmlFramework::load(Json::parse(bundle.dump()));
  const auto& mri = sim::cluster_by_name("MRI");
  const sim::Topology topo{2, 16};
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 1) {
      EXPECT_EQ(restored.select(collective, mri, topo, msg),
                fw.select(collective, mri, topo, msg));
    }
  }
}

TEST(Framework, LoadRejectsMalformedBundles) {
  EXPECT_THROW(PmlFramework::load(Json::object()), Error);
  Json j = Json::object();
  j["format"] = "pml-mpi-model-v1";
  j["collectives"] = Json::object();
  EXPECT_THROW(PmlFramework::load(j), TuningError);
}

TEST(Framework, FeatureImportancesCoverFullLayout) {
  const auto& fw = shared_framework();
  const auto imp =
      fw.full_feature_importances(coll::Collective::kAllgather);
  ASSERT_EQ(imp.size(), feature_count());
  double sum = 0.0;
  for (const double v : imp) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Framework, LoadedBundlePreservesFeatureImportances) {
  // Regression: full_feature_importances on a loaded bundle was undefined
  // behaviour (per-tree importances were never restored from JSON).
  const auto& fw = shared_framework();
  const auto restored = PmlFramework::load(Json::parse(fw.to_json().dump()));
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    const auto original = fw.full_feature_importances(collective);
    const auto loaded = restored.full_feature_importances(collective);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t f = 0; f < original.size(); ++f) {
      EXPECT_DOUBLE_EQ(loaded[f], original[f]);
    }
  }
}

TEST(Framework, TopFeatureSelectionShrinksModelInput) {
  TrainOptions options = fast_options();
  options.top_features = 5;
  const auto fw = PmlFramework::train(small_training_set(), options);
  EXPECT_EQ(fw.selected_columns(coll::Collective::kAllgather).size(), 5u);
  EXPECT_EQ(fw.selected_columns(coll::Collective::kAlltoall).size(), 5u);
  // Importances of dropped columns are zero, and the kept ones sum to 1.
  const auto imp = fw.full_feature_importances(coll::Collective::kAlltoall);
  int nonzero = 0;
  for (const double v : imp) nonzero += v > 0.0 ? 1 : 0;
  EXPECT_LE(nonzero, 5);
}

TEST(Framework, MsgSizeAmongTopSelectedFeatures) {
  TrainOptions options = fast_options();
  options.top_features = 5;
  const auto fw = PmlFramework::train(small_training_set(), options);
  const auto& cols = fw.selected_columns(coll::Collective::kAlltoall);
  EXPECT_NE(std::find(cols.begin(), cols.end(), feature_index("msg_size")),
            cols.end());
}

}  // namespace
}  // namespace pml::core
