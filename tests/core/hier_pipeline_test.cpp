// End-to-end label-space-v2 pipeline tests: hierarchical dataset builds
// (thread-count determinism, flat-prefix stability), v2 dataset/table
// artifact round trips with v1 decode, partial heuristic degradation,
// serve protocol v2, and the v2-vs-flat selector accuracy acceptance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "coll/cost.hpp"
#include "coll/selection.hpp"
#include "common/artifact.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "core/dataset_builder.hpp"
#include "core/framework.hpp"
#include "core/serve.hpp"
#include "core/tuning_table.hpp"
#include "obs/obs.hpp"

namespace pml::core {
namespace {

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }
const sim::ClusterSpec& target() { return sim::cluster_by_name("MRI"); }

BuildOptions hier_build() {
  BuildOptions options;
  options.hierarchy = true;
  return options;
}

std::uint64_t counter_value(const char* name) {
  for (const auto& c : obs::snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// --- Hierarchical build determinism ----------------------------------------

TEST(HierBuild, BitIdenticalAcrossThreadCounts) {
  // The v2 sweep measures the full selection space under the cluster's
  // hierarchy model; per-cell RNG splitting must keep records bit-identical
  // at any thread count, exactly like the flat builder.
  std::vector<std::vector<TuningRecord>> runs;
  for (const int threads : {1, 2, 8}) {
    BuildOptions options = hier_build();
    options.threads = threads;
    runs.push_back(build_cluster_records(
        frontera(), coll::Collective::kAllgather, options));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  ASSERT_EQ(runs[0].size(), runs[2].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    for (const std::size_t other : {std::size_t{1}, std::size_t{2}}) {
      EXPECT_EQ(runs[0][i].label, runs[other][i].label) << "record " << i;
      EXPECT_EQ(runs[0][i].times, runs[other][i].times) << "record " << i;
      EXPECT_EQ(runs[0][i].features, runs[other][i].features) << "record " << i;
    }
  }
}

TEST(HierBuild, FlatPrefixMatchesFlatBuild) {
  // Turning the hierarchy on widens the label space but must not perturb
  // the flat measurements: the flat prefix of a v2 record equals the flat
  // build bit for bit (same per-candidate RNG stream order).
  const auto flat = build_cluster_records(
      frontera(), coll::Collective::kAllgather, BuildOptions{});
  const auto hier = build_cluster_records(
      frontera(), coll::Collective::kAllgather, hier_build());
  const std::size_t flat_width =
      coll::algorithms_for(coll::Collective::kAllgather).size();
  const std::size_t space =
      coll::selection_space(coll::Collective::kAllgather).size();
  ASSERT_EQ(flat.size(), hier.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    ASSERT_EQ(flat[i].times.size(), flat_width);
    ASSERT_EQ(hier[i].times.size(), space);
    for (std::size_t a = 0; a < flat_width; ++a) {
      EXPECT_EQ(flat[i].times[a], hier[i].times[a])
          << "record " << i << " candidate " << a;
    }
  }
}

TEST(HierBuild, LeaderCandidatesWinSomewhere) {
  // The acceptance premise of label space v2: on a multi-node high-PPN
  // cluster, some cells are best served by a hierarchical schedule.
  int hier_labels = 0;
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kBcast}) {
    const std::size_t flat_width = coll::algorithms_for(collective).size();
    for (const auto& rec :
         build_cluster_records(frontera(), collective, hier_build())) {
      if (static_cast<std::size_t>(rec.label) >= flat_width) ++hier_labels;
    }
  }
  EXPECT_GT(hier_labels, 0);
}

// --- Dataset artifact v2 ----------------------------------------------------

TEST(DatasetV2, RoundTripsHierarchicalRecords) {
  const auto records = build_cluster_records(
      frontera(), coll::Collective::kBcast, hier_build());
  const Json j = records_to_json(records, coll::Collective::kBcast);
  EXPECT_EQ(j.at("format").as_string(), "pml-dataset-v2");
  const auto& space = coll::selection_space(coll::Collective::kBcast);
  const auto& sels = j.at("selections").as_array();
  ASSERT_EQ(sels.size(), space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(sels[i].as_string(), space[i].encode());
  }

  const auto decoded = records_from_json(j);
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].label, records[i].label);
    EXPECT_EQ(decoded[i].times, records[i].times);
    EXPECT_EQ(decoded[i].features, records[i].features);
  }
}

TEST(DatasetV2, StillDecodesV1Documents) {
  // A v1 document (flat label space, no `selections` array) must decode
  // into the flat prefix for one more release.
  const auto flat = build_cluster_records(
      frontera(), coll::Collective::kAllgather, BuildOptions{});
  Json j = records_to_json(flat, coll::Collective::kAllgather);
  j["format"] = "pml-dataset-v1";  // v1 readers ignore extra keys
  const auto decoded = records_from_json(j);
  ASSERT_EQ(decoded.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(decoded[i].times, flat[i].times);
    EXPECT_EQ(decoded[i].label, flat[i].label);
  }
}

TEST(DatasetV2, RejectsLabelSpaceMismatch) {
  const auto records = build_cluster_records(
      frontera(), coll::Collective::kAllgather, BuildOptions{});
  Json j = records_to_json(records, coll::Collective::kAllgather);
  j["selections"].as_array()[0] = "not_a_real_selection";
  EXPECT_THROW(records_from_json(j), Error);
}

// --- Tuning table schema v2 -------------------------------------------------

TEST(TableV2, RoundTripsHierarchicalEntries) {
  TuningTable table("Frontera");
  JobTable job;
  job.collective = coll::Collective::kAllgather;
  job.nodes = 4;
  job.ppn = 32;
  job.entries.push_back(TuningEntry{
      4096, coll::Selection::flat(coll::Algorithm::kAgRecursiveDoubling)});
  // Last entry is open-ended by lookup semantics; generate() stores real
  // sweep sizes, never sentinel bounds (doubles back the JSON numbers).
  job.entries.push_back(TuningEntry{
      1u << 20, coll::Selection::leader(coll::Algorithm::kAgRing,
                                        coll::Algorithm::kBcBinomial)});
  table.add(job);

  const Json j = table.to_json();
  EXPECT_EQ(j.at("format").as_string(), "pml-mpi-tuning-table-v2");

  const TuningTable back = TuningTable::from_json(j);
  const coll::Selection small =
      back.lookup(coll::Collective::kAllgather, 4, 32, 1024);
  EXPECT_FALSE(small.hierarchical());
  EXPECT_EQ(small.algorithm, coll::Algorithm::kAgRecursiveDoubling);
  const coll::Selection large =
      back.lookup(coll::Collective::kAllgather, 4, 32, 1 << 22);
  EXPECT_TRUE(large.hierarchical());
  EXPECT_EQ(large.encode(), "leader:ring+binomial");
  EXPECT_EQ(back.to_json().dump(), j.dump());
}

TEST(TableV2, DecodesV1AlgorithmEntries) {
  // v1 artifacts store a bare algorithm name under "algorithm"; they load
  // as flat selections for one more release.
  const Json j = Json::parse(R"({
    "format": "pml-mpi-tuning-table-v1",
    "cluster": "Frontera",
    "jobs": [{
      "collective": "allgather", "nodes": 2, "ppn": 16,
      "entries": [{"max_bytes": 1048576, "algorithm": "ring"}]
    }]
  })");
  const TuningTable table = TuningTable::from_json(j);
  const coll::Selection s =
      table.lookup(coll::Collective::kAllgather, 2, 16, 4096);
  EXPECT_EQ(s, coll::Selection::flat(coll::Algorithm::kAgRing));
}

// --- Partial degradation ladder ---------------------------------------------

class PartialDegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pml_partial_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    was_enabled_ = obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::reset();
    obs::set_enabled(was_enabled_);
    std::filesystem::remove_all(dir_);
  }

  static PmlFramework& trained() {
    static PmlFramework fw = [] {
      TrainOptions options;
      options.forest.n_trees = 8;
      const std::vector<sim::ClusterSpec> clusters = {
          sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
      return PmlFramework::train(clusters, options);  // paper collectives only
    }();
    return fw;
  }

  std::filesystem::path dir_;
  bool was_enabled_ = false;
};

TEST_F(PartialDegradationTest, TopsUpOnlyMissingCollectives) {
  const std::string model_path = (dir_ / "model.json").string();
  write_artifact(model_path, trained().to_json(), "model");

  CompileOptions options = CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
  options.cache_dir = dir_.string();
  options.collectives.assign(coll::all_collectives().begin(),
                             coll::all_collectives().end());

  const TuningTable table = online_table(model_path, target(), options);
  // Model-covered collectives answer from the model; the two the model was
  // never trained on are topped up from the heuristic rung.
  for (const auto collective : coll::all_collectives()) {
    EXPECT_TRUE(table.has(collective, 2, 16)) << coll::to_string(collective);
  }
  EXPECT_GE(counter_value("online.fallback.partial"), 1u);
  // Partial top-up is not the full-table heuristic fallback.
  EXPECT_EQ(counter_value("online.fallback.heuristic"), 0u);

  // The model-backed jobs are exactly what a straight compile produces.
  const TuningTable direct = trained().compile_for(target(), options);
  for (const auto collective : coll::paper_collectives()) {
    for (const int nodes : {2, 4}) {
      for (const std::uint64_t bytes : {1024ull, 65536ull}) {
        EXPECT_EQ(table.lookup(collective, nodes, 16, bytes),
                  direct.lookup(collective, nodes, 16, bytes));
      }
    }
  }
}

TEST_F(PartialDegradationTest, NoTopUpWhenModelCoversRequest) {
  const std::string model_path = (dir_ / "model.json").string();
  write_artifact(model_path, trained().to_json(), "model");

  CompileOptions options = CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
  options.cache_dir = dir_.string();  // default: paper collectives

  const TuningTable via_file = online_table(model_path, target(), options);
  const TuningTable direct = trained().compile_for(target(), options);
  EXPECT_EQ(via_file.to_json().dump(), direct.to_json().dump());
  EXPECT_EQ(counter_value("online.fallback.partial"), 0u);
}

// --- Serve protocol v2 ------------------------------------------------------

TEST(ServeV2, SelectReplyCarriesStructuredSelection) {
  ServeOptions options;
  options.async_compile = false;  // deterministic: compile on this thread
  ServeEngine engine(options);    // no model: heuristic rung

  const Json reply = Json::parse(engine.handle_line(
      R"({"op":"select","cluster":"Frontera","collective":"allgather",)"
      R"("nodes":4,"ppn":32,"msg_bytes":1048576})"));
  ASSERT_TRUE(reply.at("ok").as_bool());

  // v2: a structured `selection` object rides alongside the legacy
  // `algorithm` string, and the two must agree.
  ASSERT_TRUE(reply.contains("selection"));
  const Json& sel = reply.at("selection");
  const coll::Selection decoded = coll::Selection::decode(
      coll::Collective::kAllgather, sel.at("encoded").as_string());
  EXPECT_EQ(sel.at("kind").as_string(),
            coll::to_string(decoded.kind));
  EXPECT_EQ(sel.at("algorithm").as_string(),
            coll::to_string(decoded.algorithm));
  EXPECT_EQ(sel.at("intra").as_string(), coll::to_string(decoded.intra));
  EXPECT_EQ(reply.at("algorithm").as_string(),
            coll::to_string(decoded.algorithm));
  EXPECT_EQ(reply.at("display_name").as_string(), decoded.display());
  EXPECT_TRUE(coll::selection_supports(decoded, sim::Topology{4, 32}));
}

// --- Acceptance: v2 selector vs flat ---------------------------------------

/// Geomean of choice-cost / best-valid-selection-cost over the given
/// grids on an unseen cluster (lower is better; 1.0 is oracle).
double slowdown_vs_oracle(PmlFramework& fw, const sim::ClusterSpec& cluster,
                          std::initializer_list<sim::Topology> grids) {
  double log_ratio = 0.0;
  int n = 0;
  for (const sim::Topology topo : grids) {
    for (const auto collective :
         {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
      for (std::uint64_t msg = 64; msg <= (1u << 20); msg <<= 2) {
        const coll::Selection choice =
            fw.select(collective, cluster, topo, msg);
        const double t_choice =
            coll::analytic_cost(cluster, topo, choice, msg);
        double t_best = t_choice;
        for (const coll::Selection& s :
             coll::valid_selections(collective, topo)) {
          t_best = std::min(t_best,
                            coll::analytic_cost(cluster, topo, s, msg));
        }
        log_ratio += std::log(t_choice / t_best);
        ++n;
      }
    }
  }
  return std::exp(log_ratio / n);
}

TEST(HierTrain, V2SelectorMatchesOrBeatsFlatSelector) {
  // Acceptance: retraining on label space v2 (hierarchical candidates
  // included) yields a selector no worse than the flat-trained one against
  // the full-space oracle — and the flat selector cannot reach the
  // hierarchical winners at all on these grids.
  TrainOptions flat_options;
  flat_options.forest.n_trees = 20;
  TrainOptions hier_options = flat_options;
  hier_options.build.hierarchy = true;

  std::vector<sim::ClusterSpec> clusters;
  for (const char* name : {"RI", "RI2", "Rome", "Haswell", "Bridges"}) {
    clusters.push_back(sim::cluster_by_name(name));
  }
  PmlFramework flat_fw = PmlFramework::train(clusters, flat_options);
  PmlFramework hier_fw = PmlFramework::train(clusters, hier_options);

  // On multi-node high-PPN grids (where hierarchical schedules are in
  // play) the v2 selector must match or beat the flat one.
  const auto& mri = sim::cluster_by_name("MRI");
  const double flat_slowdown = slowdown_vs_oracle(
      flat_fw, mri, {sim::Topology{4, 32}, sim::Topology{8, 16}});
  const double hier_slowdown = slowdown_vs_oracle(
      hier_fw, mri, {sim::Topology{4, 32}, sim::Topology{8, 16}});
  EXPECT_LE(hier_slowdown, flat_slowdown * 1.02)
      << "hier " << hier_slowdown << " vs flat " << flat_slowdown;

  // On flat grids (single node: no leader schedule is valid) the wider
  // label space must not cost accuracy.
  const double flat_on_flat = slowdown_vs_oracle(
      flat_fw, mri, {sim::Topology{1, 16}, sim::Topology{1, 28}});
  const double hier_on_flat = slowdown_vs_oracle(
      hier_fw, mri, {sim::Topology{1, 16}, sim::Topology{1, 28}});
  EXPECT_LE(hier_on_flat, flat_on_flat * 1.05)
      << "hier " << hier_on_flat << " vs flat " << flat_on_flat;

  // The v2 selector actually uses the wider label space.
  int hier_choices = 0;
  for (const sim::Topology topo : {sim::Topology{4, 32}, sim::Topology{8, 16}}) {
    for (std::uint64_t msg = 64; msg <= (1u << 20); msg <<= 2) {
      if (hier_fw.select(coll::Collective::kAllgather, mri, topo, msg)
              .hierarchical()) {
        ++hier_choices;
      }
    }
  }
  EXPECT_GT(hier_choices, 0);
}

}  // namespace
}  // namespace pml::core
