// The filesystem compile_or_cached must always return a usable table:
// truncated, bit-flipped, legacy, or unreadable cache entries are reasons
// to recompile (and repair the cache), never to throw or — worse — to
// silently serve damaged data. Before the pml-artifact-v1 envelope, any
// parseable JSON with a matching sweep was trusted; the poisoned-cache
// test below is the regression guard for that bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "common/artifact.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/framework.hpp"
#include "obs/obs.hpp"

namespace pml::core {
namespace {

/// Cheap trained framework shared by every test in this file.
PmlFramework& trained() {
  static PmlFramework fw = [] {
    TrainOptions options;
    options.forest.n_trees = 8;
    const std::vector<sim::ClusterSpec> clusters = {
        sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
    return PmlFramework::train(clusters, options);
  }();
  return fw;
}

const sim::ClusterSpec& target() { return sim::cluster_by_name("MRI"); }

CompileOptions options_in(const std::filesystem::path& dir) {
  CompileOptions options = CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
  options.cache_dir = dir.string();
  return options;
}

std::uint64_t counter_value(const char* name) {
  for (const auto& c : obs::snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

class CacheRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pml_cache_test_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    was_enabled_ = obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::reset();
    obs::set_enabled(was_enabled_);
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path cache_file() const {
    return dir_ / (target().name + ".table.json");
  }

  std::filesystem::path dir_;
  bool was_enabled_ = false;
};

TEST_F(CacheRobustnessTest, CompileWritesAnEnvelopeAndReusesIt) {
  const CompileOptions options = options_in(dir_);
  const TuningTable first = trained().compile_or_cached(target(), options);
  ASSERT_TRUE(std::filesystem::exists(cache_file()));
  const Json doc = Json::parse(read_file(cache_file().string()));
  EXPECT_TRUE(is_artifact_envelope(doc));
  EXPECT_EQ(inspect_artifact(cache_file().string()).status,
            ArtifactStatus::kOk);

  const TuningTable second = trained().compile_or_cached(target(), options);
  EXPECT_EQ(first.to_json().dump(), second.to_json().dump());
  EXPECT_EQ(counter_value("online.fallback.cache_corrupt"), 0u);
  EXPECT_EQ(counter_value("online.fallback.cache_stale"), 0u);
}

TEST_F(CacheRobustnessTest, TruncatedCacheIsRecompiled) {
  const CompileOptions options = options_in(dir_);
  const TuningTable clean = trained().compile_or_cached(target(), options);

  const std::string full = read_file(cache_file().string());
  write_file(cache_file().string(), full.substr(0, full.size() / 2));

  const TuningTable recovered = trained().compile_or_cached(target(), options);
  EXPECT_EQ(recovered.to_json().dump(), clean.to_json().dump());
  EXPECT_GE(counter_value("online.fallback.cache_corrupt"), 1u);
  // The damaged entry was rewritten as a valid envelope.
  EXPECT_EQ(inspect_artifact(cache_file().string()).status,
            ArtifactStatus::kOk);
}

TEST_F(CacheRobustnessTest, FlippedByteCacheIsRecompiled) {
  const CompileOptions options = options_in(dir_);
  const TuningTable clean = trained().compile_or_cached(target(), options);

  // Flip one byte inside the payload: still perfectly parseable JSON, but
  // the checksum no longer matches. The pre-envelope code served this.
  std::string bytes = read_file(cache_file().string());
  const std::size_t at = bytes.find("\"cluster\"");
  ASSERT_NE(at, std::string::npos);
  bytes[at + 1] = 'k';
  write_file(cache_file().string(), bytes);

  const TuningTable recovered = trained().compile_or_cached(target(), options);
  EXPECT_EQ(recovered.to_json().dump(), clean.to_json().dump());
  EXPECT_GE(counter_value("online.fallback.cache_corrupt"), 1u);
  EXPECT_EQ(inspect_artifact(cache_file().string()).status,
            ArtifactStatus::kOk);
}

TEST_F(CacheRobustnessTest, PoisonedLegacyCacheIsNotServed) {
  const CompileOptions options = options_in(dir_);

  // A hand-built table that satisfies every pre-envelope trust check —
  // matching cluster name, non-empty, matching sweep provenance — but
  // carries garbage content (a single allgather rule, nothing else). The
  // old code would have served it verbatim.
  TuningTable poisoned(target().name);
  poisoned.set_sweep(options.node_counts, options.ppn_values,
                     options.message_sizes);
  JobTable job;
  job.collective = coll::Collective::kAllgather;
  job.nodes = 2;
  job.ppn = 16;
  job.entries.push_back(
      TuningEntry{std::numeric_limits<std::uint64_t>::max(),
                  coll::Selection::flat(coll::Algorithm::kAgRing)});
  poisoned.add(std::move(job));
  write_file(cache_file().string(), poisoned.to_json().dump(2) + "\n");

  const TuningTable served = trained().compile_or_cached(target(), options);
  // The served table is a fresh compile covering the full grid, not the
  // single-entry poison.
  EXPECT_TRUE(served.has(coll::Collective::kAlltoall, 2, 16));
  EXPECT_GT(served.job_count(), 1u);
  EXPECT_GE(counter_value("online.fallback.cache_stale"), 1u);
  // And the cache was upgraded to an envelope in passing.
  EXPECT_EQ(inspect_artifact(cache_file().string()).status,
            ArtifactStatus::kOk);
}

TEST_F(CacheRobustnessTest, UnreadableCacheRetriesThenRecompiles) {
  CompileOptions options = options_in(dir_);
  std::vector<double> sleeps;
  options.cache_retry.max_attempts = 3;
  options.cache_retry.sleep = [&](double s) { sleeps.push_back(s); };

  // A directory at the cache path: exists() is true, every read fails.
  std::filesystem::create_directories(cache_file());

  const TuningTable table = trained().compile_or_cached(target(), options);
  EXPECT_FALSE(table.empty());
  // All three read attempts ran (two backoff sleeps) before degrading.
  EXPECT_EQ(sleeps.size(), 2u);
  EXPECT_GE(counter_value("online.fallback.cache_unreadable"), 1u);
  // The rewrite onto a directory fails too: degrade and continue.
  EXPECT_GE(counter_value("online.fallback.cache_write_failed"), 1u);
}

TEST_F(CacheRobustnessTest, DeletedModelFallsBackToHeuristicTable) {
  CompileOptions options = options_in(dir_);
  const TuningTable table =
      online_table((dir_ / "missing_model.json").string(), target(), options);
  EXPECT_FALSE(table.empty());
  EXPECT_TRUE(table.has(coll::Collective::kAllgather, 2, 16));
  EXPECT_GE(counter_value("online.fallback.heuristic"), 1u);
}

TEST_F(CacheRobustnessTest, CorruptModelFallsBackToHeuristicTable) {
  CompileOptions options = options_in(dir_);
  const std::string model_path = (dir_ / "model.json").string();
  write_file(model_path, "{\"format\": \"pml-mpi-model-v1\", \"collec");

  const TuningTable table = online_table(model_path, target(), options);
  EXPECT_FALSE(table.empty());
  EXPECT_GE(counter_value("online.fallback.heuristic"), 1u);

  // Strict mode surfaces the failure instead.
  options.heuristic_fallback = false;
  EXPECT_THROW(online_table(model_path, target(), options), Error);
}

TEST_F(CacheRobustnessTest, HealthyModelRoundTripsThroughOnlineTable) {
  const CompileOptions options = options_in(dir_);
  const std::string model_path = (dir_ / "model.json").string();
  write_artifact(model_path, trained().to_json(), "model");

  const TuningTable via_file = online_table(model_path, target(), options);
  const TuningTable direct = trained().compile_for(target(), options);
  EXPECT_EQ(via_file.to_json().dump(), direct.to_json().dump());
  EXPECT_EQ(counter_value("online.fallback.heuristic"), 0u);
}

}  // namespace
}  // namespace pml::core
