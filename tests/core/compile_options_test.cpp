// core::CompileOptions — the single options struct that replaced the
// positional (nodes, ppn, sizes) span triple across the online stage.
// Pins defaults, validation, the empty-grid fallback to the cluster's own
// benchmarked sweep, the filesystem cache behaviour, and the deprecated
// transitional overloads.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "common/error.hpp"
#include "core/framework.hpp"
#include "sim/hardware.hpp"

namespace pml::core {
namespace {

/// One small trained framework shared by every test in this binary.
PmlFramework& shared_framework() {
  static PmlFramework fw = [] {
    TrainOptions options;
    options.forest.n_trees = 8;
    const std::vector<sim::ClusterSpec> clusters = {
        sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
    return PmlFramework::train(clusters, options);
  }();
  return fw;
}

TEST(CompileOptionsTest, DefaultsMatchDocumentedValues) {
  const CompileOptions options;
  EXPECT_TRUE(options.node_counts.empty());
  EXPECT_TRUE(options.ppn_values.empty());
  EXPECT_TRUE(options.message_sizes.empty());
  EXPECT_EQ(options.threads, 0);
  EXPECT_TRUE(options.cache_dir.empty());
  EXPECT_TRUE(options.trace_sink.empty());
  options.validate();  // empty grids are valid (cluster fallback)
}

TEST(CompileOptionsTest, SweepFactoryFillsTheGrids) {
  const auto options = CompileOptions::sweep({2, 4}, {16}, {1024});
  EXPECT_EQ(options.node_counts, (std::vector<int>{2, 4}));
  EXPECT_EQ(options.ppn_values, (std::vector<int>{16}));
  EXPECT_EQ(options.message_sizes, (std::vector<std::uint64_t>{1024}));
  EXPECT_EQ(options.threads, 0);
}

TEST(CompileOptionsTest, ValidateRejectsNonPositiveGridEntries) {
  EXPECT_THROW(CompileOptions::sweep({0}, {16}, {1024}).validate(),
               ConfigError);
  EXPECT_THROW(CompileOptions::sweep({2}, {-1}, {1024}).validate(),
               ConfigError);
  EXPECT_THROW(
      shared_framework().compile_for(sim::cluster_by_name("MRI"),
                                     CompileOptions::sweep({2}, {0}, {64})),
      ConfigError);
}

TEST(CompileOptionsTest, EmptyGridsFallBackToTheClustersOwnSweep) {
  auto& fw = shared_framework();
  const auto& cluster = sim::cluster_by_name("MRI");
  const TuningTable implicit = fw.compile_for(cluster);  // empty grids
  const TuningTable explicit_grid = fw.compile_for(
      cluster, CompileOptions::sweep(cluster.node_counts, cluster.ppn_values,
                                     cluster.message_sizes));
  EXPECT_EQ(implicit.to_json().dump(), explicit_grid.to_json().dump());
}

TEST(CompileOptionsTest, InMemoryCacheIsReusedWhenSweepMatches) {
  auto& fw = shared_framework();
  const auto& cluster = sim::cluster_by_name("MRI");
  const auto options = CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
  TuningTable cache;
  const TuningTable& first = fw.compile_or_cached(cluster, options, cache);
  const std::string bytes = first.to_json().dump();
  const TuningTable& second = fw.compile_or_cached(cluster, options, cache);
  EXPECT_EQ(&first, &second);  // same object: the cache was reused
  EXPECT_EQ(second.to_json().dump(), bytes);
}

TEST(CompileOptionsTest, FilesystemCacheWritesAndReloadsTheTable) {
  namespace fs = std::filesystem;
  auto& fw = shared_framework();
  const auto& cluster = sim::cluster_by_name("MRI");
  const fs::path dir = fs::path(::testing::TempDir()) / "pml_table_cache";
  fs::remove_all(dir);
  auto options = CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
  options.cache_dir = dir.string();

  const TuningTable fresh = fw.compile_or_cached(cluster, options);
  const fs::path table_path = dir / (cluster.name + ".table.json");
  ASSERT_TRUE(fs::exists(table_path));

  const TuningTable cached = fw.compile_or_cached(cluster, options);
  EXPECT_EQ(cached.to_json().dump(), fresh.to_json().dump());
  fs::remove_all(dir);
}

TEST(CompileOptionsTest, DeprecatedSpanOverloadMatchesCompileOptions) {
  auto& fw = shared_framework();
  const auto& cluster = sim::cluster_by_name("MRI");
  const std::vector<int> nodes{2, 4};
  const std::vector<int> ppn{16};
  const std::vector<std::uint64_t> sizes{1024, 65536};
  const TuningTable current =
      fw.compile_for(cluster, CompileOptions::sweep(nodes, ppn, sizes));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const TuningTable legacy = fw.compile_for(cluster, nodes, ppn, sizes);
#pragma GCC diagnostic pop
  EXPECT_EQ(current.to_json().dump(), legacy.to_json().dump());
}

TEST(CompileOptionsTest, ThreadCountDoesNotChangeTheTable) {
  auto& fw = shared_framework();
  const auto& cluster = sim::cluster_by_name("Frontera");
  auto serial = CompileOptions::sweep({2, 4}, {8, 16}, {64, 4096});
  serial.threads = 1;
  auto parallel = serial;
  parallel.threads = 4;
  EXPECT_EQ(fw.compile_for(cluster, serial).to_json().dump(),
            fw.compile_for(cluster, parallel).to_json().dump());
}

}  // namespace
}  // namespace pml::core
