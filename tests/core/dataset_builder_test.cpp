#include "core/dataset_builder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pml::core {
namespace {

const sim::ClusterSpec& ri() { return sim::cluster_by_name("RI"); }

TEST(DatasetBuilder, RecordCountMatchesSweep) {
  // RI: 1 node count x 2 ppn values x 21 sizes = 42 records (Table I).
  const auto records =
      build_cluster_records(ri(), coll::Collective::kAllgather, {});
  EXPECT_EQ(records.size(), 42u);
}

TEST(DatasetBuilder, RecordsHaveValidLabelsAndTimes) {
  const auto records =
      build_cluster_records(ri(), coll::Collective::kAlltoall, {});
  const auto n_algos =
      coll::algorithms_for(coll::Collective::kAlltoall).size();
  for (const auto& rec : records) {
    ASSERT_EQ(rec.times.size(), n_algos);
    ASSERT_GE(rec.label, 0);
    ASSERT_LT(rec.label, static_cast<int>(n_algos));
    // The label is the argmin of the times.
    const double best = rec.times[static_cast<std::size_t>(rec.label)];
    ASSERT_TRUE(std::isfinite(best));
    for (const double t : rec.times) EXPECT_GE(t, best);
    EXPECT_EQ(rec.features.size(), feature_count());
  }
}

TEST(DatasetBuilder, DeterministicForSeed) {
  const BuildOptions options;
  const auto a = build_cluster_records(ri(), coll::Collective::kAllgather, options);
  const auto b = build_cluster_records(ri(), coll::Collective::kAllgather, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].times, b[i].times);
  }
}

TEST(DatasetBuilder, SeedChangesNoisyMeasurements) {
  BuildOptions opts_a;
  BuildOptions opts_b;
  opts_b.seed = opts_a.seed + 1;
  const auto a = build_cluster_records(ri(), coll::Collective::kAllgather, opts_a);
  const auto b = build_cluster_records(ri(), coll::Collective::kAllgather, opts_b);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].times != b[i].times;
  }
  EXPECT_TRUE(any_difference);
}

TEST(DatasetBuilder, InvalidAlgorithmsMarkedInfinite) {
  // RI ppn values are {4, 8}; with 1 node, p=4 and p=8 are powers of two,
  // so use a cluster/ppn giving non-pow2 worlds: Frontera ppn includes 28.
  const auto records = build_cluster_records(
      sim::cluster_by_name("Frontera"), coll::Collective::kAlltoall, {});
  bool found_invalid = false;
  const auto& algos = coll::algorithms_for(coll::Collective::kAlltoall);
  for (const auto& rec : records) {
    const int p = rec.nodes * rec.ppn;
    for (std::size_t a = 0; a < algos.size(); ++a) {
      if (!coll::algorithm_supports(algos[a], p)) {
        EXPECT_TRUE(std::isinf(rec.times[a]));
        found_invalid = true;
      }
    }
  }
  EXPECT_TRUE(found_invalid);
}

TEST(DatasetBuilder, ToMlDatasetShapes) {
  const auto records =
      build_cluster_records(ri(), coll::Collective::kAllgather, {});
  const auto data = to_ml_dataset(records, coll::Collective::kAllgather);
  EXPECT_EQ(data.size(), records.size());
  EXPECT_EQ(data.x.cols(), feature_count());
  EXPECT_EQ(data.num_classes, 4);
  EXPECT_EQ(data.class_names.size(), 4u);
  EXPECT_NO_THROW(data.validate());
}

TEST(DatasetBuilder, ToMlDatasetColumnSubset) {
  const auto records =
      build_cluster_records(ri(), coll::Collective::kAllgather, {});
  const auto data =
      to_ml_dataset(records, coll::Collective::kAllgather, {0, 2, 4});
  EXPECT_EQ(data.x.cols(), 3u);
  EXPECT_EQ(data.feature_names,
            (std::vector<std::string>{"num_nodes", "msg_size", "l3_cache_mb"}));
}

TEST(DatasetBuilder, ToMlDatasetRejectsMixedCollectives) {
  auto records = build_cluster_records(ri(), coll::Collective::kAllgather, {});
  EXPECT_THROW(to_ml_dataset(records, coll::Collective::kAlltoall),
               TuningError);
}

TEST(DatasetBuilder, RowFilters) {
  std::vector<TuningRecord> records(4);
  records[0].cluster = "A";
  records[0].nodes = 1;
  records[1].cluster = "A";
  records[1].nodes = 8;
  records[2].cluster = "B";
  records[2].nodes = 2;
  records[3].cluster = "C";
  records[3].nodes = 16;

  const std::vector<std::string> names = {"A", "C"};
  EXPECT_EQ(rows_in_clusters(records, names),
            (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(rows_with_nodes_at_most(records, 2),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(rows_with_nodes_above(records, 2),
            (std::vector<std::size_t>{1, 3}));
}

TEST(DatasetBuilder, MultiClusterBuildConcatenates) {
  const std::vector<sim::ClusterSpec> clusters = {
      ri(), sim::cluster_by_name("Haswell")};
  const auto records =
      build_records(clusters, coll::Collective::kAllgather, {});
  const auto solo_ri =
      build_cluster_records(ri(), coll::Collective::kAllgather, {});
  const auto solo_haswell = build_cluster_records(
      sim::cluster_by_name("Haswell"), coll::Collective::kAllgather, {});
  EXPECT_EQ(records.size(), solo_ri.size() + solo_haswell.size());
}

TEST(DatasetBuilder, CellSeedSeparatesComponents) {
  // The sponge must be positional: swapping nodes and ppn, or shifting a
  // value between adjacent components, must change the seed.
  const auto base =
      cell_seed(1, "A", coll::Collective::kAllgather, 2, 4, 64);
  EXPECT_NE(base, cell_seed(1, "A", coll::Collective::kAllgather, 4, 2, 64));
  EXPECT_NE(base, cell_seed(1, "B", coll::Collective::kAllgather, 2, 4, 64));
  EXPECT_NE(base, cell_seed(1, "A", coll::Collective::kAlltoall, 2, 4, 64));
  EXPECT_NE(base, cell_seed(1, "A", coll::Collective::kAllgather, 2, 4, 65));
  EXPECT_NE(base, cell_seed(2, "A", coll::Collective::kAllgather, 2, 4, 64));
  EXPECT_EQ(base, cell_seed(1, "A", coll::Collective::kAllgather, 2, 4, 64));
}

TEST(DatasetBuilder, ParallelSweepIsByteIdenticalToSerial) {
  // The tentpole guarantee: records are bit-identical at any thread count.
  // Exact double equality is intentional — the per-cell RNG split makes the
  // noise stream independent of scheduling, not merely close.
  const std::vector<sim::ClusterSpec> clusters = {
      ri(), sim::cluster_by_name("Frontera")};
  BuildOptions serial;
  serial.threads = 1;
  const auto base =
      build_records(clusters, coll::Collective::kAllgather, serial);
  for (const int threads : {2, 8}) {
    BuildOptions opts;
    opts.threads = threads;
    const auto got =
        build_records(clusters, coll::Collective::kAllgather, opts);
    ASSERT_EQ(got.size(), base.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(got[i].cluster, base[i].cluster);
      EXPECT_EQ(got[i].nodes, base[i].nodes);
      EXPECT_EQ(got[i].ppn, base[i].ppn);
      EXPECT_EQ(got[i].msg_bytes, base[i].msg_bytes);
      EXPECT_EQ(got[i].features, base[i].features);
      EXPECT_EQ(got[i].times, base[i].times) << "threads=" << threads
                                             << " record=" << i;
      EXPECT_EQ(got[i].label, base[i].label);
    }
  }
}

TEST(DatasetBuilder, LabelsAreDiverseAcrossSweep) {
  // Over a full sweep of a multi-node cluster, more than one algorithm
  // must win somewhere (otherwise there is nothing to learn).
  const auto records = build_cluster_records(
      sim::cluster_by_name("Frontera"), coll::Collective::kAllgather, {});
  std::set<int> labels;
  for (const auto& rec : records) labels.insert(rec.label);
  EXPECT_GE(labels.size(), 2u);
}

}  // namespace
}  // namespace pml::core
