#include "core/dataset_builder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "coll/selection.hpp"

namespace pml::core {
namespace {

const sim::ClusterSpec& ri() { return sim::cluster_by_name("RI"); }

TEST(DatasetBuilder, RecordCountMatchesSweep) {
  // RI: 1 node count x 2 ppn values x 21 sizes = 42 records (Table I).
  const auto records =
      build_cluster_records(ri(), coll::Collective::kAllgather, {});
  EXPECT_EQ(records.size(), 42u);
}

TEST(DatasetBuilder, RecordsHaveValidLabelsAndTimes) {
  const auto records =
      build_cluster_records(ri(), coll::Collective::kAlltoall, {});
  const auto n_algos =
      coll::algorithms_for(coll::Collective::kAlltoall).size();
  for (const auto& rec : records) {
    ASSERT_EQ(rec.times.size(), n_algos);
    ASSERT_GE(rec.label, 0);
    ASSERT_LT(rec.label, static_cast<int>(n_algos));
    // The label is the argmin of the times.
    const double best = rec.times[static_cast<std::size_t>(rec.label)];
    ASSERT_TRUE(std::isfinite(best));
    for (const double t : rec.times) EXPECT_GE(t, best);
    EXPECT_EQ(rec.features.size(), feature_count());
  }
}

TEST(DatasetBuilder, DeterministicForSeed) {
  const BuildOptions options;
  const auto a = build_cluster_records(ri(), coll::Collective::kAllgather, options);
  const auto b = build_cluster_records(ri(), coll::Collective::kAllgather, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].times, b[i].times);
  }
}

TEST(DatasetBuilder, SeedChangesNoisyMeasurements) {
  BuildOptions opts_a;
  BuildOptions opts_b;
  opts_b.seed = opts_a.seed + 1;
  const auto a = build_cluster_records(ri(), coll::Collective::kAllgather, opts_a);
  const auto b = build_cluster_records(ri(), coll::Collective::kAllgather, opts_b);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].times != b[i].times;
  }
  EXPECT_TRUE(any_difference);
}

TEST(DatasetBuilder, InvalidAlgorithmsMarkedInfinite) {
  // RI ppn values are {4, 8}; with 1 node, p=4 and p=8 are powers of two,
  // so use a cluster/ppn giving non-pow2 worlds: Frontera ppn includes 28.
  const auto records = build_cluster_records(
      sim::cluster_by_name("Frontera"), coll::Collective::kAlltoall, {});
  bool found_invalid = false;
  const auto& algos = coll::algorithms_for(coll::Collective::kAlltoall);
  for (const auto& rec : records) {
    const int p = rec.nodes * rec.ppn;
    for (std::size_t a = 0; a < algos.size(); ++a) {
      if (!coll::algorithm_supports(algos[a], p)) {
        EXPECT_TRUE(std::isinf(rec.times[a]));
        found_invalid = true;
      }
    }
  }
  EXPECT_TRUE(found_invalid);
}

TEST(DatasetBuilder, ToMlDatasetShapes) {
  const auto records =
      build_cluster_records(ri(), coll::Collective::kAllgather, {});
  const auto data = to_ml_dataset(records, coll::Collective::kAllgather);
  EXPECT_EQ(data.size(), records.size());
  EXPECT_EQ(data.x.cols(), feature_count());
  // Classes index the full label-space-v2 selection space; flat builds
  // simply leave the hierarchical suffix unpopulated.
  const std::size_t space =
      coll::selection_space(coll::Collective::kAllgather).size();
  EXPECT_EQ(static_cast<std::size_t>(data.num_classes), space);
  EXPECT_EQ(data.class_names.size(), space);
  EXPECT_NO_THROW(data.validate());
}

TEST(DatasetBuilder, ToMlDatasetColumnSubset) {
  const auto records =
      build_cluster_records(ri(), coll::Collective::kAllgather, {});
  const auto data =
      to_ml_dataset(records, coll::Collective::kAllgather, {0, 2, 4});
  EXPECT_EQ(data.x.cols(), 3u);
  EXPECT_EQ(data.feature_names,
            (std::vector<std::string>{"num_nodes", "msg_size", "l3_cache_mb"}));
}

TEST(DatasetBuilder, ToMlDatasetRejectsMixedCollectives) {
  auto records = build_cluster_records(ri(), coll::Collective::kAllgather, {});
  EXPECT_THROW(to_ml_dataset(records, coll::Collective::kAlltoall),
               TuningError);
}

TEST(DatasetBuilder, RowFilters) {
  std::vector<TuningRecord> records(4);
  records[0].cluster = "A";
  records[0].nodes = 1;
  records[1].cluster = "A";
  records[1].nodes = 8;
  records[2].cluster = "B";
  records[2].nodes = 2;
  records[3].cluster = "C";
  records[3].nodes = 16;

  const std::vector<std::string> names = {"A", "C"};
  EXPECT_EQ(rows_in_clusters(records, names),
            (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(rows_with_nodes_at_most(records, 2),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(rows_with_nodes_above(records, 2),
            (std::vector<std::size_t>{1, 3}));
}

TEST(DatasetBuilder, MultiClusterBuildConcatenates) {
  const std::vector<sim::ClusterSpec> clusters = {
      ri(), sim::cluster_by_name("Haswell")};
  const auto records =
      build_records(clusters, coll::Collective::kAllgather, {});
  const auto solo_ri =
      build_cluster_records(ri(), coll::Collective::kAllgather, {});
  const auto solo_haswell = build_cluster_records(
      sim::cluster_by_name("Haswell"), coll::Collective::kAllgather, {});
  EXPECT_EQ(records.size(), solo_ri.size() + solo_haswell.size());
}

TEST(DatasetBuilder, CellSeedSeparatesComponents) {
  // The sponge must be positional: swapping nodes and ppn, or shifting a
  // value between adjacent components, must change the seed.
  const auto base =
      cell_seed(1, "A", coll::Collective::kAllgather, 2, 4, 64);
  EXPECT_NE(base, cell_seed(1, "A", coll::Collective::kAllgather, 4, 2, 64));
  EXPECT_NE(base, cell_seed(1, "B", coll::Collective::kAllgather, 2, 4, 64));
  EXPECT_NE(base, cell_seed(1, "A", coll::Collective::kAlltoall, 2, 4, 64));
  EXPECT_NE(base, cell_seed(1, "A", coll::Collective::kAllgather, 2, 4, 65));
  EXPECT_NE(base, cell_seed(2, "A", coll::Collective::kAllgather, 2, 4, 64));
  EXPECT_EQ(base, cell_seed(1, "A", coll::Collective::kAllgather, 2, 4, 64));
}

TEST(DatasetBuilder, ParallelSweepIsByteIdenticalToSerial) {
  // The tentpole guarantee: records are bit-identical at any thread count.
  // Exact double equality is intentional — the per-cell RNG split makes the
  // noise stream independent of scheduling, not merely close.
  const std::vector<sim::ClusterSpec> clusters = {
      ri(), sim::cluster_by_name("Frontera")};
  BuildOptions serial;
  serial.threads = 1;
  const auto base =
      build_records(clusters, coll::Collective::kAllgather, serial);
  for (const int threads : {2, 8}) {
    BuildOptions opts;
    opts.threads = threads;
    const auto got =
        build_records(clusters, coll::Collective::kAllgather, opts);
    ASSERT_EQ(got.size(), base.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(got[i].cluster, base[i].cluster);
      EXPECT_EQ(got[i].nodes, base[i].nodes);
      EXPECT_EQ(got[i].ppn, base[i].ppn);
      EXPECT_EQ(got[i].msg_bytes, base[i].msg_bytes);
      EXPECT_EQ(got[i].features, base[i].features);
      EXPECT_EQ(got[i].times, base[i].times) << "threads=" << threads
                                             << " record=" << i;
      EXPECT_EQ(got[i].label, base[i].label);
    }
  }
}

/// A deliberately tiny grid so engine-mode tests stay fast: Frontera's
/// hardware at p ∈ {8, 16} with two message sizes (8 cells).
sim::ClusterSpec small_engine_grid() {
  sim::ClusterSpec grid = sim::cluster_by_name("Frontera");
  grid.node_counts = {2, 4};
  grid.ppn_values = {4};
  grid.message_sizes = {256, 4096};
  return grid;
}

BuildOptions engine_options() {
  BuildOptions options;
  options.cost_source = CostSource::kEngine;
  options.iterations = 2;
  return options;
}

TEST(DatasetBuilder, CostSourceNamesRoundTrip) {
  EXPECT_EQ(to_string(CostSource::kAnalytic), "analytic");
  EXPECT_EQ(to_string(CostSource::kEngine), "engine");
  EXPECT_EQ(cost_source_from_string("analytic"), CostSource::kAnalytic);
  EXPECT_EQ(cost_source_from_string("engine"), CostSource::kEngine);
  EXPECT_THROW(cost_source_from_string("exact"), ConfigError);
}

TEST(DatasetBuilder, MeasurementSeedSeparatesComponents) {
  const auto base = measurement_seed(7, 1, 0);
  EXPECT_NE(base, measurement_seed(8, 1, 0));
  EXPECT_NE(base, measurement_seed(7, 2, 0));
  EXPECT_NE(base, measurement_seed(7, 1, 1));
  EXPECT_NE(base, measurement_seed(7, 0, 1));  // positional, not summed
  EXPECT_EQ(base, measurement_seed(7, 1, 0));
}

TEST(DatasetBuilder, SweepCellContextNamesTheCell) {
  const std::string context = sweep_cell_context(
      "Frontera", coll::Collective::kAlltoall, 4, 28, 65536);
  EXPECT_NE(context.find("Frontera"), std::string::npos);
  EXPECT_NE(context.find("alltoall"), std::string::npos);
  EXPECT_NE(context.find("nodes=4"), std::string::npos);
  EXPECT_NE(context.find("ppn=28"), std::string::npos);
  EXPECT_NE(context.find("msg_bytes=65536"), std::string::npos);
}

TEST(DatasetBuilder, EngineRecordsBitIdenticalAcrossThreads) {
  // The tentpole acceptance: engine-mode records (measurement jitter comes
  // from measurement_seed, a pure function of the cell) are bit-identical
  // at 1, 2, and 8 threads.
  const std::vector<sim::ClusterSpec> clusters = {small_engine_grid()};
  BuildOptions serial = engine_options();
  serial.threads = 1;
  const auto base =
      build_records(clusters, coll::Collective::kAlltoall, serial);
  for (const int threads : {2, 8}) {
    BuildOptions opts = engine_options();
    opts.threads = threads;
    const auto got =
        build_records(clusters, coll::Collective::kAlltoall, opts);
    ASSERT_EQ(got.size(), base.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(got[i].times, base[i].times)
          << "threads=" << threads << " record=" << i;
      EXPECT_EQ(got[i].label, base[i].label);
    }
  }
}

TEST(DatasetBuilder, PruningSkipsMeasurements) {
  const std::vector<sim::ClusterSpec> clusters = {small_engine_grid()};
  BuildOptions options = engine_options();
  options.prune_topk = 1;
  options.prune_epsilon = 0.0;
  BuildStats stats;
  const auto records =
      build_records(clusters, coll::Collective::kAlltoall, options, stats);
  EXPECT_EQ(stats.cells, records.size());
  EXPECT_GT(stats.pruned_evals, 0u);
  EXPECT_EQ(stats.epsilon_evals, 0u);
  EXPECT_EQ(stats.prune_mispredictions, 0u);  // audit off
  for (const auto& rec : records) {
    std::size_t finite = 0;
    for (const double t : rec.times) finite += std::isfinite(t);
    // Top-1 plus any analytic ties; strictly fewer than the 5 alltoall
    // algorithms, so something was provably skipped.
    EXPECT_GE(finite, 1u);
    EXPECT_LT(finite, rec.times.size());
  }
}

TEST(DatasetBuilder, PruningKeepsSharedMeasurementsBitIdentical) {
  // Pruning must never perturb the measurements it keeps: every finite
  // entry of a pruned build equals the exhaustive build's entry exactly.
  const std::vector<sim::ClusterSpec> clusters = {small_engine_grid()};
  BuildOptions exhaustive = engine_options();
  exhaustive.prune_topk = 0;
  const auto base =
      build_records(clusters, coll::Collective::kAlltoall, exhaustive);
  BuildOptions pruned = engine_options();
  pruned.prune_topk = 2;
  pruned.prune_epsilon = 0.25;
  const auto got =
      build_records(clusters, coll::Collective::kAlltoall, pruned);
  ASSERT_EQ(got.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t a = 0; a < base[i].times.size(); ++a) {
      if (std::isfinite(got[i].times[a])) {
        EXPECT_EQ(got[i].times[a], base[i].times[a])
            << "record=" << i << " algorithm=" << a;
      }
    }
  }
}

TEST(DatasetBuilder, FaultPlanForcesExhaustiveEngineMeasurement) {
  // The acceptance criterion: a non-empty FaultPlan bypasses pruning (the
  // analytic ranking is fault-blind), so every valid algorithm is measured
  // even with an aggressive top-k.
  const std::vector<sim::ClusterSpec> clusters = {small_engine_grid()};
  BuildOptions options = engine_options();
  options.prune_topk = 1;
  options.prune_epsilon = 0.0;
  options.faults.stragglers.push_back({0, 4.0});
  BuildStats stats;
  const auto records =
      build_records(clusters, coll::Collective::kAlltoall, options, stats);
  EXPECT_EQ(stats.pruned_evals, 0u);
  EXPECT_EQ(stats.epsilon_evals, 0u);
  const auto& algos = coll::algorithms_for(coll::Collective::kAlltoall);
  for (const auto& rec : records) {
    for (std::size_t a = 0; a < algos.size(); ++a) {
      if (coll::algorithm_supports(algos[a], rec.nodes * rec.ppn)) {
        EXPECT_TRUE(std::isfinite(rec.times[a]));
      }
    }
  }
}

TEST(DatasetBuilder, FaultPlanChangesEngineMeasurements) {
  const std::vector<sim::ClusterSpec> clusters = {small_engine_grid()};
  BuildOptions clean = engine_options();
  clean.prune_topk = 0;
  const auto base =
      build_records(clusters, coll::Collective::kAllgather, clean);
  BuildOptions faulted = clean;
  faulted.faults.stragglers.push_back({0, 4.0});
  const auto got =
      build_records(clusters, coll::Collective::kAllgather, faulted);
  ASSERT_EQ(got.size(), base.size());
  bool any_slower = false;
  for (std::size_t i = 0; i < base.size(); ++i) {
    any_slower = any_slower || got[i].times != base[i].times;
  }
  EXPECT_TRUE(any_slower);
}

TEST(DatasetBuilder, AuditMeasuresEverythingAndCountsMispredictions) {
  const std::vector<sim::ClusterSpec> clusters = {small_engine_grid()};
  BuildOptions audit = engine_options();
  audit.prune_topk = 1;
  audit.prune_epsilon = 0.0;
  audit.prune_audit = true;
  BuildStats stats;
  const auto records =
      build_records(clusters, coll::Collective::kAlltoall, audit, stats);
  // Audit keeps the records exhaustive (labels match the unpruned build)
  // while still tallying the simulated pruning decision.
  BuildOptions exhaustive = engine_options();
  exhaustive.prune_topk = 0;
  const auto base =
      build_records(clusters, coll::Collective::kAlltoall, exhaustive);
  ASSERT_EQ(records.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(records[i].times, base[i].times);
    EXPECT_EQ(records[i].label, base[i].label);
  }
  EXPECT_GT(stats.pruned_evals, 0u);
  EXPECT_LE(stats.prune_mispredictions, stats.cells);
}

TEST(DatasetBuilder, AnalyticCostSourceRejectsFaultPlan) {
  BuildOptions options;  // kAnalytic
  options.faults.stragglers.push_back({0, 2.0});
  EXPECT_THROW(
      build_cluster_records(ri(), coll::Collective::kAllgather, options),
      TuningError);
}

TEST(DatasetBuilder, RecordsJsonRoundTrip) {
  // Frontera's sweep includes ppn=28 worlds, so some times are +inf
  // (invalid algorithms) and the round trip covers the null encoding.
  BuildOptions options;
  options.iterations = 2;
  const auto records = build_cluster_records(
      sim::cluster_by_name("Frontera"), coll::Collective::kAlltoall, options);
  const Json doc = records_to_json(records, coll::Collective::kAlltoall);
  const auto parsed = records_from_json(doc);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].cluster, records[i].cluster);
    EXPECT_EQ(parsed[i].nodes, records[i].nodes);
    EXPECT_EQ(parsed[i].ppn, records[i].ppn);
    EXPECT_EQ(parsed[i].msg_bytes, records[i].msg_bytes);
    EXPECT_EQ(parsed[i].collective, records[i].collective);
    EXPECT_EQ(parsed[i].features, records[i].features);
    EXPECT_EQ(parsed[i].times, records[i].times);
    EXPECT_EQ(parsed[i].label, records[i].label);
  }
}

TEST(DatasetBuilder, LabelsAreDiverseAcrossSweep) {
  // Over a full sweep of a multi-node cluster, more than one algorithm
  // must win somewhere (otherwise there is nothing to learn).
  const auto records = build_cluster_records(
      sim::cluster_by_name("Frontera"), coll::Collective::kAllgather, {});
  std::set<int> labels;
  for (const auto& rec : records) labels.insert(rec.label);
  EXPECT_GE(labels.size(), 2u);
}

}  // namespace
}  // namespace pml::core
