// Unit tests for the serve layer: cache policy, protocol round trips,
// error-taxonomy mapping, degradation, and the checksum+fingerprint+sweep
// cache keying. Concurrency is exercised separately by the hammer suite
// (tests/integration/serve_hammer_test.cpp).
#include "core/serve.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/artifact.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/version.hpp"
#include "core/framework.hpp"

namespace pml::core {
namespace {

PmlFramework& trained() {
  static PmlFramework fw = [] {
    TrainOptions options;
    options.forest.n_trees = 8;
    const std::vector<sim::ClusterSpec> clusters = {
        sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
    return PmlFramework::train(clusters, options);
  }();
  return fw;
}

std::shared_ptr<const ServedTable> entry_named(const std::string& tag) {
  auto entry = std::make_shared<ServedTable>();
  entry->json = tag;
  return entry;
}

TEST(ServeCache, LruEvictsLeastRecentlyUsedPerShard) {
  ServeCache cache(/*shards=*/1, /*shard_capacity=*/2);
  cache.put("a", entry_named("a"));
  cache.put("b", entry_named("b"));
  ASSERT_NE(cache.get("a"), nullptr);  // refresh a: b is now LRU
  cache.put("c", entry_named("c"));
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServeCache, PutReplacesExistingEntry) {
  ServeCache cache(4, 2);
  cache.put("k", entry_named("old"));
  cache.put("k", entry_named("new"));
  ASSERT_NE(cache.get("k"), nullptr);
  EXPECT_EQ(cache.get("k")->json, "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeOptions, ValidateRejectsBadShapes) {
  ServeOptions options;
  options.shards = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  options.shards = 1;
  options.shard_capacity = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  options.shard_capacity = 1;
  options.micro_batch = 0;
  EXPECT_THROW(options.validate(), ConfigError);
}

TEST(ServeOptions, ValidateRejectsBadLimits) {
  ServeOptions options;
  options.max_line_bytes = 8;
  EXPECT_THROW(options.validate(), ConfigError);
  options.max_line_bytes = 1 << 20;
  options.max_connections = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  options.max_connections = 1;
  options.read_timeout_ms = -1;
  EXPECT_THROW(options.validate(), ConfigError);
  options.read_timeout_ms = 0;  // 0 = deadlines disabled, valid
  options.queue_limit = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  options.queue_limit = 1;
  EXPECT_NO_THROW(options.validate());
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pml_serve_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    write_artifact(model_path(), trained().to_json(), "model");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string model_path() const { return (dir_ / "model.json").string(); }

  /// Synchronous engine over a small fixed sweep: every reply is
  /// deterministic and misses compile inline.
  ServeOptions options() const {
    ServeOptions o;
    o.model_path = model_path();
    o.async_compile = false;
    o.compile =
        CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
    return o;
  }

  static Json reply_of(ServeEngine& engine, const std::string& request) {
    const std::string reply = engine.handle_line(request);
    return Json::parse(reply);
  }

  std::filesystem::path dir_;
};

TEST_F(ServeTest, PingReportsModelHealth) {
  ServeEngine engine(options());
  const Json pong = reply_of(engine, R"({"op":"ping"})");
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_TRUE(pong.at("model_loaded").as_bool());
}

TEST_F(ServeTest, MalformedJsonMapsToJsonErrorStatus) {
  ServeEngine engine(options());
  const Json reply = reply_of(engine, "{not json");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("code").as_string(), "json");
  EXPECT_EQ(reply.at("status").as_int(), exit_status(ErrorCode::kJson));
}

TEST_F(ServeTest, UnknownOpAndMissingFieldsMapToConfigError) {
  ServeEngine engine(options());
  for (const char* request :
       {R"({"op":"frobnicate"})", R"({"op":"select","cluster":"MRI"})",
        R"({"cluster":"MRI"})", R"({"op":"select","cluster":"Nope",
            "collective":"allgather","nodes":2,"ppn":16,"msg_bytes":64})"}) {
    const Json reply = reply_of(engine, request);
    EXPECT_FALSE(reply.at("ok").as_bool()) << request;
    EXPECT_EQ(reply.at("code").as_string(), "config") << request;
    EXPECT_EQ(reply.at("status").as_int(), exit_status(ErrorCode::kConfig));
  }
}

TEST_F(ServeTest, SelectMissAnswersFromModelThenHitsTheCompiledTable) {
  ServeEngine engine(options());
  const std::string request =
      R"({"op":"select","cluster":"MRI","collective":"alltoall",)"
      R"("nodes":4,"ppn":16,"msg_bytes":65536})";
  const Json first = reply_of(engine, request);
  ASSERT_TRUE(first.at("ok").as_bool());
  EXPECT_EQ(first.at("cache").as_string(), "miss");
  EXPECT_EQ(first.at("source").as_string(), "model");
  EXPECT_FALSE(first.at("degraded").as_bool());

  const Json second = reply_of(engine, request);
  ASSERT_TRUE(second.at("ok").as_bool());
  EXPECT_EQ(second.at("cache").as_string(), "hit");
  EXPECT_EQ(second.at("source").as_string(), "table");
  // Same model, same sweep: the miss-path inference and the hit-path table
  // lookup agree on the algorithm.
  EXPECT_EQ(second.at("algorithm").as_string(),
            first.at("algorithm").as_string());

  const Json stats = reply_of(engine, R"({"op":"stats"})");
  EXPECT_EQ(stats.at("cache_hits").as_int(), 1);
  EXPECT_EQ(stats.at("cache_misses").as_int(), 1);
  EXPECT_EQ(stats.at("compiles").as_int(), 1);
  EXPECT_EQ(stats.at("tables_cached").as_int(), 1);
}

TEST_F(ServeTest, MicroBatchKnobDoesNotChangeAnswers) {
  // micro_batch=1 bypasses the coalescer entirely; the default routes
  // every uncached model answer through select_batch (a batch of one when
  // traffic is serial). The batched kernel is bit-identical to scalar
  // inference, so the two engines must produce identical replies,
  // request for request.
  ServeOptions scalar_options = options();
  scalar_options.micro_batch = 1;
  ServeEngine batched(options());
  ServeEngine scalar(scalar_options);
  for (const char* collective : {"allgather", "alltoall"}) {
    for (const std::uint64_t msg : {1024u, 65536u}) {
      const std::string request =
          std::string(R"({"op":"select","cluster":"MRI","collective":")") +
          collective + R"(","nodes":4,"ppn":16,"msg_bytes":)" +
          std::to_string(msg) + "}";
      EXPECT_EQ(batched.handle_line(request), scalar.handle_line(request))
          << request;
    }
  }
}

TEST_F(ServeTest, SelectWithWaitReturnsTheCompiledAnswer) {
  ServeEngine engine(options());
  const Json reply = reply_of(
      engine,
      R"({"op":"select","cluster":"MRI","collective":"allgather",)"
      R"("nodes":2,"ppn":16,"msg_bytes":1024,"wait":true})");
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("cache").as_string(), "compiled");
  EXPECT_EQ(reply.at("source").as_string(), "table");
  EXPECT_FALSE(reply.at("degraded").as_bool());
}

TEST_F(ServeTest, TableRepliesAreByteStableAcrossRequests) {
  ServeEngine engine(options());
  const std::string request = R"({"op":"table","cluster":"MRI","wait":true})";
  engine.handle_line(request);  // warm: compiles and caches ("compiled")
  const std::string first = engine.handle_line(request);
  const std::string second = engine.handle_line(request);
  EXPECT_EQ(first, second);  // cache hits splice the same serialized bytes

  const Json reply = Json::parse(second);
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("cache").as_string(), "hit");
  const TuningTable table = TuningTable::from_json(reply.at("table"));
  EXPECT_TRUE(table.matches_cluster(sim::cluster_by_name("MRI")));
  EXPECT_EQ(table.lookup(coll::Collective::kAllgather, 2, 16, 1024),
            trained().compile_for(sim::cluster_by_name("MRI"),
                                  options().compile)
                .lookup(coll::Collective::kAllgather, 2, 16, 1024));
}

TEST_F(ServeTest, NoModelServesHeuristicsMarkedDegraded) {
  ServeOptions o = options();
  o.model_path.clear();
  ServeEngine engine(o);
  EXPECT_FALSE(engine.model_loaded());

  const Json select = reply_of(
      engine,
      R"({"op":"select","cluster":"MRI","collective":"allgather",)"
      R"("nodes":2,"ppn":16,"msg_bytes":1024})");
  ASSERT_TRUE(select.at("ok").as_bool());
  EXPECT_TRUE(select.at("degraded").as_bool());
  EXPECT_EQ(select.at("source").as_string(), "heuristic");
  // Short names can be ambiguous across collectives ("bruck"): qualify
  // with the request's collective to round-trip the reply.
  EXPECT_NO_THROW(coll::algorithm_from_string(
      "allgather:" + select.at("algorithm").as_string()));

  const Json table = reply_of(engine, R"({"op":"table","cluster":"MRI"})");
  ASSERT_TRUE(table.at("ok").as_bool());
  EXPECT_TRUE(table.at("degraded").as_bool());
  EXPECT_EQ(table.at("source").as_string(), "heuristic");
  // Heuristic tables are transient: never cached.
  EXPECT_EQ(engine.cached_tables(), 0u);
}

TEST_F(ServeTest, InlineClusterSpecsAreKeyedByHardwareFingerprint) {
  ServeEngine engine(options());
  const Json base = sim::cluster_by_name("MRI").to_json();
  Json respeced = base;
  respeced["hardware"]["cores"] = 96;  // same name, different silicon
  respeced["hardware"]["mem_bw_gbs"] = 700.0;

  const auto request = [](const Json& cluster) {
    Json r = Json::object();
    r["op"] = "table";
    r["cluster"] = cluster;
    r["wait"] = true;
    return r.dump();
  };
  const Json first = Json::parse(engine.handle_line(request(base)));
  const Json second = Json::parse(engine.handle_line(request(respeced)));
  ASSERT_TRUE(first.at("ok").as_bool());
  ASSERT_TRUE(second.at("ok").as_bool());
  // Two compiles, two cached tables: the same-named respec was not served
  // the original cluster's table.
  EXPECT_EQ(engine.cached_tables(), 2u);
  const Json stats = reply_of(engine, R"({"op":"stats"})");
  EXPECT_EQ(stats.at("compiles").as_int(), 2);
}

TEST_F(ServeTest, HealthReportsBreakerQueueRungsAndVersion) {
  ServeEngine engine(options());
  const Json health = reply_of(engine, R"({"op":"health"})");
  ASSERT_TRUE(health.at("ok").as_bool());
  EXPECT_EQ(health.at("version").as_string(), kPmlVersion);
  EXPECT_EQ(health.at("breaker").as_string(), "closed");
  EXPECT_EQ(health.at("queue_depth").as_int(), 0);
  EXPECT_EQ(health.at("connections").as_int(), 0);
  EXPECT_FALSE(health.at("draining").as_bool());
  // Degradation-ladder rungs: no table compiled yet, model loaded,
  // heuristic always on the menu.
  EXPECT_FALSE(health.at("rungs").at("table").as_bool());
  EXPECT_TRUE(health.at("rungs").at("model").as_bool());
  EXPECT_TRUE(health.at("rungs").at("heuristic").as_bool());
  // The artifact schema matrix rides along so ops can line the daemon up
  // against `pml doctor` verdicts.
  EXPECT_EQ(health.at("artifacts").at("model").at("writes").as_string(),
            "pml-mpi-model-v1");
  EXPECT_EQ(
      health.at("artifacts").at("tuning-table").at("reads").as_array().size(),
      2u);

  // ping and stats carry the release string too.
  EXPECT_EQ(reply_of(engine, R"({"op":"ping"})").at("version").as_string(),
            kPmlVersion);
  EXPECT_EQ(reply_of(engine, R"({"op":"stats"})").at("version").as_string(),
            kPmlVersion);
}

TEST_F(ServeTest, QueueFullMissesAreShedToHeuristic) {
  ServeOptions o = options();
  o.async_compile = true;
  o.queue_limit = 1;
  std::atomic<bool> release{false};
  o.compile_fault = [&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  {
    ServeEngine engine(o);
    // First miss occupies the whole pending-compile queue (its compile is
    // parked on compile_fault) and answers from the model rung meanwhile.
    const Json first = reply_of(
        engine,
        R"({"op":"select","cluster":"MRI","collective":"allgather",)"
        R"("nodes":2,"ppn":16,"msg_bytes":1024})");
    ASSERT_TRUE(first.at("ok").as_bool());
    EXPECT_EQ(first.at("source").as_string(), "model");

    // A second miss for a different key would need a second job: shed.
    const Json shed = reply_of(
        engine,
        R"({"op":"select","cluster":"RI","collective":"allgather",)"
        R"("nodes":2,"ppn":16,"msg_bytes":1024})");
    ASSERT_TRUE(shed.at("ok").as_bool());
    EXPECT_EQ(shed.at("cache").as_string(), "miss");
    EXPECT_EQ(shed.at("source").as_string(), "shed");
    EXPECT_TRUE(shed.at("degraded").as_bool());

    // Same key as the parked compile: joins the existing job, not shed.
    const Json joined = reply_of(
        engine,
        R"({"op":"select","cluster":"MRI","collective":"alltoall",)"
        R"("nodes":2,"ppn":16,"msg_bytes":1024})");
    ASSERT_TRUE(joined.at("ok").as_bool());
    EXPECT_EQ(joined.at("source").as_string(), "model");

    // Shed table misses carry the same source tag.
    const Json shed_table =
        reply_of(engine, R"({"op":"table","cluster":"Rome"})");
    ASSERT_TRUE(shed_table.at("ok").as_bool());
    EXPECT_EQ(shed_table.at("source").as_string(), "shed");
    EXPECT_TRUE(shed_table.at("degraded").as_bool());

    const Json stats = reply_of(engine, R"({"op":"stats"})");
    EXPECT_EQ(stats.at("shed").as_int(), 2);
    EXPECT_EQ(stats.at("queue_depth").as_int(), 1);
    release.store(true);
    engine.drain();
  }
}

TEST_F(ServeTest, WaitDeadlineExpiresToTheCurrentRung) {
  ServeOptions o = options();
  o.async_compile = true;
  std::atomic<bool> release{false};
  o.compile_fault = [&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  {
    ServeEngine engine(o);
    const std::string request =
        R"({"op":"select","cluster":"MRI","collective":"allgather",)"
        R"("nodes":2,"ppn":16,"msg_bytes":1024)";
    const Json expired =
        reply_of(engine, request + R"(,"wait":true,"deadline_ms":25})");
    ASSERT_TRUE(expired.at("ok").as_bool());
    EXPECT_EQ(expired.at("deadline").as_string(), "expired");
    EXPECT_EQ(expired.at("cache").as_string(), "miss");
    // Model rung answers once the wait lapses — still a full-quality reply.
    EXPECT_EQ(expired.at("source").as_string(), "model");
    EXPECT_FALSE(expired.at("degraded").as_bool());

    const Json stats = reply_of(engine, R"({"op":"stats"})");
    EXPECT_EQ(stats.at("deadline_expired").as_int(), 1);

    // The compile it stopped waiting for still lands.
    release.store(true);
    engine.drain();
    const Json after = reply_of(engine, request + "}");
    EXPECT_EQ(after.at("cache").as_string(), "hit");
  }
}

TEST_F(ServeTest, NegativeDeadlineIsAConfigError) {
  ServeEngine engine(options());
  const Json reply = reply_of(
      engine,
      R"({"op":"select","cluster":"MRI","collective":"allgather",)"
      R"("nodes":2,"ppn":16,"msg_bytes":1024,"wait":true,"deadline_ms":-5})");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("code").as_string(), "config");
}

TEST_F(ServeTest, CompileBreakerOpensServesHeuristicAndProbesBack) {
  ServeOptions o = options();
  o.async_compile = false;
  o.breaker.failure_threshold = 2;
  o.breaker.open_seconds = 10.0;
  double now = 0.0;
  o.breaker.now = [&now] { return now; };
  std::atomic<bool> fail{true};
  std::atomic<int> attempts{0};
  o.compile_fault = [&fail, &attempts] {
    attempts.fetch_add(1);
    if (fail.load()) throw MlError("injected compile fault");
  };
  ServeEngine engine(o);
  const auto select = [](const char* cluster, const char* extra = "") {
    return std::string(R"({"op":"select","cluster":")") + cluster +
           R"(","collective":"allgather","nodes":2,"ppn":16,)"
           R"("msg_bytes":1024)" + extra + "}";
  };

  // Two consecutive compile failures (distinct keys => distinct jobs)
  // reach the threshold and open the breaker. Both replies still answer
  // from the model rung: a failed *compile* does not degrade *inference*.
  const Json first = reply_of(engine, select("MRI", R"(,"wait":true)"));
  ASSERT_TRUE(first.at("ok").as_bool());
  EXPECT_EQ(first.at("source").as_string(), "model");
  reply_of(engine, select("RI", R"(,"wait":true)"));
  EXPECT_EQ(engine.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(attempts.load(), 2);

  // While open, a fresh miss doesn't even attempt the compile: admission
  // rejects it and the reply degrades with an explicit breaker marker.
  const Json rejected = reply_of(engine, select("Rome"));
  ASSERT_TRUE(rejected.at("ok").as_bool());
  EXPECT_EQ(rejected.at("breaker").as_string(), "open");
  EXPECT_EQ(rejected.at("source").as_string(), "heuristic");
  EXPECT_TRUE(rejected.at("degraded").as_bool());
  EXPECT_EQ(attempts.load(), 2);
  const Json stats = reply_of(engine, R"({"op":"stats"})");
  EXPECT_EQ(stats.at("compile_failures").as_int(), 2);
  EXPECT_EQ(stats.at("breaker").as_string(), "open");

  // Window expires, the fault clears: the next miss is the half-open
  // probe, its success closes the breaker and serves the compiled table.
  fail.store(false);
  now = 11.0;
  const Json probed = reply_of(engine, select("Rome", R"(,"wait":true)"));
  ASSERT_TRUE(probed.at("ok").as_bool());
  EXPECT_EQ(probed.at("cache").as_string(), "compiled");
  EXPECT_EQ(engine.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(attempts.load(), 3);
}

TEST_F(ServeTest, DrainingRejectsNewWorkButKeepsHealthOps) {
  ServeEngine engine(options());
  engine.begin_drain();
  const Json select = reply_of(
      engine,
      R"({"op":"select","cluster":"MRI","collective":"allgather",)"
      R"("nodes":2,"ppn":16,"msg_bytes":1024})");
  EXPECT_FALSE(select.at("ok").as_bool());
  EXPECT_TRUE(select.at("draining").as_bool());
  EXPECT_EQ(select.at("code").as_string(), "config");
  const Json table = reply_of(engine, R"({"op":"table","cluster":"MRI"})");
  EXPECT_FALSE(table.at("ok").as_bool());

  EXPECT_TRUE(reply_of(engine, R"({"op":"ping"})").at("ok").as_bool());
  const Json health = reply_of(engine, R"({"op":"health"})");
  EXPECT_TRUE(health.at("ok").as_bool());
  EXPECT_TRUE(health.at("draining").as_bool());
}

TEST_F(ServeTest, StdioTransportRoundTrips) {
  ServeEngine engine(options());
  const std::string in_path = (dir_ / "in.txt").string();
  const std::string out_path = (dir_ / "out.txt").string();
  write_file(in_path,
             "{\"op\":\"ping\"}\n\n{\"op\":\"stats\"}\n");  // blank line skipped
  std::FILE* in = std::fopen(in_path.c_str(), "r");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  serve_stdio(engine, in, out);
  std::fclose(in);
  std::fclose(out);

  const std::vector<std::string> lines = split(read_file(out_path), '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(Json::parse(lines[0]).at("ok").as_bool());
  const Json stats = Json::parse(lines[1]);
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("requests").as_int(), 2);
}

TEST_F(ServeTest, TcpTransportServesConcurrentConnections) {
  ServeEngine engine(options());
  TcpServer server(engine);
  const int port = server.start(0);
  ASSERT_GT(port, 0);

  // Raw-socket client kept local to the test: the protocol is plain
  // newline-delimited JSON over TCP, nothing more.
  const auto query = [port](const std::string& line) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
    const std::string payload = line + "\n";
    EXPECT_EQ(::send(fd, payload.data(), payload.size(), 0),
              static_cast<ssize_t>(payload.size()));
    std::string reply;
    char c;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n') reply.push_back(c);
    ::close(fd);
    return reply;
  };

  const Json pong = Json::parse(query(R"({"op":"ping"})"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  const Json select = Json::parse(
      query(R"({"op":"select","cluster":"MRI","collective":"allgather",)"
            R"("nodes":2,"ppn":16,"msg_bytes":1024,"wait":true})"));
  EXPECT_TRUE(select.at("ok").as_bool());
  server.stop();
}

}  // namespace
}  // namespace pml::core
