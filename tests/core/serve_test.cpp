// Unit tests for the serve layer: cache policy, protocol round trips,
// error-taxonomy mapping, degradation, and the checksum+fingerprint+sweep
// cache keying. Concurrency is exercised separately by the hammer suite
// (tests/integration/serve_hammer_test.cpp).
#include "core/serve.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/artifact.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/framework.hpp"

namespace pml::core {
namespace {

PmlFramework& trained() {
  static PmlFramework fw = [] {
    TrainOptions options;
    options.forest.n_trees = 8;
    const std::vector<sim::ClusterSpec> clusters = {
        sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
    return PmlFramework::train(clusters, options);
  }();
  return fw;
}

std::shared_ptr<const ServedTable> entry_named(const std::string& tag) {
  auto entry = std::make_shared<ServedTable>();
  entry->json = tag;
  return entry;
}

TEST(ServeCache, LruEvictsLeastRecentlyUsedPerShard) {
  ServeCache cache(/*shards=*/1, /*shard_capacity=*/2);
  cache.put("a", entry_named("a"));
  cache.put("b", entry_named("b"));
  ASSERT_NE(cache.get("a"), nullptr);  // refresh a: b is now LRU
  cache.put("c", entry_named("c"));
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServeCache, PutReplacesExistingEntry) {
  ServeCache cache(4, 2);
  cache.put("k", entry_named("old"));
  cache.put("k", entry_named("new"));
  ASSERT_NE(cache.get("k"), nullptr);
  EXPECT_EQ(cache.get("k")->json, "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeOptions, ValidateRejectsBadShapes) {
  ServeOptions options;
  options.shards = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  options.shards = 1;
  options.shard_capacity = 0;
  EXPECT_THROW(options.validate(), ConfigError);
  options.shard_capacity = 1;
  options.micro_batch = 0;
  EXPECT_THROW(options.validate(), ConfigError);
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pml_serve_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    write_artifact(model_path(), trained().to_json(), "model");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string model_path() const { return (dir_ / "model.json").string(); }

  /// Synchronous engine over a small fixed sweep: every reply is
  /// deterministic and misses compile inline.
  ServeOptions options() const {
    ServeOptions o;
    o.model_path = model_path();
    o.async_compile = false;
    o.compile =
        CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
    return o;
  }

  static Json reply_of(ServeEngine& engine, const std::string& request) {
    const std::string reply = engine.handle_line(request);
    return Json::parse(reply);
  }

  std::filesystem::path dir_;
};

TEST_F(ServeTest, PingReportsModelHealth) {
  ServeEngine engine(options());
  const Json pong = reply_of(engine, R"({"op":"ping"})");
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_TRUE(pong.at("model_loaded").as_bool());
}

TEST_F(ServeTest, MalformedJsonMapsToJsonErrorStatus) {
  ServeEngine engine(options());
  const Json reply = reply_of(engine, "{not json");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("code").as_string(), "json");
  EXPECT_EQ(reply.at("status").as_int(), exit_status(ErrorCode::kJson));
}

TEST_F(ServeTest, UnknownOpAndMissingFieldsMapToConfigError) {
  ServeEngine engine(options());
  for (const char* request :
       {R"({"op":"frobnicate"})", R"({"op":"select","cluster":"MRI"})",
        R"({"cluster":"MRI"})", R"({"op":"select","cluster":"Nope",
            "collective":"allgather","nodes":2,"ppn":16,"msg_bytes":64})"}) {
    const Json reply = reply_of(engine, request);
    EXPECT_FALSE(reply.at("ok").as_bool()) << request;
    EXPECT_EQ(reply.at("code").as_string(), "config") << request;
    EXPECT_EQ(reply.at("status").as_int(), exit_status(ErrorCode::kConfig));
  }
}

TEST_F(ServeTest, SelectMissAnswersFromModelThenHitsTheCompiledTable) {
  ServeEngine engine(options());
  const std::string request =
      R"({"op":"select","cluster":"MRI","collective":"alltoall",)"
      R"("nodes":4,"ppn":16,"msg_bytes":65536})";
  const Json first = reply_of(engine, request);
  ASSERT_TRUE(first.at("ok").as_bool());
  EXPECT_EQ(first.at("cache").as_string(), "miss");
  EXPECT_EQ(first.at("source").as_string(), "model");
  EXPECT_FALSE(first.at("degraded").as_bool());

  const Json second = reply_of(engine, request);
  ASSERT_TRUE(second.at("ok").as_bool());
  EXPECT_EQ(second.at("cache").as_string(), "hit");
  EXPECT_EQ(second.at("source").as_string(), "table");
  // Same model, same sweep: the miss-path inference and the hit-path table
  // lookup agree on the algorithm.
  EXPECT_EQ(second.at("algorithm").as_string(),
            first.at("algorithm").as_string());

  const Json stats = reply_of(engine, R"({"op":"stats"})");
  EXPECT_EQ(stats.at("cache_hits").as_int(), 1);
  EXPECT_EQ(stats.at("cache_misses").as_int(), 1);
  EXPECT_EQ(stats.at("compiles").as_int(), 1);
  EXPECT_EQ(stats.at("tables_cached").as_int(), 1);
}

TEST_F(ServeTest, MicroBatchKnobDoesNotChangeAnswers) {
  // micro_batch=1 bypasses the coalescer entirely; the default routes
  // every uncached model answer through select_batch (a batch of one when
  // traffic is serial). The batched kernel is bit-identical to scalar
  // inference, so the two engines must produce identical replies,
  // request for request.
  ServeOptions scalar_options = options();
  scalar_options.micro_batch = 1;
  ServeEngine batched(options());
  ServeEngine scalar(scalar_options);
  for (const char* collective : {"allgather", "alltoall"}) {
    for (const std::uint64_t msg : {1024u, 65536u}) {
      const std::string request =
          std::string(R"({"op":"select","cluster":"MRI","collective":")") +
          collective + R"(","nodes":4,"ppn":16,"msg_bytes":)" +
          std::to_string(msg) + "}";
      EXPECT_EQ(batched.handle_line(request), scalar.handle_line(request))
          << request;
    }
  }
}

TEST_F(ServeTest, SelectWithWaitReturnsTheCompiledAnswer) {
  ServeEngine engine(options());
  const Json reply = reply_of(
      engine,
      R"({"op":"select","cluster":"MRI","collective":"allgather",)"
      R"("nodes":2,"ppn":16,"msg_bytes":1024,"wait":true})");
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("cache").as_string(), "compiled");
  EXPECT_EQ(reply.at("source").as_string(), "table");
  EXPECT_FALSE(reply.at("degraded").as_bool());
}

TEST_F(ServeTest, TableRepliesAreByteStableAcrossRequests) {
  ServeEngine engine(options());
  const std::string request = R"({"op":"table","cluster":"MRI","wait":true})";
  engine.handle_line(request);  // warm: compiles and caches ("compiled")
  const std::string first = engine.handle_line(request);
  const std::string second = engine.handle_line(request);
  EXPECT_EQ(first, second);  // cache hits splice the same serialized bytes

  const Json reply = Json::parse(second);
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("cache").as_string(), "hit");
  const TuningTable table = TuningTable::from_json(reply.at("table"));
  EXPECT_TRUE(table.matches_cluster(sim::cluster_by_name("MRI")));
  EXPECT_EQ(table.lookup(coll::Collective::kAllgather, 2, 16, 1024),
            trained().compile_for(sim::cluster_by_name("MRI"),
                                  options().compile)
                .lookup(coll::Collective::kAllgather, 2, 16, 1024));
}

TEST_F(ServeTest, NoModelServesHeuristicsMarkedDegraded) {
  ServeOptions o = options();
  o.model_path.clear();
  ServeEngine engine(o);
  EXPECT_FALSE(engine.model_loaded());

  const Json select = reply_of(
      engine,
      R"({"op":"select","cluster":"MRI","collective":"allgather",)"
      R"("nodes":2,"ppn":16,"msg_bytes":1024})");
  ASSERT_TRUE(select.at("ok").as_bool());
  EXPECT_TRUE(select.at("degraded").as_bool());
  EXPECT_EQ(select.at("source").as_string(), "heuristic");
  // Short names can be ambiguous across collectives ("bruck"): qualify
  // with the request's collective to round-trip the reply.
  EXPECT_NO_THROW(coll::algorithm_from_string(
      "allgather:" + select.at("algorithm").as_string()));

  const Json table = reply_of(engine, R"({"op":"table","cluster":"MRI"})");
  ASSERT_TRUE(table.at("ok").as_bool());
  EXPECT_TRUE(table.at("degraded").as_bool());
  EXPECT_EQ(table.at("source").as_string(), "heuristic");
  // Heuristic tables are transient: never cached.
  EXPECT_EQ(engine.cached_tables(), 0u);
}

TEST_F(ServeTest, InlineClusterSpecsAreKeyedByHardwareFingerprint) {
  ServeEngine engine(options());
  const Json base = sim::cluster_by_name("MRI").to_json();
  Json respeced = base;
  respeced["hardware"]["cores"] = 96;  // same name, different silicon
  respeced["hardware"]["mem_bw_gbs"] = 700.0;

  const auto request = [](const Json& cluster) {
    Json r = Json::object();
    r["op"] = "table";
    r["cluster"] = cluster;
    r["wait"] = true;
    return r.dump();
  };
  const Json first = Json::parse(engine.handle_line(request(base)));
  const Json second = Json::parse(engine.handle_line(request(respeced)));
  ASSERT_TRUE(first.at("ok").as_bool());
  ASSERT_TRUE(second.at("ok").as_bool());
  // Two compiles, two cached tables: the same-named respec was not served
  // the original cluster's table.
  EXPECT_EQ(engine.cached_tables(), 2u);
  const Json stats = reply_of(engine, R"({"op":"stats"})");
  EXPECT_EQ(stats.at("compiles").as_int(), 2);
}

TEST_F(ServeTest, StdioTransportRoundTrips) {
  ServeEngine engine(options());
  const std::string in_path = (dir_ / "in.txt").string();
  const std::string out_path = (dir_ / "out.txt").string();
  write_file(in_path,
             "{\"op\":\"ping\"}\n\n{\"op\":\"stats\"}\n");  // blank line skipped
  std::FILE* in = std::fopen(in_path.c_str(), "r");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  serve_stdio(engine, in, out);
  std::fclose(in);
  std::fclose(out);

  const std::vector<std::string> lines = split(read_file(out_path), '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(Json::parse(lines[0]).at("ok").as_bool());
  const Json stats = Json::parse(lines[1]);
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("requests").as_int(), 2);
}

TEST_F(ServeTest, TcpTransportServesConcurrentConnections) {
  ServeEngine engine(options());
  TcpServer server(engine);
  const int port = server.start(0);
  ASSERT_GT(port, 0);

  // Raw-socket client kept local to the test: the protocol is plain
  // newline-delimited JSON over TCP, nothing more.
  const auto query = [port](const std::string& line) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
    const std::string payload = line + "\n";
    EXPECT_EQ(::send(fd, payload.data(), payload.size(), 0),
              static_cast<ssize_t>(payload.size()));
    std::string reply;
    char c;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n') reply.push_back(c);
    ::close(fd);
    return reply;
  };

  const Json pong = Json::parse(query(R"({"op":"ping"})"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  const Json select = Json::parse(
      query(R"({"op":"select","cluster":"MRI","collective":"allgather",)"
            R"("nodes":2,"ppn":16,"msg_bytes":1024,"wait":true})"));
  EXPECT_TRUE(select.at("ok").as_bool());
  server.stop();
}

}  // namespace
}  // namespace pml::core
