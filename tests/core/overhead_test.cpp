#include "core/overhead.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pml::core {
namespace {

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }

TEST(Overhead, OmbIterationScheduleMatchesOmbDefaults) {
  EXPECT_EQ(omb_iterations(1), omb_iterations(8192));
  EXPECT_GT(omb_iterations(8192), omb_iterations(16384));
  EXPECT_EQ(omb_iterations(1 << 20), omb_iterations(16384));
}

TEST(Overhead, MicrobenchmarkGrowsWithNodes) {
  const auto sizes = sim::power_of_two_sizes(21);
  double prev = 0.0;
  for (const int nodes : {2, 8, 32}) {
    const double hours = microbenchmark_core_hours(
        frontera(), coll::Collective::kAllgather, nodes, 56, sizes);
    EXPECT_GT(hours, prev);
    prev = hours;
  }
}

TEST(Overhead, MicrobenchmarkIsExpensiveAtModestScale) {
  // Paper Fig. 1: already at 32 nodes the exhaustive sweep costs thousands
  // of core-hours — the motivating pain point.
  const auto sizes = sim::power_of_two_sizes(21);
  const double hours = microbenchmark_core_hours(
      frontera(), coll::Collective::kAllgather, 32, 56, sizes);
  EXPECT_GT(hours, 100.0);
}

TEST(Overhead, AcclaimScalesLinearlyInProcesses) {
  const double at128 = acclaim_core_hours(128, 56);
  const double at256 = acclaim_core_hours(256, 56);
  EXPECT_NEAR(at256 / at128, 2.0, 1e-9);
  // 5.62 minutes on 128 x 56 processes.
  EXPECT_NEAR(at128, 5.62 / 60.0 * 128 * 56, 1e-6);
}

TEST(Overhead, PmlIsOrdersOfMagnitudeCheaper) {
  const auto sizes = sim::power_of_two_sizes(21);
  const double micro = microbenchmark_core_hours(
      frontera(), coll::Collective::kAllgather, 32, 56, sizes);
  const double pml = pml_core_hours(1.0);  // a full second of inference
  EXPECT_GT(micro / pml, 1e6);             // paper: ~1e6x at 32 nodes
  const double acclaim = acclaim_core_hours(128, 56);
  EXPECT_GT(acclaim / pml, 1e4);  // paper: ~1e4x at 128 nodes
}

TEST(Overhead, RejectsInvalidInputs) {
  EXPECT_THROW(acclaim_core_hours(0, 56), TuningError);
  EXPECT_THROW(pml_core_hours(-0.1), TuningError);
}

}  // namespace
}  // namespace pml::core
