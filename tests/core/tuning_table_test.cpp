#include "core/tuning_table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pml::core {
namespace {

using coll::Algorithm;
using coll::Collective;
using coll::Selection;

JobTable simple_job(Collective c, int nodes, int ppn) {
  JobTable job;
  job.collective = c;
  job.nodes = nodes;
  job.ppn = ppn;
  job.entries = {
      TuningEntry{1024, Selection::flat(Algorithm::kAgBruck)},
      TuningEntry{65536, Selection::flat(Algorithm::kAgRecursiveDoubling)},
      TuningEntry{1 << 20, Selection::flat(Algorithm::kAgRing)},
  };
  return job;
}

TEST(TuningTable, LookupBySizeRange) {
  TuningTable t("X");
  t.add(simple_job(Collective::kAllgather, 4, 8));
  EXPECT_EQ(t.lookup(Collective::kAllgather, 4, 8, 1), Algorithm::kAgBruck);
  EXPECT_EQ(t.lookup(Collective::kAllgather, 4, 8, 1024), Algorithm::kAgBruck);
  EXPECT_EQ(t.lookup(Collective::kAllgather, 4, 8, 1025),
            Algorithm::kAgRecursiveDoubling);
  EXPECT_EQ(t.lookup(Collective::kAllgather, 4, 8, 1 << 19),
            Algorithm::kAgRing);
  // Beyond the last boundary: the final range is open-ended.
  EXPECT_EQ(t.lookup(Collective::kAllgather, 4, 8, 1u << 30),
            Algorithm::kAgRing);
}

TEST(TuningTable, NearestJobShapeFallback) {
  TuningTable t("X");
  t.add(simple_job(Collective::kAllgather, 4, 8));
  JobTable big = simple_job(Collective::kAllgather, 16, 32);
  big.entries = {TuningEntry{1 << 20, Selection::flat(Algorithm::kAgRing)}};
  t.add(std::move(big));
  // (8, 16) is geometrically nearer to (4,8) than (16,32)? log-distance:
  // (1,1) vs (1,1) — tie broken by first match; just verify no throw and a
  // valid result.
  EXPECT_NO_THROW(t.lookup(Collective::kAllgather, 8, 16, 64));
  // (15, 30) is clearly nearest (16, 32).
  EXPECT_EQ(t.lookup(Collective::kAllgather, 15, 30, 64), Algorithm::kAgRing);
}

TEST(TuningTable, NearestTieBreakIsDeterministicAcrossRegistrationOrder) {
  // (4,8) is equidistant in log-space from (2,8) and (8,8). The fixed
  // tie-break (smaller nodes, then smaller ppn) must win regardless of
  // which job was added first — serve replies depend on lookup being
  // byte-stable for any job ordering.
  JobTable low = simple_job(Collective::kAllgather, 2, 8);
  low.entries = {TuningEntry{1 << 20, Selection::flat(Algorithm::kAgBruck)}};
  JobTable high = simple_job(Collective::kAllgather, 8, 8);
  high.entries = {TuningEntry{1 << 20, Selection::flat(Algorithm::kAgRing)}};

  TuningTable low_first("X");
  low_first.add(low);
  low_first.add(high);
  TuningTable high_first("X");
  high_first.add(high);
  high_first.add(low);

  EXPECT_EQ(low_first.lookup(Collective::kAllgather, 4, 8, 64),
            Algorithm::kAgBruck);
  EXPECT_EQ(high_first.lookup(Collective::kAllgather, 4, 8, 64),
            Algorithm::kAgBruck);

  // Same story on the ppn axis: (4,4) ties between (4,2) and (4,8).
  JobTable narrow = simple_job(Collective::kAlltoall, 4, 2);
  narrow.entries = {TuningEntry{1 << 20, Selection::flat(Algorithm::kAaBruck)}};
  JobTable wide = simple_job(Collective::kAlltoall, 4, 8);
  wide.entries = {TuningEntry{1 << 20, Selection::flat(Algorithm::kAaPairwise)}};
  TuningTable wide_first("X");
  wide_first.add(wide);
  wide_first.add(narrow);
  EXPECT_EQ(wide_first.lookup(Collective::kAlltoall, 4, 4, 64),
            Algorithm::kAaBruck);
}

TEST(TuningTable, MissingCollectiveThrows) {
  TuningTable t("X");
  t.add(simple_job(Collective::kAllgather, 4, 8));
  EXPECT_THROW(t.lookup(Collective::kAlltoall, 4, 8, 64), TuningError);
}

TEST(TuningTable, RejectsMalformedJobTables) {
  TuningTable t("X");
  JobTable empty;
  empty.collective = Collective::kAllgather;
  empty.nodes = 1;
  empty.ppn = 1;
  EXPECT_THROW(t.add(empty), TuningError);

  JobTable unsorted = simple_job(Collective::kAllgather, 1, 1);
  std::swap(unsorted.entries[0], unsorted.entries[2]);
  EXPECT_THROW(t.add(std::move(unsorted)), TuningError);

  t.add(simple_job(Collective::kAllgather, 2, 2));
  EXPECT_THROW(t.add(simple_job(Collective::kAllgather, 2, 2)), TuningError);
}

TEST(TuningTable, HasChecksExactShape) {
  TuningTable t("X");
  t.add(simple_job(Collective::kAllgather, 4, 8));
  EXPECT_TRUE(t.has(Collective::kAllgather, 4, 8));
  EXPECT_FALSE(t.has(Collective::kAllgather, 4, 16));
  EXPECT_FALSE(t.has(Collective::kAlltoall, 4, 8));
}

TEST(TuningTable, JsonRoundTrip) {
  TuningTable t("ClusterY");
  t.add(simple_job(Collective::kAllgather, 4, 8));
  JobTable aa;
  aa.collective = Collective::kAlltoall;
  aa.nodes = 2;
  aa.ppn = 16;
  aa.entries = {TuningEntry{512, Selection::flat(Algorithm::kAaBruck)},
                TuningEntry{1 << 20, Selection::flat(Algorithm::kAaPairwise)}};
  t.add(std::move(aa));

  const TuningTable restored =
      TuningTable::from_json(Json::parse(t.to_json().dump(2)));
  EXPECT_EQ(restored.cluster_name(), "ClusterY");
  EXPECT_EQ(restored.job_count(), 2u);
  EXPECT_EQ(restored.lookup(Collective::kAllgather, 4, 8, 2048),
            Algorithm::kAgRecursiveDoubling);
  EXPECT_EQ(restored.lookup(Collective::kAlltoall, 2, 16, 100),
            Algorithm::kAaBruck);
  EXPECT_EQ(restored.lookup(Collective::kAlltoall, 2, 16, 4096),
            Algorithm::kAaPairwise);
}

TEST(TuningTable, FromJsonRejectsWrongFormat) {
  Json j = Json::object();
  j["format"] = "something-else";
  EXPECT_THROW(TuningTable::from_json(j), TuningError);
  EXPECT_THROW(TuningTable::from_json(Json::object()), TuningError);
}

TEST(TuningTable, GenerateCompressesRanges) {
  // A selector with one crossover must yield exactly two entries per job.
  class TwoRange final : public Selector {
   public:
    std::string name() const override { return "two-range"; }
    coll::Selection select(Collective c, const sim::ClusterSpec&,
                           sim::Topology, std::uint64_t msg) override {
      if (c == Collective::kAllgather) {
        return Selection::flat(msg <= 4096 ? Algorithm::kAgBruck
                                           : Algorithm::kAgRing);
      }
      return Selection::flat(msg <= 4096 ? Algorithm::kAaBruck
                                         : Algorithm::kAaPairwise);
    }
  };
  TwoRange selector;
  const auto& cluster = sim::cluster_by_name("RI");
  const std::vector<int> nodes = {1};
  const std::vector<int> ppns = {4};
  const auto sizes = sim::power_of_two_sizes(21);
  const TuningTable t =
      TuningTable::generate(selector, cluster, nodes, ppns, sizes);
  EXPECT_EQ(t.job_count(), 2u);  // one per collective
  EXPECT_EQ(t.lookup(Collective::kAllgather, 1, 4, 4096),
            Algorithm::kAgBruck);
  EXPECT_EQ(t.lookup(Collective::kAllgather, 1, 4, 8192), Algorithm::kAgRing);

  const Json j = t.to_json();
  // Two compressed entries, not 21.
  EXPECT_EQ(j.at("jobs").as_array()[0].at("entries").as_array().size(), 2u);
}

TEST(TuningTable, ParallelGenerateMatchesSerialByteForByte) {
  OracleSelector oracle;  // stateless -> thread-safe select()
  const auto& ri = sim::cluster_by_name("RI");
  const std::vector<int> nodes = {1, 2, 4};
  const std::vector<int> ppns = {2, 4, 8};
  const auto sizes = sim::power_of_two_sizes(12);
  const auto collectives = coll::paper_collectives();
  const TuningTable serial = TuningTable::generate(oracle, ri, nodes, ppns,
                                                   sizes, collectives, 1);
  for (const int threads : {2, 4, 8}) {
    const TuningTable parallel_table = TuningTable::generate(
        oracle, ri, nodes, ppns, sizes, collectives, threads);
    EXPECT_EQ(parallel_table.to_json().dump(), serial.to_json().dump())
        << "threads=" << threads;
  }
}

TEST(TuningTable, GenerateRecordsSweepAndJsonRoundTripsIt) {
  OracleSelector oracle;
  const auto& ri = sim::cluster_by_name("RI");
  const std::vector<int> nodes = {1, 2};
  const std::vector<int> ppns = {4};
  const auto sizes = sim::power_of_two_sizes(6);
  const TuningTable t =
      TuningTable::generate(oracle, ri, nodes, ppns, sizes);
  EXPECT_TRUE(t.matches_sweep(nodes, ppns, sizes));
  EXPECT_FALSE(t.matches_sweep(std::vector<int>{1}, ppns, sizes));
  EXPECT_FALSE(t.matches_sweep(nodes, ppns, sim::power_of_two_sizes(7)));

  const TuningTable restored =
      TuningTable::from_json(Json::parse(t.to_json().dump()));
  EXPECT_TRUE(restored.matches_sweep(nodes, ppns, sizes));
  EXPECT_EQ(restored.sweep_nodes(), nodes);
  EXPECT_EQ(restored.sweep_ppn(), ppns);
  EXPECT_EQ(restored.sweep_msg_sizes(), sizes);

  // Hand-built tables carry no sweep and never match one.
  TuningTable manual("X");
  manual.add(simple_job(Collective::kAllgather, 4, 8));
  EXPECT_FALSE(manual.matches_sweep(nodes, ppns, sizes));
}

TEST(TuningTable, GenerateSkipsOversubscribedPpn) {
  OracleSelector oracle;
  const auto& ri = sim::cluster_by_name("RI");  // 8 cores, 16 threads
  const std::vector<int> nodes = {1};
  const std::vector<int> ppns = {8, 1024};  // 1024 is not runnable
  const auto sizes = sim::power_of_two_sizes(4);
  const TuningTable t =
      TuningTable::generate(oracle, ri, nodes, ppns, sizes);
  EXPECT_EQ(t.job_count(), 2u);  // only ppn=8, for each collective
}

}  // namespace
}  // namespace pml::core
