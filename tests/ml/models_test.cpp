// Cross-model behaviour tests for RandomForest, GradientBoosting, Knn and
// LinearSvm: each must learn simple separable structure, produce valid
// probability vectors, and respect its hyperparameters.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/boosting.hpp"
#include "ml/factory.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/metrics.hpp"
#include "ml/svm.hpp"

namespace pml::ml {
namespace {

/// Three Gaussian blobs in 2-D (multiclass, linearly separable).
Dataset three_blobs(int per_class, std::uint64_t seed) {
  Dataset d;
  d.num_classes = 3;
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const std::vector<double> row = {rng.normal(centers[c][0], 0.7),
                                       rng.normal(centers[c][1], 0.7)};
      d.x.push_row(row);
      d.y.push_back(c);
    }
  }
  return d;
}

class AllModels : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Classifier> make() const {
    return make_classifier(GetParam(), Json::object());
  }
};

TEST_P(AllModels, LearnsSeparableBlobs) {
  const Dataset train = three_blobs(60, 1);
  const Dataset test = three_blobs(20, 2);
  auto model = make();
  Rng rng(3);
  model->fit(train, rng);
  EXPECT_GT(evaluate_accuracy(*model, test), 0.9) << GetParam();
}

TEST_P(AllModels, ProbabilitiesAreValid) {
  const Dataset train = three_blobs(30, 5);
  auto model = make();
  Rng rng(6);
  model->fit(train, rng);
  const auto p = model->predict_proba(train.x.row(0));
  ASSERT_EQ(p.size(), 3u);
  double sum = 0.0;
  for (const double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(AllModels, PredictBeforeFitThrows) {
  auto model = make();
  EXPECT_THROW(model->predict(std::vector<double>{0.0, 0.0}), MlError);
}

TEST_P(AllModels, AucIsHighOnSeparableData) {
  const Dataset train = three_blobs(50, 7);
  const Dataset test = three_blobs(25, 8);
  auto model = make();
  Rng rng(9);
  model->fit(train, rng);
  EXPECT_GT(evaluate_auc(*model, test), 0.95) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Families, AllModels,
    ::testing::Values("RandomForest", "GradientBoost", "KNN", "SVM"),
    [](const ::testing::TestParamInfo<const char*>& param_info) {
      return std::string(param_info.param);
    });

// ---- RandomForest specifics -------------------------------------------------

TEST(RandomForestModel, ImportancesNormalised) {
  const Dataset d = three_blobs(50, 11);
  RandomForest rf(RandomForestParams{.n_trees = 20});
  Rng rng(12);
  rf.fit(d, rng);
  const auto imp = rf.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(RandomForestModel, OobScoreTracksAccuracy) {
  const Dataset d = three_blobs(80, 13);
  RandomForest rf(RandomForestParams{.n_trees = 30});
  Rng rng(14);
  rf.fit(d, rng);
  ASSERT_TRUE(rf.oob_score().has_value());
  EXPECT_GT(*rf.oob_score(), 0.85);
}

TEST(RandomForestModel, NoBootstrapHasNoOob) {
  const Dataset d = three_blobs(20, 15);
  RandomForest rf(RandomForestParams{.n_trees = 5, .bootstrap = false});
  Rng rng(16);
  rf.fit(d, rng);
  EXPECT_FALSE(rf.oob_score().has_value());
}

TEST(RandomForestModel, DeterministicForSeed) {
  const Dataset d = three_blobs(40, 17);
  auto run = [&] {
    RandomForest rf(RandomForestParams{.n_trees = 10});
    Rng rng(18);
    rf.fit(d, rng);
    return rf.predict_proba(d.x.row(0));
  };
  EXPECT_EQ(run(), run());
}

TEST(RandomForestModel, ParallelFitIsByteIdenticalToSerial) {
  // The tentpole determinism contract: per-tree RNG streams are pre-split
  // sequentially, so the fitted model serializes byte-identically at any
  // thread count (threads=1 is the historical serial path).
  const Dataset d = three_blobs(50, 41);
  auto fit_with = [&](int threads) {
    RandomForest rf(RandomForestParams{.n_trees = 16, .threads = threads});
    Rng rng(42);
    rf.fit(d, rng);
    return rf;
  };
  const RandomForest serial = fit_with(1);
  for (const int threads : {2, 4, 8}) {
    const RandomForest parallel_fit = fit_with(threads);
    EXPECT_EQ(parallel_fit.to_json().dump(), serial.to_json().dump())
        << "threads=" << threads;
    ASSERT_TRUE(parallel_fit.oob_score().has_value());
    EXPECT_DOUBLE_EQ(*parallel_fit.oob_score(), *serial.oob_score());
  }
}

TEST(RandomForestModel, JsonRoundTripPreservesImportances) {
  // Regression: a loaded forest used to read tree importances out of
  // bounds because from_json never restored them.
  const Dataset d = three_blobs(40, 43);
  RandomForest rf(RandomForestParams{.n_trees = 10});
  Rng rng(44);
  rf.fit(d, rng);
  const RandomForest restored =
      RandomForest::from_json(Json::parse(rf.to_json().dump()));
  const auto original = rf.feature_importances();
  const auto loaded = restored.feature_importances();
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t f = 0; f < original.size(); ++f) {
    EXPECT_DOUBLE_EQ(loaded[f], original[f]);
  }
}

TEST(RandomForestModel, JsonRoundTripPreservesPredictions) {
  const Dataset d = three_blobs(40, 19);
  RandomForest rf(RandomForestParams{.n_trees = 12});
  Rng rng(20);
  rf.fit(d, rng);
  const RandomForest restored =
      RandomForest::from_json(Json::parse(rf.to_json().dump()));
  EXPECT_EQ(restored.tree_count(), rf.tree_count());
  for (std::size_t r = 0; r < d.x.rows(); ++r) {
    EXPECT_EQ(restored.predict(d.x.row(r)), rf.predict(d.x.row(r)));
  }
}

TEST(RandomForestModel, FromJsonRejectsWrongModel) {
  Json j = Json::object();
  j["model"] = "linear_svm";
  EXPECT_THROW(RandomForest::from_json(j), MlError);
}

// ---- GradientBoosting specifics ---------------------------------------------

TEST(GradientBoostingModel, MoreRoundsImproveTrainFit) {
  const Dataset d = three_blobs(60, 21);
  auto train_acc = [&](int rounds) {
    GradientBoosting gb(GradientBoostingParams{.n_rounds = rounds,
                                               .max_depth = 2});
    Rng rng(22);
    gb.fit(d, rng);
    return evaluate_accuracy(gb, d);
  };
  EXPECT_GE(train_acc(30), train_acc(1));
}

TEST(GradientBoostingModel, RejectsBadParams) {
  GradientBoosting bad_rounds(GradientBoostingParams{.n_rounds = 0});
  GradientBoosting bad_subsample(GradientBoostingParams{.subsample = 0.0});
  const Dataset d = three_blobs(10, 23);
  Rng rng(24);
  EXPECT_THROW(bad_rounds.fit(d, rng), MlError);
  EXPECT_THROW(bad_subsample.fit(d, rng), MlError);
}

TEST(GradientBoostingModel, SubsamplingStillLearns) {
  const Dataset train = three_blobs(60, 25);
  GradientBoosting gb(GradientBoostingParams{.n_rounds = 30, .subsample = 0.5});
  Rng rng(26);
  gb.fit(train, rng);
  EXPECT_GT(evaluate_accuracy(gb, train), 0.9);
}

// ---- KNN specifics ------------------------------------------------------------

TEST(KnnModel, KOneMemorisesTrainingSet) {
  const Dataset d = three_blobs(30, 27);
  Knn knn(KnnParams{.k = 1});
  Rng rng(28);
  knn.fit(d, rng);
  EXPECT_DOUBLE_EQ(evaluate_accuracy(knn, d), 1.0);
}

TEST(KnnModel, RejectsBadK) {
  Knn knn(KnnParams{.k = 0});
  const Dataset d = three_blobs(5, 29);
  Rng rng(30);
  EXPECT_THROW(knn.fit(d, rng), MlError);
}

TEST(KnnModel, DistanceWeightingBreaksTies) {
  // Query next to a single class-1 point with two distant class-0 points:
  // k=3 uniform votes class 0; distance weighting votes class 1.
  Dataset d;
  d.num_classes = 2;
  d.x.push_row(std::vector<double>{0.0, 0.0});
  d.y.push_back(1);
  d.x.push_row(std::vector<double>{10.0, 0.0});
  d.y.push_back(0);
  d.x.push_row(std::vector<double>{0.0, 10.0});
  d.y.push_back(0);
  Rng rng(31);
  Knn uniform(KnnParams{.k = 3, .distance_weighted = false});
  uniform.fit(d, rng);
  Knn weighted(KnnParams{.k = 3, .distance_weighted = true});
  weighted.fit(d, rng);
  const std::vector<double> query = {0.5, 0.5};
  EXPECT_EQ(uniform.predict(query), 0);
  EXPECT_EQ(weighted.predict(query), 1);
}

// ---- SVM specifics -------------------------------------------------------------

TEST(SvmModel, MarginsSeparateClasses) {
  const Dataset d = three_blobs(50, 33);
  LinearSvm svm;
  Rng rng(34);
  svm.fit(d, rng);
  // The decision function for the true class should usually be the largest.
  int hits = 0;
  for (std::size_t r = 0; r < d.x.rows(); ++r) {
    const auto margins = svm.decision_function(d.x.row(r));
    const int arg = static_cast<int>(
        std::max_element(margins.begin(), margins.end()) - margins.begin());
    hits += arg == d.y[r] ? 1 : 0;
  }
  EXPECT_GT(hits, static_cast<int>(0.9 * static_cast<double>(d.size())));
}

TEST(SvmModel, RejectsBadParams) {
  const Dataset d = three_blobs(5, 35);
  Rng rng(36);
  LinearSvm bad_lambda(SvmParams{.lambda = 0.0});
  EXPECT_THROW(bad_lambda.fit(d, rng), MlError);
  LinearSvm bad_epochs(SvmParams{.lambda = 1e-3, .epochs = 0});
  EXPECT_THROW(bad_epochs.fit(d, rng), MlError);
}

// ---- Factory -------------------------------------------------------------------

TEST(Factory, BuildsEveryFamilyWithParams) {
  Json rf_params = Json::object();
  rf_params["n_trees"] = 7;
  auto rf = make_classifier("RandomForest", rf_params);
  EXPECT_EQ(rf->name(), "RandomForest");

  Json knn_params = Json::object();
  knn_params["k"] = 3;
  EXPECT_EQ(make_classifier("KNN", knn_params)->name(), "KNN");
}

TEST(Factory, RejectsUnknownFamilyAndKeys) {
  EXPECT_THROW(make_classifier("DeepNet", Json::object()), MlError);
  Json typo = Json::object();
  typo["n_treez"] = 10;
  EXPECT_THROW(make_classifier("RandomForest", typo), MlError);
}

}  // namespace
}  // namespace pml::ml
