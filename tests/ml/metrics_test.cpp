#include "ml/metrics.hpp"

#include <gtest/gtest.h>

namespace pml::ml {
namespace {

TEST(Accuracy, KnownValues) {
  const std::vector<int> truth = {0, 1, 2, 1};
  const std::vector<int> pred = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy(truth, pred), 0.75);
}

TEST(Accuracy, RejectsMismatchedOrEmpty) {
  const std::vector<int> a = {0};
  const std::vector<int> b = {0, 1};
  const std::vector<int> empty;
  EXPECT_THROW(accuracy(a, b), MlError);
  EXPECT_THROW(accuracy(empty, empty), MlError);
}

TEST(ConfusionMatrix, CountsPerCell) {
  const std::vector<int> truth = {0, 0, 1, 1, 1};
  const std::vector<int> pred = {0, 1, 1, 1, 0};
  const auto m = confusion_matrix(truth, pred, 2);
  EXPECT_EQ(m[0][0], 1u);
  EXPECT_EQ(m[0][1], 1u);
  EXPECT_EQ(m[1][0], 1u);
  EXPECT_EQ(m[1][1], 2u);
}

TEST(BinaryAuc, PerfectSeparation) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<char> pos = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(binary_auc(scores, pos), 1.0);
}

TEST(BinaryAuc, ReversedScoresGiveZero) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<char> pos = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(binary_auc(scores, pos), 0.0);
}

TEST(BinaryAuc, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<double> scores(2000);
  std::vector<char> pos(2000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    pos[i] = rng.bernoulli(0.4) ? 1 : 0;
  }
  EXPECT_NEAR(binary_auc(scores, pos), 0.5, 0.05);
}

TEST(BinaryAuc, TiesCountHalf) {
  // All scores equal: AUC must be exactly 0.5 regardless of labels.
  const std::vector<double> scores = {1.0, 1.0, 1.0, 1.0};
  const std::vector<char> pos = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(binary_auc(scores, pos), 0.5);
}

TEST(BinaryAuc, RequiresBothClasses) {
  const std::vector<double> scores = {0.1, 0.9};
  const std::vector<char> all_pos = {1, 1};
  EXPECT_THROW(binary_auc(scores, all_pos), MlError);
}

TEST(MacroOvrAuc, PerfectClassifier) {
  // predict_proba puts all mass on the true class.
  std::vector<std::vector<double>> proba = {
      {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const std::vector<int> truth = {0, 1, 2, 0, 1, 2};
  EXPECT_DOUBLE_EQ(macro_ovr_auc(proba, truth, 3), 1.0);
}

TEST(MacroOvrAuc, SkipsAbsentClasses) {
  // Class 2 never appears; the macro average covers classes 0 and 1 only.
  std::vector<std::vector<double>> proba = {{0.9, 0.1, 0.0},
                                            {0.2, 0.8, 0.0},
                                            {0.7, 0.3, 0.0},
                                            {0.1, 0.9, 0.0}};
  const std::vector<int> truth = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(macro_ovr_auc(proba, truth, 3), 1.0);
}

TEST(MacroOvrAuc, RejectsSingleClassInput) {
  std::vector<std::vector<double>> proba = {{1.0}, {1.0}};
  const std::vector<int> truth = {0, 0};
  EXPECT_THROW(macro_ovr_auc(proba, truth, 1), MlError);
}

}  // namespace
}  // namespace pml::ml
