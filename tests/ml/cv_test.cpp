#include "ml/cv.hpp"

#include <gtest/gtest.h>

#include "ml/factory.hpp"

namespace pml::ml {
namespace {

Dataset blobs2(int per_class, std::uint64_t seed) {
  Dataset d;
  d.num_classes = 2;
  Rng rng(seed);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const double cx = c == 0 ? 0.0 : 4.0;
      const std::vector<double> row = {rng.normal(cx, 0.8),
                                       rng.normal(cx, 0.8)};
      d.x.push_row(row);
      d.y.push_back(c);
    }
  }
  return d;
}

TEST(ParamGrid, CartesianProduct) {
  const auto grid = param_grid({{"a", {Json(1), Json(2)}},
                                {"b", {Json("x"), Json("y"), Json("z")}}});
  EXPECT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].at("a").as_int(), 1);
  EXPECT_EQ(grid[5].at("a").as_int(), 2);
  EXPECT_EQ(grid[5].at("b").as_string(), "z");
}

TEST(ParamGrid, EmptyAxesGiveSingleEmptyCandidate) {
  const auto grid = param_grid({});
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid[0].as_object().empty());
}

TEST(ParamGrid, RejectsEmptyAxis) {
  EXPECT_THROW(param_grid({{"a", {}}}), MlError);
}

TEST(CrossValScore, HighForSeparableData) {
  const Dataset d = blobs2(60, 1);
  Rng rng(2);
  const double auc = cross_val_score(factory_for("RandomForest"),
                                     Json::object(), d, 3, rng, "auc");
  EXPECT_GT(auc, 0.95);
  Rng rng2(2);
  const double acc = cross_val_score(factory_for("KNN"), Json::object(), d, 3,
                                     rng2, "accuracy");
  EXPECT_GT(acc, 0.9);
}

TEST(CrossValScore, RejectsUnknownMetric) {
  const Dataset d = blobs2(20, 3);
  Rng rng(4);
  EXPECT_THROW(cross_val_score(factory_for("KNN"), Json::object(), d, 3, rng,
                               "f1"),
               MlError);
}

TEST(GridSearch, PicksBetterCandidate) {
  const Dataset d = blobs2(60, 5);
  // k=1 overfits less gracefully than k=7 on noisy blobs; both valid, the
  // search must return the higher-scoring candidate coherently.
  Json k1 = Json::object();
  k1["k"] = 1;
  Json k7 = Json::object();
  k7["k"] = 7;
  Rng rng(6);
  const auto result =
      grid_search(factory_for("KNN"), {k1, k7}, d, 3, rng, "accuracy");
  ASSERT_EQ(result.all_scores.size(), 2u);
  EXPECT_GE(result.best_score, result.all_scores[0].second);
  EXPECT_GE(result.best_score, result.all_scores[1].second);
  EXPECT_TRUE(result.best_params == k1 || result.best_params == k7);
}

TEST(GridSearch, RejectsEmptyCandidates) {
  const Dataset d = blobs2(20, 7);
  Rng rng(8);
  EXPECT_THROW(grid_search(factory_for("KNN"), {}, d, 3, rng), MlError);
}

TEST(GridSearch, DeterministicForSeed) {
  const Dataset d = blobs2(40, 9);
  Json k3 = Json::object();
  k3["k"] = 3;
  Json k5 = Json::object();
  k5["k"] = 5;
  auto run = [&] {
    Rng rng(10);
    return grid_search(factory_for("KNN"), {k3, k5}, d, 3, rng, "accuracy")
        .best_score;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace pml::ml
