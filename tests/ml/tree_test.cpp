#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pml::ml {
namespace {

/// Two well-separated 2-D blobs.
Dataset blobs(int per_class, double gap, std::uint64_t seed) {
  Dataset d;
  d.num_classes = 2;
  Rng rng(seed);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const double cx = c == 0 ? 0.0 : gap;
      const std::vector<double> row = {rng.normal(cx, 0.5),
                                       rng.normal(cx, 0.5)};
      d.x.push_row(row);
      d.y.push_back(c);
    }
  }
  return d;
}

TEST(GiniImpurity, KnownValues) {
  EXPECT_DOUBLE_EQ(gini_impurity(std::vector<double>{10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(gini_impurity(std::vector<double>{5, 5}), 0.5);
  EXPECT_NEAR(gini_impurity(std::vector<double>{1, 1, 1}), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(gini_impurity(std::vector<double>{}), 0.0);
}

TEST(DecisionTree, PerfectlySeparableDataFitsExactly) {
  const Dataset d = blobs(50, 10.0, 1);
  DecisionTree tree;
  Rng rng(2);
  tree.fit(d.x, d.y, 2, rng);
  for (std::size_t r = 0; r < d.x.rows(); ++r) {
    EXPECT_EQ(tree.predict(d.x.row(r)), d.y[r]);
  }
}

TEST(DecisionTree, ProbabilitiesSumToOne) {
  const Dataset d = blobs(30, 2.0, 3);
  DecisionTree tree(TreeParams{.max_depth = 3});
  Rng rng(4);
  tree.fit(d.x, d.y, 2, rng);
  const auto p = tree.predict_proba(d.x.row(0));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(DecisionTree, MaxDepthZeroIsMajorityVote) {
  Dataset d = blobs(10, 10.0, 5);
  d.y.assign(d.y.size(), 0);
  d.y[0] = 1;
  DecisionTree tree(TreeParams{.max_depth = 0});
  Rng rng(6);
  tree.fit(d.x, d.y, 2, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(d.x.row(0)), 0);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const Dataset d = blobs(40, 4.0, 7);
  DecisionTree tree(TreeParams{.min_samples_leaf = 10});
  Rng rng(8);
  tree.fit(d.x, d.y, 2, rng);
  // With 80 samples and >=10 per leaf, at most 8 leaves -> at most 15 nodes.
  EXPECT_LE(tree.node_count(), 15u);
}

TEST(DecisionTree, ImportancesConcentrateOnInformativeFeature) {
  // Feature 0 is informative, feature 1 is noise.
  Dataset d;
  d.num_classes = 2;
  Rng data_rng(11);
  for (int i = 0; i < 200; ++i) {
    const double x0 = data_rng.uniform(-1.0, 1.0);
    const std::vector<double> row = {x0, data_rng.uniform(-1.0, 1.0)};
    d.x.push_row(row);
    d.y.push_back(x0 > 0.0 ? 1 : 0);
  }
  DecisionTree tree;
  Rng rng(12);
  tree.fit(d.x, d.y, 2, rng);
  const auto imp = tree.feature_importances();
  EXPECT_GT(imp[0], 10.0 * std::max(imp[1], 1e-12));
}

TEST(DecisionTree, FitWithExplicitSampleIndices) {
  const Dataset d = blobs(20, 10.0, 13);
  // Train only on class-0 rows: the tree must always predict class 0.
  std::vector<std::size_t> samples;
  for (std::size_t i = 0; i < 20; ++i) samples.push_back(i);
  DecisionTree tree;
  Rng rng(14);
  tree.fit(d.x, d.y, 2, rng, samples);
  for (std::size_t r = 20; r < 40; ++r) {
    EXPECT_EQ(tree.predict(d.x.row(r)), 0);
  }
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), MlError);
}

TEST(DecisionTree, BadInputsThrow) {
  DecisionTree tree;
  Rng rng(1);
  Matrix empty;
  std::vector<int> y;
  EXPECT_THROW(tree.fit(empty, y, 2, rng), MlError);
}

TEST(DecisionTree, JsonRoundTripPreservesPredictions) {
  const Dataset d = blobs(50, 3.0, 15);
  DecisionTree tree;
  Rng rng(16);
  tree.fit(d.x, d.y, 2, rng);
  const DecisionTree restored = DecisionTree::from_json(
      Json::parse(tree.to_json().dump()));
  for (std::size_t r = 0; r < d.x.rows(); ++r) {
    EXPECT_EQ(restored.predict(d.x.row(r)), tree.predict(d.x.row(r)));
    EXPECT_EQ(restored.predict_proba(d.x.row(r)),
              tree.predict_proba(d.x.row(r)));
  }
}

TEST(DecisionTree, JsonRoundTripPreservesImportances) {
  // Regression: from_json used to drop importances_, so a loaded tree
  // returned an empty span and downstream forest code read out of bounds.
  const Dataset d = blobs(50, 3.0, 21);
  DecisionTree tree;
  Rng rng(22);
  tree.fit(d.x, d.y, 2, rng);
  const DecisionTree restored = DecisionTree::from_json(
      Json::parse(tree.to_json().dump()));
  const auto original = tree.feature_importances();
  const auto loaded = restored.feature_importances();
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t f = 0; f < original.size(); ++f) {
    EXPECT_DOUBLE_EQ(loaded[f], original[f]);
  }
}

TEST(DecisionTree, FromJsonWithoutImportancesFallsBackToZeros) {
  // Old bundles (pre-importances) must still load: zeros wide enough to
  // cover every feature the splits reference.
  const Dataset d = blobs(30, 5.0, 23);
  DecisionTree tree;
  Rng rng(24);
  tree.fit(d.x, d.y, 2, rng);
  Json j = tree.to_json();
  Json stripped = Json::object();
  stripped["num_classes"] = j.at("num_classes");
  stripped["depth"] = j.at("depth");
  stripped["nodes"] = j.at("nodes");
  const DecisionTree restored = DecisionTree::from_json(stripped);
  for (const double v : restored.feature_importances()) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  // Predictions are unaffected by the missing field.
  EXPECT_EQ(restored.predict(d.x.row(0)), tree.predict(d.x.row(0)));
}

/// Minimal valid serialized stump: root split on feature 0, two leaves.
Json stump_json() {
  Json j = Json::object();
  j["num_classes"] = 2;
  j["depth"] = 1;
  Json nodes = Json::array();
  Json root = Json::object();
  root["feature"] = 0;
  root["threshold"] = 0.5;
  root["left"] = 1;
  root["right"] = 2;
  nodes.push_back(std::move(root));
  for (const double p0 : {1.0, 0.0}) {
    Json leaf = Json::object();
    leaf["feature"] = -1;
    Json proba = Json::array();
    proba.push_back(p0);
    proba.push_back(1.0 - p0);
    leaf["proba"] = std::move(proba);
    nodes.push_back(std::move(leaf));
  }
  j["nodes"] = std::move(nodes);
  return j;
}

TEST(DecisionTree, FromJsonRejectsOutOfRangeChildIndex) {
  // Regression: an out-of-range child index used to crash predict_proba
  // with an OOB read instead of failing at load time.
  Json j = stump_json();
  j["nodes"].as_array()[0]["right"] = 99;
  EXPECT_THROW(DecisionTree::from_json(j), MlError);
  Json neg = stump_json();
  neg["nodes"].as_array()[0]["left"] = -3;
  EXPECT_THROW(DecisionTree::from_json(neg), MlError);
}

TEST(DecisionTree, FromJsonRejectsNonTerminatingNodeGraph) {
  // A self/backward edge used to make predict_proba loop forever.
  Json j = stump_json();
  j["nodes"].as_array()[0]["left"] = 0;
  EXPECT_THROW(DecisionTree::from_json(j), MlError);
}

TEST(DecisionTree, FromJsonRejectsWrongProbaArity) {
  Json j = stump_json();
  j["nodes"].as_array()[1]["proba"].as_array().pop_back();
  EXPECT_THROW(DecisionTree::from_json(j), MlError);
}

TEST(DecisionTree, FromJsonRejectsUndersizedImportances) {
  Json j = stump_json();
  Json imp = Json::array();  // splits reference feature 0; empty is too short
  j["importances"] = std::move(imp);
  EXPECT_THROW(DecisionTree::from_json(j), MlError);
}

TEST(DecisionTree, FromJsonAcceptsValidStump) {
  const DecisionTree tree = DecisionTree::from_json(stump_json());
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0}), 1);
}

TEST(DecisionTree, FitRejectsOutOfRangeLabels) {
  // Regression: counts[y[i]] was a silent OOB write for bad labels.
  const Dataset d = blobs(10, 5.0, 25);
  DecisionTree tree;
  Rng rng(26);
  std::vector<int> too_big = d.y;
  too_big[3] = 2;  // == num_classes
  EXPECT_THROW(tree.fit(d.x, too_big, 2, rng), MlError);
  std::vector<int> negative = d.y;
  negative[0] = -1;
  EXPECT_THROW(tree.fit(d.x, negative, 2, rng), MlError);
}

TEST(RegressionTree, FitsStepFunction) {
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y[i] = i < 50 ? -1.0 : 3.0;
  }
  RegressionTree tree(TreeParams{.max_depth = 2});
  Rng rng(17);
  tree.fit(x, y, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{10.0}), -1.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{90.0}), 3.0, 1e-9);
}

TEST(RegressionTree, LeafMembersPartitionSamples) {
  Matrix x(60, 1);
  std::vector<double> y(60);
  Rng data_rng(18);
  for (std::size_t i = 0; i < 60; ++i) {
    x.at(i, 0) = data_rng.uniform();
    y[i] = x.at(i, 0) * 2.0;
  }
  RegressionTree tree(TreeParams{.max_depth = 3});
  Rng rng(19);
  tree.fit(x, y, rng);
  std::size_t total = 0;
  for (const auto& members : tree.leaf_members()) total += members.size();
  EXPECT_EQ(total, 60u);
}

TEST(RegressionTree, SetLeafValueChangesPrediction) {
  Matrix x(10, 1);
  std::vector<double> y(10, 1.0);
  for (std::size_t i = 0; i < 10; ++i) x.at(i, 0) = static_cast<double>(i);
  RegressionTree tree;
  Rng rng(20);
  tree.fit(x, y, rng);
  const int leaf = tree.apply(std::vector<double>{4.0});
  tree.set_leaf_value(leaf, -7.5);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{4.0}), -7.5);
}

TEST(RegressionTree, ApplyBeforeFitThrows) {
  RegressionTree tree;
  EXPECT_THROW(tree.apply(std::vector<double>{0.0}), MlError);
}

}  // namespace
}  // namespace pml::ml
