// Regression guards for the tree-major blocked batch kernel:
//  - predict_batch must be bit-identical to the scalar predict_proba_into
//    path across class counts, ragged batch sizes (partial interleave
//    groups, partial blocks), and forests rebuilt via from_json,
//  - batch-level validation must fail loudly, with the offending shapes in
//    the error text, instead of walking garbage.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ml/flat_forest.hpp"
#include "ml/forest.hpp"

namespace pml::ml {
namespace {

/// Same mixed discrete/continuous generator as hotpath_test.cpp — many
/// exact feature ties, the hard case for traversal agreement.
Dataset synthetic(std::size_t n, std::size_t cols, int classes,
                  std::uint64_t seed) {
  Dataset d;
  d.num_classes = classes;
  Rng rng(seed);
  Matrix x(n, cols);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      x.at(r, c) = (c % 3 == 0)
                       ? static_cast<double>(rng.uniform_index(8))
                       : rng.uniform(-2.0, 2.0);
    }
    double s = 0.0;
    for (std::size_t c = 0; c < cols; ++c) s += x.at(r, c) * ((c % 2) ? 1 : -1);
    const int label = static_cast<int>(
        (static_cast<long long>(s * 3.0) % classes + classes) % classes);
    d.y.push_back(label);
  }
  d.x = x;
  return d;
}

void expect_batch_matches_scalar(const RandomForest& forest, const Matrix& rows,
                                 int classes, const std::string& context) {
  const auto k = static_cast<std::size_t>(classes);
  Matrix out(rows.rows(), k);
  forest.predict_batch(rows, out);
  std::vector<double> scalar(k);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    forest.predict_proba_into(rows.row(r), scalar);
    ASSERT_EQ(std::memcmp(out.row(r).data(), scalar.data(),
                          k * sizeof(double)),
              0)
        << context << ": row " << r << " diverges from the scalar path";
  }
}

// ---- bit-identity matrix ----------------------------------------------------

TEST(BatchInference, BitIdenticalAcrossClassCountsAndRaggedBatches) {
  // 1: degenerate batch; 31/33: partial 4-row interleave groups; 32: exact
  // groups but a partial 64-row block; 1000: many full blocks plus a
  // ragged tail.
  const std::size_t batch_sizes[] = {1, 31, 32, 33, 1000};
  for (const int classes : {2, 5, 9}) {
    const Dataset train =
        synthetic(300, 6, classes, 17 * static_cast<std::uint64_t>(classes));
    RandomForestParams fp;
    fp.n_trees = 10;
    fp.max_features = 2;
    RandomForest forest(fp);
    Rng rng(static_cast<std::uint64_t>(classes));
    forest.fit(train, rng);
    for (const std::size_t n : batch_sizes) {
      const Dataset batch =
          synthetic(n, 6, classes, 1000 + n + static_cast<std::uint64_t>(classes));
      expect_batch_matches_scalar(
          forest, batch.x, classes,
          "classes " + std::to_string(classes) + " batch " + std::to_string(n));
    }
  }
}

TEST(BatchInference, BitIdenticalAfterFromJsonRebuild) {
  const Dataset train = synthetic(250, 5, 5, 91);
  RandomForest forest(RandomForestParams{.n_trees = 8, .max_features = 2});
  Rng rng(6);
  forest.fit(train, rng);
  const RandomForest loaded = RandomForest::from_json(forest.to_json());

  const Dataset batch = synthetic(333, 5, 5, 92);
  expect_batch_matches_scalar(loaded, batch.x, 5, "post-from_json");

  // And the rebuilt forest agrees with the original, batch for batch.
  Matrix a(batch.x.rows(), 5);
  Matrix b(batch.x.rows(), 5);
  forest.predict_batch(batch.x, a);
  loaded.predict_batch(batch.x, b);
  for (std::size_t r = 0; r < batch.x.rows(); ++r) {
    EXPECT_EQ(std::memcmp(a.row(r).data(), b.row(r).data(), 5 * sizeof(double)),
              0)
        << "row " << r;
  }
}

// ---- batch-level validation -------------------------------------------------

TEST(BatchInference, UnsealedForestThrows) {
  FlatForest flat;
  flat.begin_tree();
  const double proba[] = {0.5, 0.5};
  flat.add_leaf(proba);
  // No finish(): the forest is a staging buffer, not a model.
  const Matrix rows(4, 2);
  Matrix out(4, 2);
  EXPECT_THROW(flat.predict_batch(rows, out), MlError);
}

TEST(BatchInference, WrongShapeOutputReportsActualAndExpected) {
  const Dataset train = synthetic(120, 5, 3, 44);
  RandomForest forest(RandomForestParams{.n_trees = 4});
  Rng rng(2);
  forest.fit(train, rng);

  const Dataset batch = synthetic(10, 5, 3, 45);
  Matrix bad_rows(7, 3);  // wrong row count and class width
  try {
    forest.predict_batch(batch.x, bad_rows);
    FAIL() << "wrong-shape output did not throw";
  } catch (const MlError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("7x3"), std::string::npos) << what;
    EXPECT_NE(what.find("10x3"), std::string::npos) << what;
  }
}

TEST(BatchInference, ShortFeatureRowsReportWidths) {
  const Dataset train = synthetic(120, 5, 3, 46);
  RandomForest forest(RandomForestParams{.n_trees = 4});
  Rng rng(2);
  forest.fit(train, rng);

  const Matrix narrow(6, 1);  // 1 feature; the forest references up to 5
  Matrix out(6, 3);
  try {
    forest.predict_batch(narrow, out);
    FAIL() << "narrow batch did not throw";
  } catch (const MlError& err) {
    EXPECT_NE(std::string(err.what()).find("1"), std::string::npos)
        << err.what();
  }
}

}  // namespace
}  // namespace pml::ml
