// Regression guards for the ML hot-path optimisations:
//  - the incremental-Gini split finder must produce byte-identical trees to
//    the retained reference implementation,
//  - flattened (structure-of-arrays) inference must be bit-identical to the
//    per-tree node walk, for every model family the factory can build,
//  - fitted forests must stay bit-identical across thread counts and across
//    releases (golden hashes captured before the optimisation landed),
//  - corrupt serialized bundles must fail loudly at load time.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ml/factory.hpp"
#include "ml/flat_forest.hpp"
#include "ml/forest.hpp"
#include "ml/tree.hpp"

namespace pml::ml {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Mixed discrete/continuous dataset (like the MPI feature table: message
/// sizes and node counts are discrete, bandwidths continuous). Many exact
/// ties in both features and candidate splits — the hard case for split
/// determinism.
Dataset synthetic(std::size_t n, std::size_t cols, int classes,
                  std::uint64_t seed) {
  Dataset d;
  d.num_classes = classes;
  Rng rng(seed);
  Matrix x(n, cols);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      x.at(r, c) = (c % 3 == 0)
                       ? static_cast<double>(rng.uniform_index(8))
                       : rng.uniform(-2.0, 2.0);
    }
    double s = 0.0;
    for (std::size_t c = 0; c < cols; ++c) s += x.at(r, c) * ((c % 2) ? 1 : -1);
    const int label = static_cast<int>(
        (static_cast<long long>(s * 3.0) % classes + classes) % classes);
    d.y.push_back(label);
  }
  d.x = x;
  return d;
}

// ---- optimised vs reference split finder -----------------------------------

TEST(SplitFinder, OptimisedMatchesReferenceByteForByte) {
  const TreeParams grids[] = {
      {},
      {.max_depth = 4},
      {.min_samples_leaf = 3},
      {.min_samples_split = 8},
      {.max_features = 2},
      {.max_depth = 6, .min_samples_leaf = 2, .max_features = 3},
  };
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const int classes = 2 + static_cast<int>(seed % 3);
    const Dataset d = synthetic(240, 7, classes, seed * 101);
    for (const TreeParams& base : grids) {
      TreeParams fast = base;
      TreeParams slow = base;
      slow.reference_splitter = true;

      DecisionTree a(fast);
      DecisionTree b(slow);
      Rng rng_a(seed);
      Rng rng_b(seed);
      a.fit(d.x, d.y, classes, rng_a);
      b.fit(d.x, d.y, classes, rng_b);
      EXPECT_EQ(a.to_json().dump(), b.to_json().dump())
          << "seed " << seed << " max_depth " << base.max_depth;
    }
  }
}

TEST(SplitFinder, OptimisedMatchesReferenceOnBootstrapSamples) {
  const Dataset d = synthetic(150, 5, 3, 77);
  Rng sample_rng(5);
  std::vector<std::size_t> sample(d.size());
  for (auto& s : sample) {
    s = static_cast<std::size_t>(sample_rng.uniform_index(d.size()));
  }
  DecisionTree a{TreeParams{.max_features = 2}};
  DecisionTree b{TreeParams{.max_features = 2, .reference_splitter = true}};
  Rng rng_a(9);
  Rng rng_b(9);
  a.fit(d.x, d.y, 3, rng_a, sample);
  b.fit(d.x, d.y, 3, rng_b, sample);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

// ---- golden hashes: serialized output is frozen across releases ------------

TEST(Golden, TreeSerializationUnchangedSinceOptimisation) {
  const Dataset d = synthetic(300, 8, 4, 42);
  DecisionTree tree(TreeParams{.max_features = 3});
  Rng rng(7);
  tree.fit(d.x, d.y, d.num_classes, rng);
  // Captured from the pre-optimisation implementation (PR 1 state).
  EXPECT_EQ(fnv1a(tree.to_json().dump()), 7370512707017712398ULL);
}

TEST(Golden, ForestSerializationAndOobUnchangedSinceOptimisation) {
  const Dataset d = synthetic(300, 8, 4, 42);
  RandomForestParams fp;
  fp.n_trees = 16;
  fp.max_features = 3;
  fp.threads = 2;
  RandomForest forest(fp);
  Rng rng(99);
  forest.fit(d, rng);
  // Captured from the pre-optimisation implementation (PR 1 state).
  EXPECT_EQ(fnv1a(forest.to_json().dump()), 3616224656282728536ULL);
  ASSERT_TRUE(forest.oob_score().has_value());
  EXPECT_DOUBLE_EQ(*forest.oob_score(), 0.23);
}

// ---- flat vs node-walk inference -------------------------------------------

TEST(FlatForestInference, MatchesNodeWalkBitForBit) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Dataset d = synthetic(200, 6, 3, seed * 31);
    RandomForestParams fp;
    fp.n_trees = 12;
    fp.max_features = 2;
    RandomForest forest(fp);
    Rng rng(seed);
    forest.fit(d, rng);

    std::vector<double> flat(3);
    std::vector<double> walk(3);
    for (std::size_t r = 0; r < d.x.rows(); ++r) {
      forest.predict_proba_into(d.x.row(r), flat);
      // Reference: average the per-tree node walks in tree order, exactly
      // as the pre-flattening implementation did.
      std::fill(walk.begin(), walk.end(), 0.0);
      for (std::size_t t = 0; t < forest.tree_count(); ++t) {
        const auto leaf = forest.flat().tree_leaf(t, d.x.row(r));
        for (std::size_t c = 0; c < walk.size(); ++c) walk[c] += leaf[c];
      }
      for (double& v : walk) v /= static_cast<double>(forest.tree_count());
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(flat[c], walk[c]) << "row " << r << " class " << c;
      }
      const auto alloc_path = forest.predict_proba(d.x.row(r));
      for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(flat[c], alloc_path[c]);
    }
  }
}

TEST(FlatForestInference, SurvivesSerializationRoundTrip) {
  const Dataset d = synthetic(150, 5, 3, 11);
  RandomForest forest(RandomForestParams{.n_trees = 8, .max_features = 2});
  Rng rng(3);
  forest.fit(d, rng);
  const RandomForest loaded = RandomForest::from_json(forest.to_json());
  std::vector<double> a(3);
  std::vector<double> b(3);
  for (std::size_t r = 0; r < d.x.rows(); ++r) {
    forest.predict_proba_into(d.x.row(r), a);
    loaded.predict_proba_into(d.x.row(r), b);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(a[c], b[c]);
  }
}

TEST(FlatForestInference, PredictBatchMatchesRowByRow) {
  const Dataset d = synthetic(60, 5, 3, 19);
  RandomForest forest(RandomForestParams{.n_trees = 6});
  Rng rng(4);
  forest.fit(d, rng);
  Matrix out(d.x.rows(), 3);
  forest.predict_batch(d.x, out);
  std::vector<double> row(3);
  for (std::size_t r = 0; r < d.x.rows(); ++r) {
    forest.predict_proba_into(d.x.row(r), row);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(out.at(r, c), row[c]);
  }
}

TEST(FlatForestInference, RejectsShortRowsAndBadBuffers) {
  const Dataset d = synthetic(80, 5, 3, 23);
  RandomForest forest(RandomForestParams{.n_trees = 4});
  Rng rng(8);
  forest.fit(d, rng);
  std::vector<double> out(3);
  const std::vector<double> short_row = {1.0};
  EXPECT_THROW(forest.predict_proba_into(short_row, out), MlError);
  std::vector<double> bad(2);
  EXPECT_THROW(forest.predict_proba_into(d.x.row(0), bad), MlError);
}

/// Every factory family must agree between predict_proba and the buffer
/// API (the two share one code path in the overriding models; for the rest
/// the base-class fallback must copy faithfully).
TEST(FactoryModels, PredictProbaIntoMatchesPredictProba) {
  const char* families[] = {"RandomForest", "GradientBoost", "KNN", "SVM"};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset d = synthetic(120, 5, 3, seed * 7);
    for (const char* family : families) {
      Json params = Json::object();
      if (std::string(family) == "RandomForest") params["n_trees"] = 8;
      if (std::string(family) == "GradientBoost") params["n_rounds"] = 5;
      const auto model = make_classifier(family, params);
      Rng rng(seed);
      model->fit(d, rng);
      std::vector<double> buf(3);
      for (std::size_t r = 0; r < d.x.rows(); ++r) {
        const auto proba = model->predict_proba(d.x.row(r));
        model->predict_proba_into(d.x.row(r), buf);
        ASSERT_EQ(proba.size(), buf.size()) << family;
        for (std::size_t c = 0; c < buf.size(); ++c) {
          EXPECT_EQ(proba[c], buf[c]) << family << " row " << r;
        }
      }
    }
  }
}

// ---- determinism across thread counts --------------------------------------

TEST(ForestThreads, OobAndSerializationIdenticalAt1_2_8Threads) {
  const Dataset d = synthetic(250, 6, 3, 55);
  std::string json_1;
  double oob_1 = 0.0;
  for (const int threads : {1, 2, 8}) {
    RandomForestParams fp;
    fp.n_trees = 12;
    fp.max_features = 2;
    fp.threads = threads;
    RandomForest forest(fp);
    Rng rng(21);
    forest.fit(d, rng);
    ASSERT_TRUE(forest.oob_score().has_value());
    if (threads == 1) {
      json_1 = forest.to_json().dump();
      oob_1 = *forest.oob_score();
    } else {
      EXPECT_EQ(forest.to_json().dump(), json_1) << "threads " << threads;
      EXPECT_DOUBLE_EQ(*forest.oob_score(), oob_1) << "threads " << threads;
    }
  }
}

// ---- hardened deserialization ----------------------------------------------

TEST(ForestFromJson, RejectsSplitFeatureBeyondForestWidth) {
  const Dataset d = synthetic(100, 4, 2, 3);
  RandomForest forest(RandomForestParams{.n_trees = 2});
  Rng rng(1);
  forest.fit(d, rng);
  Json j = forest.to_json();

  // Widen the importances array so the tree-level loader stays happy, then
  // point one split at a feature the forest does not have.
  Json& tree0 = j["trees"].as_array()[0];
  Json& importances = tree0["importances"];
  while (importances.as_array().size() < 100) importances.push_back(0.0);
  bool corrupted = false;
  for (Json& node : tree0["nodes"].as_array()) {
    if (node.at("feature").as_int() >= 0 && !corrupted) {
      node["feature"] = 99;
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "fitted tree unexpectedly has no splits";
  EXPECT_THROW(RandomForest::from_json(j), MlError);
}

TEST(ForestFromJson, RejectsTreeClassCountMismatch) {
  const Dataset d = synthetic(100, 4, 2, 3);
  RandomForest forest(RandomForestParams{.n_trees = 2});
  Rng rng(1);
  forest.fit(d, rng);
  Json j = forest.to_json();
  j["num_classes"] = 5;  // trees still carry 2-class leaves
  EXPECT_THROW(RandomForest::from_json(j), MlError);
}

TEST(ForestFromJson, RejectsNonPositiveClassCount) {
  const Dataset d = synthetic(100, 4, 2, 3);
  RandomForest forest(RandomForestParams{.n_trees = 2});
  Rng rng(1);
  forest.fit(d, rng);
  Json j = forest.to_json();
  j["num_classes"] = 0;
  EXPECT_THROW(RandomForest::from_json(j), MlError);
}

}  // namespace
}  // namespace pml::ml
