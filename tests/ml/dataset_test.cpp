#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace pml::ml {
namespace {

Dataset tiny_dataset() {
  Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < 10; ++i) {
    const double v = static_cast<double>(i);
    const std::vector<double> row = {v, 10.0 - v};
    d.x.push_row(row);
    d.y.push_back(i < 5 ? 0 : 1);
  }
  d.feature_names = {"a", "b"};
  return d;
}

TEST(Matrix, PushRowSetsShape) {
  Matrix m;
  m.push_row(std::vector<double>{1, 2, 3});
  m.push_row(std::vector<double>{4, 5, 6});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
}

TEST(Matrix, PushRowRejectsRaggedRows) {
  Matrix m;
  m.push_row(std::vector<double>{1, 2});
  EXPECT_THROW(m.push_row(std::vector<double>{1, 2, 3}), MlError);
}

TEST(Matrix, RowSpanIsMutable) {
  Matrix m(2, 2);
  m.row(0)[1] = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
}

TEST(Dataset, ValidateAcceptsConsistent) {
  EXPECT_NO_THROW(tiny_dataset().validate());
}

TEST(Dataset, ValidateRejectsBadLabels) {
  Dataset d = tiny_dataset();
  d.y[0] = 5;
  EXPECT_THROW(d.validate(), MlError);
  d.y[0] = -1;
  EXPECT_THROW(d.validate(), MlError);
}

TEST(Dataset, ValidateRejectsShapeMismatch) {
  Dataset d = tiny_dataset();
  d.y.pop_back();
  EXPECT_THROW(d.validate(), MlError);
}

TEST(Dataset, SubsetCopiesRowsAndLabels) {
  const Dataset d = tiny_dataset();
  const std::vector<std::size_t> idx = {1, 8};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.x.at(1, 0), 8.0);
  EXPECT_EQ(s.y[0], 0);
  EXPECT_EQ(s.y[1], 1);
  EXPECT_EQ(s.feature_names, d.feature_names);
}

TEST(Dataset, SubsetRejectsOutOfRange) {
  const Dataset d = tiny_dataset();
  const std::vector<std::size_t> idx = {99};
  EXPECT_THROW(d.subset(idx), MlError);
}

TEST(RandomSplit, PartitionsAllRows) {
  Rng rng(1);
  const auto split = random_split(100, 0.7, rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.test.size(), 30u);
  std::set<std::size_t> seen(split.train.begin(), split.train.end());
  seen.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RandomSplit, RejectsDegenerateInputs) {
  Rng rng(1);
  EXPECT_THROW(random_split(1, 0.7, rng), MlError);
  EXPECT_THROW(random_split(10, 0.0, rng), MlError);
  EXPECT_THROW(random_split(10, 1.0, rng), MlError);
}

TEST(RandomSplit, AlwaysLeavesBothSidesNonEmpty) {
  Rng rng(3);
  const auto split = random_split(3, 0.99, rng);
  EXPECT_GE(split.test.size(), 1u);
  EXPECT_GE(split.train.size(), 1u);
}

TEST(StratifiedKfold, FoldsPartitionAndPreserveClassBalance) {
  std::vector<int> labels;
  for (int i = 0; i < 90; ++i) labels.push_back(i % 3);
  Rng rng(5);
  const auto folds = stratified_kfold(labels, 3, rng);
  ASSERT_EQ(folds.size(), 3u);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.test.size(), 30u);
    EXPECT_EQ(fold.train.size(), 60u);
    // Each fold's test slice has 10 of each class.
    std::vector<int> counts(3, 0);
    for (const auto i : fold.test) counts[static_cast<std::size_t>(labels[i])]++;
    EXPECT_EQ(counts, (std::vector<int>{10, 10, 10}));
  }
}

TEST(StratifiedKfold, RejectsBadFoldCounts) {
  std::vector<int> labels = {0, 1};
  Rng rng(1);
  EXPECT_THROW(stratified_kfold(labels, 1, rng), MlError);
  EXPECT_THROW(stratified_kfold(labels, 3, rng), MlError);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Matrix x(100, 2);
  Rng rng(9);
  for (std::size_t r = 0; r < 100; ++r) {
    x.at(r, 0) = rng.normal(5.0, 2.0);
    x.at(r, 1) = rng.normal(-3.0, 0.5);
  }
  Standardizer s;
  s.fit(x);
  const Matrix t = s.transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t r = 0; r < 100; ++r) mean += t.at(r, c);
    mean /= 100.0;
    for (std::size_t r = 0; r < 100; ++r) {
      var += (t.at(r, c) - mean) * (t.at(r, c) - mean);
    }
    var /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(Standardizer, ConstantFeaturePassesThrough) {
  Matrix x(10, 1);
  for (std::size_t r = 0; r < 10; ++r) x.at(r, 0) = 42.0;
  Standardizer s;
  s.fit(x);
  const auto t = s.transform_row(std::vector<double>{42.0});
  EXPECT_DOUBLE_EQ(t[0], 0.0);  // (42 - 42) / 1
}

TEST(Standardizer, TransformBeforeFitThrows) {
  Standardizer s;
  EXPECT_THROW(s.transform(Matrix(1, 1)), MlError);
  EXPECT_THROW(s.transform_row(std::vector<double>{1.0}), MlError);
}

TEST(Standardizer, ColumnMismatchThrows) {
  Matrix x(5, 2);
  Standardizer s;
  s.fit(x);
  EXPECT_THROW(s.transform(Matrix(5, 3)), MlError);
}

}  // namespace
}  // namespace pml::ml
