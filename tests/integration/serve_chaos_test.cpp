// Socket-level chaos harness for the hardened serve transport (ctest -L
// serve -L chaos; build with PML_SANITIZE=thread or address for the
// sanitizer witnesses). Adversarial peers attack a live TcpServer over
// real loopback sockets: slow-loris writers that drip bytes without ever
// completing a line, never-newline byte floods, mid-request disconnects,
// seeded malformed frames, and a saturation wave at 4x the connection
// cap. The invariants are the serve hardening contract (docs/API.md,
// "Serve protocol > Limits"): bounded memory, deadline evictions, every
// accepted request answered with a valid (possibly degraded) reply,
// every rejection structured and counted, and a clean graceful drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/serve.hpp"

namespace pml::core {
namespace {

/// Model-less engine: the heuristic floor answers everything, so the
/// harness measures transport behavior, not compile throughput.
ServeOptions chaos_options(int read_timeout_ms) {
  ServeOptions o;
  o.async_compile = false;
  o.compile = CompileOptions::sweep({2}, {16}, {1024});
  o.max_connections = 8;
  o.max_line_bytes = 2048;
  o.read_timeout_ms = read_timeout_ms;
  o.queue_limit = 2;
  return o;
}

/// Minimal raw-socket peer. Reads are capped by a client-side
/// SO_RCVTIMEO so a misbehaving server fails the test instead of
/// hanging it.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ =
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0;
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~RawClient() { close(); }

  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  bool connected() const { return connected_; }

  bool send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<std::size_t>(w);
    }
    return true;
  }

  /// Up to the next '\n' (consumed, not returned); whatever arrived
  /// before EOF/reset/timeout otherwise.
  std::string read_line() {
    std::string line;
    char c;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') break;
      line.push_back(c);
    }
    return line;
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string ping_line() { return "{\"op\":\"ping\"}\n"; }

std::string select_line() {
  return R"({"op":"select","cluster":"MRI","collective":"allgather",)"
         R"("nodes":2,"ppn":16,"msg_bytes":1024})" "\n";
}

/// The liveness probe every scenario ends with: whatever the attack was,
/// a well-behaved client connecting afterwards gets a normal reply. A
/// transient `overloaded` reject is allowed — dead peers can still be
/// queued in the listen backlog ahead of the probe, briefly holding the
/// connection count at the cap — so the probe retries on ok:false.
void expect_server_alive(int port) {
  std::string reply;
  for (int attempt = 0; attempt < 100; ++attempt) {
    RawClient probe(port);
    ASSERT_TRUE(probe.connected());
    ASSERT_TRUE(probe.send_raw(ping_line()));
    reply = probe.read_line();
    ASSERT_FALSE(reply.empty());
    if (Json::parse(reply).at("ok").as_bool()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "server never recovered: " << reply;
}

TEST(ServeChaos, SlowLorisWritersAreEvictedOnTheLineDeadline) {
  ServeEngine engine(chaos_options(/*read_timeout_ms=*/200));
  TcpServer server(engine);
  const int port = server.start(0);

  constexpr int kLoris = 4;
  std::vector<std::thread> peers;
  for (int p = 0; p < kLoris; ++p) {
    peers.emplace_back([port] {
      RawClient c(port);
      if (!c.connected()) return;
      // Drip one byte every 30 ms, never a newline: faster than the
      // socket idle timeout, so only the per-line deadline can fire.
      for (int i = 0; i < 40; ++i) {
        if (!c.send_raw("x")) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
      }
    });
  }
  for (std::thread& p : peers) p.join();

  // Every loris was evicted server-side, and none of them ever became a
  // request.
  for (int spin = 0; spin < 200 && engine.stats().evicted <
                                       static_cast<std::uint64_t>(kLoris);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(engine.stats().evicted, static_cast<std::uint64_t>(kLoris));
  EXPECT_EQ(engine.stats().requests, 0u);
  expect_server_alive(port);
  server.stop();
}

TEST(ServeChaos, NeverNewlineFloodIsBoundedAndClosed) {
  ServeEngine engine(chaos_options(/*read_timeout_ms=*/5000));
  TcpServer server(engine);
  const int port = server.start(0);

  constexpr int kFlooders = 3;
  std::vector<std::thread> peers;
  std::atomic<int> saw_reject{0};
  for (int p = 0; p < kFlooders; ++p) {
    peers.emplace_back([port, &saw_reject] {
      RawClient c(port);
      if (!c.connected()) return;
      // 64 KiB of newline-free bytes against a 2 KiB line bound: the
      // server must cut the connection long before the flood ends
      // instead of buffering it.
      const std::string blob(4096, 'A');
      for (int i = 0; i < 16; ++i) {
        if (!c.send_raw(blob)) break;
      }
      const std::string line = c.read_line();
      // The structured reject is best-effort (a reset can outrun it);
      // count the ones that did arrive.
      if (line.find("max_line_bytes") != std::string::npos) {
        saw_reject.fetch_add(1);
      }
    });
  }
  for (std::thread& p : peers) p.join();

  for (int spin = 0; spin < 200 && engine.stats().overlong <
                                       static_cast<std::uint64_t>(kFlooders);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(engine.stats().overlong, static_cast<std::uint64_t>(kFlooders));
  EXPECT_EQ(engine.stats().requests, 0u);
  EXPECT_GE(saw_reject.load(), 0);  // informational; the counter is the gate
  expect_server_alive(port);
  server.stop();
}

TEST(ServeChaos, MidRequestDisconnectsLeaveNoTrace) {
  ServeEngine engine(chaos_options(/*read_timeout_ms=*/5000));
  TcpServer server(engine);
  const int port = server.start(0);

  const std::string request = select_line();
  // Hang up at every truncation point of a real request, including after
  // zero bytes; none of these ever completes a line, so none may reach
  // the engine or leave a connection behind.
  for (std::size_t cut = 0; cut + 1 < request.size(); cut += 3) {
    RawClient c(port);
    ASSERT_TRUE(c.connected());
    c.send_raw(request.substr(0, cut));
    c.close();
  }
  // And the rudest variant: send a full request, vanish before the reply.
  for (int i = 0; i < 4; ++i) {
    RawClient c(port);
    ASSERT_TRUE(c.connected());
    c.send_raw(request);
    c.close();
  }

  // The full-request peers were answered into the void (or the send
  // failed harmlessly); the truncated ones never became requests.
  for (int spin = 0; spin < 200 && engine.connections() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(engine.connections(), 0);
  EXPECT_LE(engine.stats().requests, 4u);
  EXPECT_EQ(engine.stats().errors, 0u);
  expect_server_alive(port);
  server.stop();
}

TEST(ServeChaos, SeededMalformedFramesAlwaysGetOneStructuredReply) {
  ServeEngine engine(chaos_options(/*read_timeout_ms=*/5000));
  TcpServer server(engine);
  const int port = server.start(0);

  std::uint64_t state = 0xc4a05f00dULL;
  RawClient c(port);
  ASSERT_TRUE(c.connected());
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    const std::size_t len = 1 + splitmix64(state) % 160;
    std::string frame;
    frame.reserve(len + 1);
    for (std::size_t b = 0; b < len; ++b) {
      char ch = static_cast<char>(splitmix64(state) & 0xff);
      if (ch == '\n') ch = ' ';
      frame.push_back(ch);
    }
    frame.push_back('\n');
    ASSERT_TRUE(c.send_raw(frame)) << "frame " << i;
    const std::string reply = c.read_line();
    ASSERT_FALSE(reply.empty()) << "frame " << i;
    Json parsed;
    ASSERT_NO_THROW(parsed = Json::parse(reply)) << "frame " << i << ": "
                                                 << reply;
    ASSERT_TRUE(parsed.contains("ok")) << "frame " << i;
  }
  // One reply per frame, all on a single healthy connection.
  EXPECT_EQ(engine.stats().requests, static_cast<std::uint64_t>(kFrames));
  c.close();
  expect_server_alive(port);
  server.stop();
}

TEST(ServeChaos, SaturationAtFourTimesTheCapAccountsForEveryPeer) {
  ServeEngine engine(chaos_options(/*read_timeout_ms=*/5000));
  TcpServer server(engine);
  const int port = server.start(0);
  const int cap = engine.options().max_connections;

  const int kClients = 4 * cap;
  std::atomic<int> served{0};
  std::atomic<int> rejected{0};
  std::atomic<int> lost{0};
  std::vector<std::thread> peers;
  for (int p = 0; p < kClients; ++p) {
    peers.emplace_back([port, &served, &rejected, &lost] {
      RawClient c(port);
      if (!c.connected()) {
        lost.fetch_add(1);
        return;
      }
      c.send_raw(select_line());
      const std::string line = c.read_line();
      Json reply;
      try {
        reply = Json::parse(line);
      } catch (const Error&) {
        // Reset outran the reject line: counted server-side below.
        lost.fetch_add(1);
        return;
      }
      if (reply.at("ok").as_bool()) {
        // Served: full-quality or degraded (shed), but always a usable
        // selection.
        served.fetch_add(1);
      } else {
        EXPECT_NE(reply.at("error").as_string().find("overloaded"),
                  std::string::npos)
            << line;
        rejected.fetch_add(1);
      }
    });
  }
  for (std::thread& p : peers) p.join();

  // Conservation: every peer was either served exactly one valid reply
  // or rejected at the cap — and the server-side tallies agree with the
  // client-side ones even for peers whose reject line was reset away.
  const ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(served.load() + rejected.load() + lost.load(), kClients);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(served.load()));
  EXPECT_EQ(stats.overloaded,
            static_cast<std::uint64_t>(kClients - served.load()));
  EXPECT_GE(served.load(), 1);
  EXPECT_EQ(stats.errors, 0u);

  // Graceful drain: in-flight work finishes, the queue empties, and the
  // engine then refuses new work while still answering health probes.
  server.stop(/*drain=*/true);
  EXPECT_TRUE(engine.draining());
  EXPECT_EQ(engine.queue_depth(), 0);
  EXPECT_EQ(engine.connections(), 0);
  const Json health = Json::parse(engine.handle_line(R"({"op":"health"})"));
  EXPECT_TRUE(health.at("ok").as_bool());
  EXPECT_TRUE(health.at("draining").as_bool());
  const Json refused = Json::parse(engine.handle_line(select_line()));
  EXPECT_FALSE(refused.at("ok").as_bool());
  EXPECT_TRUE(refused.at("draining").as_bool());
}

}  // namespace
}  // namespace pml::core
