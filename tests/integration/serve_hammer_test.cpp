// Serve-layer concurrency suite (ctest -L serve): N client threads hammer
// one ServeEngine with a mixed hit/miss/degraded workload, and a chaos
// case corrupts the model artifact mid-serve. Run under PML_SANITIZE=thread
// these tests are the TSan witnesses for the PmlFramework thread-safety
// contract (framework.hpp) — notably the formerly racy inference_seconds_
// write in compile_for — and for the serve cache/compile-job locking.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/artifact.hpp"
#include "common/strings.hpp"
#include "core/serve.hpp"

namespace pml::core {
namespace {

PmlFramework& trained() {
  static PmlFramework fw = [] {
    TrainOptions options;
    options.forest.n_trees = 8;
    const std::vector<sim::ClusterSpec> clusters = {
        sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
    return PmlFramework::train(clusters, options);
  }();
  return fw;
}

/// An MRI variant with index-unique silicon: every index is a distinct
/// hardware fingerprint, i.e. a guaranteed cache miss and compile.
Json respec(int index) {
  Json spec = sim::cluster_by_name("MRI").to_json();
  spec["hardware"]["cores"] = 32 + index;
  return spec;
}

class ServeHammerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pml_serve_hammer_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    write_artifact(model_path(), trained().to_json(), "model");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string model_path() const { return (dir_ / "model.json").string(); }

  ServeOptions options() const {
    ServeOptions o;
    o.model_path = model_path();
    o.compile = CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
    o.shards = 4;
    o.shard_capacity = 32;  // roomy: this suite measures races, not eviction
    return o;
  }

  std::filesystem::path dir_;
};

TEST_F(ServeHammerTest, ConcurrentMixedWorkloadAnswersEveryRequest) {
  ServeEngine engine(options());
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 40;

  std::atomic<int> failures{0};
  std::mutex first_failure_mutex;
  std::string first_failure;

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        std::string request;
        switch ((t + i) % 5) {
          case 0:  // steady-state hit path on a builtin cluster
            request =
                R"({"op":"select","cluster":"MRI","collective":"allgather",)"
                R"("nodes":2,"ppn":16,"msg_bytes":1024})";
            break;
          case 1:  // miss path: per-(t,i) unique fingerprint, async compile
            request = std::string(R"({"op":"select","cluster":)") +
                      respec(t * kRequestsPerThread + i).dump() +
                      R"(,"collective":"alltoall","nodes":4,"ppn":16,)"
                      R"("msg_bytes":65536})";
            break;
          case 2:  // blocking compile
            request =
                R"({"op":"table","cluster":"Frontera","wait":true})";
            break;
          case 3:
            request = R"({"op":"stats"})";
            break;
          default:
            request = R"({"op":"ping"})";
        }
        const Json reply = Json::parse(engine.handle_line(request));
        if (!reply.at("ok").as_bool()) {
          failures.fetch_add(1);
          std::lock_guard<std::mutex> lock(first_failure_mutex);
          if (first_failure.empty()) first_failure = reply.dump();
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  engine.drain();

  EXPECT_EQ(failures.load(), 0) << first_failure;
  const ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread));
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.compiles, 0u);
}

TEST_F(ServeHammerTest, ModelCorruptionMidServeDegradesWithoutDroppedRequests) {
  ServeEngine engine(options());
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 30;

  std::atomic<int> failures{0};
  std::atomic<int> done{0};
  const std::string pristine = read_file(model_path());

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        // All misses (unique fingerprints): every request walks the full
        // ladder — revalidate, compile, or heuristic — while the artifact
        // churns underneath.
        const std::string request =
            std::string(R"({"op":"select","cluster":)") +
            respec(1000 + t * kRequestsPerThread + i).dump() +
            R"(,"collective":"allgather","nodes":2,"ppn":16,)"
            R"("msg_bytes":1024,"wait":true})";
        const Json reply = Json::parse(engine.handle_line(request));
        if (!reply.at("ok").as_bool()) failures.fetch_add(1);
      }
      done.fetch_add(1);
    });
  }

  // Corrupt the artifact roughly mid-hammer, then restore it.
  while (done.load() == 0 && engine.stats().requests < kThreads * 5) {
    std::this_thread::yield();
  }
  write_file(model_path(), pristine.substr(0, pristine.size() / 3));
  while (done.load() < kThreads / 2 &&
         engine.stats().requests < kThreads * kRequestsPerThread / 2) {
    std::this_thread::yield();
  }
  write_file(model_path(), pristine);

  for (std::thread& c : clients) c.join();
  engine.drain();
  EXPECT_EQ(failures.load(), 0);

  // With the artifact corrupt, a fresh miss deterministically degrades to
  // the heuristic rung (wait=true forces the failed revalidate first)...
  write_file(model_path(), "{\"definitely\": \"not a model\"}");
  const Json degraded = Json::parse(engine.handle_line(
      std::string(R"({"op":"select","cluster":)") + respec(5001).dump() +
      R"(,"collective":"allgather","nodes":2,"ppn":16,"msg_bytes":1024,)"
      R"("wait":true})"));
  ASSERT_TRUE(degraded.at("ok").as_bool());
  EXPECT_TRUE(degraded.at("degraded").as_bool());
  EXPECT_EQ(degraded.at("source").as_string(), "heuristic");

  // ...and repairing the file on disk restores full-quality serving with
  // no restart: the next miss revalidates, reloads, and compiles.
  write_file(model_path(), pristine);
  const Json recovered = Json::parse(engine.handle_line(
      std::string(R"({"op":"select","cluster":)") + respec(5002).dump() +
      R"(,"collective":"allgather","nodes":2,"ppn":16,"msg_bytes":1024,)"
      R"("wait":true})"));
  ASSERT_TRUE(recovered.at("ok").as_bool());
  EXPECT_FALSE(recovered.at("degraded").as_bool());
  EXPECT_EQ(recovered.at("source").as_string(), "table");
}

// Micro-batch witness: many threads issue uncached selects against ONE
// cluster, so the leader/follower coalescer actually groups them into
// shared FlatForest sweeps (unique-fingerprint hammers above mostly batch
// alone). Every query sticks to the engine's sweep grid, where the
// model-inference rung and the compiled-table rung provably agree — so
// every reply, whichever rung and whatever batch it rode, must equal
// direct single-query inference on the same trained model.
TEST_F(ServeHammerTest, CoalescedSelectsMatchDirectInference) {
  ServeEngine engine(options());
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;

  struct Query {
    coll::Collective collective;
    int nodes;
    int ppn;
    std::uint64_t msg_bytes;
  };
  const auto query_for = [](int t, int i) {
    return Query{(t + i) % 2 == 0 ? coll::Collective::kAllgather
                                  : coll::Collective::kAlltoall,
                 (i % 4 < 2) ? 2 : 4, 16,
                 (i % 2 == 0) ? std::uint64_t{1024} : std::uint64_t{65536}};
  };

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const Query q = query_for(t, i);
        const std::string request =
            std::string(R"({"op":"select","cluster":"Frontera",)") +
            R"("collective":")" + coll::to_string(q.collective) +
            R"(","nodes":)" + std::to_string(q.nodes) +
            R"(,"ppn":)" + std::to_string(q.ppn) + R"(,"msg_bytes":)" +
            std::to_string(q.msg_bytes) + "}";
        const Json reply = Json::parse(engine.handle_line(request));
        if (!reply.at("ok").as_bool()) {
          mismatches.fetch_add(1);
          continue;
        }
        const coll::Selection expected = trained().select(
            q.collective, sim::cluster_by_name("Frontera"),
            sim::Topology{q.nodes, q.ppn}, q.msg_bytes);
        if (reply.at("algorithm").as_string() !=
                coll::to_string(expected.algorithm) ||
            reply.at("selection").at("encoded").as_string() !=
                expected.encode()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  engine.drain();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.stats().errors, 0u);
}

// Satellite regression: compile_for used to write the non-atomic
// inference_seconds_ member, so concurrent compiles on one framework were
// a data race (TSan-visible). Concurrent compiles must now be clean and
// byte-deterministic, with per-compile timing on the table itself.
TEST_F(ServeHammerTest, ConcurrentCompileForIsRaceFreeAndDeterministic) {
  PmlFramework& fw = trained();
  const CompileOptions options =
      CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
  const std::string expected =
      fw.compile_for(sim::cluster_by_name("MRI"), options).to_json().dump();

  constexpr std::size_t kThreads = 8;
  std::vector<std::string> dumps(kThreads);
  std::vector<double> seconds(kThreads, 0.0);
  std::vector<std::thread> compilers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    compilers.emplace_back([&, t] {
      const TuningTable table =
          fw.compile_for(sim::cluster_by_name("MRI"), options);
      dumps[t] = table.to_json().dump();
      seconds[t] = table.compile_seconds();
    });
  }
  for (std::thread& c : compilers) c.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(dumps[t], expected) << "thread " << t;
    EXPECT_GT(seconds[t], 0.0) << "thread " << t;
  }
  EXPECT_GT(fw.inference_seconds(), 0.0);
}

}  // namespace
}  // namespace pml::core
