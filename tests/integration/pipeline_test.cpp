// End-to-end integration: offline training -> serialized bundle -> online
// compile on an unseen cluster -> tuning table -> the chosen algorithm
// actually executed on the event-driven simulator with verified payloads.
// This is the whole Fig. 3 + Fig. 4 lifecycle in one test binary.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "coll/cost.hpp"
#include "coll/runner.hpp"
#include "common/strings.hpp"
#include "core/framework.hpp"

namespace pml {
namespace {

core::TrainOptions fast_options() {
  core::TrainOptions options;
  options.forest.n_trees = 25;
  return options;
}

std::vector<sim::ClusterSpec> training_without(const std::string& name) {
  std::vector<sim::ClusterSpec> out;
  for (const auto& c : sim::builtin_clusters()) {
    if (c.name != name) out.push_back(c);
  }
  return out;
}

TEST(Pipeline, TrainShipCompileRunOnUnseenCluster) {
  // Offline stage.
  auto fw = core::PmlFramework::train(training_without("MRI"), fast_options());

  // Ship: serialize to disk, load back (the artefact an MPI library
  // would bundle).
  const auto path =
      (std::filesystem::temp_directory_path() / "pml_it_model.json").string();
  write_file(path, fw.to_json().dump());
  auto shipped = core::PmlFramework::load(Json::parse(read_file(path)));
  std::filesystem::remove(path);

  // Online stage on the unseen cluster.
  const auto& mri = sim::cluster_by_name("MRI");
  const std::vector<int> nodes = {1, 2};
  const std::vector<int> ppns = {4, 8};
  const auto sizes = sim::power_of_two_sizes(12);
  const core::TuningTable table =
      shipped.compile_for(mri, core::CompileOptions::sweep(nodes, ppns, sizes));

  // Runtime: execute the selected algorithms on the event engine with
  // payload verification at several job shapes.
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    for (const std::uint64_t msg : {16ull, 2048ull}) {
      const sim::Topology topo{2, 8};
      const coll::Selection choice =
          table.lookup(collective, topo.nodes, topo.ppn, msg);
      const auto result = coll::run_selection(mri, topo, choice, msg);
      EXPECT_TRUE(result.verified)
          << coll::to_string(collective) << " " << choice.display();
      EXPECT_GT(result.seconds, 0.0);
    }
  }
}

TEST(Pipeline, TableChoicesNearOptimalOnEventEngine) {
  // The framework trains on analytic labels; verify its choices hold up on
  // the *event-driven* simulator too (independent cost path).
  auto fw = core::PmlFramework::train(training_without("Frontera"),
                                      fast_options());
  const auto& frontera = sim::cluster_by_name("Frontera");
  const sim::Topology topo{2, 8};

  double log_ratio = 0.0;
  int n = 0;
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    for (const std::uint64_t msg : {8ull, 256ull, 8192ull, 131072ull}) {
      const coll::Selection choice =
          fw.select(collective, frontera, topo, msg);
      const double t_choice =
          coll::run_selection(frontera, topo, choice, msg).seconds;
      double t_best = t_choice;
      for (const auto a :
           coll::valid_algorithms(collective, topo.world_size())) {
        t_best = std::min(
            t_best, coll::run_collective(frontera, topo, a, msg).seconds);
      }
      log_ratio += std::log(t_choice / t_best);
      ++n;
    }
  }
  // Geomean within 35% of the event-engine optimum across the sweep.
  EXPECT_LT(std::exp(log_ratio / n), 1.35);
}

TEST(Pipeline, LeaveClusterOutBeatsStaticDefaultOnAverage) {
  // The headline claim, verified end-to-end at test scale: on a cluster
  // the model never saw, PML's selections are at least as good as the
  // static MVAPICH-style table on geometric average.
  auto fw = core::PmlFramework::train(training_without("MRI"), fast_options());
  core::MvapichDefaultSelector mvapich;
  const auto& mri = sim::cluster_by_name("MRI");

  double log_ratio = 0.0;
  int n = 0;
  for (const int ppn : {64, 128}) {
    const sim::Topology topo{4, ppn};
    for (const auto collective :
         {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
      for (std::uint64_t msg = 1; msg <= (1u << 15); msg <<= 1) {
        const double t_fw = coll::analytic_cost(
            mri, topo, fw.select(collective, mri, topo, msg), msg);
        const double t_def = coll::analytic_cost(
            mri, topo, mvapich.select(collective, mri, topo, msg), msg);
        log_ratio += std::log(t_def / t_fw);
        ++n;
      }
    }
  }
  EXPECT_GT(std::exp(log_ratio / n), 1.0);
}

}  // namespace
}  // namespace pml
