// Chaos suite (ctest -L chaos): drive the full online stage and the
// discrete-event simulator through every failure mode this PR's robustness
// layer handles — corrupt/truncated/legacy/unreadable artifacts on one
// axis, every sim fault type (alone and combined) on the other — and
// assert the system's two invariants: the online stage always returns a
// schema-valid tuning table covering the requested grid, and fault-
// injected simulations always complete deterministically.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "coll/runner.hpp"
#include "common/artifact.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/framework.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace pml {
namespace {

core::PmlFramework& trained() {
  static core::PmlFramework fw = [] {
    core::TrainOptions options;
    options.forest.n_trees = 8;
    const std::vector<sim::ClusterSpec> clusters = {
        sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
    return core::PmlFramework::train(clusters, options);
  }();
  return fw;
}

const sim::ClusterSpec& target() { return sim::cluster_by_name("MRI"); }

/// The requested grid, used both to compile and to audit coverage.
const std::vector<int> kNodes = {2, 4};
const std::vector<int> kPpn = {16};
const std::vector<std::uint64_t> kSizes = {1024, 65536};

/// A usable table answers every (collective, nodes, ppn, size) cell of the
/// requested grid with an algorithm that is valid at that world size.
/// Checked over the paper's collectives: model-compiled tables cover those
/// two, heuristic fallback tables cover all four.
void expect_covers_grid(const core::TuningTable& table) {
  ASSERT_FALSE(table.empty());
  for (const auto collective : coll::paper_collectives()) {
    for (const int nodes : kNodes) {
      for (const int ppn : kPpn) {
        for (const std::uint64_t bytes : kSizes) {
          const coll::Selection s =
              table.lookup(collective, nodes, ppn, bytes);
          EXPECT_TRUE(coll::selection_supports(s, sim::Topology{nodes, ppn}))
              << coll::to_string(collective) << " " << nodes << "x" << ppn
              << " @" << bytes;
        }
      }
    }
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pml_chaos_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  core::CompileOptions options() const {
    core::CompileOptions o = core::CompileOptions::sweep(kNodes, kPpn, kSizes);
    o.cache_dir = dir_.string();
    o.cache_retry.sleep = [](double) {};  // no real sleeps in tests
    return o;
  }

  std::string model_path() const { return (dir_ / "model.json").string(); }
  std::string cache_path() const {
    return (dir_ / (target().name + ".table.json")).string();
  }

  std::filesystem::path dir_;
};

// --- Artifact chaos: every corruption mode, applied to model and cache -----

/// Named ways of damaging an artifact file in place.
struct Damage {
  const char* name;
  std::function<void(const std::string&)> apply;
};

std::vector<Damage> damage_modes() {
  return {
      {"deleted", [](const std::string& p) { std::filesystem::remove(p); }},
      {"truncated",
       [](const std::string& p) {
         const std::string full = read_file(p);
         write_file(p, full.substr(0, full.size() / 3));
       }},
      {"bit_flipped",
       [](const std::string& p) {
         std::string bytes = read_file(p);
         bytes[bytes.size() / 2] ^= 0x20;
         write_file(p, bytes);
       }},
      {"emptied", [](const std::string& p) { write_file(p, ""); }},
      {"foreign_json",
       [](const std::string& p) { write_file(p, "{\"not\": \"ours\"}"); }},
      {"directory",
       [](const std::string& p) {
         std::filesystem::remove(p);
         std::filesystem::create_directories(p);
       }},
  };
}

TEST_F(ChaosTest, EveryDamageModeOnTheModelStillYieldsAUsableTable) {
  for (const Damage& damage : damage_modes()) {
    SCOPED_TRACE(damage.name);
    write_artifact(model_path(), trained().to_json(), "model");
    damage.apply(model_path());
    std::filesystem::remove_all(cache_path());  // no cache to hide behind
    const core::TuningTable table =
        core::online_table(model_path(), target(), options());
    expect_covers_grid(table);
    std::filesystem::remove_all(model_path());
  }
}

TEST_F(ChaosTest, EveryDamageModeOnTheCacheStillYieldsAUsableTable) {
  const core::TuningTable clean =
      trained().compile_or_cached(target(), options());
  for (const Damage& damage : damage_modes()) {
    SCOPED_TRACE(damage.name);
    std::filesystem::remove_all(cache_path());
    trained().compile_or_cached(target(), options());  // seed a fresh cache
    damage.apply(cache_path());
    const core::TuningTable table =
        trained().compile_or_cached(target(), options());
    expect_covers_grid(table);
    // Recompilation reproduces the clean table exactly.
    EXPECT_EQ(table.to_json().dump(), clean.to_json().dump());
    std::filesystem::remove_all(cache_path());
  }
}

TEST_F(ChaosTest, DoctorNeverThrowsOnDamagedArtifacts) {
  for (const Damage& damage : damage_modes()) {
    SCOPED_TRACE(damage.name);
    const std::string file = (dir_ / "artifact.json").string();
    std::filesystem::remove_all(file);
    write_artifact(file, trained().to_json(), "model");
    damage.apply(file);
    const ArtifactInfo info = inspect_artifact(file);
    EXPECT_NE(info.status, ArtifactStatus::kOk);
    std::filesystem::remove_all(file);
  }
}

// --- Simulation chaos: every fault type, alone and combined ----------------

std::vector<std::pair<const char*, sim::FaultPlan>> fault_scenarios() {
  std::vector<std::pair<const char*, sim::FaultPlan>> scenarios;

  sim::FaultPlan degraded;
  degraded.link_degradations.push_back({0, 0.25, 1e-5});
  scenarios.emplace_back("degraded_link", degraded);

  sim::FaultPlan straggler;
  straggler.stragglers.push_back({2, 6.0});
  scenarios.emplace_back("straggler", straggler);

  sim::FaultPlan flapping;
  flapping.flaps.push_back({1, 0.0, 2e-4});
  flapping.flaps.push_back({1, 5e-4, 1e-4});
  scenarios.emplace_back("flapping_nic", flapping);

  sim::FaultPlan corrupting;
  corrupting.corruption.probability = 0.5;
  scenarios.emplace_back("corrupting", corrupting);

  sim::FaultPlan everything;
  everything.seed = 99;
  everything.link_degradations.push_back({0, 0.5, 2e-6});
  everything.stragglers.push_back({1, 2.0});
  everything.flaps.push_back({2, 0.0, 1e-4});
  everything.corruption.probability = 0.25;
  scenarios.emplace_back("everything_at_once", everything);

  return scenarios;
}

TEST_F(ChaosTest, FaultedRunsCompleteAndAreDeterministic) {
  const coll::Algorithm algorithms[] = {coll::Algorithm::kAgRing,
                                        coll::Algorithm::kAaPairwise,
                                        coll::Algorithm::kArRing,
                                        coll::Algorithm::kBcBinomial};
  for (const auto& [name, plan] : fault_scenarios()) {
    SCOPED_TRACE(name);
    for (const auto algorithm : algorithms) {
      sim::RunOptions opts;
      opts.payload = sim::PayloadMode::kTimingOnly;
      opts.faults = plan;
      const auto run = [&] {
        return coll::run_collective(sim::cluster_by_name("Frontera"),
                                    sim::Topology{4, 2}, algorithm, 2048, opts)
            .seconds;
      };
      const double first = run();
      EXPECT_GT(first, 0.0);
      EXPECT_EQ(first, run());  // bit-identical on repeat
    }
  }
}

TEST_F(ChaosTest, CorruptionSurfacesOnlyInVerifyMode) {
  sim::FaultPlan plan;
  plan.corruption.probability = 1.0;

  sim::RunOptions verify;
  verify.faults = plan;
  EXPECT_THROW(
      coll::run_collective(sim::cluster_by_name("Frontera"),
                           sim::Topology{2, 2}, coll::Algorithm::kAgRing, 512,
                           verify),
      SimError);

  sim::RunOptions timing = verify;
  timing.payload = sim::PayloadMode::kTimingOnly;
  EXPECT_NO_THROW(
      coll::run_collective(sim::cluster_by_name("Frontera"),
                           sim::Topology{2, 2}, coll::Algorithm::kAgRing, 512,
                           timing));
}

TEST_F(ChaosTest, FaultPlansSurviveJsonRoundTripsThroughTheOnlineStage) {
  // Plans are artifacts too: a scenario written to disk, enveloped, and
  // reloaded drives the exact same simulation.
  for (const auto& [name, plan] : fault_scenarios()) {
    SCOPED_TRACE(name);
    const std::string file = (dir_ / "plan.json").string();
    write_artifact(file, plan.to_json(), "fault-plan");
    const sim::FaultPlan back = sim::FaultPlan::from_json(
        artifact_payload(Json::parse(read_file(file)), "fault-plan"));

    sim::RunOptions a;
    a.payload = sim::PayloadMode::kTimingOnly;
    a.faults = plan;
    sim::RunOptions b = a;
    b.faults = back;
    const auto run = [](const sim::RunOptions& opts) {
      return coll::run_collective(sim::cluster_by_name("Frontera"),
                                  sim::Topology{4, 2},
                                  coll::Algorithm::kAgBruck, 4096, opts)
          .seconds;
    };
    EXPECT_EQ(run(a), run(b));
  }
}

}  // namespace
}  // namespace pml
