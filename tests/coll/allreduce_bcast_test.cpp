// Tests for the future-work extension collectives: MPI_Allreduce and
// MPI_Bcast flat algorithms (correctness on real payloads, schedule
// constraints, performance-shape sanity, analytic/engine consistency).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "coll/allreduce.hpp"
#include "coll/bcast.hpp"
#include "coll/cost.hpp"
#include "coll/runner.hpp"
#include "common/error.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }

TEST(CombineBytes, WrappingSum) {
  std::vector<std::byte> dst = {std::byte{200}, std::byte{1}};
  const std::vector<std::byte> src = {std::byte{100}, std::byte{2}};
  combine_bytes(dst, src);
  EXPECT_EQ(dst[0], std::byte{44});  // 300 mod 256
  EXPECT_EQ(dst[1], std::byte{3});
  EXPECT_THROW(combine_bytes(dst, std::vector<std::byte>(1)), SimError);
}

using ExtCase = std::tuple<Algorithm, int /*nodes*/, int /*ppn*/, int /*bytes*/>;

class ExtensionCorrectness : public ::testing::TestWithParam<ExtCase> {};

TEST_P(ExtensionCorrectness, PayloadVerified) {
  const auto [algo, nodes, ppn, bytes] = GetParam();
  if (!algorithm_supports(algo, nodes * ppn)) {
    GTEST_SKIP() << "unsupported world size";
  }
  const RunResult r = run_collective(frontera(), sim::Topology{nodes, ppn},
                                     algo, static_cast<std::uint64_t>(bytes));
  EXPECT_TRUE(r.verified);
  EXPECT_GE(r.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtensionCorrectness,
    ::testing::Combine(
        ::testing::Values(Algorithm::kArRecursiveDoubling,
                          Algorithm::kArRabenseifner, Algorithm::kArRing,
                          Algorithm::kBcBinomial,
                          Algorithm::kBcScatterAllgather,
                          Algorithm::kBcPipelinedRing),
        ::testing::Values(1, 2, 3),
        ::testing::Values(1, 2, 4, 5),
        ::testing::Values(1, 16, 1024, 100000)),
    [](const ::testing::TestParamInfo<ExtCase>& param_info) {
      return to_string(collective_of(std::get<0>(param_info.param))) + "_" +
             to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(std::get<2>(param_info.param)) + "_b" +
             std::to_string(std::get<3>(param_info.param));
    });

class ExtensionWorlds : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionWorlds, AllValidAlgorithmsCorrect) {
  const int p = GetParam();
  for (const auto collective : {Collective::kAllreduce, Collective::kBcast}) {
    for (const Algorithm a : valid_algorithms(collective, p)) {
      const RunResult r =
          run_collective(frontera(), sim::Topology{1, p}, a, 100);
      EXPECT_TRUE(r.verified) << display_name(a) << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, ExtensionWorlds,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 11, 16, 24));

TEST(ExtensionRegistry, CollectivesAndAlgorithms) {
  EXPECT_EQ(all_collectives().size(), 4u);
  EXPECT_EQ(paper_collectives().size(), 2u);
  EXPECT_EQ(algorithms_for(Collective::kAllreduce).size(), 3u);
  EXPECT_EQ(algorithms_for(Collective::kBcast).size(), 3u);
  EXPECT_EQ(collective_of(Algorithm::kArRing), Collective::kAllreduce);
  EXPECT_EQ(collective_of(Algorithm::kBcBinomial), Collective::kBcast);
  EXPECT_EQ(algorithm_from_string("allreduce:ring"), Algorithm::kArRing);
  EXPECT_EQ(algorithm_from_string("rabenseifner"), Algorithm::kArRabenseifner);
  // "ring" alone is ambiguous now (allgather vs allreduce).
  EXPECT_THROW(algorithm_from_string("ring"), Error);
}

TEST(ExtensionRegistry, Pow2Constraints) {
  EXPECT_FALSE(algorithm_supports(Algorithm::kArRecursiveDoubling, 12));
  EXPECT_FALSE(algorithm_supports(Algorithm::kArRabenseifner, 6));
  EXPECT_TRUE(algorithm_supports(Algorithm::kArRing, 6));
  EXPECT_TRUE(algorithm_supports(Algorithm::kBcBinomial, 13));
}

TEST(AllreduceShape, RabenseifnerBeatsRdAtLargeMessages) {
  // RD moves n per step; Rabenseifner halves volumes — bandwidth wins.
  const sim::Topology topo{4, 8};
  const auto rd = run_collective(frontera(), topo,
                                 Algorithm::kArRecursiveDoubling, 512 << 10);
  const auto rab =
      run_collective(frontera(), topo, Algorithm::kArRabenseifner, 512 << 10);
  EXPECT_LT(rab.seconds, rd.seconds);
}

TEST(AllreduceShape, RdBestAtTinyMessages) {
  const sim::Topology topo{4, 8};
  const auto rd =
      run_collective(frontera(), topo, Algorithm::kArRecursiveDoubling, 8);
  const auto ring = run_collective(frontera(), topo, Algorithm::kArRing, 8);
  EXPECT_LT(rd.seconds, ring.seconds);
}

TEST(BcastShape, BinomialBestAtTinyMessages) {
  const sim::Topology topo{4, 8};
  const auto binom =
      run_collective(frontera(), topo, Algorithm::kBcBinomial, 8);
  const auto sag =
      run_collective(frontera(), topo, Algorithm::kBcScatterAllgather, 8);
  const auto ring =
      run_collective(frontera(), topo, Algorithm::kBcPipelinedRing, 8);
  EXPECT_LT(binom.seconds, sag.seconds);
  EXPECT_LT(binom.seconds, ring.seconds);
}

TEST(BcastShape, ScatterAllgatherBeatsBinomialAtLargeMessagesSingleNode) {
  // On one node the doubling allgather has no NIC contention, so the
  // chunked algorithm's 2x bandwidth advantage shows cleanly.
  const sim::Topology topo{1, 8};
  const auto binom =
      run_collective(frontera(), topo, Algorithm::kBcBinomial, 1 << 20);
  const auto sag =
      run_collective(frontera(), topo, Algorithm::kBcScatterAllgather,
                     1 << 20);
  EXPECT_LT(sag.seconds, binom.seconds);
}

TEST(BcastShape, PipelinedRingBeatsBinomialAtHugeMessagesMultiNode) {
  // Across nodes the chain crosses each NIC once; the binomial tree pushes
  // the full payload log(p) times along its critical path.
  const sim::Topology topo{4, 8};
  const auto binom =
      run_collective(frontera(), topo, Algorithm::kBcBinomial, 4 << 20);
  const auto ring =
      run_collective(frontera(), topo, Algorithm::kBcPipelinedRing, 4 << 20);
  EXPECT_LT(ring.seconds, binom.seconds);
}

TEST(BcastShape, PipelineSegmentCaps) {
  EXPECT_EQ(bcast_pipeline_segment(100), 100u);
  EXPECT_EQ(bcast_pipeline_segment(1 << 20), 8u * 1024u);
  EXPECT_EQ(bcast_pipeline_segment(0), 1u);
}

TEST(ExtensionConsistency, AnalyticWithinFactorOfEngine) {
  const sim::Topology topo{2, 4};
  const sim::NetworkModel model(frontera(), topo);
  for (const auto collective : {Collective::kAllreduce, Collective::kBcast}) {
    for (const Algorithm a : valid_algorithms(collective, 8)) {
      for (const std::uint64_t bytes : {64ull, 16384ull, 524288ull}) {
        const double engine =
            run_collective(frontera(), topo, a, bytes).seconds;
        const double analytic = analytic_cost(model, a, bytes);
        const double ratio = analytic / engine;
        EXPECT_GT(ratio, 1.0 / 3.0) << display_name(a) << " " << bytes;
        EXPECT_LT(ratio, 3.0) << display_name(a) << " " << bytes;
      }
    }
  }
}

TEST(ExtensionConsistency, TimeGrowsWithMessageSize) {
  const sim::Topology topo{2, 4};
  for (const auto collective : {Collective::kAllreduce, Collective::kBcast}) {
    for (const Algorithm a : valid_algorithms(collective, 8)) {
      const auto small = run_collective(frontera(), topo, a, 64);
      const auto large = run_collective(frontera(), topo, a, 256 << 10);
      EXPECT_LT(small.seconds, large.seconds) << display_name(a);
    }
  }
}

}  // namespace
}  // namespace pml::coll
