// Tests for the structured Selection API (label space v2): encoding
// stability, v1-prefix layout of the selection space, topology support
// rules, and v1 label decoding.
#include <gtest/gtest.h>

#include "coll/selection.hpp"
#include "common/error.hpp"

namespace pml::coll {
namespace {

TEST(Selection, FlatEncodesAsV1Name) {
  for (const Collective c : all_collectives()) {
    for (const Algorithm a : algorithms_for(c)) {
      const Selection s = Selection::flat(a);
      EXPECT_EQ(s.encode(), to_string(a));
      EXPECT_EQ(s.display(), display_name(a));
      EXPECT_EQ(s.collective(), c);
      EXPECT_FALSE(s.hierarchical());
    }
  }
}

TEST(Selection, LeaderEncoding) {
  const Selection s =
      Selection::leader(Algorithm::kAgRing, Algorithm::kBcBinomial);
  EXPECT_EQ(s.encode(), "leader:ring+binomial");
  EXPECT_EQ(s.display(), "Leader (Ring / Binomial Tree)");
  EXPECT_TRUE(s.hierarchical());
  EXPECT_EQ(s.collective(), Collective::kAllgather);
}

TEST(Selection, EncodeDecodeRoundTripsOverEverySpace) {
  for (const Collective c : all_collectives()) {
    for (const Selection& s : selection_space(c)) {
      EXPECT_EQ(Selection::decode(c, s.encode()), s) << s.encode();
    }
  }
}

TEST(Selection, DecodesBareV1Labels) {
  // The collective context resolves names that are ambiguous across
  // collectives, exactly like v1 tuning tables stored them.
  EXPECT_EQ(Selection::decode(Collective::kAllgather, "ring"),
            Selection::flat(Algorithm::kAgRing));
  EXPECT_EQ(Selection::decode(Collective::kAllreduce, "ring"),
            Selection::flat(Algorithm::kArRing));
  EXPECT_EQ(Selection::decode(Collective::kAlltoall, "bruck"),
            Selection::flat(Algorithm::kAaBruck));
}

TEST(Selection, DecodeRejectsMalformedInput) {
  EXPECT_THROW(Selection::decode(Collective::kAllgather, "nope"), ConfigError);
  EXPECT_THROW(Selection::decode(Collective::kAllgather, "leader:ring"),
               ConfigError);
  EXPECT_THROW(
      Selection::decode(Collective::kAllgather, "leader:pairwise+binomial"),
      ConfigError);  // alltoall algorithm in allgather context
  EXPECT_THROW(Selection::decode(Collective::kAllgather, "leader:ring+ring"),
               ConfigError);  // intra tier must be a bcast algorithm
}

TEST(SelectionSpace, FlatPrefixMatchesV1LabelSpace) {
  for (const Collective c : all_collectives()) {
    const auto& space = selection_space(c);
    const auto& flat = algorithms_for(c);
    ASSERT_GE(space.size(), flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      EXPECT_EQ(space[i], Selection::flat(flat[i]));
      EXPECT_TRUE(space[i] == flat[i]);  // Algorithm comparison convenience
    }
    for (std::size_t i = flat.size(); i < space.size(); ++i) {
      EXPECT_TRUE(space[i].hierarchical());
      EXPECT_EQ(space[i].collective(), c);
    }
  }
}

TEST(SelectionSpace, Sizes) {
  // flat + inter x fan-out (alltoall has no fan-out dimension).
  EXPECT_EQ(selection_space(Collective::kAllgather).size(), 4u + 4u * 2u);
  EXPECT_EQ(selection_space(Collective::kAlltoall).size(), 5u + 5u);
  EXPECT_EQ(selection_space(Collective::kAllreduce).size(), 3u + 3u * 2u);
  EXPECT_EQ(selection_space(Collective::kBcast).size(), 3u + 3u * 2u);
}

TEST(SelectionSupports, FlatMatchesAlgorithmSupport) {
  for (const Collective c : all_collectives()) {
    for (const Algorithm a : algorithms_for(c)) {
      for (const sim::Topology topo :
           {sim::Topology{1, 6}, sim::Topology{2, 4}, sim::Topology{3, 5}}) {
        EXPECT_EQ(selection_supports(Selection::flat(a), topo),
                  algorithm_supports(a, topo.world_size()));
      }
    }
  }
}

TEST(SelectionSupports, LeaderNeedsTwoTiers) {
  const Selection s =
      Selection::leader(Algorithm::kAgRing, Algorithm::kBcBinomial);
  EXPECT_FALSE(selection_supports(s, sim::Topology{1, 8}));   // single node
  EXPECT_FALSE(selection_supports(s, sim::Topology{8, 1}));   // single rank/node
  EXPECT_TRUE(selection_supports(s, sim::Topology{2, 2}));
  // The inter algorithm must support the *node count*, not the world size.
  const Selection rd = Selection::leader(Algorithm::kArRecursiveDoubling,
                                         Algorithm::kBcBinomial);
  EXPECT_TRUE(selection_supports(rd, sim::Topology{4, 3}));   // pow2 nodes
  EXPECT_FALSE(selection_supports(rd, sim::Topology{3, 4}));  // 3 leaders
}

TEST(SelectionSupports, ValidSelectionsNeverEmpty) {
  for (const Collective c : all_collectives()) {
    for (const sim::Topology topo :
         {sim::Topology{1, 1}, sim::Topology{1, 7}, sim::Topology{3, 5},
          sim::Topology{4, 8}}) {
      const auto valid = valid_selections(c, topo);
      EXPECT_FALSE(valid.empty());
      for (const Selection& s : valid) {
        EXPECT_TRUE(selection_supports(s, topo));
      }
      if (topo.nodes >= 2 && topo.ppn >= 2) {
        EXPECT_GT(valid.size(), valid_algorithms(c, topo.world_size()).size());
      }
    }
  }
}

TEST(HierarchyKind, RoundTrip) {
  EXPECT_EQ(hierarchy_kind_from_string(to_string(HierarchyKind::kFlat)),
            HierarchyKind::kFlat);
  EXPECT_EQ(hierarchy_kind_from_string(to_string(HierarchyKind::kLeader)),
            HierarchyKind::kLeader);
  EXPECT_THROW(hierarchy_kind_from_string("tree"), ConfigError);
}

}  // namespace
}  // namespace pml::coll
