// The timing-only fast path (SimOptions::copy_data == false) must be a
// pure optimisation: for every algorithm it has to report exactly the
// virtual time of the verified path. Every payload operation charges its
// simulated cost whether or not bytes move, and jitter is drawn per matched
// transfer in event order, so the two modes consume identical noise
// streams. Exact double equality is intentional.
#include <gtest/gtest.h>

#include <vector>

#include "coll/runner.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

using sim::PayloadMode;
using sim::RunOptions;
using sim::Topology;

struct TimingCase {
  int nodes;
  int ppn;
  std::uint64_t bytes;
};

class TimingEquivalence : public ::testing::TestWithParam<TimingCase> {};

TEST_P(TimingEquivalence, FastPathMatchesVerifiedPathExactly) {
  const auto& c = GetParam();
  const auto& cluster = sim::cluster_by_name("Frontera");
  const Topology topo{c.nodes, c.ppn};
  // Nonzero noise so the test also proves the jitter streams line up.
  const RunOptions verified{PayloadMode::kVerify, 0.15, 99};
  const RunOptions timing_only{PayloadMode::kTimingOnly, 0.15, 99};
  for (const auto coll :
       {Collective::kAllgather, Collective::kAlltoall, Collective::kAllreduce,
        Collective::kBcast}) {
    for (const Algorithm a : valid_algorithms(coll, topo.world_size())) {
      const RunResult slow =
          run_collective(cluster, topo, a, c.bytes, verified);
      const RunResult fast =
          run_collective(cluster, topo, a, c.bytes, timing_only);
      EXPECT_TRUE(slow.verified) << display_name(a);
      EXPECT_FALSE(fast.verified) << display_name(a);
      EXPECT_EQ(fast.seconds, slow.seconds)
          << display_name(a) << " n=" << c.nodes << " ppn=" << c.ppn
          << " bytes=" << c.bytes;
    }
  }
}

TEST_P(TimingEquivalence, FastPathIsDeterministicAcrossReuse) {
  // The per-thread engine is reused across invocations; a second call must
  // reproduce the first exactly (reset() fully re-seeds the noise stream).
  const auto& c = GetParam();
  const auto& cluster = sim::cluster_by_name("Frontera");
  const Topology topo{c.nodes, c.ppn};
  const RunOptions timing_only{PayloadMode::kTimingOnly, 0.15, 7};
  for (const Algorithm a :
       valid_algorithms(Collective::kAllgather, topo.world_size())) {
    const double first =
        run_collective(cluster, topo, a, c.bytes, timing_only).seconds;
    const double second =
        run_collective(cluster, topo, a, c.bytes, timing_only).seconds;
    EXPECT_EQ(first, second) << display_name(a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimingEquivalence,
    ::testing::Values(TimingCase{2, 4, 4096},      // eager, pow2 world
                      TimingCase{3, 2, 64 << 10},  // rendezvous, non-pow2
                      TimingCase{1, 5, 16},        // single node, odd world
                      TimingCase{2, 8, 1},         // tiny payload
                      TimingCase{4, 4, 0}),        // zero-byte edge case
    [](const ::testing::TestParamInfo<TimingCase>& tpi) {
      std::string name = "n";
      name += std::to_string(tpi.param.nodes);
      name += "_p";
      name += std::to_string(tpi.param.ppn);
      name += "_b";
      name += std::to_string(tpi.param.bytes);
      return name;
    });

}  // namespace
}  // namespace pml::coll
