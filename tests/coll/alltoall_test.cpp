#include "coll/alltoall.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "coll/runner.hpp"
#include "common/error.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }
const sim::ClusterSpec& mri() { return sim::cluster_by_name("MRI"); }

// ---- Correctness sweep ------------------------------------------------------

using AaCase = std::tuple<Algorithm, int /*nodes*/, int /*ppn*/, int /*bytes*/>;

class AlltoallCorrectness : public ::testing::TestWithParam<AaCase> {};

TEST_P(AlltoallCorrectness, RoutesEveryBlockToItsDestination) {
  const auto [algo, nodes, ppn, bytes] = GetParam();
  if (!algorithm_supports(algo, nodes * ppn)) {
    GTEST_SKIP() << "unsupported world size";
  }
  const RunResult r = run_collective(
      frontera(), sim::Topology{nodes, ppn}, algo,
      static_cast<std::uint64_t>(bytes));
  EXPECT_TRUE(r.verified);
  EXPECT_GE(r.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlltoallCorrectness,
    ::testing::Combine(
        ::testing::Values(Algorithm::kAaBruck, Algorithm::kAaScatterDest,
                          Algorithm::kAaPairwise,
                          Algorithm::kAaRecursiveDoubling,
                          Algorithm::kAaInplace),
        ::testing::Values(1, 2, 3),
        ::testing::Values(1, 2, 4, 5),
        ::testing::Values(1, 16, 512)),
    [](const ::testing::TestParamInfo<AaCase>& param_info) {
      return to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(std::get<2>(param_info.param)) + "_b" +
             std::to_string(std::get<3>(param_info.param));
    });

class AlltoallAwkwardWorlds : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallAwkwardWorlds, AllValidAlgorithmsCorrect) {
  const int p = GetParam();
  for (const Algorithm a : valid_algorithms(Collective::kAlltoall, p)) {
    const RunResult r = run_collective(frontera(), sim::Topology{1, p}, a, 32);
    EXPECT_TRUE(r.verified) << display_name(a) << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, AlltoallAwkwardWorlds,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 11, 12, 16, 24));

// ---- Store-and-forward plan properties -------------------------------------

TEST(AlltoallRdPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(alltoall_rd_plan(6), SimError);
  EXPECT_THROW(alltoall_rd_plan(12), SimError);
}

TEST(AlltoallRdPlan, StepAndVolumeCounts) {
  for (const int p : {2, 4, 8, 16}) {
    const auto plan = alltoall_rd_plan(p);
    ASSERT_EQ(plan.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const auto& steps = plan[static_cast<std::size_t>(r)];
      ASSERT_EQ(static_cast<int>(steps.size()), floor_log2(p));
      for (const auto& st : steps) {
        // Each step forwards exactly half of the p held blocks.
        EXPECT_EQ(st.send_blocks.size(), static_cast<std::size_t>(p / 2));
        EXPECT_EQ(st.recv_blocks.size(), static_cast<std::size_t>(p / 2));
      }
    }
  }
}

TEST(AlltoallRdPlan, SendAndRecvSetsMirror) {
  const int p = 8;
  const auto plan = alltoall_rd_plan(p);
  for (int r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < plan[static_cast<std::size_t>(r)].size(); ++s) {
      const auto& st = plan[static_cast<std::size_t>(r)][s];
      const auto& back = plan[static_cast<std::size_t>(st.partner)][s];
      EXPECT_EQ(back.partner, r);
      EXPECT_EQ(st.recv_blocks, back.send_blocks);
    }
  }
}

TEST(AlltoallRdPlan, ForwardedBlocksMoveTowardDestination) {
  const int p = 16;
  const auto plan = alltoall_rd_plan(p);
  for (int r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < plan[static_cast<std::size_t>(r)].size(); ++s) {
      const auto& st = plan[static_cast<std::size_t>(r)][s];
      const int bit = 1 << s;
      for (const RoutedBlock& b : st.send_blocks) {
        // A forwarded block's destination lies in the partner's half.
        EXPECT_EQ(b.dest & bit, st.partner & bit);
      }
    }
  }
}

// ---- Performance-shape sanity ----------------------------------------------

TEST(AlltoallShape, PairwiseBeatsBruckAtLargeMessages) {
  // Bruck forwards each byte ~log(p)/2 times; pairwise moves it once.
  const sim::Topology topo{2, 8};
  const auto bruck =
      run_collective(frontera(), topo, Algorithm::kAaBruck, 64 << 10);
  const auto pairwise =
      run_collective(frontera(), topo, Algorithm::kAaPairwise, 64 << 10);
  EXPECT_LT(pairwise.seconds, bruck.seconds);
}

TEST(AlltoallShape, BruckCompetitiveAtTinyMessages) {
  // log(p) rounds vs p-1 rounds: Bruck must beat pairwise at 1-byte blocks.
  const sim::Topology topo{2, 8};
  const auto bruck = run_collective(frontera(), topo, Algorithm::kAaBruck, 1);
  const auto pairwise =
      run_collective(frontera(), topo, Algorithm::kAaPairwise, 1);
  EXPECT_LT(bruck.seconds, pairwise.seconds);
}

TEST(AlltoallShape, InplaceSlowerThanPairwise) {
  const sim::Topology topo{2, 4};
  const auto inplace =
      run_collective(frontera(), topo, Algorithm::kAaInplace, 1024);
  const auto pairwise =
      run_collective(frontera(), topo, Algorithm::kAaPairwise, 1024);
  EXPECT_GT(inplace.seconds, pairwise.seconds);
}

TEST(AlltoallShape, TimeGrowsWithMessageSize) {
  const sim::Topology topo{2, 4};
  for (const Algorithm a : algorithms_for(Collective::kAlltoall)) {
    const auto small = run_collective(frontera(), topo, a, 8);
    const auto large = run_collective(frontera(), topo, a, 32 << 10);
    EXPECT_LT(small.seconds, large.seconds) << display_name(a);
  }
}

TEST(AlltoallShape, FasterNetworkHelpsLargeAlltoall) {
  // MRI's HDR+PCIe4 NIC moves the alltoall bandwidth term faster than
  // Frontera's EDR at the same topology and message size.
  const sim::Topology topo{2, 8};
  const auto f =
      run_collective(frontera(), topo, Algorithm::kAaPairwise, 128 << 10);
  const auto m = run_collective(mri(), topo, Algorithm::kAaPairwise, 128 << 10);
  EXPECT_LT(m.seconds, f.seconds);
}

TEST(AlltoallShape, SingleRankIsInstant) {
  for (const Algorithm a : algorithms_for(Collective::kAlltoall)) {
    const auto r = run_collective(frontera(), sim::Topology{1, 1}, a, 4096);
    EXPECT_TRUE(r.verified);
    EXPECT_LT(r.seconds, 1e-4) << display_name(a);
  }
}

TEST(AlltoallShape, ZeroByteBlocksStillComplete) {
  for (const Algorithm a : valid_algorithms(Collective::kAlltoall, 8)) {
    const auto r = run_collective(frontera(), sim::Topology{2, 4}, a, 0);
    EXPECT_TRUE(r.verified) << display_name(a);
  }
}

}  // namespace
}  // namespace pml::coll
