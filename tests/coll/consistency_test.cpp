// Cross-validation of the two cost paths: the event engine replays every
// message; the analytic model sums closed-form round costs. They derive
// from the same NetworkModel, so on small configurations they must agree
// in magnitude and, more importantly, must rank algorithms consistently —
// the dataset builder trains on analytic labels while the engine is the
// ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coll/cost.hpp"
#include "coll/runner.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

using sim::NetworkModel;
using sim::Topology;

struct ConsistencyCase {
  const char* cluster;
  int nodes;
  int ppn;
  std::uint64_t bytes;
};

class CostConsistency : public ::testing::TestWithParam<ConsistencyCase> {};

TEST_P(CostConsistency, AnalyticWithinFactorOfEngine) {
  const auto& c = GetParam();
  const auto& cluster = sim::cluster_by_name(c.cluster);
  const Topology topo{c.nodes, c.ppn};
  const NetworkModel model(cluster, topo);
  for (const auto coll : {Collective::kAllgather, Collective::kAlltoall}) {
    for (const Algorithm a : valid_algorithms(coll, topo.world_size())) {
      const double engine =
          run_collective(cluster, topo, a, c.bytes).seconds;
      const double analytic = analytic_cost(model, a, c.bytes);
      ASSERT_GT(engine, 0.0) << display_name(a);
      ASSERT_GT(analytic, 0.0) << display_name(a);
      const double ratio = analytic / engine;
      // The lockstep closed form approximates the asynchronous engine; a
      // factor-3 band still guarantees the ranking behaviour checked below.
      EXPECT_GT(ratio, 1.0 / 3.0)
          << to_string(coll) << ":" << display_name(a) << " " << c.cluster
          << " n=" << c.nodes << " ppn=" << c.ppn << " bytes=" << c.bytes;
      EXPECT_LT(ratio, 3.0)
          << to_string(coll) << ":" << display_name(a) << " " << c.cluster
          << " n=" << c.nodes << " ppn=" << c.ppn << " bytes=" << c.bytes;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CostConsistency,
    ::testing::Values(ConsistencyCase{"Frontera", 2, 4, 16},
                      ConsistencyCase{"Frontera", 2, 4, 4096},
                      ConsistencyCase{"Frontera", 4, 2, 64 << 10},
                      ConsistencyCase{"MRI", 2, 8, 256},
                      ConsistencyCase{"MRI", 2, 8, 32 << 10},
                      ConsistencyCase{"RI", 2, 2, 1024},
                      ConsistencyCase{"Catalyst", 2, 6, 2048}),
    [](const ::testing::TestParamInfo<ConsistencyCase>& param_info) {
      const ConsistencyCase& c = param_info.param;
      return std::string(c.cluster) + "_n" + std::to_string(c.nodes) + "_p" +
             std::to_string(c.ppn) + "_b" + std::to_string(c.bytes);
    });

TEST(CostConsistency, BestAlgorithmAgreesOrIsNearOptimal) {
  // The analytic argmin, executed on the engine, must be within 40% of the
  // engine's own argmin — i.e. analytic labels are near-optimal choices.
  const auto& cluster = sim::cluster_by_name("Frontera");
  const Topology topo{2, 8};
  const NetworkModel model(cluster, topo);
  for (const auto coll : {Collective::kAllgather, Collective::kAlltoall}) {
    for (const std::uint64_t bytes : {4ull, 512ull, 16384ull, 262144ull}) {
      const auto algos = valid_algorithms(coll, topo.world_size());
      Algorithm analytic_best = algos.front();
      double analytic_lo = 1e300;
      Algorithm engine_best = algos.front();
      double engine_lo = 1e300;
      std::vector<double> engine_times;
      for (const Algorithm a : algos) {
        const double ta = analytic_cost(model, a, bytes);
        const double te = run_collective(cluster, topo, a, bytes).seconds;
        if (ta < analytic_lo) {
          analytic_lo = ta;
          analytic_best = a;
        }
        if (te < engine_lo) {
          engine_lo = te;
          engine_best = a;
        }
        if (a == analytic_best && ta == analytic_lo) engine_times.push_back(te);
      }
      const double chosen =
          run_collective(cluster, topo, analytic_best, bytes).seconds;
      EXPECT_LT(chosen, 1.4 * engine_lo)
          << to_string(coll) << " bytes=" << bytes << " analytic picked "
          << display_name(analytic_best) << ", engine best "
          << display_name(engine_best);
    }
  }
}

}  // namespace
}  // namespace pml::coll
