// Analytic/engine rank agreement: the safety margin the dataset builder's
// pruning layer rests on (core::BuildOptions::prune_topk). For every
// Table-I cluster at small configurations, the noise-free engine argmin
// must sit inside the analytic top-k for the default k=3 — measured as the
// *strict* analytic rank (algorithms strictly cheaper than the argmin),
// which is exactly the builder's tie-inclusive keep rule: an algorithm is
// measured iff fewer than k rivals are strictly cheaper.
//
// Documentation of the observed margin (2026-08, this engine/model pair):
//   - worst strict rank over this matrix at p >= core::kPruneWorldFloor: 2
//   - at the degenerate p=2 worlds (2 nodes x ppn 1) rank 4 appears — every
//     alltoall is one exchange there and the analytic ordering is
//     meaningless, which is exactly why the builder never prunes below
//     kPruneWorldFloor (those cells are asserted exempt here);
//   - rank 3 first appears at p = 128 — beyond this matrix and the bench
//     reference grid, which is why bench/sweep_pruning pins p <= 64.
// If this test starts failing after a cost-model change, re-derive the
// margin before touching prune_topk's default.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "coll/cost.hpp"
#include "coll/runner.hpp"
#include "core/dataset_builder.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

/// Strict analytic rank of the engine argmin: how many valid algorithms
/// the closed-form model prices strictly below it.
int strict_rank_of_engine_argmin(const sim::ClusterSpec& cluster,
                                 const sim::Topology& topo,
                                 Collective collective,
                                 std::uint64_t bytes) {
  const sim::NetworkModel model(cluster, topo);
  const auto algorithms = valid_algorithms(collective, topo.world_size());
  double best = std::numeric_limits<double>::infinity();
  std::size_t argmin = 0;
  std::vector<double> analytic(algorithms.size());
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    sim::RunOptions options;
    options.payload = sim::PayloadMode::kTimingOnly;  // noise-free
    const double seconds =
        run_collective(cluster, topo, algorithms[i], bytes, options).seconds;
    analytic[i] = analytic_cost(model, algorithms[i], bytes);
    if (seconds < best) {
      best = seconds;
      argmin = i;
    }
  }
  int rank = 0;
  for (const double cost : analytic) rank += cost < analytic[argmin];
  return rank;
}

TEST(TopKAgreement, AnalyticTop3ContainsEngineArgminOnAllClusters) {
  // Matches core::BuildOptions{}.prune_topk: the default must be safe on
  // every built-in cluster at these world sizes.
  constexpr int kDefaultTopK = 3;
  constexpr int kWorstObservedRank = 2;

  int worst = 0;
  const auto clusters = sim::builtin_clusters();
  ASSERT_EQ(clusters.size(), 18u);  // all of Table I
  for (const auto& cluster : clusters) {
    // Smallest sweep ppn that still fits the per-node hardware, capped at
    // 8 so every world stays small (p <= 32: the engine is O(messages)).
    int ppn = 0;
    for (const int candidate : cluster.ppn_values) {
      if (candidate <= 8 && (ppn == 0 || candidate < ppn)) ppn = candidate;
    }
    if (ppn == 0) ppn = 4;
    for (const int nodes : {2, 4}) {
      const sim::Topology topo{nodes, ppn};
      for (const auto collective :
           {Collective::kAllgather, Collective::kAlltoall}) {
        for (const std::uint64_t bytes : {64ull, 4096ull, 262144ull}) {
          const int rank =
              strict_rank_of_engine_argmin(cluster, topo, collective, bytes);
          // Below the floor the builder never prunes, so containment is
          // only required (and only holds) at p >= kPruneWorldFloor.
          if (topo.world_size() < core::kPruneWorldFloor) continue;
          EXPECT_LT(rank, kDefaultTopK)
              << cluster.name << " nodes=" << nodes << " ppn=" << ppn
              << " " << to_string(collective) << " bytes=" << bytes;
          worst = rank > worst ? rank : worst;
        }
      }
    }
  }
  // Documented margin; a drop is fine, growth needs investigation.
  EXPECT_EQ(worst, kWorstObservedRank);
}

}  // namespace
}  // namespace pml::coll
