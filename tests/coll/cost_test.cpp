#include "coll/cost.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

using sim::NetworkModel;
using sim::Topology;

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }
const sim::ClusterSpec& mri() { return sim::cluster_by_name("MRI"); }

TEST(RoundCost, ZeroDistanceIsFree) {
  const NetworkModel m(frontera(), Topology{2, 4});
  EXPECT_DOUBLE_EQ(round_cost(m, 1024, 0), 0.0);
  EXPECT_DOUBLE_EQ(round_cost(m, 1024, 8), 0.0);  // full wrap, p = 8
}

TEST(RoundCost, SingleNodeUsesIntraPath) {
  const NetworkModel m(frontera(), Topology{1, 8});
  const double t = round_cost(m, 1024, 3);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, m.inter_alpha());  // cheaper than any network round
}

TEST(RoundCost, LongDistanceCongestsNic) {
  const NetworkModel m(frontera(), Topology{4, 8});
  // Distance >= ppn: all 8 ranks/node hit the NIC; distance 1: only one.
  const double near = round_cost(m, 64 << 10, 1);
  const double far = round_cost(m, 64 << 10, 8);
  EXPECT_GT(far, 3.0 * near);
}

TEST(RoundCost, MonotonicInBytes) {
  const NetworkModel m(frontera(), Topology{4, 8});
  double prev = 0.0;
  for (std::uint64_t b = 1; b <= (1u << 20); b <<= 1) {
    const double t = round_cost(m, b, 4);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(AnalyticCost, PositiveForAllValidAlgorithms) {
  const NetworkModel m(frontera(), Topology{2, 8});
  for (const auto c : {Collective::kAllgather, Collective::kAlltoall}) {
    for (const Algorithm a : valid_algorithms(c, 16)) {
      EXPECT_GT(analytic_cost(m, a, 256), 0.0) << display_name(a);
    }
  }
}

TEST(AnalyticCost, UnsupportedWorldThrows) {
  const NetworkModel m(frontera(), Topology{3, 4});  // p = 12
  EXPECT_THROW(analytic_cost(m, Algorithm::kAaRecursiveDoubling, 64),
               SimError);
}

TEST(AnalyticCost, SingleRankFree) {
  const NetworkModel m(frontera(), Topology{1, 1});
  for (const auto c : {Collective::kAllgather, Collective::kAlltoall}) {
    for (const Algorithm a : valid_algorithms(c, 1)) {
      EXPECT_DOUBLE_EQ(analytic_cost(m, a, 4096), 0.0) << display_name(a);
    }
  }
}

TEST(AnalyticCost, AllgatherCrossoverSmallVsLarge) {
  const NetworkModel m(frontera(), Topology{4, 8});
  // Small: log-step algorithms beat ring.
  EXPECT_LT(analytic_cost(m, Algorithm::kAgRecursiveDoubling, 4),
            analytic_cost(m, Algorithm::kAgRing, 4));
  // Large: ring's once-per-node NIC usage wins.
  EXPECT_LT(analytic_cost(m, Algorithm::kAgRing, 512 << 10),
            analytic_cost(m, Algorithm::kAgRecursiveDoubling, 512 << 10));
}

TEST(AnalyticCost, AlltoallCrossoverSmallVsLarge) {
  const NetworkModel m(frontera(), Topology{4, 8});
  EXPECT_LT(analytic_cost(m, Algorithm::kAaBruck, 1),
            analytic_cost(m, Algorithm::kAaPairwise, 1));
  EXPECT_LT(analytic_cost(m, Algorithm::kAaPairwise, 256 << 10),
            analytic_cost(m, Algorithm::kAaBruck, 256 << 10));
}

TEST(AnalyticCost, HardwareChangesTheWinner) {
  // The central premise (paper Fig. 2): the best algorithm at a fixed
  // (nodes, ppn, size) differs across clusters. Scan the sweep and require
  // at least one point where Frontera and MRI disagree.
  const Topology topo{2, 16};
  const NetworkModel f(frontera(), topo);
  const NetworkModel m(mri(), topo);
  bool disagreement = false;
  for (std::uint64_t n = 1; n <= (1u << 16); n <<= 1) {
    auto best = [&](const NetworkModel& model) {
      Algorithm arg = Algorithm::kAaBruck;
      double lo = 1e300;
      for (const Algorithm a : valid_algorithms(Collective::kAlltoall, 32)) {
        const double t = analytic_cost(model, a, n);
        if (t < lo) {
          lo = t;
          arg = a;
        }
      }
      return arg;
    };
    if (best(f) != best(m)) disagreement = true;
  }
  EXPECT_TRUE(disagreement);
}

TEST(MeasuredCost, AveragesTowardAnalytic) {
  const NetworkModel m(frontera(), Topology{2, 8});
  const double base = analytic_cost(m, Algorithm::kAaPairwise, 1024);
  Rng rng(99);
  const double avg =
      measured_cost(m, Algorithm::kAaPairwise, 1024, 200, rng, 0.1);
  EXPECT_NEAR(avg / base, 1.0, 0.05);
}

TEST(MeasuredCost, ZeroSigmaIsExact) {
  const NetworkModel m(frontera(), Topology{2, 8});
  Rng rng(1);
  EXPECT_DOUBLE_EQ(measured_cost(m, Algorithm::kAgRing, 512, 3, rng, 0.0),
                   analytic_cost(m, Algorithm::kAgRing, 512));
}

TEST(MeasuredCost, RejectsBadIterationCount) {
  const NetworkModel m(frontera(), Topology{2, 8});
  Rng rng(1);
  EXPECT_THROW(measured_cost(m, Algorithm::kAgRing, 512, 0, rng, 0.1),
               SimError);
}

}  // namespace
}  // namespace pml::coll
