// sim::RunOptions — the options struct that replaced the positional
// run_collective(..., SimOptions{..., bool copy_data}) signature. Pins the
// documented defaults, the RunOptions -> SimOptions projection, the
// equivalence of the deprecated transitional overload, and the trace_sink
// capture path.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "coll/runner.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "obs/obs.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

using sim::PayloadMode;
using sim::RunOptions;
using sim::SimOptions;
using sim::Topology;

TEST(RunOptionsTest, DefaultsMatchDocumentedValues) {
  const RunOptions opts;
  EXPECT_EQ(opts.payload, PayloadMode::kVerify);
  EXPECT_EQ(opts.noise_sigma, 0.0);
  EXPECT_EQ(opts.seed, 1u);
  EXPECT_EQ(opts.eager_threshold, 16u * 1024u);
  EXPECT_TRUE(opts.trace_sink.empty());
}

TEST(RunOptionsTest, SimOptionsDefaultsMatchRunOptions) {
  const SimOptions opts;
  EXPECT_EQ(opts.noise_sigma, 0.0);
  EXPECT_EQ(opts.seed, 1u);
  EXPECT_EQ(opts.payload, PayloadMode::kVerify);
  EXPECT_EQ(opts.eager_threshold, 16u * 1024u);
  EXPECT_TRUE(opts.payload_enabled());
  SimOptions timing = opts;
  timing.payload = PayloadMode::kTimingOnly;
  EXPECT_FALSE(timing.payload_enabled());
}

TEST(RunOptionsTest, SimOptionsProjectionCarriesEveryField) {
  const RunOptions run{PayloadMode::kTimingOnly, 0.25, 77, 4096};
  const SimOptions sim = run.sim_options();
  EXPECT_EQ(sim.noise_sigma, 0.25);
  EXPECT_EQ(sim.seed, 77u);
  EXPECT_EQ(sim.payload, PayloadMode::kTimingOnly);
  EXPECT_EQ(sim.eager_threshold, 4096u);
  EXPECT_FALSE(sim.payload_enabled());
}

TEST(RunOptionsTest, DefaultRunVerifiesPayload) {
  const auto& cluster = sim::cluster_by_name("Frontera");
  const RunResult result =
      run_collective(cluster, Topology{2, 4}, Algorithm::kAgRing, 1024);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(RunOptionsTest, DeprecatedSimOptionsOverloadMatchesRunOptions) {
  const auto& cluster = sim::cluster_by_name("Frontera");
  const Topology topo{4, 8};
  const RunOptions run{PayloadMode::kTimingOnly, 0.1, 55};
  const SimOptions legacy{0.1, 55, PayloadMode::kTimingOnly};
  const double current =
      run_collective(cluster, topo, Algorithm::kAaPairwise, 2048, run).seconds;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const double deprecated =
      run_collective(cluster, topo, Algorithm::kAaPairwise, 2048, legacy)
          .seconds;
#pragma GCC diagnostic pop
  EXPECT_EQ(current, deprecated);
}

TEST(RunOptionsTest, TraceSinkWritesMetricsWithSimCounters) {
  const std::string metrics_path =
      ::testing::TempDir() + "run_options_metrics.json";
  const bool was = obs::set_enabled(false);
  obs::reset();
  {
    const auto& cluster = sim::cluster_by_name("Frontera");
    RunOptions opts;
    opts.trace_sink.metrics = metrics_path;
    const RunResult result = run_collective(cluster, Topology{2, 4},
                                            Algorithm::kAgRing, 1024, opts);
    EXPECT_TRUE(result.verified);
  }
  EXPECT_FALSE(obs::enabled());  // capture scope restored the flag
  const Json doc = Json::parse(read_file(metrics_path));
  EXPECT_EQ(doc.at("format").as_string(), "pml-metrics-v1");
  // The engine flushed its always-on statistics into obs counters.
  EXPECT_GT(doc.at("counters").at("sim.events_processed").as_int(), 0);
  EXPECT_TRUE(doc.at("spans").as_object().contains("coll.run.verified"));
  std::remove(metrics_path.c_str());
  obs::reset();
  obs::set_enabled(was);
}

}  // namespace
}  // namespace pml::coll
