// Tests for the leader-based hierarchical collective schedules: payload
// correctness across topologies and selections, exact flat-path equality
// of run_selection vs run_collective, hierarchy-model behaviour, and the
// win condition (a leader schedule beating every flat algorithm on
// multi-node high-PPN grids).
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <tuple>

#include "coll/cost.hpp"
#include "coll/hierarchical.hpp"
#include "coll/runner.hpp"
#include "coll/selection.hpp"
#include "common/error.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }

using HierCase =
    std::tuple<int /*space index*/, Collective, int /*nodes*/, int /*ppn*/,
               int /*bytes*/>;

class HierCorrectness
    : public ::testing::TestWithParam<std::tuple<Collective, int, int, int>> {};

TEST_P(HierCorrectness, EveryLeaderSelectionVerifies) {
  const auto [coll, nodes, ppn, bytes] = GetParam();
  const sim::Topology topo{nodes, ppn};
  int ran = 0;
  for (const Selection& s : selection_space(coll)) {
    if (!s.hierarchical() || !selection_supports(s, topo)) continue;
    const RunResult r = run_selection(frontera(), topo, s,
                                      static_cast<std::uint64_t>(bytes));
    EXPECT_TRUE(r.verified) << s.encode();
    EXPECT_GE(r.seconds, 0.0) << s.encode();
    ++ran;
  }
  EXPECT_GT(ran, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierCorrectness,
    ::testing::Combine(::testing::Values(Collective::kAllgather,
                                         Collective::kAlltoall,
                                         Collective::kAllreduce,
                                         Collective::kBcast),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 16, 4096)),
    [](const auto& param_info) {
      return to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(std::get<2>(param_info.param)) + "_b" +
             std::to_string(std::get<3>(param_info.param));
    });

TEST(HierCorrectness, LargePayloadHighPpn) {
  const sim::Topology topo{2, 8};
  for (const Collective c : all_collectives()) {
    for (const Selection& s : selection_space(c)) {
      if (!s.hierarchical() || !selection_supports(s, topo)) continue;
      const RunResult r = run_selection(frontera(), topo, s, 100000);
      EXPECT_TRUE(r.verified) << s.encode();
    }
  }
}

TEST(RunSelection, FlatPathBitIdenticalToRunCollective) {
  // run_selection(flat(a)) and run_collective(a) must take the same code
  // path event for event: exact double equality, per algorithm.
  for (const sim::Topology topo :
       {sim::Topology{2, 4}, sim::Topology{1, 6}, sim::Topology{3, 3}}) {
    for (const Collective c : all_collectives()) {
      for (const Algorithm a : valid_algorithms(c, topo.world_size())) {
        for (const std::uint64_t bytes : {16u, 8192u}) {
          const double flat =
              run_collective(frontera(), topo, a, bytes).seconds;
          const double sel =
              run_selection(frontera(), topo, Selection::flat(a), bytes)
                  .seconds;
          EXPECT_EQ(flat, sel) << to_string(c) << ":" << to_string(a);
        }
      }
    }
  }
}

TEST(RunSelection, RejectsUnsupportedSelection) {
  const Selection s =
      Selection::leader(Algorithm::kAgRing, Algorithm::kBcBinomial);
  EXPECT_THROW(run_selection(frontera(), sim::Topology{1, 8}, s, 64),
               SimError);
  EXPECT_THROW(run_selection(frontera(), sim::Topology{4, 1}, s, 64),
               SimError);
}

TEST(RunSelection, HierarchyModelChangesIntraTimes) {
  // Enabling the hierarchy tier model on a NUMA cluster must change the
  // virtual time of an intra-node-heavy schedule, and stay deterministic.
  const sim::Topology topo{2, 8};
  sim::RunOptions flat_opts;
  flat_opts.payload = sim::PayloadMode::kTimingOnly;
  sim::RunOptions hier_opts = flat_opts;
  hier_opts.hierarchy = sim::HierarchySpec::from_cluster(frontera());

  const Selection s =
      Selection::leader(Algorithm::kAgRing, Algorithm::kBcBinomial);
  const double base =
      run_selection(frontera(), topo, s, 4096, flat_opts).seconds;
  const double hier =
      run_selection(frontera(), topo, s, 4096, hier_opts).seconds;
  const double hier2 =
      run_selection(frontera(), topo, s, 4096, hier_opts).seconds;
  EXPECT_NE(base, hier);
  EXPECT_EQ(hier, hier2);

  // An empty-hierarchy spec is the exact flat engine.
  sim::RunOptions disabled = flat_opts;
  disabled.hierarchy = sim::HierarchySpec{};
  EXPECT_EQ(base,
            run_selection(frontera(), topo, s, 4096, disabled).seconds);
}

TEST(HierWins, LeaderBeatsEveryFlatAlgorithmOnMultiNodeHighPpn) {
  // Acceptance: on at least two multi-node x high-PPN Table-I grids some
  // hierarchical variant out-simulates the best flat algorithm. High PPN
  // multiplies flat NIC flows; leader schedules keep one flow per node.
  sim::RunOptions opts;
  opts.payload = sim::PayloadMode::kTimingOnly;
  int grids_with_win = 0;
  for (const sim::Topology topo : {sim::Topology{4, 16}, sim::Topology{8, 16},
                                   sim::Topology{4, 32}}) {
    bool win = false;
    for (const Collective c :
         {Collective::kAllgather, Collective::kBcast, Collective::kAllreduce}) {
      double best_flat = std::numeric_limits<double>::infinity();
      double best_hier = std::numeric_limits<double>::infinity();
      for (const Selection& s : valid_selections(c, topo)) {
        const double t =
            run_selection(frontera(), topo, s, 65536, opts).seconds;
        (s.hierarchical() ? best_hier : best_flat) =
            std::min(s.hierarchical() ? best_hier : best_flat, t);
      }
      if (best_hier < best_flat) win = true;
    }
    if (win) ++grids_with_win;
  }
  EXPECT_GE(grids_with_win, 2);
}

TEST(HierCost, AnalyticSelectionCostsAreFiniteAndRankFlat) {
  // The analytic selection cost must agree with the flat analytic path on
  // the flat prefix and produce finite positive costs for leader entries.
  const sim::Topology topo{4, 8};
  const sim::NetworkModel model(frontera(), topo);
  for (const Collective c : all_collectives()) {
    for (const Selection& s : valid_selections(c, topo)) {
      const double cost = analytic_cost(frontera(), topo, s, 4096);
      EXPECT_GT(cost, 0.0) << s.encode();
      EXPECT_TRUE(std::isfinite(cost)) << s.encode();
      if (!s.hierarchical()) {
        EXPECT_EQ(cost, analytic_cost(model, s.algorithm, 4096));
      }
    }
  }
  EXPECT_THROW(
      analytic_cost(frontera(), sim::Topology{1, 4},
                    Selection::leader(Algorithm::kAgRing,
                                      Algorithm::kBcBinomial),
                    64),
      SimError);
}

}  // namespace
}  // namespace pml::coll
