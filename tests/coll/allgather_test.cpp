#include "coll/allgather.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "coll/runner.hpp"
#include "common/error.hpp"
#include "sim/hardware.hpp"

namespace pml::coll {
namespace {

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }

// ---- Correctness sweep over (algorithm, nodes, ppn, message size) ---------

using AgCase = std::tuple<Algorithm, int /*nodes*/, int /*ppn*/, int /*bytes*/>;

class AllgatherCorrectness : public ::testing::TestWithParam<AgCase> {};

TEST_P(AllgatherCorrectness, DeliversEveryBlockEverywhere) {
  const auto [algo, nodes, ppn, bytes] = GetParam();
  if (!algorithm_supports(algo, nodes * ppn)) {
    GTEST_SKIP() << "unsupported world size";
  }
  const RunResult r = run_collective(
      frontera(), sim::Topology{nodes, ppn}, algo,
      static_cast<std::uint64_t>(bytes));
  EXPECT_TRUE(r.verified);
  EXPECT_GE(r.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllgatherCorrectness,
    ::testing::Combine(
        ::testing::Values(Algorithm::kAgRecursiveDoubling, Algorithm::kAgRing,
                          Algorithm::kAgBruck, Algorithm::kAgRdComm),
        ::testing::Values(1, 2, 3),
        ::testing::Values(1, 2, 4, 5),
        ::testing::Values(1, 16, 1024)),
    [](const ::testing::TestParamInfo<AgCase>& param_info) {
      return to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(std::get<2>(param_info.param)) + "_b" +
             std::to_string(std::get<3>(param_info.param));
    });

// Non-power-of-two and prime world sizes (the generalised RD pre/post path).
class AllgatherAwkwardWorlds : public ::testing::TestWithParam<int> {};

TEST_P(AllgatherAwkwardWorlds, AllAlgorithmsCorrect) {
  const int p = GetParam();
  for (const Algorithm a : valid_algorithms(Collective::kAllgather, p)) {
    const RunResult r =
        run_collective(frontera(), sim::Topology{1, p}, a, 64);
    EXPECT_TRUE(r.verified) << display_name(a) << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, AllgatherAwkwardWorlds,
                         ::testing::Values(1, 2, 3, 5, 6, 7, 9, 11, 12, 13,
                                           24, 30));

// ---- Schedule-structure properties ----------------------------------------

TEST(RdOwnedBlocks, StartsWithOwnAndProxyBlocks) {
  // p=6: pow2 group {0..3}, extras {4, 5} parked at ranks {0, 1}.
  EXPECT_EQ(rd_owned_blocks(0, 0, 6), (std::vector<int>{0, 4}));
  EXPECT_EQ(rd_owned_blocks(1, 0, 6), (std::vector<int>{1, 5}));
  EXPECT_EQ(rd_owned_blocks(2, 0, 6), (std::vector<int>{2}));
}

TEST(RdOwnedBlocks, FinalStepOwnsEverything) {
  for (const int p : {4, 6, 8, 12}) {
    const int m = floor_log2(p);
    for (int r = 0; r < (1 << m); ++r) {
      const auto blocks = rd_owned_blocks(r, m, p);
      ASSERT_EQ(static_cast<int>(blocks.size()), p) << "p=" << p;
      for (int b = 0; b < p; ++b) EXPECT_EQ(blocks[static_cast<std::size_t>(b)], b);
    }
  }
}

TEST(RdOwnedBlocks, PartnersHaveDisjointSets) {
  const int p = 8;
  for (int k = 0; k < 3; ++k) {
    for (int r = 0; r < p; ++r) {
      const int partner = r ^ (1 << k);
      const auto mine = rd_owned_blocks(r, k, p);
      const auto theirs = rd_owned_blocks(partner, k, p);
      std::vector<int> inter;
      std::set_intersection(mine.begin(), mine.end(), theirs.begin(),
                            theirs.end(), std::back_inserter(inter));
      EXPECT_TRUE(inter.empty()) << "k=" << k << " r=" << r;
    }
  }
}

TEST(NeighborExchangePlan, RequiresEvenWorld) {
  EXPECT_THROW(neighbor_exchange_plan(5), SimError);
}

TEST(NeighborExchangePlan, StepCountIsHalfWorld) {
  for (const int p : {2, 4, 6, 10, 16}) {
    const auto plan = neighbor_exchange_plan(p);
    ASSERT_EQ(plan.size(), static_cast<std::size_t>(p));
    for (const auto& steps : plan) {
      EXPECT_EQ(steps.size(), static_cast<std::size_t>(p / 2));
    }
  }
}

TEST(NeighborExchangePlan, PartnersAreMutualEachStep) {
  for (const int p : {4, 6, 12}) {
    const auto plan = neighbor_exchange_plan(p);
    for (int s = 0; s < p / 2; ++s) {
      for (int r = 0; r < p; ++r) {
        const auto& st = plan[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)];
        const auto& back =
            plan[static_cast<std::size_t>(st.partner)][static_cast<std::size_t>(s)];
        EXPECT_EQ(back.partner, r);
        // What I receive is exactly what the partner sends.
        EXPECT_EQ(st.recv_block, back.send_block);
        EXPECT_EQ(st.chunk_blocks, back.chunk_blocks);
      }
    }
  }
}

TEST(NeighborExchangePlan, CoversAllBlocks) {
  for (const int p : {2, 4, 6, 8, 14}) {
    const auto plan = neighbor_exchange_plan(p);
    for (int r = 0; r < p; ++r) {
      std::vector<bool> have(static_cast<std::size_t>(p), false);
      have[static_cast<std::size_t>(r)] = true;
      for (const auto& st : plan[static_cast<std::size_t>(r)]) {
        for (int b = 0; b < st.chunk_blocks; ++b) {
          have[static_cast<std::size_t>(st.recv_block + b)] = true;
        }
      }
      EXPECT_TRUE(std::all_of(have.begin(), have.end(), [](bool x) { return x; }))
          << "p=" << p << " rank=" << r;
    }
  }
}

// ---- Performance-shape sanity ----------------------------------------------

TEST(AllgatherShape, RingBeatsRecursiveDoublingAtLargeMessagesMultiNode) {
  // Ring enters each node once per block; RD pushes ppn concurrent flows
  // through the NIC on its top steps. At 256 KiB blocks ring must win.
  const sim::Topology topo{4, 8};
  const auto ring =
      run_collective(frontera(), topo, Algorithm::kAgRing, 256 << 10);
  const auto rd = run_collective(frontera(), topo,
                                 Algorithm::kAgRecursiveDoubling, 256 << 10);
  EXPECT_LT(ring.seconds, rd.seconds);
}

TEST(AllgatherShape, LogAlgorithmsBeatRingAtSmallMessages) {
  const sim::Topology topo{4, 8};
  const auto ring = run_collective(frontera(), topo, Algorithm::kAgRing, 4);
  const auto rd =
      run_collective(frontera(), topo, Algorithm::kAgRecursiveDoubling, 4);
  const auto bruck = run_collective(frontera(), topo, Algorithm::kAgBruck, 4);
  EXPECT_LT(rd.seconds, ring.seconds);
  EXPECT_LT(bruck.seconds, ring.seconds);
}

TEST(AllgatherShape, TimeGrowsWithMessageSize) {
  const sim::Topology topo{2, 4};
  for (const Algorithm a : algorithms_for(Collective::kAllgather)) {
    const auto small = run_collective(frontera(), topo, a, 8);
    const auto large = run_collective(frontera(), topo, a, 64 << 10);
    EXPECT_LT(small.seconds, large.seconds) << display_name(a);
  }
}

TEST(AllgatherShape, SingleRankIsInstant) {
  for (const Algorithm a : algorithms_for(Collective::kAllgather)) {
    const auto r = run_collective(frontera(), sim::Topology{1, 1}, a, 1024);
    EXPECT_TRUE(r.verified);
    EXPECT_LT(r.seconds, 1e-4) << display_name(a);
  }
}

}  // namespace
}  // namespace pml::coll
