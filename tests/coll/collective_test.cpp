#include "coll/collective.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pml::coll {
namespace {

TEST(Collective, AlgorithmRegistryCounts) {
  EXPECT_EQ(algorithms_for(Collective::kAllgather).size(), 4u);
  EXPECT_EQ(algorithms_for(Collective::kAlltoall).size(), 5u);
}

TEST(Collective, CollectiveOfIsConsistentWithRegistry) {
  for (const auto c : {Collective::kAllgather, Collective::kAlltoall}) {
    for (const Algorithm a : algorithms_for(c)) {
      EXPECT_EQ(collective_of(a), c);
    }
  }
}

TEST(Collective, NamesRoundTripQualified) {
  for (const auto c : {Collective::kAllgather, Collective::kAlltoall}) {
    for (const Algorithm a : algorithms_for(c)) {
      const std::string qualified = to_string(c) + ":" + to_string(a);
      EXPECT_EQ(algorithm_from_string(qualified), a);
    }
  }
}

TEST(Collective, UnambiguousShortNamesResolve) {
  EXPECT_EQ(algorithm_from_string("scatter_dest"), Algorithm::kAaScatterDest);
  EXPECT_EQ(algorithm_from_string("pairwise"), Algorithm::kAaPairwise);
  EXPECT_EQ(algorithm_from_string("inplace"), Algorithm::kAaInplace);
  EXPECT_EQ(algorithm_from_string("rd_comm"), Algorithm::kAgRdComm);
}

TEST(Collective, AmbiguousShortNamesThrow) {
  EXPECT_THROW(algorithm_from_string("rd"), Error);      // ag, aa, ar
  EXPECT_THROW(algorithm_from_string("bruck"), Error);   // ag, aa
  EXPECT_THROW(algorithm_from_string("ring"), Error);    // ag, ar
  EXPECT_THROW(algorithm_from_string("nonsense"), Error);
}

TEST(Collective, CollectiveNamesRoundTrip) {
  EXPECT_EQ(collective_from_string("allgather"), Collective::kAllgather);
  EXPECT_EQ(collective_from_string("alltoall"), Collective::kAlltoall);
  EXPECT_THROW(collective_from_string("broadcast"), Error);
}

TEST(Collective, SupportsConstraints) {
  // Neighbor exchange wants even worlds.
  EXPECT_TRUE(algorithm_supports(Algorithm::kAgRdComm, 8));
  EXPECT_TRUE(algorithm_supports(Algorithm::kAgRdComm, 6));
  EXPECT_FALSE(algorithm_supports(Algorithm::kAgRdComm, 7));
  EXPECT_TRUE(algorithm_supports(Algorithm::kAgRdComm, 1));
  // Alltoall RD wants a power of two.
  EXPECT_TRUE(algorithm_supports(Algorithm::kAaRecursiveDoubling, 16));
  EXPECT_FALSE(algorithm_supports(Algorithm::kAaRecursiveDoubling, 12));
  // Allgather RD handles any world (generalised schedule).
  EXPECT_TRUE(algorithm_supports(Algorithm::kAgRecursiveDoubling, 12));
}

TEST(Collective, ValidAlgorithmsNeverEmpty) {
  for (int p = 1; p <= 40; ++p) {
    EXPECT_FALSE(valid_algorithms(Collective::kAllgather, p).empty()) << p;
    EXPECT_FALSE(valid_algorithms(Collective::kAlltoall, p).empty()) << p;
  }
}

TEST(Collective, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(31), 4);
  EXPECT_EQ(floor_log2(32), 5);
}

}  // namespace
}  // namespace pml::coll
