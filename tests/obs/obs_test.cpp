// pml::obs core: disabled-by-default no-ops, cross-thread counter
// aggregation (including common/parallel pool workers and raw
// std::threads that exit before the snapshot), gauge high-water marks,
// span recording/nesting, and reset() semantics.
//
// obs state is process-global; every test starts from a known state via
// the StateGuard fixture (ctest runs each case in its own process, but
// the binary must also pass when run directly).
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace pml::obs {
namespace {

/// Restore the enabled flag and drop recorded data around each test.
class StateGuard : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = set_enabled(false);
    reset();
  }
  void TearDown() override {
    reset();
    set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

using ObsTest = StateGuard;

const CounterSample* find_counter(const Snapshot& snap, const char* name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* find_gauge(const Snapshot& snap, const char* name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

TEST_F(ObsTest, DisabledByDefaultRecordsNothing) {
  EXPECT_FALSE(enabled());
  static Counter counter("test.disabled_counter");
  static Gauge gauge("test.disabled_gauge");
  counter.add(7);
  gauge.set(42);
  { Span span("test.disabled_span"); }
  const Snapshot snap = snapshot();
  EXPECT_EQ(find_counter(snap, "test.disabled_counter"), nullptr);
  EXPECT_EQ(find_gauge(snap, "test.disabled_gauge"), nullptr);
  EXPECT_TRUE(snap.spans.empty());
}

TEST_F(ObsTest, SetEnabledReturnsPreviousState) {
  EXPECT_FALSE(set_enabled(true));
  EXPECT_TRUE(enabled());
  EXPECT_TRUE(set_enabled(false));
  EXPECT_FALSE(enabled());
}

TEST_F(ObsTest, CounterAccumulatesAndInstancesWithSameNameMerge) {
  set_enabled(true);
  static Counter a("test.shared_counter");
  static Counter b("test.shared_counter");  // same name, same aggregate
  a.add(3);
  b.add(4);
  a.increment();
  const Snapshot snap = snapshot();
  const auto* sample = find_counter(snap, "test.shared_counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 8u);
}

TEST_F(ObsTest, CounterAggregatesAcrossRawThreads) {
  set_enabled(true);
  static Counter counter("test.mt_counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) counter.increment();
    });
  }
  for (auto& t : threads) t.join();
  // The workers have exited: their buffers must have been folded into the
  // registry's retired aggregate.
  const Snapshot snap = snapshot();
  const auto* sample = find_counter(snap, "test.mt_counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, kThreads * kIncrements);
}

TEST_F(ObsTest, CounterAggregatesAcrossPoolWorkers) {
  set_enabled(true);
  static Counter counter("test.pool_counter");
  constexpr std::size_t kTasks = 64;
  parallel_for(4, kTasks, [&](std::size_t) { counter.add(2); });
  const Snapshot snap = snapshot();
  const auto* sample = find_counter(snap, "test.pool_counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 2 * kTasks);
}

TEST_F(ObsTest, GaugeKeepsLastValueAndHighWaterMark) {
  set_enabled(true);
  static Gauge gauge("test.gauge");
  gauge.set(5);
  gauge.set(40);
  gauge.set(-3);
  const Snapshot snap = snapshot();
  const auto* sample = find_gauge(snap, "test.gauge");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, -3);  // most recent set wins
  EXPECT_EQ(sample->max, 40);   // high-water mark survives
}

TEST_F(ObsTest, SpanRecordsIntervalAndNesting) {
  set_enabled(true);
  {
    Span outer("test.outer");
    { Span inner("test.inner"); }
  }
  const Snapshot snap = snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  const auto outer_it = std::find_if(
      snap.spans.begin(), snap.spans.end(),
      [](const SpanSample& s) { return s.name == "test.outer"; });
  const auto inner_it = std::find_if(
      snap.spans.begin(), snap.spans.end(),
      [](const SpanSample& s) { return s.name == "test.inner"; });
  ASSERT_NE(outer_it, snap.spans.end());
  ASSERT_NE(inner_it, snap.spans.end());
  // The inner interval nests inside the outer one.
  EXPECT_GE(inner_it->start_ns, outer_it->start_ns);
  EXPECT_LE(inner_it->start_ns + inner_it->dur_ns,
            outer_it->start_ns + outer_it->dur_ns);
  EXPECT_EQ(inner_it->tid, outer_it->tid);
}

TEST_F(ObsTest, SpanStartedWhileDisabledIsNotRecorded) {
  Span span("test.straddle");  // constructed with collection off
  set_enabled(true);
  // Destroyed with collection on: the span must still not record, because
  // it never captured a start time.
  { /* span dies at end of test body */ }
  set_enabled(false);
  set_enabled(true);
  EXPECT_TRUE(snapshot().spans.empty());
}

TEST_F(ObsTest, SnapshotIsSorted) {
  set_enabled(true);
  static Counter zebra("test.zzz");
  static Counter alpha("test.aaa");
  zebra.increment();
  alpha.increment();
  { Span s1("test.span_a"); }
  { Span s2("test.span_b"); }
  const Snapshot snap = snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  EXPECT_TRUE(std::is_sorted(snap.spans.begin(), snap.spans.end(),
                             [](const auto& a, const auto& b) {
                               return a.start_ns < b.start_ns ||
                                      (a.start_ns == b.start_ns &&
                                       a.tid < b.tid);
                             }));
}

TEST_F(ObsTest, ResetDropsDataButKeepsRecordingWorking) {
  set_enabled(true);
  static Counter counter("test.reset_counter");
  counter.add(10);
  { Span span("test.reset_span"); }
  reset();
  Snapshot snap = snapshot();
  EXPECT_EQ(find_counter(snap, "test.reset_counter"), nullptr);
  EXPECT_TRUE(snap.spans.empty());
  // Recording still works after the reset (interned ids survive).
  counter.add(5);
  const Snapshot after = snapshot();
  const auto* sample = find_counter(after, "test.reset_counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 5u);
}

}  // namespace
}  // namespace pml::obs
