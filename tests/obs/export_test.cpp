// Exporter golden-schema tests: the chrome://tracing document and the
// pml-metrics-v1 summary have load-bearing shapes (chrome://tracing and
// tools/bench_compare.py both consume them), so the exact field set is
// pinned here against synthetic snapshots with known statistics.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"

namespace pml::obs {
namespace {

/// Synthetic snapshot with hand-computable statistics.
Snapshot sample_snapshot() {
  Snapshot snap;
  snap.counters.push_back({"sim.events_processed", 1234});
  snap.gauges.push_back({"sim.pending_pool_high_water", 7, 32});
  // Ten spans of one name with durations 1..10 us, plus one other span.
  for (std::uint64_t i = 1; i <= 10; ++i) {
    snap.spans.push_back({"dataset.cell", i * 2000, i * 1000, 0});
  }
  snap.spans.push_back({"train", 0, 50000, 1});
  return snap;
}

TEST(SpanStats, NearestRankPercentilesOverKnownDurations) {
  const auto stats = span_stats(sample_snapshot());
  ASSERT_EQ(stats.size(), 2u);  // sorted by name: dataset.cell, train
  const SpanStats& cell = stats[0];
  EXPECT_EQ(cell.name, "dataset.cell");
  EXPECT_EQ(cell.count, 10u);
  EXPECT_EQ(cell.total_ns, 55000u);  // 1+2+...+10 us
  EXPECT_EQ(cell.min_ns, 1000u);
  EXPECT_EQ(cell.max_ns, 10000u);
  EXPECT_EQ(cell.p50_ns, 5000u);   // nearest rank: 5th of 10
  EXPECT_EQ(cell.p95_ns, 10000u);  // nearest rank: 10th of 10
  const SpanStats& train = stats[1];
  EXPECT_EQ(train.name, "train");
  EXPECT_EQ(train.count, 1u);
  EXPECT_EQ(train.min_ns, 50000u);
  EXPECT_EQ(train.p50_ns, 50000u);
  EXPECT_EQ(train.p95_ns, 50000u);
}

TEST(ChromeTrace, DocumentMatchesTraceEventSchema) {
  const Json doc = chrome_trace_json(sample_snapshot());
  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 11u);
  for (const Json& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");  // complete event
    EXPECT_EQ(e.at("cat").as_string(), "pml");
    EXPECT_EQ(e.at("pid").as_int(), 1);
    EXPECT_FALSE(e.at("name").as_string().empty());
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    EXPECT_GE(e.at("ts").as_number(), 0.0);
    (void)e.at("tid").as_int();
  }
  // Timestamps are microseconds: the 1000 ns span becomes ts=2, dur=1.
  const Json& first = events[0];
  EXPECT_EQ(first.at("name").as_string(), "dataset.cell");
  EXPECT_DOUBLE_EQ(first.at("ts").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(first.at("dur").as_number(), 1.0);
  // Counters and gauges ride along in otherData.
  const Json& other = doc.at("otherData");
  EXPECT_EQ(other.at("counters").at("sim.events_processed").as_int(), 1234);
  EXPECT_EQ(other.at("gauges")
                .at("sim.pending_pool_high_water")
                .at("max")
                .as_int(),
            32);
}

TEST(Metrics, DocumentMatchesMetricsV1Schema) {
  const Json doc = metrics_json(sample_snapshot());
  EXPECT_EQ(doc.at("format").as_string(), "pml-metrics-v1");
  EXPECT_EQ(doc.at("counters").at("sim.events_processed").as_int(), 1234);
  const Json& gauge = doc.at("gauges").at("sim.pending_pool_high_water");
  EXPECT_EQ(gauge.at("value").as_int(), 7);
  EXPECT_EQ(gauge.at("max").as_int(), 32);
  const Json& cell = doc.at("spans").at("dataset.cell");
  EXPECT_EQ(cell.at("count").as_int(), 10);
  EXPECT_EQ(cell.at("total_ns").as_int(), 55000);
  EXPECT_EQ(cell.at("min_ns").as_int(), 1000);
  EXPECT_EQ(cell.at("max_ns").as_int(), 10000);
  EXPECT_EQ(cell.at("p50_ns").as_int(), 5000);
  EXPECT_EQ(cell.at("p95_ns").as_int(), 10000);
}

TEST(Metrics, EmptySnapshotStillProducesValidDocument) {
  const Json doc = metrics_json(Snapshot{});
  EXPECT_EQ(doc.at("format").as_string(), "pml-metrics-v1");
  EXPECT_TRUE(doc.at("counters").as_object().empty());
  EXPECT_TRUE(doc.at("gauges").as_object().empty());
  EXPECT_TRUE(doc.at("spans").as_object().empty());
  EXPECT_TRUE(chrome_trace_json(Snapshot{}).at("traceEvents").as_array()
                  .empty());
}

TEST(ScopedCaptureTest, WritesBothFilesAndRestoresEnabledState) {
  const bool was = set_enabled(false);
  reset();
  const std::string trace_path = ::testing::TempDir() + "obs_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "obs_metrics.json";
  {
    ScopedCapture capture(Sink{trace_path, metrics_path});
    EXPECT_TRUE(enabled());  // non-empty sink turns collection on
    Span span("test.capture_span");
    static Counter counter("test.capture_counter");
    counter.increment();
  }
  EXPECT_FALSE(enabled());  // restored on destruction
  // Both files parse and carry the recorded data.
  const Json trace = Json::parse(read_file(trace_path));
  bool saw_span = false;
  for (const Json& e : trace.at("traceEvents").as_array()) {
    saw_span = saw_span || e.at("name").as_string() == "test.capture_span";
  }
  EXPECT_TRUE(saw_span);
  const Json metrics = Json::parse(read_file(metrics_path));
  EXPECT_EQ(metrics.at("format").as_string(), "pml-metrics-v1");
  EXPECT_EQ(metrics.at("counters").at("test.capture_counter").as_int(), 1);
  EXPECT_TRUE(metrics.at("spans").as_object().contains("test.capture_span"));
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  reset();
  set_enabled(was);
}

TEST(ScopedCaptureTest, EmptySinkIsInert) {
  const bool was = set_enabled(false);
  {
    ScopedCapture capture(Sink{});
    EXPECT_FALSE(enabled());
  }
  EXPECT_FALSE(enabled());
  set_enabled(was);
}

}  // namespace
}  // namespace pml::obs
