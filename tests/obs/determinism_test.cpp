// Observability must never perturb results (obs design constraint #2):
// with collection on, every instrumented pipeline — the event-driven
// simulator, dataset builds, forest training — has to produce bit-identical
// outputs to the collection-off run. Spans and counters only observe; they
// must not touch RNG streams, iteration order, or accumulation order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coll/runner.hpp"
#include "core/framework.hpp"
#include "obs/obs.hpp"
#include "sim/hardware.hpp"

namespace pml {
namespace {

/// Run `body` twice — collection off, then on — and return both results.
template <typename Body>
auto with_obs_off_then_on(Body body) {
  const bool was = obs::set_enabled(false);
  obs::reset();
  auto off = body();
  obs::set_enabled(true);
  auto on = body();
  obs::reset();
  obs::set_enabled(was);
  return std::pair{std::move(off), std::move(on)};
}

TEST(ObsDeterminism, VirtualTimeIsBitIdenticalWithTracingOn) {
  const auto& cluster = sim::cluster_by_name("Frontera");
  const sim::Topology topo{4, 8};
  for (const auto payload :
       {sim::PayloadMode::kVerify, sim::PayloadMode::kTimingOnly}) {
    // Nonzero noise: the jitter stream must be untouched by instrumentation.
    const sim::RunOptions opts{payload, 0.1, 321};
    const auto [off, on] = with_obs_off_then_on([&] {
      return coll::run_collective(cluster, topo, coll::Algorithm::kAgRing,
                                  4096, opts)
          .seconds;
    });
    EXPECT_EQ(off, on);  // exact double equality is intentional
  }
}

TEST(ObsDeterminism, TrainedBundleBytesAreBitIdenticalWithTracingOn) {
  core::TrainOptions options;
  options.forest.n_trees = 8;
  const std::vector<sim::ClusterSpec> clusters = {sim::cluster_by_name("RI"),
                                                  sim::cluster_by_name("Rome")};
  const auto [off, on] = with_obs_off_then_on([&] {
    return core::PmlFramework::train(clusters, options).to_json().dump();
  });
  EXPECT_EQ(off, on);
}

TEST(ObsDeterminism, CompiledTableIsBitIdenticalWithTracingOn) {
  core::TrainOptions train_options;
  train_options.forest.n_trees = 8;
  const std::vector<sim::ClusterSpec> clusters = {
      sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
  auto fw = core::PmlFramework::train(clusters, train_options);
  const auto& target = sim::cluster_by_name("MRI");
  const auto compile_options =
      core::CompileOptions::sweep({2, 4}, {16}, {1024, 65536});
  const auto [off, on] = with_obs_off_then_on([&] {
    return fw.compile_for(target, compile_options).to_json().dump();
  });
  EXPECT_EQ(off, on);
}

}  // namespace
}  // namespace pml
