// The error taxonomy is part of the CLI contract: every ErrorCode maps to a
// stable name and a stable exit status (3-8; 1 reserved for unknown
// failures, 2 for usage errors). This table-driven test locks the mapping
// and each subclass's code/what() prefix, so a taxonomy change is a
// deliberate, visible edit here — not an accidental exit-status shift.
#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pml {
namespace {

TEST(ErrorTaxonomy, CodeToExitStatusAndName) {
  struct Row {
    ErrorCode code;
    int exit;
    const char* name;
  };
  const Row rows[] = {
      {ErrorCode::kConfig, 3, "config"}, {ErrorCode::kIo, 4, "io"},
      {ErrorCode::kJson, 5, "json"},     {ErrorCode::kSim, 6, "sim"},
      {ErrorCode::kMl, 7, "ml"},         {ErrorCode::kTuning, 8, "tuning"},
  };
  for (const Row& row : rows) {
    EXPECT_EQ(exit_status(row.code), row.exit) << row.name;
    EXPECT_STREQ(to_string(row.code), row.name);
  }
  EXPECT_EQ(exit_status(ErrorCode::kUnknown), 1);
  EXPECT_STREQ(to_string(ErrorCode::kUnknown), "unknown");
}

TEST(ErrorTaxonomy, SubclassesCarryTheirCodeAndPrefix) {
  const auto check = [](const Error& err, ErrorCode code) {
    EXPECT_EQ(err.code(), code);
    // what() leads with the stable code name, so log lines are greppable
    // by failure class.
    const std::string what = err.what();
    const std::string prefix = std::string(to_string(code)) + ": ";
    EXPECT_EQ(what.substr(0, prefix.size()), prefix);
  };
  check(ConfigError("x"), ErrorCode::kConfig);
  check(IoError("x"), ErrorCode::kIo);
  check(JsonError("x"), ErrorCode::kJson);
  check(SimError("x"), ErrorCode::kSim);
  check(MlError("x"), ErrorCode::kMl);
  check(TuningError("x"), ErrorCode::kTuning);
}

TEST(ErrorTaxonomy, SubclassesAreCatchableAsPmlError) {
  bool caught = false;
  try {
    throw TuningError("fallback ladder");
  } catch (const Error& err) {
    caught = true;
    EXPECT_EQ(err.code(), ErrorCode::kTuning);
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace pml
