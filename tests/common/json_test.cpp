#include "common/json.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pml {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_FALSE(j.is_object());
}

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, DoubleSerialization) {
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json(1e15).dump(), "1000000000000000");
  // Integral doubles print without a fraction.
  EXPECT_EQ(Json(1024.0).dump(), "1024");
}

TEST(Json, NonFiniteThrows) {
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()).dump(), JsonError);
  EXPECT_THROW(Json(std::numeric_limits<double>::quiet_NaN()).dump(), JsonError);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  j["mango"] = 3;
  EXPECT_EQ(j.dump(), R"({"zebra":1,"apple":2,"mango":3})");
}

TEST(Json, ObjectAccessors) {
  Json j = Json::object();
  j["x"] = 5;
  EXPECT_TRUE(j.contains("x"));
  EXPECT_FALSE(j.contains("y"));
  EXPECT_EQ(j.at("x").as_int(), 5);
  EXPECT_THROW(j.at("y"), JsonError);
}

TEST(Json, ArrayBuildAndAccess) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Json::array());
  EXPECT_EQ(arr.as_array().size(), 3u);
  EXPECT_EQ(arr.dump(), R"([1,"two",[]])");
}

TEST(Json, TypeMismatchThrows) {
  Json j(3.5);
  EXPECT_THROW(j.as_string(), JsonError);
  EXPECT_THROW(j.as_array(), JsonError);
  EXPECT_THROW(Json("s").as_number(), JsonError);
}

TEST(Json, StringEscapes) {
  Json j(std::string("a\"b\\c\nd\te"));
  const std::string dumped = j.dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json::parse(dumped).as_string(), "a\"b\\c\nd\te");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(Json::parse("  \"x\"  ").as_string(), "x");
}

TEST(Json, ParseNested) {
  const Json j = Json::parse(R"({"a": [1, {"b": null}], "c": {"d": 2}})");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
  EXPECT_TRUE(j.at("a").as_array()[1].at("b").is_null());
  EXPECT_EQ(j.at("c").at("d").as_int(), 2);
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
}

TEST(Json, DeepNestingIsBoundedNotStackOverflow) {
  // 100k unclosed brackets used to recurse once per level; the parser
  // now fails structurally at its depth bound instead of crashing.
  EXPECT_THROW(Json::parse(std::string(100'000, '[')), JsonError);
  EXPECT_THROW(Json::parse(std::string(100'000, '{')), JsonError);
  std::string alternating;
  for (int i = 0; i < 50'000; ++i) alternating += "[{\"k\":";
  EXPECT_THROW(Json::parse(alternating), JsonError);

  // Nesting under the bound still parses.
  std::string shallow(64, '[');
  shallow += "1";
  shallow.append(64, ']');
  EXPECT_EQ(Json::parse(shallow).as_array().size(), 1u);
}

TEST(Json, AsIntRejectsValuesOutsideInt64) {
  EXPECT_THROW(Json::parse("1e300").as_int(), JsonError);
  EXPECT_THROW(Json::parse("-1e300").as_int(), JsonError);
  EXPECT_THROW(Json::parse("9223372036854775808").as_int(), JsonError);
  EXPECT_EQ(Json::parse("-9223372036854775808").as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(Json::parse("4611686018427387904").as_int(),
            std::int64_t{1} << 62);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
}

TEST(Json, RoundTripComplexDocument) {
  Json doc = Json::object();
  doc["name"] = "cluster";
  doc["sizes"] = Json::array();
  for (int i = 0; i < 8; ++i) doc["sizes"].push_back(1 << i);
  doc["nested"] = Json::object();
  doc["nested"]["flag"] = true;
  doc["nested"]["ratio"] = 0.125;

  const Json reparsed = Json::parse(doc.dump());
  EXPECT_EQ(reparsed, doc);
  const Json pretty = Json::parse(doc.dump(2));
  EXPECT_EQ(pretty, doc);
}

TEST(Json, PrettyPrintIndents) {
  Json doc = Json::object();
  doc["k"] = Json::array();
  doc["k"].push_back(1);
  EXPECT_EQ(doc.dump(2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(Json, EqualityIsStructural) {
  EXPECT_EQ(Json::parse("[1,2]"), Json::parse("[1, 2]"));
  EXPECT_FALSE(Json::parse("[1,2]") == Json::parse("[2,1]"));
}

}  // namespace
}  // namespace pml
