#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pml {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, TitleAppearsFirst) {
  TextTable t({"c"});
  t.set_title("Table I");
  t.add_row({"x"});
  EXPECT_EQ(t.str().rfind("Table I", 0), 0u);
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), Error);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"x", "longheader"});
  t.add_row({"aaaa", "1"});
  const std::string out = t.str();
  // Every rendered line has the same length.
  std::size_t expected = out.find('\n');
  std::size_t start = expected + 1;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t({"metric"});
  t.add_row({"5"});
  const std::string out = t.str();
  // "metric" is 6 wide; the value row should pad the number to the right.
  EXPECT_NE(out.find("|      5 |"), std::string::npos);
}

}  // namespace
}  // namespace pml
