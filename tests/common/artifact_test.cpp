// pml-artifact-v1 envelopes: checksum math, atomic write round-trips,
// legacy passthrough, mismatch detection, doctor verdicts, and the
// bounded-exponential-backoff retry helper.
#include "common/artifact.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pml {
namespace {

class ArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pml_artifact_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

Json sample_payload() {
  Json payload = Json::object();
  payload["format"] = "pml-sample-v1";
  payload["value"] = 42;
  return payload;
}

TEST(Fnv1a64, KnownVectors) {
  // Reference values of the FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, ChecksumSurvivesParseDumpRoundTrip) {
  const Json payload = sample_payload();
  const std::string checksum = payload_checksum(payload);
  const Json reparsed = Json::parse(payload.dump(2));
  EXPECT_EQ(payload_checksum(reparsed), checksum);
}

TEST_F(ArtifactTest, WriteAndLoadRoundTrip) {
  const std::string file = path("sample.json");
  write_artifact(file, sample_payload(), "sample");

  const Json doc = Json::parse(read_file(file));
  EXPECT_TRUE(is_artifact_envelope(doc));
  const Json back = artifact_payload(doc, "sample");
  EXPECT_EQ(back, sample_payload());
  // The atomic write must not leave its temp file behind.
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
}

TEST_F(ArtifactTest, AtomicWriteReplacesExistingFile) {
  const std::string file = path("sample.json");
  write_file(file, "old contents");
  write_artifact(file, sample_payload(), "sample");
  const Json doc = Json::parse(read_file(file));
  EXPECT_EQ(artifact_payload(doc, "sample"), sample_payload());
}

TEST(ArtifactPayload, LegacyDocumentPassesThroughByDefault) {
  const Json legacy = sample_payload();  // no envelope
  EXPECT_EQ(artifact_payload(legacy, "sample"), legacy);
  EXPECT_THROW(artifact_payload(legacy, "sample", 1, /*allow_legacy=*/false),
               JsonError);
}

TEST_F(ArtifactTest, MismatchesThrow) {
  const std::string file = path("sample.json");
  write_artifact(file, sample_payload(), "sample");
  Json doc = Json::parse(read_file(file));

  EXPECT_THROW(artifact_payload(doc, "other-kind"), JsonError);
  EXPECT_THROW(artifact_payload(doc, "sample", 2), JsonError);

  doc["payload"]["value"] = 43;  // content changed, checksum now stale
  EXPECT_THROW(artifact_payload(doc, "sample"), JsonError);
}

TEST_F(ArtifactTest, InspectClassifiesEveryVerdict) {
  const std::string ok = path("ok.json");
  write_artifact(ok, sample_payload(), "sample");
  EXPECT_EQ(inspect_artifact(ok).status, ArtifactStatus::kOk);
  EXPECT_EQ(inspect_artifact(ok).kind, "sample");

  const std::string legacy = path("legacy.json");
  write_file(legacy, sample_payload().dump(2));
  EXPECT_EQ(inspect_artifact(legacy).status, ArtifactStatus::kLegacy);
  EXPECT_EQ(inspect_artifact(legacy).kind, "pml-sample-v1");

  const std::string stale = path("stale.json");
  write_artifact(stale, sample_payload(), "sample", /*schema_version=*/2);
  EXPECT_EQ(inspect_artifact(stale).status, ArtifactStatus::kStaleSchema);
  EXPECT_EQ(inspect_artifact(stale).schema, 2);

  const std::string truncated = path("truncated.json");
  const std::string full = read_file(ok);
  write_file(truncated, full.substr(0, full.size() / 2));
  EXPECT_EQ(inspect_artifact(truncated).status, ArtifactStatus::kCorrupt);

  const std::string flipped = path("flipped.json");
  std::string bytes = read_file(ok);
  const std::size_t value_at = bytes.find("\"value\": 42");
  ASSERT_NE(value_at, std::string::npos);
  bytes[value_at + 10] = '9';  // payload changed under the checksum
  write_file(flipped, bytes);
  EXPECT_EQ(inspect_artifact(flipped).status, ArtifactStatus::kCorrupt);

  const std::string foreign = path("foreign.json");
  write_file(foreign, "{\"hello\": \"world\"}");
  EXPECT_EQ(inspect_artifact(foreign).status, ArtifactStatus::kCorrupt);

  EXPECT_EQ(inspect_artifact(path("missing.json")).status,
            ArtifactStatus::kUnreadable);
}

TEST(ArtifactStatusName, StableStrings) {
  EXPECT_STREQ(to_string(ArtifactStatus::kOk), "ok");
  EXPECT_STREQ(to_string(ArtifactStatus::kLegacy), "legacy");
  EXPECT_STREQ(to_string(ArtifactStatus::kStaleSchema), "stale-schema");
  EXPECT_STREQ(to_string(ArtifactStatus::kCorrupt), "corrupt");
  EXPECT_STREQ(to_string(ArtifactStatus::kUnreadable), "unreadable");
}

TEST(WithRetry, TransientFailureRecoversWithBackoff) {
  std::vector<double> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_seconds = 0.001;
  policy.backoff_multiplier = 8.0;
  policy.sleep = [&](double seconds) { sleeps.push_back(seconds); };

  int calls = 0;
  const int result = with_retry(policy, [&] {
    if (++calls < 3) throw IoError("transient");
    return 7;
  });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3);
  // Two retries: backoff doubles by the multiplier each time.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_DOUBLE_EQ(sleeps[0], 0.001);
  EXPECT_DOUBLE_EQ(sleeps[1], 0.008);
}

TEST(WithRetry, ExhaustionRethrowsTheLastError) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.sleep = [](double) {};
  int calls = 0;
  EXPECT_THROW(with_retry(policy, [&]() -> int {
                 ++calls;
                 throw IoError("still broken");
               }),
               IoError);
  EXPECT_EQ(calls, 2);
}

TEST(WithRetry, NonIoErrorsPropagateImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep = [](double) { FAIL() << "must not sleep for non-IO errors"; };
  int calls = 0;
  EXPECT_THROW(with_retry(policy, [&]() -> int {
                 ++calls;
                 throw JsonError("corrupt");
               }),
               JsonError);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pml
