// CircuitBreaker state machine under an injected clock: threshold
// opens, windows back off exponentially up to the cap, exactly one
// half-open probe is handed out per expired window, and the probe's
// outcome closes or re-opens the breaker.
#include <gtest/gtest.h>

#include "common/artifact.hpp"

namespace pml {
namespace {

BreakerPolicy policy_at(double* clock_now) {
  BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_seconds = 5.0;
  policy.backoff_multiplier = 2.0;
  policy.max_open_seconds = 15.0;
  policy.now = [clock_now] { return *clock_now; };
  return policy;
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  double now = 0.0;
  CircuitBreaker breaker(policy_at(&now));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kAllow);
}

TEST(CircuitBreakerTest, SuccessResetsFailureCount) {
  double now = 0.0;
  CircuitBreaker breaker(policy_at(&now));
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_success();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  // Two more failures after the reset still don't reach the threshold.
  breaker.record_failure();
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ThresholdOpensAndRejectsUntilWindowExpires) {
  double now = 100.0;
  CircuitBreaker breaker(policy_at(&now));
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_TRUE(breaker.record_failure());  // third failure opens it
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kReject);
  now += 4.9;  // still inside the 5 s window
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kReject);
  now += 0.2;  // window expired
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, OnlyOneProbePerWindow) {
  double now = 0.0;
  CircuitBreaker breaker(policy_at(&now));
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  now += 6.0;
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kProbe);
  // While the probe is in flight everyone else is rejected.
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kReject);
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kReject);
}

TEST(CircuitBreakerTest, SuccessfulProbeCloses) {
  double now = 0.0;
  CircuitBreaker breaker(policy_at(&now));
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  now += 6.0;
  ASSERT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kProbe);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kAllow);
}

TEST(CircuitBreakerTest, FailedProbeReopensWithBackoff) {
  double now = 0.0;
  CircuitBreaker breaker(policy_at(&now));
  for (int i = 0; i < 3; ++i) breaker.record_failure();  // window 1: 5 s
  now += 6.0;
  ASSERT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kProbe);
  EXPECT_TRUE(breaker.record_failure());  // failed probe re-opens immediately
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Second window is 5 * 2 = 10 s.
  now += 9.9;
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kReject);
  now += 0.2;
  ASSERT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kProbe);
  EXPECT_TRUE(breaker.record_failure());
  // Third window would be 20 s but caps at max_open_seconds = 15.
  now += 14.9;
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kReject);
  now += 0.2;
  EXPECT_EQ(breaker.try_acquire(), CircuitBreaker::Decision::kProbe);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(to_string(BreakerState::kClosed), "closed");
  EXPECT_STREQ(to_string(BreakerState::kOpen), "open");
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half-open");
}

TEST(CircuitBreakerTest, ThresholdOfOneOpensOnFirstFailure) {
  double now = 0.0;
  BreakerPolicy policy = policy_at(&now);
  policy.failure_threshold = 1;
  CircuitBreaker breaker(policy);
  EXPECT_TRUE(breaker.record_failure());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

}  // namespace
}  // namespace pml
