#include "common/strings.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"

namespace pml {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n z \r"), "z");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(1), "1");
  EXPECT_EQ(format_bytes(512), "512");
  EXPECT_EQ(format_bytes(1024), "1K");
  EXPECT_EQ(format_bytes(65536), "64K");
  EXPECT_EQ(format_bytes(1048576), "1M");
  EXPECT_EQ(format_bytes(1536), "1536");  // not a clean multiple
  EXPECT_EQ(format_bytes(1ULL << 30), "1G");
}

TEST(Strings, FormatTime) {
  EXPECT_EQ(format_time(2.5e-6), "2.50 us");
  EXPECT_EQ(format_time(3.25e-3), "3.25 ms");
  EXPECT_EQ(format_time(1.5), "1.50 s");
  EXPECT_EQ(format_time(7200.0), "2.00 h");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Strings, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "pml_strings_test.txt")
          .string();
  write_file(path, "hello\nworld");
  EXPECT_EQ(read_file(path), "hello\nworld");
  std::filesystem::remove(path);
}

TEST(Strings, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/path/file.txt"), Error);
}

TEST(Strings, WriteToBadPathThrows) {
  EXPECT_THROW(write_file("/nonexistent/dir/file.txt", "x"), Error);
}

}  // namespace
}  // namespace pml
