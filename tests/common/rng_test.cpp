#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace pml {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto idx = rng.uniform_index(10);
    ASSERT_LT(idx, 10u);
    counts[static_cast<std::size_t>(idx)]++;
  }
  // Roughly uniform: every bucket within 30% of the mean.
  for (const int c : counts) EXPECT_NEAR(c, 1000, 300);
}

TEST(Rng, UniformIndexOne) {
  Rng rng(13);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalJitterMedianNearOne) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 5001; ++i) xs.push_back(rng.lognormal_jitter(0.2));
  std::nth_element(xs.begin(), xs.begin() + 2500, xs.end());
  EXPECT_NEAR(xs[2500], 1.0, 0.05);
  for (const double x : xs) ASSERT_GT(x, 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(29);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
  // With 10 elements the identity permutation is overwhelmingly unlikely.
  EXPECT_NE(v, sorted);
}

TEST(Rng, ShuffleHandlesTinyContainers) {
  Rng rng(37);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one[0], 42);
}

}  // namespace
}  // namespace pml
