#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pml {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 16}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(threads, hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << threads;
  }
}

TEST(ParallelFor, ZeroAndOneIterations) {
  int calls = 0;
  parallel_for(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(4, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(4, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool survives a failed job and keeps serving.
  std::atomic<int> count{0};
  parallel_for(4, 50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, NestedCallsCompleteWithoutDeadlock) {
  std::vector<std::atomic<int>> hits(8 * 8);
  parallel_for(4, 8, [&](std::size_t outer) {
    parallel_for(4, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ConcurrentWritesToDisjointSlotsAreOrdered) {
  // The determinism contract the hot paths rely on: pre-sized output slots
  // filled by index produce the same result at any thread count.
  std::vector<int> serial(1000);
  std::vector<int> parallel(1000);
  auto body = [](std::vector<int>& out) {
    return [&out](std::size_t i) { out[i] = static_cast<int>(i * i % 97); };
  };
  parallel_for(1, serial.size(), body(serial));
  parallel_for(8, parallel.size(), body(parallel));
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, StandalonePoolWithZeroWorkersRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> order;
  pool.parallel_for(8, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // serial: no data race possible
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, StandalonePoolDistributesWork) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::atomic<long> sum{0};
  pool.parallel_for(4, 1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 999L * 1000L / 2);
}

TEST(Parallel, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(0), hardware_threads());
  EXPECT_EQ(resolve_threads(-5), hardware_threads());
  EXPECT_GE(hardware_threads(), 1);
}

}  // namespace
}  // namespace pml
