// `pml doctor --repair` mechanics: legacy envelope upgrades in place
// (atomic rewrite, checksum recomputed), corrupt files quarantined to a
// .quarantine/ sibling directory with collision-proof names, and healthy
// or merely version-skewed files left untouched.
#include "common/artifact.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pml {
namespace {

namespace fs = std::filesystem;

class DoctorRepairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pml_doctor_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(DoctorRepairTest, LegacyKindMapping) {
  EXPECT_EQ(legacy_kind_for_format("pml-mpi-model-v1"), "model");
  EXPECT_EQ(legacy_kind_for_format("pml-mpi-tuning-table-v1"),
            "tuning-table");
  EXPECT_EQ(legacy_kind_for_format("pml-fault-plan-v1"), "fault-plan");
  EXPECT_EQ(legacy_kind_for_format("pml-dataset-v1"), "dataset");
  EXPECT_EQ(legacy_kind_for_format("pml-from-the-future-v9"), "");
}

TEST_F(DoctorRepairTest, RepairActionNames) {
  EXPECT_STREQ(to_string(RepairAction::kNone), "none");
  EXPECT_STREQ(to_string(RepairAction::kUpgraded), "upgraded");
  EXPECT_STREQ(to_string(RepairAction::kQuarantined), "quarantined");
  EXPECT_STREQ(to_string(RepairAction::kFailed), "failed");
}

TEST_F(DoctorRepairTest, UpgradesLegacyDocumentInPlace) {
  Json legacy = Json::object();
  legacy["format"] = std::string("pml-mpi-tuning-table-v1");
  legacy["collectives"] = Json::object();
  const std::string file = path("table.json");
  write_file_atomic(file, legacy.dump());
  ASSERT_EQ(inspect_artifact(file).status, ArtifactStatus::kLegacy);

  const RepairResult result = repair_artifact(file);
  EXPECT_EQ(result.info.status, ArtifactStatus::kLegacy);
  EXPECT_EQ(result.action, RepairAction::kUpgraded);

  const ArtifactInfo after = inspect_artifact(file);
  EXPECT_EQ(after.status, ArtifactStatus::kOk);
  EXPECT_EQ(after.kind, "tuning-table");
  // The payload survives the rewrap byte-for-byte.
  const Json payload = artifact_payload(Json::parse(read_file(file)),
                                        "tuning-table", 1, false);
  EXPECT_EQ(payload.dump(), legacy.dump());
}

TEST_F(DoctorRepairTest, UnknownLegacyFormatIsLeftUntouched) {
  const std::string file = path("future.json");
  write_file_atomic(file, R"({"format":"pml-from-the-future-v9"})");
  const RepairResult result = repair_artifact(file);
  EXPECT_EQ(result.action, RepairAction::kFailed);
  EXPECT_NE(result.detail.find("no envelope kind mapping"),
            std::string::npos);
  EXPECT_TRUE(fs::exists(file));  // never quarantine what we can't identify
}

TEST_F(DoctorRepairTest, QuarantinesCorruptFile) {
  const std::string file = path("broken.json");
  write_file_atomic(file, "{ not json");
  const RepairResult result = repair_artifact(file);
  EXPECT_EQ(result.info.status, ArtifactStatus::kCorrupt);
  EXPECT_EQ(result.action, RepairAction::kQuarantined);
  EXPECT_FALSE(fs::exists(file));
  EXPECT_TRUE(fs::exists(dir_ / ".quarantine" / "broken.json"));
}

TEST_F(DoctorRepairTest, QuarantineChecksumMismatch) {
  // A well-formed envelope whose payload was tampered with: checksum no
  // longer matches, so the content cannot be trusted and is quarantined.
  Json payload = Json::object();
  payload["value"] = 1;
  const std::string file = path("tampered.json");
  write_artifact(file, payload, "model");
  Json doc = Json::parse(read_file(file));
  doc["payload"]["value"] = 2;  // flips bytes without updating the checksum
  write_file_atomic(file, doc.dump());

  const RepairResult result = repair_artifact(file);
  EXPECT_EQ(result.action, RepairAction::kQuarantined);
  EXPECT_TRUE(fs::exists(dir_ / ".quarantine" / "tampered.json"));
}

TEST_F(DoctorRepairTest, QuarantineNamesNeverCollide) {
  for (int round = 0; round < 3; ++round) {
    const std::string file = path("repeat.json");
    write_file_atomic(file, "corrupt #" + std::to_string(round));
    const RepairResult result = repair_artifact(file);
    ASSERT_EQ(result.action, RepairAction::kQuarantined) << round;
  }
  EXPECT_TRUE(fs::exists(dir_ / ".quarantine" / "repeat.json"));
  EXPECT_TRUE(fs::exists(dir_ / ".quarantine" / "repeat.json.1"));
  EXPECT_TRUE(fs::exists(dir_ / ".quarantine" / "repeat.json.2"));
  EXPECT_EQ(read_file((dir_ / ".quarantine" / "repeat.json").string()),
            "corrupt #0");
  EXPECT_EQ(read_file((dir_ / ".quarantine" / "repeat.json.2").string()),
            "corrupt #2");
}

TEST_F(DoctorRepairTest, HealthyEnvelopeUntouched) {
  Json payload = Json::object();
  payload["value"] = 42;
  const std::string file = path("ok.json");
  write_artifact(file, payload, "model");
  const std::string before = read_file(file);

  const RepairResult result = repair_artifact(file);
  EXPECT_EQ(result.action, RepairAction::kNone);
  EXPECT_EQ(read_file(file), before);
}

TEST_F(DoctorRepairTest, StaleSchemaUntouched) {
  Json payload = Json::object();
  payload["value"] = 7;
  const std::string file = path("stale.json");
  write_artifact(file, payload, "model", 2);
  const std::string before = read_file(file);

  const RepairResult result = repair_artifact(file);
  EXPECT_EQ(result.info.status, ArtifactStatus::kStaleSchema);
  EXPECT_EQ(result.action, RepairAction::kNone);
  EXPECT_EQ(read_file(file), before);
}

TEST_F(DoctorRepairTest, MissingFileReportsFailed) {
  const RepairResult result = repair_artifact(path("absent.json"));
  EXPECT_EQ(result.info.status, ArtifactStatus::kUnreadable);
  EXPECT_EQ(result.action, RepairAction::kFailed);
}

}  // namespace
}  // namespace pml
