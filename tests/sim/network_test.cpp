#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/hardware.hpp"

namespace pml::sim {
namespace {

const ClusterSpec& frontera() { return cluster_by_name("Frontera"); }
const ClusterSpec& mri() { return cluster_by_name("MRI"); }

TEST(Topology, NodeMajorLayout) {
  const Topology t{4, 8};
  EXPECT_EQ(t.world_size(), 32);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_EQ(t.node_of(8), 1);
  EXPECT_EQ(t.node_of(31), 3);
  EXPECT_TRUE(t.same_node(0, 7));
  EXPECT_FALSE(t.same_node(7, 8));
}

TEST(NetworkModel, RejectsBadTopology) {
  EXPECT_THROW(NetworkModel(frontera(), Topology{0, 4}), SimError);
  EXPECT_THROW(NetworkModel(frontera(), Topology{2, 0}), SimError);
  // Frontera has 56 cores / 56 threads: ppn 57 is not runnable.
  EXPECT_THROW(NetworkModel(frontera(), Topology{2, 57}), SimError);
}

TEST(NetworkModel, InterAlphaAboveIntraAlpha) {
  const NetworkModel m(frontera(), Topology{2, 4});
  EXPECT_GT(m.inter_alpha(), m.intra_alpha());
  EXPECT_GT(m.intra_alpha(), 0.0);
}

TEST(NetworkModel, BandwidthTracksInterconnect) {
  // MRI: HDR + PCIe4 -> much higher NIC bandwidth than Frontera (EDR/PCIe3).
  const NetworkModel f(frontera(), Topology{2, 4});
  const NetworkModel m(mri(), Topology{2, 4});
  EXPECT_GT(m.inter_bandwidth(), 1.5 * f.inter_bandwidth());
}

TEST(NetworkModel, P2pTimeMonotonicInSize) {
  const NetworkModel m(frontera(), Topology{2, 8});
  double prev = 0.0;
  for (std::uint64_t bytes = 1; bytes <= (1u << 20); bytes <<= 2) {
    const double t = m.p2p_time(bytes, 0, 8);
    EXPECT_GT(t, 0.0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(NetworkModel, InterSlowerThanIntraSmall) {
  const NetworkModel m(frontera(), Topology{2, 8});
  EXPECT_GT(m.p2p_time(8, 0, 8), m.p2p_time(8, 0, 1));
}

TEST(NetworkModel, FlowsScaleInterTime) {
  const NetworkModel m(frontera(), Topology{2, 8});
  const double one = m.p2p_time(1 << 20, 0, 8, 1);
  const double eight = m.p2p_time(1 << 20, 0, 8, 8);
  EXPECT_GT(eight, 4.0 * one);  // bandwidth term dominates at 1 MiB
}

TEST(NetworkModel, L3CacheBoostsSmallCopies) {
  const NetworkModel m(frontera(), Topology{1, 8});
  // Small working sets fit the per-rank L3 share and copy faster.
  EXPECT_GT(m.copy_bandwidth(1024), m.copy_bandwidth(1u << 26));
}

TEST(NetworkModel, L3ShareShrinksWithPpn) {
  const NetworkModel wide(frontera(), Topology{1, 56});
  const NetworkModel narrow(frontera(), Topology{1, 2});
  EXPECT_LT(wide.l3_share_bytes(), narrow.l3_share_bytes());
}

TEST(NetworkModel, BigL3ClusterKeepsCacheSpeedLonger) {
  // MRI (512 MB L3) stays cache-resident at sizes where Frontera (77 MB)
  // has spilled to DRAM, at the same PPN.
  const NetworkModel f(frontera(), Topology{1, 16});
  const NetworkModel m(mri(), Topology{1, 16});
  const std::uint64_t ws = 8ull << 20;  // 8 MiB per rank
  EXPECT_GT(m.copy_bandwidth(ws), f.copy_bandwidth(ws));
}

TEST(NetworkModel, SelfMessageIsMemcpy) {
  const NetworkModel m(frontera(), Topology{2, 4});
  EXPECT_DOUBLE_EQ(m.p2p_time(4096, 3, 3), m.memcpy_time(4096, 4096));
}

TEST(NetworkModel, ZeroByteMemcpyFree) {
  const NetworkModel m(frontera(), Topology{1, 1});
  EXPECT_DOUBLE_EQ(m.memcpy_time(0, 0), 0.0);
}

TEST(NetworkModel, OverheadScalesInverseWithClock) {
  const NetworkModel slow(cluster_by_name("TACC-KNL"), Topology{2, 4});
  const NetworkModel fast(frontera(), Topology{2, 4});
  EXPECT_GT(slow.per_message_overhead(), fast.per_message_overhead());
}

}  // namespace
}  // namespace pml::sim
