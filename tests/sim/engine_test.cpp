#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "sim/comm.hpp"

namespace pml::sim {
namespace {

const ClusterSpec& frontera() { return cluster_by_name("Frontera"); }

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string string_of(const std::vector<std::byte>& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(Engine, PingPongDeliversPayloadAndTime) {
  Engine engine(frontera(), Topology{2, 1});
  auto msg = bytes_of("hello, rank 1");
  std::vector<std::byte> inbox(msg.size());

  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 0) {
      co_await comm.send(1, msg);
    } else {
      co_await comm.recv(0, inbox);
    }
  });

  EXPECT_EQ(string_of(inbox), "hello, rank 1");
  EXPECT_GT(engine.elapsed(), 0.0);
  // One small inter-node message: latency-dominated, around alpha.
  const NetworkModel& m = engine.model();
  EXPECT_LT(engine.elapsed(), 3.0 * m.inter_alpha() + 1e-6);
}

TEST(Engine, IntraNodeFasterThanInterNode) {
  auto time_pair = [&](Topology topo) {
    Engine engine(frontera(), topo);
    std::vector<std::byte> out(256), in(256);
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      if (rank == 0) {
        co_await comm.send(1, out);
      } else {
        co_await comm.recv(0, in);
      }
    });
    return engine.elapsed();
  };
  EXPECT_LT(time_pair(Topology{1, 2}), time_pair(Topology{2, 1}));
}

TEST(Engine, SendrecvExchanges) {
  Engine engine(frontera(), Topology{1, 2});
  std::vector<std::vector<std::byte>> out = {bytes_of("from-zero"),
                                             bytes_of("from-one!")};
  std::vector<std::vector<std::byte>> in(2, std::vector<std::byte>(9));

  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    const int peer = 1 - rank;
    co_await comm.sendrecv(peer, out[static_cast<std::size_t>(rank)], peer,
                           in[static_cast<std::size_t>(rank)]);
  });

  EXPECT_EQ(string_of(in[0]), "from-one!");
  EXPECT_EQ(string_of(in[1]), "from-zero");
}

TEST(Engine, MessageOrderingFifoPerChannel) {
  Engine engine(frontera(), Topology{1, 2});
  std::vector<std::byte> first(4), second(4);

  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 0) {
      auto a = bytes_of("AAAA");
      auto b = bytes_of("BBBB");
      co_await comm.send(1, a);
      co_await comm.send(1, b);
    } else {
      co_await comm.recv(0, first);
      co_await comm.recv(0, second);
    }
  });
  EXPECT_EQ(string_of(first), "AAAA");
  EXPECT_EQ(string_of(second), "BBBB");
}

TEST(Engine, TagsSeparateChannels) {
  Engine engine(frontera(), Topology{1, 2});
  std::vector<std::byte> tagged7(4), tagged9(4);

  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 0) {
      auto seven = bytes_of("7777");
      auto nine = bytes_of("9999");
      // Post in the "wrong" order; tags must route them correctly.
      co_await comm.send(1, nine, /*tag=*/9);
      co_await comm.send(1, seven, /*tag=*/7);
    } else {
      co_await comm.recv(0, tagged7, /*tag=*/7);
      co_await comm.recv(0, tagged9, /*tag=*/9);
    }
  });
  EXPECT_EQ(string_of(tagged7), "7777");
  EXPECT_EQ(string_of(tagged9), "9999");
}

TEST(Engine, DeadlockDetected) {
  Engine engine(frontera(), Topology{1, 2});
  std::vector<std::byte> buf(8);
  EXPECT_THROW(engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    // Both ranks receive, nobody sends.
    co_await comm.recv(1 - rank, buf);
  }),
               SimError);
}

TEST(Engine, SizeMismatchDetected) {
  Engine engine(frontera(), Topology{1, 2});
  std::vector<std::byte> big(16), small(8);
  EXPECT_THROW(engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 0) {
      co_await comm.send(1, big);
    } else {
      co_await comm.recv(0, small);
    }
  }),
               SimError);
}

TEST(Engine, RankExceptionPropagates) {
  Engine engine(frontera(), Topology{1, 2});
  EXPECT_THROW(engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 1) throw SimError("rank failure");
    co_return;
  }),
               Error);
}

TEST(Engine, RunTwiceRejected) {
  Engine engine(frontera(), Topology{1, 1});
  auto noop = [&](int) -> RankTask { co_return; };
  engine.run(noop);
  EXPECT_THROW(engine.run(noop), SimError);
}

TEST(Engine, InvalidPeerRejected) {
  Engine engine(frontera(), Topology{1, 2});
  std::vector<std::byte> buf(8);
  EXPECT_THROW(engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 0) co_await comm.send(5, buf);  // no rank 5
  }),
               SimError);
}

TEST(Engine, DeterministicTimingAcrossRuns) {
  auto run_once = [&] {
    Engine engine(frontera(), Topology{2, 4}, SimOptions{0.1, 42});
    std::vector<std::vector<std::byte>> bufs(8, std::vector<std::byte>(1024));
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      const int peer = rank ^ 1;
      co_await comm.sendrecv(peer, bufs[static_cast<std::size_t>(rank)], peer,
                             bufs[static_cast<std::size_t>(rank)]);
      const int far = (rank + 4) % 8;
      co_await comm.sendrecv(far, bufs[static_cast<std::size_t>(rank)], far,
                             bufs[static_cast<std::size_t>(rank)], 1);
    });
    return engine.elapsed();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Engine, NoiseChangesWithSeed) {
  auto run_seed = [&](std::uint64_t seed) {
    Engine engine(frontera(), Topology{2, 1}, SimOptions{0.2, seed});
    std::vector<std::byte> buf(1 << 16);
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      if (rank == 0) {
        co_await comm.send(1, buf);
      } else {
        co_await comm.recv(0, buf);
      }
    });
    return engine.elapsed();
  };
  EXPECT_NE(run_seed(1), run_seed(2));
}

TEST(Engine, NicSerializesConcurrentInterNodeFlows) {
  // 4 ranks per node all sending cross-node at once share one NIC; the same
  // traffic with 1 rank per node across 8 nodes uses 8 NICs. With distinct
  // destination nodes per flow in both cases, serialisation shows up only
  // in the shared-NIC layout.
  const std::uint64_t big = 4u << 20;
  auto elapsed_for = [&](Topology topo, auto partner_of) {
    Engine engine(frontera(), topo);
    std::vector<std::byte> out(big), in(big);
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      const int peer = partner_of(rank);
      co_await comm.sendrecv(peer, out, peer, in);
    });
    return engine.elapsed();
  };
  // Shared NIC: node0 = {0..3} each exchanging with node1 = {4..7}.
  const double shared =
      elapsed_for(Topology{2, 4}, [](int r) { return r < 4 ? r + 4 : r - 4; });
  // Private NICs: 8 nodes, 1 rank each, pairwise across nodes.
  const double private_nics =
      elapsed_for(Topology{8, 1}, [](int r) { return r ^ 1; });
  EXPECT_GT(shared, 3.0 * private_nics);
}

TEST(Engine, LocalComputeAdvancesClock) {
  Engine engine(frontera(), Topology{1, 1});
  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    comm.compute(1.5e-3);
    co_return;
  });
  EXPECT_DOUBLE_EQ(engine.elapsed(), 1.5e-3);
}

TEST(Engine, ChannelKeyRejectsOutOfRangeTags) {
  // Tags are packed into 16 bits of the channel key; out-of-range values
  // must throw instead of silently aliasing another channel.
  Engine engine(frontera(), Topology{1, 2});
  std::vector<std::byte> buf(8);
  EXPECT_THROW(engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 0) co_await comm.send(1, buf, /*tag=*/1 << 16);
  }),
               SimError);

  Engine engine2(frontera(), Topology{1, 2});
  EXPECT_THROW(engine2.run([&](int rank) -> RankTask {
    Comm comm(engine2, rank);
    if (rank == 0) co_await comm.send(1, buf, /*tag=*/-1);
  }),
               SimError);
}

TEST(Engine, ChannelKeyAcceptsMaxTag) {
  Engine engine(frontera(), Topology{1, 2});
  std::vector<std::byte> out(8), in(8);
  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 0) {
      co_await comm.send(1, out, /*tag=*/(1 << 16) - 1);
    } else {
      co_await comm.recv(0, in, /*tag=*/(1 << 16) - 1);
    }
  });
  EXPECT_GT(engine.elapsed(), 0.0);
}

TEST(Engine, ResetMatchesFreshEngineTiming) {
  const SimOptions opts{0.2, 77};
  auto workload = [](Engine& engine) {
    std::vector<std::vector<std::byte>> bufs(8, std::vector<std::byte>(4096));
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      const int peer = rank ^ 1;
      co_await comm.sendrecv(peer, bufs[static_cast<std::size_t>(rank)], peer,
                             bufs[static_cast<std::size_t>(rank)]);
      const int far = (rank + 4) % 8;
      co_await comm.sendrecv(far, bufs[static_cast<std::size_t>(rank)], far,
                             bufs[static_cast<std::size_t>(rank)], 1);
    });
    return engine.elapsed();
  };

  Engine fresh(frontera(), Topology{2, 4}, opts);
  const double expected = workload(fresh);

  // Dirty the engine with a different topology and seed before resetting.
  Engine reused(frontera(), Topology{4, 1}, SimOptions{0.05, 3});
  std::vector<std::byte> buf(2048);
  reused.run([&](int rank) -> RankTask {
    Comm comm(reused, rank);
    const int peer = rank ^ 1;
    co_await comm.sendrecv(peer, buf, peer, buf);
  });
  reused.reset(frontera(), Topology{2, 4}, opts);
  EXPECT_EQ(workload(reused), expected);
}

TEST(Engine, ResetReusesChannelAndPoolCapacity) {
  // Regression test for unbounded channel-table growth: running the same
  // workload through reset() cycles must not keep growing engine storage.
  Engine engine(frontera(), Topology{2, 4});
  auto workload = [&] {
    std::vector<std::byte> buf(512);
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      for (int k = 1; k < 8; ++k) {
        const int peer = rank ^ k;
        co_await comm.sendrecv(peer, buf, peer, buf, /*tag=*/k);
      }
    });
  };
  workload();
  engine.reset(frontera(), Topology{2, 4});
  workload();
  const std::size_t slots = engine.channel_table_slots();
  const std::size_t pool = engine.pending_pool_capacity();
  ASSERT_GT(engine.channels_in_use(), 0u);
  for (int i = 0; i < 10; ++i) {
    engine.reset(frontera(), Topology{2, 4});
    workload();
    EXPECT_EQ(engine.channel_table_slots(), slots);
    EXPECT_EQ(engine.pending_pool_capacity(), pool);
  }
}

TEST(Engine, WaitAllFoldsCompletionTimes) {
  Engine engine(frontera(), Topology{2, 1});
  std::vector<std::byte> a(1 << 18), b(1 << 18);
  std::vector<std::byte> ra(1 << 18), rb(1 << 18);
  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    if (rank == 0) {
      std::vector<RequestId> reqs;
      reqs.push_back(comm.isend(1, a, 0));
      reqs.push_back(comm.isend(1, b, 1));
      co_await comm.wait_all(std::move(reqs));
    } else {
      std::vector<RequestId> reqs;
      reqs.push_back(comm.irecv(0, ra, 0));
      reqs.push_back(comm.irecv(0, rb, 1));
      co_await comm.wait_all(std::move(reqs));
    }
  });
  // Two 256 KiB messages through one NIC: at least twice the wire time.
  const double wire = engine.model().wire_time(1 << 18);
  EXPECT_GE(engine.elapsed(), 2.0 * wire);
}

}  // namespace
}  // namespace pml::sim
