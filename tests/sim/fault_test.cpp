// sim::FaultPlan: plan validation/serialization, the effect of each fault
// type on virtual time, and the two invariants the design leans on — an
// identity-valued plan is bit-identical to no plan at all, and corruption
// touches payload bytes only (never timing).
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <string>

#include "coll/runner.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"
#include "sim/comm.hpp"
#include "sim/engine.hpp"

namespace pml::sim {
namespace {

const ClusterSpec& frontera() { return cluster_by_name("Frontera"); }

/// Timing-only elapsed seconds of one allgather under `plan`.
double timed_run(const FaultPlan& plan, std::uint64_t bytes = 4096) {
  RunOptions opts;
  opts.payload = PayloadMode::kTimingOnly;
  opts.faults = plan;
  return coll::run_collective(frontera(), Topology{4, 2},
                              coll::Algorithm::kAgRing, bytes, opts)
      .seconds;
}

TEST(FaultPlan, DefaultIsEmpty) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  FaultPlan with_corruption;
  with_corruption.corruption.probability = 0.5;
  EXPECT_FALSE(with_corruption.empty());
}

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan plan;
  plan.seed = 77;
  plan.link_degradations.push_back({1, 0.25, 3e-6});
  plan.stragglers.push_back({5, 2.5});
  plan.flaps.push_back({0, 1e-4, 5e-5});
  plan.corruption.probability = 0.125;

  const FaultPlan back = FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(back.seed, 77u);
  ASSERT_EQ(back.link_degradations.size(), 1u);
  EXPECT_EQ(back.link_degradations[0].node, 1);
  EXPECT_EQ(back.link_degradations[0].bandwidth_factor, 0.25);
  EXPECT_EQ(back.link_degradations[0].extra_latency, 3e-6);
  ASSERT_EQ(back.stragglers.size(), 1u);
  EXPECT_EQ(back.stragglers[0].rank, 5);
  EXPECT_EQ(back.stragglers[0].slowdown, 2.5);
  ASSERT_EQ(back.flaps.size(), 1u);
  EXPECT_EQ(back.flaps[0].node, 0);
  EXPECT_EQ(back.flaps[0].start, 1e-4);
  EXPECT_EQ(back.flaps[0].duration, 5e-5);
  EXPECT_EQ(back.corruption.probability, 0.125);
}

TEST(FaultPlan, FromJsonRejectsWrongFormat) {
  Json j = Json::object();
  j["format"] = "pml-other-v1";
  EXPECT_THROW(FaultPlan::from_json(j), ConfigError);
}

TEST(FaultPlan, ValidateRejectsBadEntries) {
  const auto reject = [](FaultPlan plan) {
    EXPECT_THROW(plan.validate(4, 8), ConfigError);
    // The engine validates on construction too: a bad plan never runs.
    SimOptions opts;
    opts.faults = std::move(plan);
    EXPECT_THROW(Engine(frontera(), Topology{4, 2}, opts), ConfigError);
  };
  FaultPlan bad_node;
  bad_node.link_degradations.push_back({4, 0.5, 0.0});
  reject(bad_node);
  FaultPlan bad_factor;
  bad_factor.link_degradations.push_back({0, 0.0, 0.0});
  reject(bad_factor);
  FaultPlan bad_latency;
  bad_latency.link_degradations.push_back({0, 0.5, -1e-6});
  reject(bad_latency);
  FaultPlan bad_rank;
  bad_rank.stragglers.push_back({8, 2.0});
  reject(bad_rank);
  FaultPlan bad_slowdown;
  bad_slowdown.stragglers.push_back({0, 0.5});
  reject(bad_slowdown);
  FaultPlan bad_window;
  bad_window.flaps.push_back({0, -1.0, 1.0});
  reject(bad_window);
  FaultPlan bad_probability;
  bad_probability.corruption.probability = 1.5;
  reject(bad_probability);
}

TEST(FaultPlan, IdentityValuedPlanIsBitIdenticalToNoPlan) {
  // Non-empty plan whose every knob is the identity: faults_active_ is
  // true, so all guarded hot-path math runs — and must reproduce the
  // fault-free timings exactly.
  FaultPlan identity;
  identity.link_degradations.push_back({0, 1.0, 0.0});
  identity.stragglers.push_back({0, 1.0});
  identity.flaps.push_back({0, 0.0, 0.0});
  ASSERT_FALSE(identity.empty());
  EXPECT_EQ(timed_run({}), timed_run(identity));
}

TEST(FaultPlan, EachFaultTypeSlowsTheRun) {
  const double baseline = timed_run({});

  FaultPlan slow_link;
  slow_link.link_degradations.push_back({1, 0.25, 0.0});
  EXPECT_GT(timed_run(slow_link), baseline);

  FaultPlan lagged_link;
  lagged_link.link_degradations.push_back({1, 1.0, 5e-5});
  EXPECT_GT(timed_run(lagged_link), baseline);

  FaultPlan straggler;
  straggler.stragglers.push_back({3, 8.0});
  EXPECT_GT(timed_run(straggler), baseline);

  FaultPlan flap;
  flap.flaps.push_back({0, 0.0, baseline});  // NIC down for the whole run
  EXPECT_GT(timed_run(flap), baseline);
}

TEST(FaultPlan, EngineCountsFaultEffects) {
  FaultPlan plan;
  plan.link_degradations.push_back({1, 0.5, 1e-6});
  plan.stragglers.push_back({0, 2.0});
  plan.flaps.push_back({0, 0.0, 1e-4});
  SimOptions opts;
  opts.payload = PayloadMode::kTimingOnly;
  opts.faults = plan;

  Engine engine(frontera(), Topology{4, 2}, opts);
  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    const int peer = (rank + engine.world_size() / 2) % engine.world_size();
    std::span<std::byte> out = engine.scratch(rank, 0, 4096);
    std::span<std::byte> in = engine.scratch(rank, 1, 4096);
    co_await comm.sendrecv(peer, out, peer, in);
  });

  EXPECT_GT(engine.fault_straggler_charges(), 0u);
  EXPECT_GT(engine.fault_degraded_transfers(), 0u);
  EXPECT_GT(engine.fault_flap_stalls(), 0u);
  EXPECT_EQ(engine.fault_corrupted_payloads(), 0u);  // no corruption planned
}

TEST(FaultPlan, CorruptionIsDetectedByVerification) {
  FaultPlan plan;
  plan.corruption.probability = 1.0;  // every transfer flips a bit
  RunOptions opts;
  opts.faults = plan;
  EXPECT_THROW(coll::run_collective(frontera(), Topology{2, 2},
                                    coll::Algorithm::kAgRing, 1024, opts),
               SimError);
}

TEST(FaultPlan, CorruptionNeverChangesTiming) {
  // Corruption flips payload bits only; the timing-only path must be
  // bit-identical with and without it.
  FaultPlan corrupting;
  corrupting.corruption.probability = 1.0;
  FaultPlan inert;
  inert.stragglers.push_back({0, 1.0});  // non-empty, identity-valued
  EXPECT_EQ(timed_run(inert), timed_run(corrupting));
}

TEST(FaultPlan, EffectsFlushToObsCounters) {
  const bool was = obs::set_enabled(true);
  obs::reset();

  FaultPlan plan;
  plan.stragglers.push_back({0, 4.0});
  plan.link_degradations.push_back({1, 0.5, 0.0});
  timed_run(plan);

  const obs::Snapshot snap = obs::snapshot();
  std::uint64_t straggler = 0;
  std::uint64_t degraded = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "sim.faults.straggler_charges") straggler = c.value;
    if (c.name == "sim.faults.degraded_transfers") degraded = c.value;
  }
  EXPECT_GT(straggler, 0u);
  EXPECT_GT(degraded, 0u);

  obs::reset();
  obs::set_enabled(was);
}

}  // namespace
}  // namespace pml::sim
