#include "sim/hardware.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace pml::sim {
namespace {

TEST(Hardware, EighteenBuiltinClusters) {
  EXPECT_EQ(builtin_clusters().size(), 18u);  // Table I
}

TEST(Hardware, ClusterNamesUnique) {
  std::set<std::string> names;
  for (const auto& c : builtin_clusters()) names.insert(c.name);
  EXPECT_EQ(names.size(), builtin_clusters().size());
}

TEST(Hardware, LookupByName) {
  const auto& frontera = cluster_by_name("Frontera");
  EXPECT_EQ(frontera.hw.cores, 56);
  EXPECT_EQ(frontera.interconnect, Interconnect::kInfinibandEdr);
  EXPECT_THROW(cluster_by_name("NoSuchCluster"), Error);
}

TEST(Hardware, TableOneSweepCounts) {
  // Paper Table I: counts of distinct #nodes / #ppn / #msg-size values.
  const auto& ri2 = cluster_by_name("RI2");
  EXPECT_EQ(ri2.node_counts.size(), 5u);
  EXPECT_EQ(ri2.ppn_values.size(), 6u);
  EXPECT_EQ(ri2.message_sizes.size(), 21u);

  const auto& ri = cluster_by_name("RI");
  EXPECT_EQ(ri.node_counts.size(), 1u);
  EXPECT_EQ(ri.ppn_values.size(), 2u);

  const auto& mri = cluster_by_name("MRI");
  EXPECT_EQ(mri.node_counts.size(), 4u);
  EXPECT_EQ(mri.ppn_values.size(), 8u);
  EXPECT_EQ(mri.message_sizes.size(), 16u);
}

TEST(Hardware, PpnValuesDoNotExceedCores) {
  for (const auto& c : builtin_clusters()) {
    for (const int ppn : c.ppn_values) {
      EXPECT_LE(ppn, c.hw.cores) << c.name;
      EXPECT_GE(ppn, 1) << c.name;
    }
  }
}

TEST(Hardware, FullSubscriptionIncluded) {
  // The largest PPN value benchmarked equals the core count
  // (full-subscription runs, as in the paper's evaluation).
  for (const auto& c : builtin_clusters()) {
    EXPECT_EQ(c.ppn_values.back(), c.hw.cores) << c.name;
  }
}

TEST(Hardware, SpecValuesPlausible) {
  for (const auto& c : builtin_clusters()) {
    EXPECT_GT(c.hw.cpu_max_clock_ghz, 1.0) << c.name;
    EXPECT_LT(c.hw.cpu_max_clock_ghz, 5.0) << c.name;
    EXPECT_GT(c.hw.l3_cache_mb, 0.0) << c.name;
    EXPECT_GT(c.hw.mem_bw_gbs, 10.0) << c.name;
    EXPECT_GE(c.hw.threads, c.hw.cores) << c.name;
    EXPECT_GE(c.hw.numa_nodes, 1) << c.name;
    EXPECT_GE(c.hw.sockets, 1) << c.name;
  }
}

TEST(Hardware, NicBandwidthCappedByLinkAndPcie) {
  // HDR 4X = 200 Gb/s = 25 GB/s; PCIe3 x16 ~ 15.8 GB/s caps it.
  HardwareSpec hw;
  hw.hca_link_speed_gbps = 50.0;
  hw.hca_link_width = 4;
  hw.pcie_lanes = 16;
  hw.pcie_version = 3;
  const double capped = hw.nic_bandwidth_gbs();
  EXPECT_LT(capped, 15.8);

  hw.pcie_version = 4;
  const double uncapped = hw.nic_bandwidth_gbs();
  EXPECT_GT(uncapped, capped);
  EXPECT_LE(uncapped, 25.0);
}

TEST(Hardware, InterconnectGenerationsOrdered) {
  // Later generations: more bandwidth per lane, less latency.
  EXPECT_LT(lane_speed_gbps(Interconnect::kInfinibandQdr),
            lane_speed_gbps(Interconnect::kInfinibandFdr));
  EXPECT_LT(lane_speed_gbps(Interconnect::kInfinibandFdr),
            lane_speed_gbps(Interconnect::kInfinibandEdr));
  EXPECT_LT(lane_speed_gbps(Interconnect::kInfinibandEdr),
            lane_speed_gbps(Interconnect::kInfinibandHdr));
  EXPECT_GT(base_latency_us(Interconnect::kInfinibandQdr),
            base_latency_us(Interconnect::kInfinibandHdr));
}

TEST(Hardware, PowerOfTwoSizes) {
  const auto sizes = power_of_two_sizes(21);
  ASSERT_EQ(sizes.size(), 21u);
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_EQ(sizes.back(), 1u << 20);
}

TEST(Hardware, ClusterSpecJsonRoundTrip) {
  const auto& orig = cluster_by_name("Spock");
  const ClusterSpec parsed = ClusterSpec::from_json(
      pml::Json::parse(orig.to_json().dump(2)));
  EXPECT_EQ(parsed.name, orig.name);
  EXPECT_EQ(parsed.interconnect, orig.interconnect);
  EXPECT_EQ(parsed.hw.cores, orig.hw.cores);
  EXPECT_EQ(parsed.hw.l3_cache_mb, orig.hw.l3_cache_mb);
  EXPECT_EQ(parsed.node_counts, orig.node_counts);
  EXPECT_EQ(parsed.ppn_values, orig.ppn_values);
  EXPECT_EQ(parsed.message_sizes, orig.message_sizes);
}

TEST(Hardware, InterconnectNamesRoundTrip) {
  for (const auto& c : builtin_clusters()) {
    const ClusterSpec parsed =
        ClusterSpec::from_json(pml::Json::parse(c.to_json().dump()));
    EXPECT_EQ(parsed.interconnect, c.interconnect) << c.name;
  }
}

}  // namespace
}  // namespace pml::sim
