// Fault-injected simulations must stay a pure function of
// (cluster, topology, options): the same FaultPlan and seed yield
// bit-identical virtual times — and therefore identical argmin algorithm
// choices — whether the sweep runs serially or fanned out over threads.
// This is the regression guard for the determinism claim in sim/fault.hpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "coll/runner.hpp"
#include "common/parallel.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/hardware.hpp"

namespace pml::sim {
namespace {

/// A plan exercising every fault type at once (corruption included: its
/// draw stream must not perturb timing even though kTimingOnly never
/// flips a bit).
FaultPlan combined_plan() {
  FaultPlan plan;
  plan.seed = 42;
  plan.link_degradations.push_back({0, 0.5, 2e-6});
  plan.link_degradations.push_back({2, 0.8, 0.0});
  plan.stragglers.push_back({1, 3.0});
  plan.stragglers.push_back({6, 1.5});
  plan.flaps.push_back({1, 0.0, 5e-5});
  plan.flaps.push_back({3, 1e-4, 1e-4});
  plan.corruption.probability = 0.25;
  return plan;
}

/// One sweep cell: timing-only elapsed seconds plus the per-cell argmin
/// algorithm over the allgather candidates.
struct Cell {
  double seconds = 0.0;
  coll::Algorithm best = coll::Algorithm::kAgRing;

  bool operator==(const Cell& other) const {
    return seconds == other.seconds && best == other.best;
  }
};

std::vector<Cell> sweep(int threads) {
  const auto& cluster = cluster_by_name("Frontera");
  const FaultPlan plan = combined_plan();
  const std::uint64_t sizes[] = {256, 4096, 65536};
  const coll::Algorithm candidates[] = {coll::Algorithm::kAgRing,
                                        coll::Algorithm::kAgBruck,
                                        coll::Algorithm::kAgRecursiveDoubling};

  std::vector<Cell> cells(std::size(sizes));
  parallel_for(threads, cells.size(), [&](std::size_t i) {
    RunOptions opts;
    opts.payload = PayloadMode::kTimingOnly;
    opts.noise_sigma = 0.01;  // jitter stream must coexist with faults
    opts.seed = 7;
    opts.faults = plan;
    Cell cell;
    double best = 0.0;
    for (const auto algorithm : candidates) {
      const double t = coll::run_collective(cluster, Topology{4, 2}, algorithm,
                                            sizes[i], opts)
                           .seconds;
      if (algorithm == candidates[0] || t < best) {
        best = t;
        cell.best = algorithm;
      }
      cell.seconds += t;
    }
    cells[i] = cell;
  });
  return cells;
}

TEST(FaultDeterminism, SweepIsBitIdenticalAcrossThreadCounts) {
  const std::vector<Cell> serial = sweep(1);
  for (const int threads : {2, 8}) {
    const std::vector<Cell> parallel = sweep(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "cell " << i << " at " << threads
                                        << " threads";
    }
  }
}

TEST(FaultDeterminism, RepeatedRunsAreBitIdentical) {
  const FaultPlan plan = combined_plan();
  RunOptions opts;
  opts.payload = PayloadMode::kTimingOnly;
  opts.faults = plan;
  const auto run = [&] {
    return coll::run_collective(cluster_by_name("Frontera"), Topology{4, 2},
                                coll::Algorithm::kAgRing, 4096, opts)
        .seconds;
  };
  const double first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace pml::sim
