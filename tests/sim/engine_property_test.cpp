// Property tests for the discrete-event engine: randomized communication
// patterns must deliver every payload intact, respect causality, and
// converge statistically under noise.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "sim/comm.hpp"
#include "sim/engine.hpp"

namespace pml::sim {
namespace {

const ClusterSpec& frontera() { return cluster_by_name("Frontera"); }

/// Random permutation exchange: every rank sends a unique stamped payload
/// to a random target (a permutation, so exactly one message per rank in
/// each direction); all payloads must arrive intact.
class RandomPermutationExchange : public ::testing::TestWithParam<int> {};

TEST_P(RandomPermutationExchange, AllPayloadsDelivered) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int p = 2 + static_cast<int>(rng.uniform_index(14));  // 2..15 ranks
  const Topology topo{1 + static_cast<int>(rng.uniform_index(3)), p};

  // Random permutation of targets.
  std::vector<int> target(static_cast<std::size_t>(topo.world_size()));
  for (std::size_t i = 0; i < target.size(); ++i) {
    target[i] = static_cast<int>(i);
  }
  rng.shuffle(target);
  std::vector<int> source(target.size());
  for (std::size_t i = 0; i < target.size(); ++i) {
    source[static_cast<std::size_t>(target[i])] = static_cast<int>(i);
  }

  const std::size_t bytes = 1 + rng.uniform_index(4096);
  std::vector<std::vector<std::byte>> outbox(target.size());
  std::vector<std::vector<std::byte>> inbox(target.size());
  for (std::size_t r = 0; r < target.size(); ++r) {
    outbox[r].resize(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      outbox[r][i] = static_cast<std::byte>((r * 131 + i) & 0xff);
    }
    inbox[r].resize(bytes);
  }

  Engine engine(frontera(), topo, SimOptions{0.05, 42});
  engine.run([&](int rank) -> RankTask {
    Comm comm(engine, rank);
    std::vector<RequestId> reqs;
    reqs.push_back(comm.isend(target[static_cast<std::size_t>(rank)],
                              outbox[static_cast<std::size_t>(rank)]));
    reqs.push_back(comm.irecv(source[static_cast<std::size_t>(rank)],
                              inbox[static_cast<std::size_t>(rank)]));
    co_await comm.wait_all(std::move(reqs));
  });

  for (std::size_t r = 0; r < target.size(); ++r) {
    const auto& expected = outbox[static_cast<std::size_t>(source[r])];
    EXPECT_EQ(0, std::memcmp(inbox[r].data(), expected.data(), bytes))
        << "rank " << r;
  }
  EXPECT_GT(engine.elapsed(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPermutationExchange,
                         ::testing::Range(1, 17));

/// Elapsed time must be monotone in payload size for a fixed pattern.
TEST(EngineProperty, ElapsedMonotoneInPayload) {
  double prev = 0.0;
  for (std::uint64_t bytes = 64; bytes <= (1u << 20); bytes <<= 2) {
    Engine engine(frontera(), Topology{2, 4});
    std::vector<std::byte> buf(bytes), in(bytes);
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      const int peer = rank ^ 4;  // cross-node pairs
      co_await comm.sendrecv(peer, buf, peer, in);
    });
    EXPECT_GE(engine.elapsed(), prev);
    prev = engine.elapsed();
  }
}

/// With log-normal noise, the mean over many runs approaches the
/// noise-free time (median-1 jitter, sigma small).
TEST(EngineProperty, NoiseAveragesOut) {
  auto elapsed_with = [&](SimOptions opts) {
    Engine engine(frontera(), Topology{2, 1}, opts);
    std::vector<std::byte> buf(32 << 10), in(32 << 10);
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      if (rank == 0) {
        co_await comm.send(1, buf);
      } else {
        co_await comm.recv(0, in);
      }
    });
    return engine.elapsed();
  };
  const double clean = elapsed_with(SimOptions{});
  double sum = 0.0;
  const int runs = 300;
  for (int i = 0; i < runs; ++i) {
    sum += elapsed_with(SimOptions{0.05, static_cast<std::uint64_t>(i)});
  }
  EXPECT_NEAR(sum / runs / clean, 1.0, 0.02);
}

/// A chain of dependent messages accumulates latency hop by hop
/// (causality: the engine cannot deliver hop k+1 before hop k).
TEST(EngineProperty, ChainLatencyAccumulates) {
  std::vector<double> elapsed_for_length;
  for (const int hops : {1, 2, 4, 8}) {
    Engine engine(frontera(), Topology{1, 9});
    std::vector<std::byte> buf(256);
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      if (rank > hops) co_return;
      if (rank > 0) co_await comm.recv(rank - 1, buf);
      if (rank < hops) co_await comm.send(rank + 1, buf);
    });
    elapsed_for_length.push_back(engine.elapsed());
  }
  for (std::size_t i = 1; i < elapsed_for_length.size(); ++i) {
    EXPECT_GT(elapsed_for_length[i], elapsed_for_length[i - 1]);
  }
  // Doubling the chain roughly doubles the time (pure latency chain).
  EXPECT_NEAR(elapsed_for_length[3] / elapsed_for_length[2], 2.0, 0.4);
}

/// Many-to-one incast: serialisation through the receiver's node RX port
/// makes total time scale with the number of senders for large payloads.
TEST(EngineProperty, IncastSerialisesOnReceiverNic) {
  auto incast = [&](int senders) {
    Engine engine(frontera(), Topology{senders + 1, 1});
    std::vector<std::byte> buf(1 << 20);
    std::vector<std::vector<std::byte>> in(
        static_cast<std::size_t>(senders),
        std::vector<std::byte>(1 << 20));
    engine.run([&](int rank) -> RankTask {
      Comm comm(engine, rank);
      if (rank == 0) {
        std::vector<RequestId> reqs;
        for (int s = 1; s <= senders; ++s) {
          reqs.push_back(
              comm.irecv(s, in[static_cast<std::size_t>(s - 1)], s));
        }
        co_await comm.wait_all(std::move(reqs));
      } else {
        co_await comm.send(0, buf, rank);
      }
    });
    return engine.elapsed();
  };
  const double two = incast(2);
  const double eight = incast(8);
  EXPECT_GT(eight, 3.0 * two);
}

}  // namespace
}  // namespace pml::sim
