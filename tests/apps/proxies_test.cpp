#include "apps/proxies.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pml::apps {
namespace {

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }

TEST(Proxies, BreakdownSumsToTotal) {
  core::OracleSelector oracle;
  for (const bool gromacs : {false, true}) {
    const ProxyResult r =
        gromacs
            ? run_gromacs_proxy(frontera(), sim::Topology{2, 28}, oracle)
            : run_minife_proxy(frontera(), sim::Topology{2, 28}, oracle);
    EXPECT_GT(r.total_seconds, 0.0);
    EXPECT_NEAR(r.total_seconds,
                r.compute_seconds + r.allgather_seconds + r.alltoall_seconds,
                1e-12);
  }
}

TEST(Proxies, MiniFeUsesOnlyAllgather) {
  core::OracleSelector oracle;
  const ProxyResult r =
      run_minife_proxy(frontera(), sim::Topology{2, 28}, oracle);
  EXPECT_DOUBLE_EQ(r.alltoall_seconds, 0.0);
  EXPECT_GT(r.allgather_seconds, 0.0);
}

TEST(Proxies, GromacsIsAlltoallHeavy) {
  core::OracleSelector oracle;
  const ProxyResult r =
      run_gromacs_proxy(frontera(), sim::Topology{4, 56}, oracle);
  EXPECT_GT(r.alltoall_seconds, r.allgather_seconds);
}

TEST(Proxies, StrongScalingShrinksComputePerStep) {
  core::OracleSelector oracle;
  const ProxyResult small =
      run_minife_proxy(frontera(), sim::Topology{1, 28}, oracle);
  const ProxyResult large =
      run_minife_proxy(frontera(), sim::Topology{8, 56}, oracle);
  EXPECT_LT(large.compute_seconds, small.compute_seconds);
}

TEST(Proxies, GromacsScalabilityForfeitsAtHighProcessCounts) {
  // Paper §VII-E: runtime shrinks with processes until ~224, then the
  // alltoall term stops it improving.
  core::OracleSelector oracle;
  const double t56 =
      run_gromacs_proxy(frontera(), sim::Topology{1, 56}, oracle).total_seconds;
  const double t448 =
      run_gromacs_proxy(frontera(), sim::Topology{8, 56}, oracle).total_seconds;
  EXPECT_GT(t448, 0.5 * t56);  // nowhere near 8x speedup
}

TEST(Proxies, BetterSelectorNeverSlower) {
  // The oracle lower-bounds any other strategy on the same proxy (no
  // noise in the analytic app path).
  core::OracleSelector oracle;
  core::MvapichDefaultSelector mvapich;
  core::RandomSelector random_sel(7);
  for (const bool gromacs : {false, true}) {
    const sim::Topology topo{4, 56};
    auto run = [&](core::Selector& s) {
      return gromacs ? run_gromacs_proxy(frontera(), topo, s).total_seconds
                     : run_minife_proxy(frontera(), topo, s).total_seconds;
    };
    const double t_oracle = run(oracle);
    EXPECT_LE(t_oracle, run(mvapich) + 1e-12);
    EXPECT_LE(t_oracle, run(random_sel) + 1e-12);
  }
}

TEST(Proxies, SelectorChoiceOnlyAffectsCommunication) {
  core::OracleSelector oracle;
  core::RandomSelector random_sel(9);
  const sim::Topology topo{4, 28};
  const ProxyResult a = run_gromacs_proxy(frontera(), topo, oracle);
  const ProxyResult b = run_gromacs_proxy(frontera(), topo, random_sel);
  EXPECT_DOUBLE_EQ(a.compute_seconds, b.compute_seconds);
}

TEST(Proxies, RejectInvalidConfigs) {
  core::OracleSelector oracle;
  GromacsConfig bad_g;
  bad_g.steps = 0;
  EXPECT_THROW(run_gromacs_proxy(frontera(), sim::Topology{1, 2}, oracle, bad_g),
               TuningError);
  MiniFeConfig bad_m;
  bad_m.grid = 1;
  EXPECT_THROW(run_minife_proxy(frontera(), sim::Topology{1, 2}, oracle, bad_m),
               TuningError);
}

TEST(Proxies, HigherPpnCongestsCommunication) {
  core::OracleSelector oracle;
  const ProxyResult half =
      run_gromacs_proxy(frontera(), sim::Topology{4, 28}, oracle);
  const ProxyResult full =
      run_gromacs_proxy(frontera(), sim::Topology{4, 56}, oracle);
  // Full subscription halves compute but cannot halve the alltoall time
  // (the NIC is shared by twice as many ranks).
  EXPECT_LT(full.compute_seconds, half.compute_seconds);
  EXPECT_GT(full.alltoall_seconds, 0.45 * half.alltoall_seconds);
}

}  // namespace
}  // namespace pml::apps
