#include "sim/hardware.hpp"

#include <algorithm>

#include "common/artifact.hpp"
#include "common/error.hpp"

namespace pml::sim {

std::string to_string(Interconnect ic) {
  switch (ic) {
    case Interconnect::kInfinibandQdr: return "Mellanox InfiniBand (QDR)";
    case Interconnect::kInfinibandFdr: return "Mellanox InfiniBand (FDR)";
    case Interconnect::kInfinibandEdr: return "Mellanox InfiniBand (EDR)";
    case Interconnect::kInfinibandHdr: return "Mellanox InfiniBand (HDR)";
    case Interconnect::kOmniPath: return "Intel Omni-Path";
  }
  throw ConfigError("unknown interconnect");
}

double lane_speed_gbps(Interconnect ic) {
  // Effective per-lane data rates (after encoding overhead).
  switch (ic) {
    case Interconnect::kInfinibandQdr: return 8.0;    // 10 Gb/s, 8b/10b
    case Interconnect::kInfinibandFdr: return 13.64;  // 14.06 Gb/s, 64b/66b
    case Interconnect::kInfinibandEdr: return 25.0;
    case Interconnect::kInfinibandHdr: return 50.0;
    case Interconnect::kOmniPath: return 25.0;
  }
  throw ConfigError("unknown interconnect");
}

int default_link_width(Interconnect /*ic*/) {
  return 4;  // all Table-I systems use 4X links
}

double base_latency_us(Interconnect ic) {
  // Small-message one-way MPI latencies typical of each generation.
  switch (ic) {
    case Interconnect::kInfinibandQdr: return 1.5;
    case Interconnect::kInfinibandFdr: return 1.1;
    case Interconnect::kInfinibandEdr: return 0.9;
    case Interconnect::kInfinibandHdr: return 0.8;
    case Interconnect::kOmniPath: return 1.0;
  }
  throw ConfigError("unknown interconnect");
}

namespace {

Interconnect interconnect_from_string(const std::string& s) {
  if (s == to_string(Interconnect::kInfinibandQdr)) return Interconnect::kInfinibandQdr;
  if (s == to_string(Interconnect::kInfinibandFdr)) return Interconnect::kInfinibandFdr;
  if (s == to_string(Interconnect::kInfinibandEdr)) return Interconnect::kInfinibandEdr;
  if (s == to_string(Interconnect::kInfinibandHdr)) return Interconnect::kInfinibandHdr;
  if (s == to_string(Interconnect::kOmniPath)) return Interconnect::kOmniPath;
  throw ConfigError("unknown interconnect name: " + s);
}

/// PCIe per-lane throughput in GB/s (effective, after encoding).
double pcie_lane_gbs(int version) {
  switch (version) {
    case 2: return 0.5;
    case 3: return 0.985;
    case 4: return 1.969;
    default: throw ConfigError("unsupported PCIe version " + std::to_string(version));
  }
}

}  // namespace

double HardwareSpec::nic_bandwidth_gbs() const {
  const double link_gbs = hca_link_speed_gbps * hca_link_width / 8.0;
  const double pcie_gbs = pcie_lane_gbs(pcie_version) * pcie_lanes;
  constexpr double kProtocolEfficiency = 0.92;
  return std::min(link_gbs, pcie_gbs) * kProtocolEfficiency;
}

Json HardwareSpec::to_json() const {
  Json j = Json::object();
  j["cpu_max_clock_ghz"] = cpu_max_clock_ghz;
  j["l3_cache_mb"] = l3_cache_mb;
  j["mem_bw_gbs"] = mem_bw_gbs;
  j["cores"] = cores;
  j["threads"] = threads;
  j["sockets"] = sockets;
  j["numa_nodes"] = numa_nodes;
  j["pcie_lanes"] = pcie_lanes;
  j["pcie_version"] = pcie_version;
  j["hca_link_speed_gbps"] = hca_link_speed_gbps;
  j["hca_link_width"] = hca_link_width;
  return j;
}

HardwareSpec HardwareSpec::from_json(const Json& j) {
  HardwareSpec hw;
  hw.cpu_max_clock_ghz = j.at("cpu_max_clock_ghz").as_number();
  hw.l3_cache_mb = j.at("l3_cache_mb").as_number();
  hw.mem_bw_gbs = j.at("mem_bw_gbs").as_number();
  hw.cores = static_cast<int>(j.at("cores").as_int());
  hw.threads = static_cast<int>(j.at("threads").as_int());
  hw.sockets = static_cast<int>(j.at("sockets").as_int());
  hw.numa_nodes = static_cast<int>(j.at("numa_nodes").as_int());
  hw.pcie_lanes = static_cast<int>(j.at("pcie_lanes").as_int());
  hw.pcie_version = static_cast<int>(j.at("pcie_version").as_int());
  hw.hca_link_speed_gbps = j.at("hca_link_speed_gbps").as_number();
  hw.hca_link_width = static_cast<int>(j.at("hca_link_width").as_int());
  return hw;
}

std::uint64_t ClusterSpec::hardware_fingerprint() const {
  // Canonical hardware-identity document: insertion order is fixed and the
  // grids/name are left out on purpose (see the header), so the digest is
  // stable across serialization round-trips and renamed deployments.
  Json j = Json::object();
  j["processor"] = processor;
  j["interconnect"] = to_string(interconnect);
  j["hardware"] = hw.to_json();
  return fnv1a64(j.dump());
}

Json ClusterSpec::to_json() const {
  Json j = Json::object();
  j["name"] = name;
  j["processor"] = processor;
  j["interconnect"] = to_string(interconnect);
  j["hardware"] = hw.to_json();
  Json nodes = Json::array();
  for (const int n : node_counts) nodes.push_back(n);
  j["node_counts"] = std::move(nodes);
  Json ppns = Json::array();
  for (const int p : ppn_values) ppns.push_back(p);
  j["ppn_values"] = std::move(ppns);
  Json sizes = Json::array();
  for (const auto s : message_sizes) sizes.push_back(s);
  j["message_sizes"] = std::move(sizes);
  return j;
}

ClusterSpec ClusterSpec::from_json(const Json& j) {
  ClusterSpec c;
  c.name = j.at("name").as_string();
  c.processor = j.at("processor").as_string();
  c.interconnect = interconnect_from_string(j.at("interconnect").as_string());
  c.hw = HardwareSpec::from_json(j.at("hardware"));
  for (const auto& n : j.at("node_counts").as_array()) {
    c.node_counts.push_back(static_cast<int>(n.as_int()));
  }
  for (const auto& p : j.at("ppn_values").as_array()) {
    c.ppn_values.push_back(static_cast<int>(p.as_int()));
  }
  for (const auto& s : j.at("message_sizes").as_array()) {
    c.message_sizes.push_back(static_cast<std::uint64_t>(s.as_int()));
  }
  return c;
}

std::vector<std::uint64_t> power_of_two_sizes(int count) {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) sizes.push_back(1ULL << i);
  return sizes;
}

namespace {

/// Powers of two up to `full`, then `full` itself if it is not a power of
/// two; the trailing `count` values. Mirrors the half/full-subscription
/// sweeps the paper runs (e.g. Frontera PPN 28 and 56).
std::vector<int> ppn_sweep(int full, int count) {
  std::vector<int> all;
  for (int p = 1; p < full; p *= 2) all.push_back(p);
  const int half = full / 2;
  if (std::find(all.begin(), all.end(), half) == all.end() && half >= 1) {
    all.push_back(half);
  }
  all.push_back(full);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  if (static_cast<int>(all.size()) > count) {
    all.erase(all.begin(), all.end() - count);
  }
  return all;
}

std::vector<int> node_sweep(int count) {
  std::vector<int> nodes;
  for (int i = 0, n = 1; i < count; ++i, n *= 2) nodes.push_back(n);
  return nodes;
}

HardwareSpec make_hw(double clock, double l3, double bw, int cores,
                     int threads_per_core, int sockets, int numa, int lanes,
                     int pcie_ver, Interconnect ic) {
  HardwareSpec hw;
  hw.cpu_max_clock_ghz = clock;
  hw.l3_cache_mb = l3;
  hw.mem_bw_gbs = bw;
  hw.cores = cores;
  hw.threads = cores * threads_per_core;
  hw.sockets = sockets;
  hw.numa_nodes = numa;
  hw.pcie_lanes = lanes;
  hw.pcie_version = pcie_ver;
  hw.hca_link_speed_gbps = lane_speed_gbps(ic);
  hw.hca_link_width = default_link_width(ic);
  return hw;
}

ClusterSpec make_cluster(std::string name, std::string processor,
                         Interconnect ic, HardwareSpec hw, int n_nodes,
                         int n_ppn, int n_sizes) {
  ClusterSpec c;
  c.name = std::move(name);
  c.processor = std::move(processor);
  c.interconnect = ic;
  c.hw = hw;
  c.node_counts = node_sweep(n_nodes);
  c.ppn_values = ppn_sweep(hw.cores, n_ppn);
  c.message_sizes = power_of_two_sizes(n_sizes);
  return c;
}

std::vector<ClusterSpec> build_all() {
  using I = Interconnect;
  std::vector<ClusterSpec> cs;
  // Table I, row by row. Hardware-feature values follow the published
  // specifications of each processor/platform.
  cs.push_back(make_cluster("RI2", "Intel Xeon E5-2680 v4 @ 2.40GHz",
                            I::kInfinibandEdr,
                            make_hw(3.3, 70.0, 76.8, 28, 2, 2, 2, 16, 3, I::kInfinibandEdr),
                            5, 6, 21));
  cs.push_back(make_cluster("RI", "Intel Xeon E5630 @ 2.53GHz",
                            I::kInfinibandQdr,
                            make_hw(2.8, 24.0, 25.6, 8, 2, 2, 2, 8, 2, I::kInfinibandQdr),
                            1, 2, 21));
  cs.push_back(make_cluster("Haswell", "Intel Xeon E5-2687W v3",
                            I::kInfinibandHdr,
                            make_hw(3.5, 50.0, 68.0, 20, 2, 2, 2, 16, 3, I::kInfinibandHdr),
                            3, 6, 21));
  cs.push_back(make_cluster("Catalyst", "Fujitsu A64FX",
                            I::kInfinibandEdr,
                            make_hw(2.2, 32.0, 1024.0, 48, 1, 1, 4, 16, 3, I::kInfinibandEdr),
                            4, 6, 21));
  cs.push_back(make_cluster("Spock", "AMD EPYC 7763 64-Core",
                            I::kInfinibandHdr,
                            make_hw(3.5, 256.0, 204.8, 64, 2, 1, 4, 16, 4, I::kInfinibandHdr),
                            5, 8, 21));
  cs.push_back(make_cluster("Rome", "AMD EPYC 7601 32-Core",
                            I::kInfinibandEdr,
                            make_hw(3.2, 128.0, 170.7, 64, 2, 2, 8, 16, 3, I::kInfinibandEdr),
                            4, 10, 21));
  cs.push_back(make_cluster("Frontera", "Intel Xeon Platinum 8280 @ 2.70GHz",
                            I::kInfinibandEdr,
                            make_hw(4.0, 77.0, 140.8, 56, 1, 2, 2, 16, 3, I::kInfinibandEdr),
                            5, 8, 21));
  cs.push_back(make_cluster("LLNL", "AMD EPYC 7401 48-Core",
                            I::kInfinibandEdr,
                            make_hw(3.0, 128.0, 170.7, 48, 2, 2, 8, 16, 3, I::kInfinibandEdr),
                            5, 6, 21));
  cs.push_back(make_cluster("FronteraRTX", "Intel Xeon E5-2620 v4 @ 2.10GHz",
                            I::kInfinibandFdr,
                            make_hw(3.0, 40.0, 68.3, 16, 2, 2, 2, 16, 3, I::kInfinibandFdr),
                            5, 5, 21));
  cs.push_back(make_cluster("Hartree", "Cavium ThunderX2 CN9975",
                            I::kInfinibandFdr,
                            make_hw(2.5, 64.0, 160.0, 56, 4, 2, 2, 16, 3, I::kInfinibandFdr),
                            3, 5, 21));
  cs.push_back(make_cluster("Mayer", "Cavium ThunderX2 CN9975",
                            I::kInfinibandEdr,
                            make_hw(2.5, 64.0, 160.0, 56, 4, 2, 2, 16, 3, I::kInfinibandEdr),
                            4, 7, 21));
  cs.push_back(make_cluster("Ray", "IBM POWER8 S822LC",
                            I::kInfinibandEdr,
                            make_hw(4.0, 160.0, 230.0, 20, 8, 2, 2, 16, 3, I::kInfinibandEdr),
                            4, 3, 21));
  cs.push_back(make_cluster("Sierra", "IBM POWER9 AC922",
                            I::kInfinibandEdr,
                            make_hw(4.0, 220.0, 270.0, 44, 4, 2, 2, 16, 4, I::kInfinibandEdr),
                            5, 8, 21));
  cs.push_back(make_cluster("Bridges", "Intel Xeon E5-2695 v3 @ 2.30GHz",
                            I::kOmniPath,
                            make_hw(3.3, 70.0, 68.3, 28, 2, 2, 2, 16, 3, I::kOmniPath),
                            5, 6, 21));
  cs.push_back(make_cluster("Bebop", "Intel Xeon E5-2695 v4 @ 2.10GHz",
                            I::kOmniPath,
                            make_hw(3.3, 90.0, 76.8, 36, 2, 2, 2, 16, 3, I::kOmniPath),
                            6, 5, 21));
  cs.push_back(make_cluster("TACC-KNL", "Intel Xeon Phi 7250 @ 1.40GHz",
                            I::kOmniPath,
                            make_hw(1.6, 34.0, 400.0, 68, 4, 1, 4, 16, 3, I::kOmniPath),
                            6, 6, 21));
  cs.push_back(make_cluster("TACC-Skylake", "Intel Xeon Platinum 8170",
                            I::kOmniPath,
                            make_hw(3.7, 71.5, 119.2, 52, 2, 2, 2, 16, 3, I::kOmniPath),
                            5, 8, 21));
  cs.push_back(make_cluster("MRI", "AMD EPYC 7713 64-Core",
                            I::kInfinibandHdr,
                            make_hw(3.67, 512.0, 409.6, 128, 2, 2, 8, 16, 4, I::kInfinibandHdr),
                            4, 8, 16));
  return cs;
}

}  // namespace

const std::vector<ClusterSpec>& builtin_clusters() {
  static const std::vector<ClusterSpec> clusters = build_all();
  return clusters;
}

const ClusterSpec& cluster_by_name(const std::string& name) {
  for (const auto& c : builtin_clusters()) {
    if (c.name == name) return c;
  }
  throw ConfigError("unknown cluster: " + name);
}

}  // namespace pml::sim
