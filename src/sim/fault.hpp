// Deterministic fault injection for the discrete-event engine.
//
// A FaultPlan describes the imperfections of a degraded cluster — slow or
// lossy-in-performance (never lossy-in-data) links, straggler ranks,
// transient NIC outages, and payload bit-corruption — as plain data. The
// engine resolves the plan once per construction/reset() into flat per-rank
// and per-node tables, so the simulation stays a pure function of
// (cluster, topology, options): the same plan and seed yield bit-identical
// virtual times at any thread count, exactly like the fault-free engine.
// Determinism is what keeps the paper's learning problem well-posed under
// faults (see DESIGN.md): a fault-injected sweep is still a reproducible
// labelled dataset, not a noisy measurement.
//
// Semantics per fault type:
//  - LinkDegradation: the node's NIC serialises bytes at
//    `bandwidth_factor` x nominal bandwidth, and every inter-node transfer
//    touching the node pays `extra_latency` additional seconds. A transfer
//    between two degraded nodes runs at the slower of the two scales and
//    pays both latency penalties.
//  - Straggler: every CPU-side charge of the rank (post overhead, eager
//    bounce copy, local compute/copy) is multiplied by `slowdown`.
//  - NicFlap: the node's NIC is down during [start, start + duration);
//    inter-node transfers that would start inside the window stall until
//    it closes (queued-op stall — messages are delayed, never dropped).
//  - Corruption: each delivered transfer flips one payload bit with
//    probability `probability`, drawn from a counter-based splitmix64
//    stream (no RNG state shared with timing jitter). Only the bytes are
//    touched; timings are unchanged, so PayloadMode::kVerify and
//    kTimingOnly stay bit-identical in virtual time and the kVerify
//    verification pass is what detects the damage.
#pragma once

#include <cstdint>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace pml::sim {

/// Bandwidth/latency degradation of one node's NIC.
struct LinkDegradation {
  int node = 0;
  double bandwidth_factor = 1.0;  ///< in (0, 1]: fraction of nominal NIC bw
  double extra_latency = 0.0;     ///< seconds added per inter-node transfer
};

/// Multiplicative CPU slowdown of one rank.
struct Straggler {
  int rank = 0;
  double slowdown = 1.0;  ///< >= 1: factor on every CPU-side charge
};

/// Transient NIC outage of one node.
struct NicFlap {
  int node = 0;
  double start = 0.0;     ///< virtual seconds; window is [start, start+duration)
  double duration = 0.0;  ///< seconds the NIC stays down
};

/// Per-transfer payload bit-corruption (PayloadMode::kVerify only).
struct Corruption {
  double probability = 0.0;  ///< in [0, 1]: chance one bit flips per transfer
};

/// A complete, seeded fault scenario. Default-constructed plans are empty
/// and leave the engine bit-identical to a fault-free run. Serializes as a
/// "pml-fault-plan-v1" JSON document.
struct FaultPlan {
  std::uint64_t seed = 1;  ///< corruption draw stream; independent of jitter
  std::vector<LinkDegradation> link_degradations;
  std::vector<Straggler> stragglers;
  std::vector<NicFlap> flaps;
  Corruption corruption;

  /// True when the plan injects nothing; the engine's disabled-fault hot
  /// path (a single branch) depends on this.
  bool empty() const noexcept {
    return link_degradations.empty() && stragglers.empty() && flaps.empty() &&
           corruption.probability <= 0.0;
  }

  /// Check every entry against a topology; throws pml::ConfigError on
  /// out-of-range nodes/ranks, bandwidth factors outside (0, 1], slowdowns
  /// below 1, negative windows, non-finite values, or probability outside
  /// [0, 1].
  void validate(int nodes, int world_size) const;

  Json to_json() const;
  /// Parse a "pml-fault-plan-v1" document; throws pml::ConfigError on a
  /// wrong/missing format key, pml::JsonError on malformed structure.
  static FaultPlan from_json(const Json& j);
};

/// Deterministic per-transfer corruption draw: a splitmix64 sponge over
/// (seed, transfer ordinal, src, dst) — the same absorb-then-mix discipline
/// as core::cell_seed, so draws depend only on the transfer's identity,
/// never on thread count or iteration order.
inline std::uint64_t fault_draw(std::uint64_t seed, std::uint64_t ordinal,
                                int src, int dst) noexcept {
  std::uint64_t state = seed;
  const auto absorb = [&state](std::uint64_t value) {
    state ^= value;
    state = splitmix64(state);
  };
  absorb(ordinal);
  absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  return splitmix64(state);
}

}  // namespace pml::sim
