// Per-rank communicator facade over the simulation engine.
//
// A `Comm` is the MPI-communicator-shaped handle a rank program receives.
// Point-to-point calls return awaitables; `co_await comm.sendrecv(...)` is
// the workhorse of every round-based collective schedule.
//
// Example rank program (a neighbour exchange):
//
//   RankTask program(Comm comm) {
//     std::vector<std::byte> out(msg), in(msg);
//     co_await comm.sendrecv(right, out, left, in);
//   }
#pragma once

#include <coroutine>
#include <cstddef>
#include <span>
#include <vector>

#include "sim/engine.hpp"

namespace pml::sim {

/// Small set of request ids with inline storage. wait/send/recv/sendrecv
/// cover the hot round-based schedules with 1–2 requests; keeping those
/// inline makes a steady-state co_await allocation-free. Larger sets (a
/// wait_all over a whole schedule) spill to a heap vector.
class RequestSet {
 public:
  RequestSet() = default;
  explicit RequestSet(RequestId id) { inline_[count_++] = id; }
  explicit RequestSet(std::vector<RequestId> ids) : heap_(std::move(ids)) {}

  void push_back(RequestId id) {
    if (heap_.empty() && count_ < kInline) {
      inline_[count_++] = id;
      return;
    }
    if (heap_.empty()) heap_.assign(inline_, inline_ + count_);
    heap_.push_back(id);
  }

  std::span<const RequestId> view() const noexcept {
    return heap_.empty() ? std::span<const RequestId>(inline_, count_)
                         : std::span<const RequestId>(heap_);
  }

 private:
  static constexpr std::size_t kInline = 4;
  RequestId inline_[kInline] = {};
  std::size_t count_ = 0;
  std::vector<RequestId> heap_;
};

/// Awaitable completion of a set of nonblocking requests.
class [[nodiscard]] WaitAwaitable {
 public:
  WaitAwaitable(Engine& engine, int rank, RequestSet reqs)
      : engine_(&engine), rank_(rank), reqs_(std::move(reqs)) {}

  bool await_ready() const { return engine_->all_done(reqs_.view()); }
  void await_suspend(std::coroutine_handle<> h) {
    engine_->suspend_wait(rank_, reqs_.view(), h);
  }
  void await_resume() { engine_->complete_wait(rank_, reqs_.view()); }

 private:
  Engine* engine_;
  int rank_;
  RequestSet reqs_;
};

/// Lightweight per-rank view of the engine (copyable; references the engine).
class Comm {
 public:
  Comm(Engine& engine, int rank) : engine_(&engine), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return engine_->world_size(); }
  int node() const noexcept { return engine_->topology().node_of(rank_); }
  bool same_node(int other) const noexcept {
    return engine_->topology().same_node(rank_, other);
  }
  Engine& engine() const noexcept { return *engine_; }
  double now() const { return engine_->now(rank_); }

  /// False in timing-only mode (PayloadMode::kTimingOnly): collective
  /// implementations skip their local payload movement (the time for it is
  /// charged either way), and buffers are never read or written.
  bool payload_enabled() const noexcept {
    return engine_->options().payload_enabled();
  }

  /// Nonblocking post; pair with wait()/wait_all().
  RequestId isend(int dst, std::span<const std::byte> data, int tag = 0) {
    return engine_->post_send(rank_, dst, data, tag);
  }
  RequestId irecv(int src, std::span<std::byte> data, int tag = 0) {
    return engine_->post_recv(rank_, src, data, tag);
  }

  WaitAwaitable wait(RequestId req) {
    return WaitAwaitable(*engine_, rank_, RequestSet(req));
  }
  WaitAwaitable wait_all(std::vector<RequestId> reqs) {
    return WaitAwaitable(*engine_, rank_, RequestSet(std::move(reqs)));
  }

  /// Blocking send/recv: co_await comm.send(...).
  WaitAwaitable send(int dst, std::span<const std::byte> data, int tag = 0) {
    return wait(isend(dst, data, tag));
  }
  WaitAwaitable recv(int src, std::span<std::byte> data, int tag = 0) {
    return wait(irecv(src, data, tag));
  }

  /// Simultaneous exchange: send to `dst`, receive from `src`.
  WaitAwaitable sendrecv(int dst, std::span<const std::byte> send_data,
                         int src, std::span<std::byte> recv_data,
                         int tag = 0) {
    RequestSet reqs(isend(dst, send_data, tag));
    reqs.push_back(irecv(src, recv_data, tag));
    return WaitAwaitable(*engine_, rank_, std::move(reqs));
  }

  /// Per-rank reusable staging buffer (see Engine::scratch); steady-state
  /// use across engine reset() cycles is allocation-free.
  std::span<std::byte> scratch(std::size_t bytes, std::size_t slot = 0) {
    return engine_->scratch(rank_, slot, bytes);
  }

  /// Charge local computation time to this rank.
  void compute(double seconds) { engine_->local_compute(rank_, seconds); }

  /// Charge a local buffer copy (L3-aware) to this rank.
  void copy(std::uint64_t bytes, std::uint64_t working_set) {
    engine_->local_copy(rank_, bytes, working_set);
  }

 private:
  Engine* engine_;
  int rank_;
};

}  // namespace pml::sim
