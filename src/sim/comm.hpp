// Per-rank communicator facade over the simulation engine.
//
// A `Comm` is the MPI-communicator-shaped handle a rank program receives.
// Point-to-point calls return awaitables; `co_await comm.sendrecv(...)` is
// the workhorse of every round-based collective schedule.
//
// Example rank program (a neighbour exchange):
//
//   RankTask program(Comm comm) {
//     std::vector<std::byte> out(msg), in(msg);
//     co_await comm.sendrecv(right, out, left, in);
//   }
#pragma once

#include <coroutine>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace pml::sim {

/// Small set of request ids with inline storage. wait/send/recv/sendrecv
/// cover the hot round-based schedules with 1–2 requests; keeping those
/// inline makes a steady-state co_await allocation-free. Larger sets (a
/// wait_all over a whole schedule) spill to a heap vector.
class RequestSet {
 public:
  RequestSet() = default;
  explicit RequestSet(RequestId id) { inline_[count_++] = id; }
  explicit RequestSet(std::vector<RequestId> ids) : heap_(std::move(ids)) {}

  void push_back(RequestId id) {
    if (heap_.empty() && count_ < kInline) {
      inline_[count_++] = id;
      return;
    }
    if (heap_.empty()) heap_.assign(inline_, inline_ + count_);
    heap_.push_back(id);
  }

  std::span<const RequestId> view() const noexcept {
    return heap_.empty() ? std::span<const RequestId>(inline_, count_)
                         : std::span<const RequestId>(heap_);
  }

 private:
  static constexpr std::size_t kInline = 4;
  RequestId inline_[kInline] = {};
  std::size_t count_ = 0;
  std::vector<RequestId> heap_;
};

/// Awaitable completion of a set of nonblocking requests.
class [[nodiscard]] WaitAwaitable {
 public:
  WaitAwaitable(Engine& engine, int rank, RequestSet reqs)
      : engine_(&engine), rank_(rank), reqs_(std::move(reqs)) {}

  bool await_ready() const { return engine_->all_done(reqs_.view()); }
  void await_suspend(std::coroutine_handle<> h) {
    engine_->suspend_wait(rank_, reqs_.view(), h);
  }
  void await_resume() { engine_->complete_wait(rank_, reqs_.view()); }

 private:
  Engine* engine_;
  int rank_;
  RequestSet reqs_;
};

/// Lightweight per-rank view of the engine (copyable; references the engine).
///
/// A Comm can be a *subgroup* view: subgroup() restricts it to a strided
/// subset of world ranks and renumbers them 0..count-1. rank()/size() are
/// then group-relative and every post translates group peers to world
/// ranks, so any flat collective schedule — which only ever speaks in
/// rank()/size() terms — runs unchanged on a tier of the hierarchy (the
/// node leaders, or one node's local ranks). Clocks, scratch slots, and
/// topology queries always use the underlying world rank.
class Comm {
 public:
  Comm(Engine& engine, int rank)
      : engine_(&engine),
        world_rank_(rank),
        rank_(rank),
        base_(0),
        stride_(1),
        size_(engine.world_size()) {}

  /// Strided subgroup: group rank g is world rank base + g*stride. The
  /// calling rank must be a member. Subgroups nest off the world view only
  /// (base/stride/count are world-rank terms).
  Comm subgroup(int base, int stride, int count) const {
    if (stride < 1 || count < 1 ||
        (world_rank_ - base) % stride != 0) {
      throw SimError("rank " + std::to_string(world_rank_) +
                     " is not a member of subgroup(base=" +
                     std::to_string(base) + ", stride=" +
                     std::to_string(stride) + ", count=" +
                     std::to_string(count) + ")");
    }
    const int group_rank = (world_rank_ - base) / stride;
    if (group_rank < 0 || group_rank >= count) {
      throw SimError("rank " + std::to_string(world_rank_) +
                     " outside subgroup of " + std::to_string(count));
    }
    Comm sub(*engine_, world_rank_);
    sub.rank_ = group_rank;
    sub.base_ = base;
    sub.stride_ = stride;
    sub.size_ = count;
    return sub;
  }

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return size_; }
  /// Underlying engine rank (== rank() for the world communicator).
  int world_rank() const noexcept { return world_rank_; }
  /// World rank of group rank `r`.
  int to_world(int r) const noexcept { return base_ + r * stride_; }
  int node() const noexcept {
    return engine_->topology().node_of(world_rank_);
  }
  bool same_node(int other) const noexcept {
    return engine_->topology().same_node(world_rank_, to_world(other));
  }
  Engine& engine() const noexcept { return *engine_; }
  double now() const { return engine_->now(world_rank_); }

  /// False in timing-only mode (PayloadMode::kTimingOnly): collective
  /// implementations skip their local payload movement (the time for it is
  /// charged either way), and buffers are never read or written.
  bool payload_enabled() const noexcept {
    return engine_->options().payload_enabled();
  }

  /// Nonblocking post; pair with wait()/wait_all(). Peer ranks are group
  /// ranks (== world ranks on the world communicator).
  RequestId isend(int dst, std::span<const std::byte> data, int tag = 0) {
    return engine_->post_send(world_rank_, to_world(dst), data, tag);
  }
  RequestId irecv(int src, std::span<std::byte> data, int tag = 0) {
    return engine_->post_recv(world_rank_, to_world(src), data, tag);
  }

  WaitAwaitable wait(RequestId req) {
    return WaitAwaitable(*engine_, world_rank_, RequestSet(req));
  }
  WaitAwaitable wait_all(std::vector<RequestId> reqs) {
    return WaitAwaitable(*engine_, world_rank_, RequestSet(std::move(reqs)));
  }

  /// Blocking send/recv: co_await comm.send(...).
  WaitAwaitable send(int dst, std::span<const std::byte> data, int tag = 0) {
    return wait(isend(dst, data, tag));
  }
  WaitAwaitable recv(int src, std::span<std::byte> data, int tag = 0) {
    return wait(irecv(src, data, tag));
  }

  /// Simultaneous exchange: send to `dst`, receive from `src`.
  WaitAwaitable sendrecv(int dst, std::span<const std::byte> send_data,
                         int src, std::span<std::byte> recv_data,
                         int tag = 0) {
    RequestSet reqs(isend(dst, send_data, tag));
    reqs.push_back(irecv(src, recv_data, tag));
    return WaitAwaitable(*engine_, world_rank_, std::move(reqs));
  }

  /// Per-rank reusable staging buffer (see Engine::scratch); steady-state
  /// use across engine reset() cycles is allocation-free. Keyed by world
  /// rank, so two tiers of one rank's schedule share the same slots.
  std::span<std::byte> scratch(std::size_t bytes, std::size_t slot = 0) {
    return engine_->scratch(world_rank_, slot, bytes);
  }

  /// Charge local computation time to this rank.
  void compute(double seconds) { engine_->local_compute(world_rank_, seconds); }

  /// Charge a local buffer copy (L3-aware) to this rank.
  void copy(std::uint64_t bytes, std::uint64_t working_set) {
    engine_->local_copy(world_rank_, bytes, working_set);
  }

 private:
  Engine* engine_;
  int world_rank_;  ///< rank in the engine's world communicator
  int rank_;        ///< rank within this (sub)group
  int base_;        ///< world rank of group rank 0
  int stride_;      ///< world-rank stride between group members
  int size_;        ///< group size
};

}  // namespace pml::sim
