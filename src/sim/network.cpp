#include "sim/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pml::sim {

NetworkModel::NetworkModel(const ClusterSpec& cluster, Topology topo,
                           HierarchySpec hierarchy)
    : topo_(topo), hierarchy_(hierarchy) {
  if (topo.nodes < 1 || topo.ppn < 1) {
    throw SimError("topology must have >= 1 node and >= 1 ppn");
  }
  if (topo.ppn > cluster.hw.threads) {
    throw SimError("ppn " + std::to_string(topo.ppn) + " exceeds " +
                   cluster.name + " thread count " +
                   std::to_string(cluster.hw.threads));
  }
  const HardwareSpec& hw = cluster.hw;

  // Software stack adds a clock-dependent component on top of the wire
  // latency of the interconnect generation.
  const double sw_us = 0.25 / hw.cpu_max_clock_ghz;
  inter_alpha_ = (base_latency_us(cluster.interconnect) + sw_us) * 1e-6;
  inter_bw_ = hw.nic_bandwidth_gbs() * 1e9;

  intra_alpha_ = (0.15 + 0.35 / hw.cpu_max_clock_ghz) * 1e-6;
  overhead_ = 0.20e-6 / hw.cpu_max_clock_ghz;

  l3_share_bytes_ = hw.l3_cache_mb * 1024.0 * 1024.0 /
                    std::max(1, std::min(topo.ppn, hw.cores));
  // Cache-resident copies stream at a rate proportional to clock.
  l3_bw_ = hw.cpu_max_clock_ghz * 14.0e9;
  // DRAM copies share the memory controllers across active ranks; a single
  // stream rarely exceeds ~60% of one socket's bandwidth.
  const int active = std::max(1, std::min(topo.ppn, hw.cores));
  dram_share_bw_ =
      std::max(hw.mem_bw_gbs * 1e9 * 0.8 / active, 0.8e9);
  dram_share_bw_ = std::min(dram_share_bw_, 0.6 * hw.mem_bw_gbs * 1e9);
  dram_share_bw_ = std::min(dram_share_bw_, l3_bw_);

  // Cross-socket / cross-NUMA traffic pays an interconnect (UPI/xGMI) tax.
  if (hw.sockets > 1 || hw.numa_nodes > hw.sockets) {
    numa_penalty_ = 1.0 + 0.08 * hw.sockets +
                    0.02 * std::max(0, hw.numa_nodes - hw.sockets);
  }
  sockets_ = std::max(1, hw.sockets);
  numa_nodes_ = std::max(sockets_, hw.numa_nodes);
}

double NetworkModel::intra_time(std::uint64_t bytes, int src,
                                int dst) const noexcept {
  // The hierarchy-disabled expression must stay bit-identical to the flat
  // engine's intra-node branch, so it is evaluated verbatim up front.
  const double flat =
      intra_alpha_ + static_cast<double>(bytes) / copy_bandwidth(bytes);
  if (!hierarchy_.enabled) return flat;

  // Block assignment of local ranks to sockets and NUMA domains: local rank
  // lr occupies socket lr*sockets/ppn (and likewise for NUMA domains), the
  // layout MPI process managers use with core binding.
  const int lr_src = src % topo_.ppn;
  const int lr_dst = dst % topo_.ppn;
  const auto domain_of = [&](int lr, int domains) {
    return static_cast<int>(static_cast<std::int64_t>(lr) * domains /
                            topo_.ppn);
  };
  if (domain_of(lr_src, sockets_) != domain_of(lr_dst, sockets_)) {
    // Cross-socket: one UPI/xGMI hop of extra latency, reduced bandwidth.
    return intra_alpha_ * hierarchy_.socket_alpha_scale +
           static_cast<double>(bytes) /
               (copy_bandwidth(bytes) / hierarchy_.socket_bw_penalty);
  }
  if (domain_of(lr_src, numa_nodes_) == domain_of(lr_dst, numa_nodes_)) {
    // Same NUMA domain: shared L3 slice, no NUMA interconnect tax (which
    // copy_bandwidth bakes in as numa_penalty).
    return intra_alpha_ * hierarchy_.numa_alpha_scale +
           static_cast<double>(bytes) / (copy_bandwidth(bytes) * numa_penalty_);
  }
  // Same socket, different NUMA domain: the flat cost.
  return flat;
}

double NetworkModel::copy_bandwidth(std::uint64_t bytes) const noexcept {
  const double bw = (static_cast<double>(bytes) <= 0.8 * l3_share_bytes_)
                        ? l3_bw_
                        : dram_share_bw_;
  return bw / numa_penalty_;
}

double NetworkModel::memcpy_time(std::uint64_t bytes,
                                 std::uint64_t working_set) const noexcept {
  if (bytes == 0) return 0.0;
  return static_cast<double>(bytes) / copy_bandwidth(working_set);
}

double NetworkModel::p2p_time(std::uint64_t bytes, int src, int dst,
                              int concurrent_flows) const noexcept {
  if (src == dst) return memcpy_time(bytes, bytes);
  if (internode(src, dst)) {
    const double flows = std::max(1, concurrent_flows);
    return inter_alpha_ +
           static_cast<double>(bytes) * flows / inter_bw_;
  }
  // Shared-memory transport: one CMA copy at the (L3-aware) copy bandwidth.
  return intra_alpha_ + static_cast<double>(bytes) / copy_bandwidth(bytes);
}

}  // namespace pml::sim
