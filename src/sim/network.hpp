// Network and memory cost model derived from hardware features.
//
// This is the load-bearing piece of the substitution described in DESIGN.md:
// on real clusters the best collective algorithm is a function of the
// hardware; here message costs are an explicit function of the same
// hardware-feature vector the paper's framework extracts, so that
//   - HCA link speed x width (capped by PCIe lanes/version) sets inter-node
//     bandwidth -> dominates MPI_Alltoall (paper Fig. 6),
//   - L3 cache size sets the copy/reorder bandwidth of allgather-style
//     buffer assembly -> matters for MPI_Allgather (paper Fig. 5),
//   - PPN congests the single NIC per node (full- vs half-subscription),
//   - CPU clock sets per-message software overhead,
//   - sockets/NUMA tax cross-socket intra-node traffic.
//
// All returned quantities are in seconds and bytes.
#pragma once

#include <cstdint>

#include "sim/hardware.hpp"

namespace pml::sim {

/// Job shape: ranks are laid out node-major (rank r lives on node r/ppn).
struct Topology {
  int nodes = 1;
  int ppn = 1;

  int world_size() const noexcept { return nodes * ppn; }
  int node_of(int rank) const noexcept { return rank / ppn; }
  bool same_node(int a, int b) const noexcept { return node_of(a) == node_of(b); }
};

/// Intra-node shared-memory hierarchy configuration.
///
/// Disabled (the default) every intra-node transfer costs
/// intra_alpha + bytes / copy_bandwidth regardless of which cores the
/// endpoints occupy — bit-identical to the flat (pre-hierarchy) engine.
/// Enabled, local ranks are block-assigned to the cluster's sockets and
/// NUMA domains (local rank lr maps to socket lr*sockets/ppn) and an
/// intra-node transfer pays a level-dependent cost:
///   - same NUMA domain: reduced latency, no NUMA interconnect tax,
///   - same socket, different NUMA domain: the flat cost,
///   - cross-socket: extra latency and a UPI/xGMI bandwidth penalty.
/// A plain parameter struct: carrying it through SimOptions costs no
/// allocation, so the timing-only hot path stays 0-alloc either way.
struct HierarchySpec {
  bool enabled = false;
  /// Latency scale for same-NUMA-domain transfers (shared L3 slice).
  double numa_alpha_scale = 0.6;
  /// Latency scale for cross-socket transfers (one interconnect hop).
  double socket_alpha_scale = 1.5;
  /// Bandwidth divisor for cross-socket transfers, on top of the model's
  /// baked-in NUMA penalty.
  double socket_bw_penalty = 1.25;

  /// Enabled spec with the default level scales; the per-cluster
  /// parameterisation comes from the hardware features (sockets, NUMA
  /// domains, cache) already inside NetworkModel.
  static HierarchySpec from_cluster(const ClusterSpec& /*cluster*/) {
    return HierarchySpec{.enabled = true};
  }

  bool operator==(const HierarchySpec&) const = default;
};

/// Cost model for one (cluster, topology) pair.
class NetworkModel {
 public:
  NetworkModel(const ClusterSpec& cluster, Topology topo,
               HierarchySpec hierarchy = {});

  const Topology& topology() const noexcept { return topo_; }

  /// One-way inter-node latency (alpha) in seconds.
  double inter_alpha() const noexcept { return inter_alpha_; }

  /// NIC wire bandwidth in bytes/second (one flow, uncontended).
  double inter_bandwidth() const noexcept { return inter_bw_; }

  /// Intra-node (shared-memory transport) latency in seconds.
  double intra_alpha() const noexcept { return intra_alpha_; }

  /// Copy bandwidth in bytes/second for a working set of `bytes`;
  /// L3-resident working sets copy at cache speed, larger ones at the
  /// per-rank DRAM share.
  double copy_bandwidth(std::uint64_t bytes) const noexcept;

  /// CPU cost of posting one send or receive, in seconds.
  double per_message_overhead() const noexcept { return overhead_; }

  /// Bytes of L3 available to each rank (cache-share threshold).
  double l3_share_bytes() const noexcept { return l3_share_bytes_; }

  /// Point-to-point duration for `bytes` between `src` and `dst`, assuming
  /// `concurrent_flows` flows share the NIC if the path is inter-node.
  /// This is the closed-form used by the analytic cost path; the event
  /// engine instead serialises flows through a per-node NIC clock.
  double p2p_time(std::uint64_t bytes, int src, int dst,
                  int concurrent_flows = 1) const noexcept;

  /// Pure local memcpy time for `bytes` with the given live working set.
  double memcpy_time(std::uint64_t bytes, std::uint64_t working_set) const noexcept;

  /// Time to combine `bytes` of reduction operands (element-wise op reads
  /// two streams and writes one: ~70% of plain copy bandwidth).
  double reduction_time(std::uint64_t bytes, std::uint64_t working_set) const noexcept {
    return memcpy_time(bytes, working_set) / 0.7;
  }

  /// Wire occupancy of `bytes` on the NIC (serialisation time).
  double wire_time(std::uint64_t bytes) const noexcept {
    return static_cast<double>(bytes) / inter_bw_;
  }

  /// Wire occupancy on a degraded link: `bandwidth_scale` in (0, 1]
  /// multiplies the nominal NIC bandwidth (sim::FaultPlan link
  /// degradations; the engine passes the slower endpoint's scale).
  double wire_time(std::uint64_t bytes, double bandwidth_scale) const noexcept {
    return static_cast<double>(bytes) / (inter_bw_ * bandwidth_scale);
  }

  /// True if the path src->dst crosses nodes.
  bool internode(int src, int dst) const noexcept {
    return !topo_.same_node(src, dst);
  }

  /// True when this model was built with an enabled HierarchySpec.
  bool hierarchy_enabled() const noexcept { return hierarchy_.enabled; }
  const HierarchySpec& hierarchy() const noexcept { return hierarchy_; }

  /// Duration of one intra-node transfer of `bytes` between world ranks
  /// `src` and `dst` (same node; excludes jitter). With the hierarchy
  /// disabled this is exactly intra_alpha + bytes / copy_bandwidth(bytes) —
  /// the flat engine's expression, bit for bit. Enabled, the endpoints'
  /// socket/NUMA placement scales latency and bandwidth per HierarchySpec.
  double intra_time(std::uint64_t bytes, int src, int dst) const noexcept;

 private:
  Topology topo_;
  HierarchySpec hierarchy_{};
  int sockets_ = 1;
  int numa_nodes_ = 1;
  double inter_alpha_ = 0.0;
  double inter_bw_ = 0.0;
  double intra_alpha_ = 0.0;
  double overhead_ = 0.0;
  double l3_share_bytes_ = 0.0;
  double l3_bw_ = 0.0;         // cache-resident copy bandwidth (B/s)
  double dram_share_bw_ = 0.0; // per-rank DRAM copy bandwidth (B/s)
  double numa_penalty_ = 1.0;  // >1 when sockets/NUMA split the node
};

}  // namespace pml::sim
