// Network and memory cost model derived from hardware features.
//
// This is the load-bearing piece of the substitution described in DESIGN.md:
// on real clusters the best collective algorithm is a function of the
// hardware; here message costs are an explicit function of the same
// hardware-feature vector the paper's framework extracts, so that
//   - HCA link speed x width (capped by PCIe lanes/version) sets inter-node
//     bandwidth -> dominates MPI_Alltoall (paper Fig. 6),
//   - L3 cache size sets the copy/reorder bandwidth of allgather-style
//     buffer assembly -> matters for MPI_Allgather (paper Fig. 5),
//   - PPN congests the single NIC per node (full- vs half-subscription),
//   - CPU clock sets per-message software overhead,
//   - sockets/NUMA tax cross-socket intra-node traffic.
//
// All returned quantities are in seconds and bytes.
#pragma once

#include <cstdint>

#include "sim/hardware.hpp"

namespace pml::sim {

/// Job shape: ranks are laid out node-major (rank r lives on node r/ppn).
struct Topology {
  int nodes = 1;
  int ppn = 1;

  int world_size() const noexcept { return nodes * ppn; }
  int node_of(int rank) const noexcept { return rank / ppn; }
  bool same_node(int a, int b) const noexcept { return node_of(a) == node_of(b); }
};

/// Cost model for one (cluster, topology) pair.
class NetworkModel {
 public:
  NetworkModel(const ClusterSpec& cluster, Topology topo);

  const Topology& topology() const noexcept { return topo_; }

  /// One-way inter-node latency (alpha) in seconds.
  double inter_alpha() const noexcept { return inter_alpha_; }

  /// NIC wire bandwidth in bytes/second (one flow, uncontended).
  double inter_bandwidth() const noexcept { return inter_bw_; }

  /// Intra-node (shared-memory transport) latency in seconds.
  double intra_alpha() const noexcept { return intra_alpha_; }

  /// Copy bandwidth in bytes/second for a working set of `bytes`;
  /// L3-resident working sets copy at cache speed, larger ones at the
  /// per-rank DRAM share.
  double copy_bandwidth(std::uint64_t bytes) const noexcept;

  /// CPU cost of posting one send or receive, in seconds.
  double per_message_overhead() const noexcept { return overhead_; }

  /// Bytes of L3 available to each rank (cache-share threshold).
  double l3_share_bytes() const noexcept { return l3_share_bytes_; }

  /// Point-to-point duration for `bytes` between `src` and `dst`, assuming
  /// `concurrent_flows` flows share the NIC if the path is inter-node.
  /// This is the closed-form used by the analytic cost path; the event
  /// engine instead serialises flows through a per-node NIC clock.
  double p2p_time(std::uint64_t bytes, int src, int dst,
                  int concurrent_flows = 1) const noexcept;

  /// Pure local memcpy time for `bytes` with the given live working set.
  double memcpy_time(std::uint64_t bytes, std::uint64_t working_set) const noexcept;

  /// Time to combine `bytes` of reduction operands (element-wise op reads
  /// two streams and writes one: ~70% of plain copy bandwidth).
  double reduction_time(std::uint64_t bytes, std::uint64_t working_set) const noexcept {
    return memcpy_time(bytes, working_set) / 0.7;
  }

  /// Wire occupancy of `bytes` on the NIC (serialisation time).
  double wire_time(std::uint64_t bytes) const noexcept {
    return static_cast<double>(bytes) / inter_bw_;
  }

  /// Wire occupancy on a degraded link: `bandwidth_scale` in (0, 1]
  /// multiplies the nominal NIC bandwidth (sim::FaultPlan link
  /// degradations; the engine passes the slower endpoint's scale).
  double wire_time(std::uint64_t bytes, double bandwidth_scale) const noexcept {
    return static_cast<double>(bytes) / (inter_bw_ * bandwidth_scale);
  }

  /// True if the path src->dst crosses nodes.
  bool internode(int src, int dst) const noexcept {
    return !topo_.same_node(src, dst);
  }

 private:
  Topology topo_;
  double inter_alpha_ = 0.0;
  double inter_bw_ = 0.0;
  double intra_alpha_ = 0.0;
  double overhead_ = 0.0;
  double l3_share_bytes_ = 0.0;
  double l3_bw_ = 0.0;         // cache-resident copy bandwidth (B/s)
  double dram_share_bw_ = 0.0; // per-rank DRAM copy bandwidth (B/s)
  double numa_penalty_ = 1.0;  // >1 when sockets/NUMA split the node
};

}  // namespace pml::sim
