// Intentionally small: Comm is a header-only facade; this TU anchors the
// library target and provides a home for future out-of-line additions.
//
// Fault injection (sim/fault.hpp) is transparent at this layer: awaitables
// post through Engine::post_send/post_recv, whose CPU-side charges are
// scaled for straggler ranks, and transfer completion times already carry
// degradation/flap effects by the time a co_await resumes. Rank programs
// need no changes to run under a FaultPlan.
#include "sim/comm.hpp"

namespace pml::sim {

// (no out-of-line definitions currently)

}  // namespace pml::sim
