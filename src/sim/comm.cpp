// Intentionally small: Comm is a header-only facade; this TU anchors the
// library target and provides a home for future out-of-line additions.
#include "sim/comm.hpp"

namespace pml::sim {

// (no out-of-line definitions currently)

}  // namespace pml::sim
