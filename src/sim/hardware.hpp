// Hardware descriptions for the simulated clusters.
//
// The paper trains on tuning data from 18 clusters (Table I) spanning Intel,
// AMD, ARM and POWER CPUs and five interconnect generations. Since we do not
// have the physical machines, each cluster is encoded as a HardwareSpec whose
// fields are exactly the hardware features the paper's feature-extraction
// script collects: CPU max clock, L3 cache size, memory bandwidth, core
// count, thread count, sockets, NUMA nodes, PCIe lanes & version, and HCA
// link speed & width. The simulator's cost model (network.hpp) is a function
// of these fields, so the learning problem retains the paper's structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace pml::sim {

/// Interconnect families present in Table I.
enum class Interconnect : std::uint8_t {
  kInfinibandQdr,
  kInfinibandFdr,
  kInfinibandEdr,
  kInfinibandHdr,
  kOmniPath,
};

/// Human-readable name, e.g. "InfiniBand (EDR)".
std::string to_string(Interconnect ic);

/// Per-lane signalling rate in Gbit/s for an interconnect generation.
double lane_speed_gbps(Interconnect ic);

/// Default link width (number of lanes; 4X links throughout Table I).
int default_link_width(Interconnect ic);

/// Base one-way MPI latency in microseconds for the generation.
double base_latency_us(Interconnect ic);

/// Per-node hardware features — the 11 hardware features of the paper.
struct HardwareSpec {
  double cpu_max_clock_ghz = 0.0;  ///< max (turbo) clock; paper §V-A rationale
  double l3_cache_mb = 0.0;        ///< total last-level cache per node
  double mem_bw_gbs = 0.0;         ///< aggregate memory bandwidth (GB/s)
  int cores = 0;                   ///< physical cores per node
  int threads = 0;                 ///< hardware threads per node
  int sockets = 0;
  int numa_nodes = 0;
  int pcie_lanes = 0;              ///< lanes feeding the HCA
  int pcie_version = 0;            ///< 2, 3 or 4
  double hca_link_speed_gbps = 0.0;  ///< per-lane signalling rate
  int hca_link_width = 0;            ///< number of lanes (4X = 4)

  /// Achievable NIC bandwidth in GB/s: the link rate capped by what the
  /// PCIe slot can feed, derated for protocol efficiency.
  double nic_bandwidth_gbs() const;

  Json to_json() const;
  static HardwareSpec from_json(const Json& j);
};

/// A named cluster: hardware plus the sweep used when benchmarking it.
struct ClusterSpec {
  std::string name;
  std::string processor;     ///< marketing name, e.g. "AMD EPYC 7713"
  Interconnect interconnect = Interconnect::kInfinibandEdr;
  HardwareSpec hw;
  std::vector<int> node_counts;   ///< #nodes values benchmarked (Table I)
  std::vector<int> ppn_values;    ///< process-per-node values benchmarked
  std::vector<std::uint64_t> message_sizes;  ///< bytes, powers of two

  /// Stable 64-bit digest of the cluster's hardware identity: processor,
  /// interconnect, and every HardwareSpec field — deliberately *not* the
  /// name or the benchmark grids. Two specs sharing a name but differing
  /// in hardware fingerprint differently, so table caches keyed on it
  /// never serve a table compiled for different silicon (the grids are
  /// covered separately by TuningTable sweep provenance).
  std::uint64_t hardware_fingerprint() const;

  Json to_json() const;
  static ClusterSpec from_json(const Json& j);
};

/// All 18 clusters of Table I, in table order.
const std::vector<ClusterSpec>& builtin_clusters();

/// Look up a builtin cluster by name; throws pml::Error if unknown.
const ClusterSpec& cluster_by_name(const std::string& name);

/// Message-size sweep 2^0 .. 2^(count-1) bytes (Table I uses 21 sizes).
std::vector<std::uint64_t> power_of_two_sizes(int count);

}  // namespace pml::sim
