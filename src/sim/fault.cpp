#include "sim/fault.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace pml::sim {

namespace {

constexpr const char* kFormat = "pml-fault-plan-v1";

void check_finite(double value, const char* what) {
  if (!std::isfinite(value)) {
    throw ConfigError(std::string("fault plan: ") + what + " must be finite");
  }
}

}  // namespace

void FaultPlan::validate(int nodes, int world_size) const {
  for (const LinkDegradation& d : link_degradations) {
    if (d.node < 0 || d.node >= nodes) {
      throw ConfigError("fault plan: degraded node " + std::to_string(d.node) +
                        " out of range [0, " + std::to_string(nodes) + ")");
    }
    check_finite(d.bandwidth_factor, "bandwidth_factor");
    if (d.bandwidth_factor <= 0.0 || d.bandwidth_factor > 1.0) {
      throw ConfigError("fault plan: bandwidth_factor must be in (0, 1], got " +
                        std::to_string(d.bandwidth_factor));
    }
    check_finite(d.extra_latency, "extra_latency");
    if (d.extra_latency < 0.0) {
      throw ConfigError("fault plan: extra_latency must be >= 0, got " +
                        std::to_string(d.extra_latency));
    }
  }
  for (const Straggler& s : stragglers) {
    if (s.rank < 0 || s.rank >= world_size) {
      throw ConfigError("fault plan: straggler rank " + std::to_string(s.rank) +
                        " out of range [0, " + std::to_string(world_size) +
                        ")");
    }
    check_finite(s.slowdown, "slowdown");
    if (s.slowdown < 1.0) {
      throw ConfigError("fault plan: slowdown must be >= 1, got " +
                        std::to_string(s.slowdown));
    }
  }
  for (const NicFlap& f : flaps) {
    if (f.node < 0 || f.node >= nodes) {
      throw ConfigError("fault plan: flapping node " + std::to_string(f.node) +
                        " out of range [0, " + std::to_string(nodes) + ")");
    }
    check_finite(f.start, "flap start");
    check_finite(f.duration, "flap duration");
    if (f.start < 0.0 || f.duration < 0.0) {
      throw ConfigError("fault plan: flap start/duration must be >= 0");
    }
  }
  check_finite(corruption.probability, "corruption probability");
  if (corruption.probability < 0.0 || corruption.probability > 1.0) {
    throw ConfigError("fault plan: corruption probability must be in [0, 1]");
  }
}

Json FaultPlan::to_json() const {
  Json j = Json::object();
  j["format"] = kFormat;
  j["seed"] = seed;
  Json degradations = Json::array();
  for (const LinkDegradation& d : link_degradations) {
    Json dj = Json::object();
    dj["node"] = d.node;
    dj["bandwidth_factor"] = d.bandwidth_factor;
    dj["extra_latency"] = d.extra_latency;
    degradations.push_back(std::move(dj));
  }
  j["link_degradations"] = std::move(degradations);
  Json straggler_list = Json::array();
  for (const Straggler& s : stragglers) {
    Json sj = Json::object();
    sj["rank"] = s.rank;
    sj["slowdown"] = s.slowdown;
    straggler_list.push_back(std::move(sj));
  }
  j["stragglers"] = std::move(straggler_list);
  Json flap_list = Json::array();
  for (const NicFlap& f : flaps) {
    Json fj = Json::object();
    fj["node"] = f.node;
    fj["start"] = f.start;
    fj["duration"] = f.duration;
    flap_list.push_back(std::move(fj));
  }
  j["flaps"] = std::move(flap_list);
  Json cj = Json::object();
  cj["probability"] = corruption.probability;
  j["corruption"] = std::move(cj);
  return j;
}

FaultPlan FaultPlan::from_json(const Json& j) {
  if (!j.is_object() || !j.contains("format") ||
      !j.at("format").is_string() || j.at("format").as_string() != kFormat) {
    throw ConfigError(std::string("not a ") + kFormat + " document");
  }
  FaultPlan plan;
  if (j.contains("seed")) {
    plan.seed = static_cast<std::uint64_t>(j.at("seed").as_int());
  }
  if (j.contains("link_degradations")) {
    for (const Json& dj : j.at("link_degradations").as_array()) {
      LinkDegradation d;
      d.node = static_cast<int>(dj.at("node").as_int());
      d.bandwidth_factor = dj.at("bandwidth_factor").as_number();
      if (dj.contains("extra_latency")) {
        d.extra_latency = dj.at("extra_latency").as_number();
      }
      plan.link_degradations.push_back(d);
    }
  }
  if (j.contains("stragglers")) {
    for (const Json& sj : j.at("stragglers").as_array()) {
      Straggler s;
      s.rank = static_cast<int>(sj.at("rank").as_int());
      s.slowdown = sj.at("slowdown").as_number();
      plan.stragglers.push_back(s);
    }
  }
  if (j.contains("flaps")) {
    for (const Json& fj : j.at("flaps").as_array()) {
      NicFlap f;
      f.node = static_cast<int>(fj.at("node").as_int());
      f.start = fj.at("start").as_number();
      f.duration = fj.at("duration").as_number();
      plan.flaps.push_back(f);
    }
  }
  if (j.contains("corruption")) {
    plan.corruption.probability =
        j.at("corruption").at("probability").as_number();
  }
  return plan;
}

}  // namespace pml::sim
