#include "sim/engine.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <string>
#include <utility>

namespace pml::sim {

// ---- coroutine frame pool ---------------------------------------------------

namespace detail {

namespace {

/// Size-bucketed free lists of coroutine frames. A rank program has a small
/// number of distinct frame sizes, so a linear bucket scan is cheap. Each
/// block stores its size in a max_align_t-sized header.
struct FramePool {
  struct Bucket {
    std::size_t size = 0;
    std::vector<void*> free;
  };
  std::vector<Bucket> buckets;

  ~FramePool() {
    for (Bucket& bucket : buckets) {
      for (void* block : bucket.free) ::operator delete(block);
    }
  }
};

constexpr std::size_t kFrameHeader = alignof(std::max_align_t);

FramePool& frame_pool() {
  thread_local FramePool pool;
  return pool;
}

}  // namespace

void warm_frame_pool() { frame_pool(); }

void* frame_alloc(std::size_t size) {
  FramePool& pool = frame_pool();
  for (FramePool::Bucket& bucket : pool.buckets) {
    if (bucket.size == size && !bucket.free.empty()) {
      void* block = bucket.free.back();
      bucket.free.pop_back();
      return static_cast<std::byte*>(block) + kFrameHeader;
    }
  }
  void* block = ::operator new(size + kFrameHeader);
  *static_cast<std::size_t*>(block) = size;
  return static_cast<std::byte*>(block) + kFrameHeader;
}

void frame_free(void* p) noexcept {
  void* block = static_cast<std::byte*>(p) - kFrameHeader;
  const std::size_t size = *static_cast<std::size_t*>(block);
  FramePool& pool = frame_pool();
  try {
    for (FramePool::Bucket& bucket : pool.buckets) {
      if (bucket.size == size) {
        bucket.free.push_back(block);
        return;
      }
    }
    pool.buckets.push_back(FramePool::Bucket{size, {block}});
  } catch (...) {
    ::operator delete(block);  // caching is best-effort; freeing never fails
  }
}

}  // namespace detail

// ---- engine -----------------------------------------------------------------

Engine::Engine(const ClusterSpec& cluster, Topology topo, SimOptions opts)
    : cluster_(cluster),
      topo_(topo),
      model_(cluster, topo, opts.hierarchy),
      opts_(opts),
      rng_(opts.seed),
      now_(static_cast<std::size_t>(topo.world_size()), 0.0),
      nic_tx_free_(static_cast<std::size_t>(topo.nodes), 0.0),
      nic_rx_free_(static_cast<std::size_t>(topo.nodes), 0.0) {
  // Pin the thread-local coroutine frame pool so it is constructed before —
  // and therefore destroyed after — any thread-storage-duration object that
  // holds this Engine (and through it, live coroutine frames).
  detail::warm_frame_pool();
  resolve_faults();
}

void Engine::reset(const ClusterSpec& cluster, Topology topo, SimOptions opts) {
  // Assignments reuse existing string/vector capacity; steady-state resets
  // with same-shaped inputs perform no heap allocations.
  cluster_ = cluster;
  topo_ = topo;
  model_ = NetworkModel(cluster, topo, opts.hierarchy);
  opts_ = opts;
  rng_ = Rng(opts.seed);
  now_.assign(static_cast<std::size_t>(topo.world_size()), 0.0);
  nic_tx_free_.assign(static_cast<std::size_t>(topo.nodes), 0.0);
  nic_rx_free_.assign(static_cast<std::size_t>(topo.nodes), 0.0);

  requests_.clear();
  waits_.clear();
  std::fill(channels_.begin(), channels_.end(), Channel{});
  channel_count_ = 0;
  // Re-thread the whole pool onto the free list; nodes keep their buffered
  // capacity for the next invocation's eager sends.
  pool_free_ = pool_.empty() ? -1 : 0;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_[i].next =
        i + 1 < pool_.size() ? static_cast<std::int32_t>(i + 1) : -1;
    pool_[i].buffered.clear();
  }
  events_.clear();
  next_seq_ = 0;
  stat_events_ = 0;
  stat_probes_ = 0;
  stat_resizes_ = 0;
  completed_ranks_ = 0;
  pending_exception_ = nullptr;
  tasks_.clear();
  ran_ = false;
  resolve_faults();
}

void Engine::resolve_faults() {
  const FaultPlan& plan = opts_.faults;
  fault_transfer_seq_ = 0;
  stat_fault_straggler_ = 0;
  stat_fault_degraded_ = 0;
  stat_fault_stalls_ = 0;
  stat_fault_corrupted_ = 0;
  faults_active_ = !plan.empty();
  if (!faults_active_) {
    // The disabled path never reads the tables, so leaving stale contents
    // in place keeps steady-state reset() allocation-free.
    flap_windows_.clear();
    return;
  }
  plan.validate(topo_.nodes, topo_.world_size());
  straggler_scale_.assign(static_cast<std::size_t>(topo_.world_size()), 1.0);
  for (const Straggler& s : plan.stragglers) {
    straggler_scale_[static_cast<std::size_t>(s.rank)] *= s.slowdown;
  }
  node_bw_scale_.assign(static_cast<std::size_t>(topo_.nodes), 1.0);
  node_extra_alpha_.assign(static_cast<std::size_t>(topo_.nodes), 0.0);
  for (const LinkDegradation& d : plan.link_degradations) {
    node_bw_scale_[static_cast<std::size_t>(d.node)] *= d.bandwidth_factor;
    node_extra_alpha_[static_cast<std::size_t>(d.node)] += d.extra_latency;
  }
  flap_windows_.clear();
  for (const NicFlap& f : plan.flaps) {
    flap_windows_.push_back(FlapWindow{f.start, f.start + f.duration, f.node});
  }
  std::sort(flap_windows_.begin(), flap_windows_.end(),
            [](const FlapWindow& a, const FlapWindow& b) {
              return a.start != b.start ? a.start < b.start : a.node < b.node;
            });
}

double Engine::straggle(int rank, double seconds) noexcept {
  const double scale = straggler_scale_[static_cast<std::size_t>(rank)];
  if (scale == 1.0) return seconds;
  ++stat_fault_straggler_;
  return seconds * scale;
}

double Engine::flap_stall(std::size_t src_node, std::size_t dst_node,
                          double start) noexcept {
  // Windows are sorted by start. If `start` precedes a window it precedes
  // every later one too, and `start` only moves forward — so one forward
  // scan visits every window that can stall this transfer.
  for (const FlapWindow& w : flap_windows_) {
    if (start < w.start) break;
    if (start >= w.end) continue;
    const auto node = static_cast<std::size_t>(w.node);
    if (node != src_node && node != dst_node) continue;
    start = w.end;  // NIC is down: the queued transfer waits the window out
    ++stat_fault_stalls_;
  }
  return start;
}

void Engine::reserve(std::size_t expected_requests) {
  requests_.reserve(expected_requests);
  // Each wait covers >= 1 request; each resume is one event (plus the p
  // kick-off events).
  waits_.reserve(expected_requests / 2 + 1);
  events_.reserve(expected_requests / 2 +
                  static_cast<std::size_t>(topo_.world_size()) + 1);
}

std::span<std::byte> Engine::scratch(int rank, std::size_t slot,
                                     std::size_t bytes) {
  check_rank(rank);
  if (slot >= 2) throw SimError("scratch slot out of range [0, 2)");
  const std::size_t idx = static_cast<std::size_t>(rank) * 2 + slot;
  if (idx >= scratch_.size()) {
    scratch_.resize(static_cast<std::size_t>(topo_.world_size()) * 2);
  }
  auto& buf = scratch_[idx];
  if (buf.size() < bytes) buf.resize(bytes);
  return {buf.data(), bytes};
}

std::uint64_t Engine::channel_key(int src, int dst, int tag) {
  if (tag < 0 || tag > kMaxTag) {
    throw SimError("message tag " + std::to_string(tag) +
                   " out of channel-key range [0, " +
                   std::to_string(kMaxTag + 1) + ")");
  }
  if (src < 0 || src > kMaxChannelRank || dst < 0 || dst > kMaxChannelRank) {
    throw SimError("rank out of channel-key range [0, 2^24): src " +
                   std::to_string(src) + ", dst " + std::to_string(dst));
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 16) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  if (key == kEmptyKey) {
    // Only reachable at the 16M-rank/65535-tag corner; reserved as the
    // open-addressed table's empty-slot sentinel.
    throw SimError("channel key reserved for internal use");
  }
  return key;
}

void Engine::check_rank(int rank) const {
  if (rank < 0 || rank >= topo_.world_size()) {
    throw SimError("rank " + std::to_string(rank) + " out of range [0, " +
                   std::to_string(topo_.world_size()) + ")");
  }
}

std::size_t Engine::probe(std::uint64_t key) const noexcept {
  const std::size_t mask = channels_.size() - 1;
  // splitmix64-style finalizer scatters the structured key bits.
  std::uint64_t h = key;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  ++stat_probes_;
  while (channels_[i].key != kEmptyKey && channels_[i].key != key) {
    i = (i + 1) & mask;
    ++stat_probes_;
  }
  return i;
}

void Engine::grow_channels(std::size_t capacity) {
  ++stat_resizes_;
  std::vector<Channel> old = std::move(channels_);
  channels_.assign(capacity, Channel{});
  channel_count_ = 0;
  for (const Channel& channel : old) {
    if (channel.key == kEmptyKey) continue;
    channels_[probe(channel.key)] = channel;
    ++channel_count_;
  }
}

Engine::Channel& Engine::channel_for(std::uint64_t key) {
  // Grow at 3/4 load to keep probe sequences short.
  if ((channel_count_ + 1) * 4 > channels_.size() * 3) {
    grow_channels(std::max<std::size_t>(64, channels_.size() * 2));
  }
  Channel& channel = channels_[probe(key)];
  if (channel.key == kEmptyKey) {
    channel.key = key;
    ++channel_count_;
  }
  return channel;
}

std::int32_t Engine::acquire_node() {
  if (pool_free_ >= 0) {
    const std::int32_t index = pool_free_;
    pool_free_ = pool_[static_cast<std::size_t>(index)].next;
    return index;
  }
  pool_.emplace_back();
  return static_cast<std::int32_t>(pool_.size() - 1);
}

void Engine::release_node(std::int32_t index) noexcept {
  PendingOp& op = pool_[static_cast<std::size_t>(index)];
  op.send_data = nullptr;
  op.recv_data = nullptr;
  op.buffered.clear();  // keep capacity for reuse
  op.next = pool_free_;
  pool_free_ = index;
}

void Engine::schedule(double time, int rank, double clock,
                      std::coroutine_handle<> h) {
  events_.push_back(Event{time, next_seq_++, h, rank, clock});
  std::push_heap(events_.begin(), events_.end(), std::greater<Event>{});
}

RequestId Engine::post_send(int rank, int dst, std::span<const std::byte> data,
                            int tag) {
  check_rank(rank);
  check_rank(dst);
  auto& clock = now_[static_cast<std::size_t>(rank)];
  double overhead = model_.per_message_overhead();
  if (faults_active_) overhead = straggle(rank, overhead);
  clock += overhead;

  const auto id = static_cast<RequestId>(requests_.size());
  requests_.push_back(Request{rank, false, 0.0, -1});

  const std::uint64_t key = channel_key(rank, dst, tag);
  const std::int32_t node = acquire_node();
  PendingOp& op = pool_[static_cast<std::size_t>(node)];
  op.req = id;
  op.post_time = clock;
  op.send_data = data.data();
  op.recv_data = nullptr;
  op.bytes = data.size();
  op.next = -1;
  if (data.size() <= opts_.eager_threshold) {
    // Eager protocol: the payload is copied to a bounce buffer and the send
    // completes immediately; the sender may reuse its buffer right away.
    // The matched transfer below still sets the receive timing. Timing-only
    // mode skips the copy: the bounce time is charged regardless.
    if (opts_.payload_enabled() && !data.empty()) {
      op.buffered.assign(data.begin(), data.end());
      op.send_data = op.buffered.data();
    }
    double bounce = model_.memcpy_time(data.size(), data.size());
    if (faults_active_) bounce = straggle(rank, bounce);
    request_finished(id, clock + bounce);
  }
  Channel& channel = channel_for(key);
  if (channel.send_tail >= 0) {
    pool_[static_cast<std::size_t>(channel.send_tail)].next = node;
  } else {
    channel.send_head = node;
  }
  channel.send_tail = node;
  try_match(channel, rank, dst);
  return id;
}

RequestId Engine::post_recv(int rank, int src, std::span<std::byte> data,
                            int tag) {
  check_rank(rank);
  check_rank(src);
  auto& clock = now_[static_cast<std::size_t>(rank)];
  double overhead = model_.per_message_overhead();
  if (faults_active_) overhead = straggle(rank, overhead);
  clock += overhead;

  const auto id = static_cast<RequestId>(requests_.size());
  requests_.push_back(Request{rank, false, 0.0, -1});

  const std::uint64_t key = channel_key(src, rank, tag);
  const std::int32_t node = acquire_node();
  PendingOp& op = pool_[static_cast<std::size_t>(node)];
  op.req = id;
  op.post_time = clock;
  op.send_data = nullptr;
  op.recv_data = data.data();
  op.bytes = data.size();
  op.next = -1;
  Channel& channel = channel_for(key);
  if (channel.recv_tail >= 0) {
    pool_[static_cast<std::size_t>(channel.recv_tail)].next = node;
  } else {
    channel.recv_head = node;
  }
  channel.recv_tail = node;
  try_match(channel, src, rank);
  return id;
}

void Engine::try_match(Channel& channel, int src, int dst) {
  while (channel.send_head >= 0 && channel.recv_head >= 0) {
    const std::int32_t send = channel.send_head;
    const std::int32_t recv = channel.recv_head;
    channel.send_head = pool_[static_cast<std::size_t>(send)].next;
    if (channel.send_head < 0) channel.send_tail = -1;
    channel.recv_head = pool_[static_cast<std::size_t>(recv)].next;
    if (channel.recv_head < 0) channel.recv_tail = -1;
    // complete_transfer posts no new operations, so the pool is stable for
    // the duration of these references.
    complete_transfer(src, dst, pool_[static_cast<std::size_t>(send)],
                      pool_[static_cast<std::size_t>(recv)]);
    release_node(send);
    release_node(recv);
  }
}

void Engine::complete_transfer(int src, int dst, const PendingOp& send,
                               const PendingOp& recv) {
  if (send.bytes != recv.bytes) {
    throw SimError("message size mismatch on channel " + std::to_string(src) +
                   "->" + std::to_string(dst) + ": send " +
                   std::to_string(send.bytes) + "B, recv " +
                   std::to_string(recv.bytes) + "B");
  }
  const double jitter =
      opts_.noise_sigma > 0.0 ? rng_.lognormal_jitter(opts_.noise_sigma) : 1.0;

  double start = std::max(send.post_time, recv.post_time);
  double send_finish = 0.0;
  double recv_finish = 0.0;
  if (model_.internode(src, dst)) {
    const auto src_node = static_cast<std::size_t>(topo_.node_of(src));
    const auto dst_node = static_cast<std::size_t>(topo_.node_of(dst));
    auto& tx = nic_tx_free_[src_node];
    auto& rx = nic_rx_free_[dst_node];
    start = std::max({start, tx, rx});
    double occupancy = model_.wire_time(send.bytes) * jitter;
    double latency = model_.inter_alpha() * jitter;
    if (faults_active_) {
      start = flap_stall(src_node, dst_node, start);
      // A degraded endpoint slows the whole transfer: the wire runs at the
      // slower endpoint's bandwidth scale and both latency penalties apply.
      const double bw = std::min(node_bw_scale_[src_node],
                                 node_bw_scale_[dst_node]);
      const double extra =
          node_extra_alpha_[src_node] + node_extra_alpha_[dst_node];
      if (bw != 1.0 || extra != 0.0) ++stat_fault_degraded_;
      if (bw != 1.0) occupancy = model_.wire_time(send.bytes, bw) * jitter;
      latency += extra;
    }
    tx = start + occupancy;
    rx = start + occupancy;
    // The sender's nonblocking op completes once the NIC has drained its
    // buffer; the receiver additionally waits out the wire latency.
    send_finish = start + occupancy;
    recv_finish = start + occupancy + latency;
  } else {
    // intra_time reproduces the flat expression bit-identically when the
    // hierarchy is disabled, and the socket/NUMA-aware levels otherwise.
    const double duration = model_.intra_time(send.bytes, src, dst) * jitter;
    send_finish = start + duration;
    recv_finish = start + duration;
  }

  if (opts_.payload_enabled() && send.bytes > 0) {
    std::memcpy(recv.recv_data, send.send_data, send.bytes);
  }
  if (faults_active_) {
    // The ordinal advances for every matched transfer so draws depend only
    // on the transfer's identity, not on which fault knobs are set.
    const std::uint64_t ordinal = fault_transfer_seq_++;
    const double prob = opts_.faults.corruption.probability;
    if (prob > 0.0 && opts_.payload_enabled() && send.bytes > 0) {
      const std::uint64_t draw =
          fault_draw(opts_.faults.seed, ordinal, src, dst);
      if (static_cast<double>(draw >> 11) * 0x1.0p-53 < prob) {
        // Flip one deterministic payload bit. Timings are untouched, so
        // kVerify's verification pass is what surfaces the damage.
        std::uint64_t h = draw;
        const std::uint64_t bit =
            splitmix64(h) % (static_cast<std::uint64_t>(send.bytes) * 8);
        recv.recv_data[bit / 8] ^= std::byte{1} << static_cast<int>(bit % 8);
        ++stat_fault_corrupted_;
      }
    }
  }
  if (!requests_[send.req].done) {  // rendezvous sends finish on NIC drain
    request_finished(send.req, send_finish);
  }
  request_finished(recv.req, recv_finish);
}

void Engine::request_finished(RequestId id, double finish) {
  Request& req = requests_[id];
  req.done = true;
  req.finish = finish;
  if (req.waiter >= 0) {
    WaitState& w = waits_[static_cast<std::size_t>(req.waiter)];
    w.ready = std::max(w.ready, finish);
    if (--w.remaining == 0) {
      schedule(w.ready, w.rank, w.ready, w.handle);
    }
  }
}

bool Engine::all_done(std::span<const RequestId> reqs) const {
  return std::all_of(reqs.begin(), reqs.end(),
                     [&](RequestId id) { return requests_[id].done; });
}

void Engine::complete_wait(int rank, std::span<const RequestId> reqs) {
  auto& clock = now_[static_cast<std::size_t>(rank)];
  for (const RequestId id : reqs) {
    clock = std::max(clock, requests_[id].finish);
  }
}

void Engine::suspend_wait(int rank, std::span<const RequestId> reqs,
                          std::coroutine_handle<> h) {
  const auto index = static_cast<std::int32_t>(waits_.size());
  waits_.push_back(
      WaitState{0, now_[static_cast<std::size_t>(rank)], rank, h});
  WaitState& w = waits_.back();
  for (const RequestId id : reqs) {
    Request& req = requests_[id];
    if (req.done) {
      w.ready = std::max(w.ready, req.finish);
    } else {
      if (req.waiter != -1) {
        throw SimError("request waited on twice");
      }
      req.waiter = index;
      ++w.remaining;
    }
  }
  if (w.remaining == 0) {
    // Everything finished between the ready check and the suspension:
    // resume immediately at the fold of the finish times.
    schedule(w.ready, rank, w.ready, h);
  }
}

void Engine::local_compute(int rank, double seconds) {
  check_rank(rank);
  if (seconds < 0.0) throw SimError("negative compute interval");
  if (faults_active_) seconds = straggle(rank, seconds);
  now_[static_cast<std::size_t>(rank)] += seconds;
}

void Engine::local_copy(int rank, std::uint64_t bytes,
                        std::uint64_t working_set) {
  check_rank(rank);
  double seconds = model_.memcpy_time(bytes, working_set);
  if (faults_active_) seconds = straggle(rank, seconds);
  now_[static_cast<std::size_t>(rank)] += seconds;
}

void Engine::run(RankFactoryRef factory) {
  if (ran_) {
    throw SimError(
        "Engine::run called twice; reset() or construct a new Engine");
  }
  ran_ = true;

  const int p = topo_.world_size();
  tasks_.reserve(static_cast<std::size_t>(p));
  for (int rank = 0; rank < p; ++rank) {
    tasks_.push_back(factory(rank));
    // Top-level completion is observed through the promise hook rather than
    // by inspecting resumed handles: with composed (nested) RankTasks the
    // handle an event resumes is not necessarily the rank's root frame, and
    // a root may complete via symmetric transfer from a child.
    auto handle = tasks_.back().handle();
    auto& promise = handle.promise();
    promise.on_complete_arg = this;
    promise.on_complete = [](void* arg, RankTask::promise_type& done) {
      auto* self = static_cast<Engine*>(arg);
      ++self->completed_ranks_;
      if (done.exception && !self->pending_exception_) {
        self->pending_exception_ = done.exception;
      }
    };
    schedule(0.0, rank, 0.0, handle);
  }

  while (!events_.empty()) {
    std::pop_heap(events_.begin(), events_.end(), std::greater<Event>{});
    const Event ev = events_.back();
    events_.pop_back();
    ++stat_events_;
    auto& clock = now_[static_cast<std::size_t>(ev.rank)];
    clock = std::max(clock, ev.clock);
    ev.handle.resume();
    if (pending_exception_) {
      std::rethrow_exception(
          std::exchange(pending_exception_, std::exception_ptr{}));
    }
  }

  if (completed_ranks_ != p) {
    std::string stuck;
    for (int rank = 0; rank < p; ++rank) {
      if (!tasks_[static_cast<std::size_t>(rank)].handle().done()) {
        if (!stuck.empty()) stuck += ", ";
        stuck += std::to_string(rank);
        if (stuck.size() > 60) {
          stuck += ", ...";
          break;
        }
      }
    }
    throw SimError("deadlock: ranks {" + stuck + "} never completed");
  }

  if (obs::enabled()) {
    // Stats are maintained unconditionally (plain member increments on
    // hot-loop-owned cache lines); only the flush is gated.
    static obs::Counter events("sim.events_processed");
    static obs::Counter probes("sim.channel_probes");
    static obs::Counter resizes("sim.channel_resizes");
    static obs::Gauge pool_high_water("sim.pending_pool_high_water");
    events.add(stat_events_);
    probes.add(stat_probes_);
    resizes.add(stat_resizes_);
    pool_high_water.set(static_cast<std::int64_t>(pool_.size()));
    if (faults_active_) {
      static obs::Counter fault_straggler("sim.faults.straggler_charges");
      static obs::Counter fault_degraded("sim.faults.degraded_transfers");
      static obs::Counter fault_stalls("sim.faults.flap_stalls");
      static obs::Counter fault_corrupted("sim.faults.corrupted_payloads");
      fault_straggler.add(stat_fault_straggler_);
      fault_degraded.add(stat_fault_degraded_);
      fault_stalls.add(stat_fault_stalls_);
      fault_corrupted.add(stat_fault_corrupted_);
    }
  }
}

double Engine::elapsed() const {
  return *std::max_element(now_.begin(), now_.end());
}

}  // namespace pml::sim
