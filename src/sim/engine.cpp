#include "sim/engine.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace pml::sim {

Engine::Engine(const ClusterSpec& cluster, Topology topo, SimOptions opts)
    : cluster_(cluster),
      topo_(topo),
      model_(cluster, topo),
      opts_(opts),
      rng_(opts.seed),
      now_(static_cast<std::size_t>(topo.world_size()), 0.0),
      nic_tx_free_(static_cast<std::size_t>(topo.nodes), 0.0),
      nic_rx_free_(static_cast<std::size_t>(topo.nodes), 0.0) {}

void Engine::check_rank(int rank) const {
  if (rank < 0 || rank >= topo_.world_size()) {
    throw SimError("rank " + std::to_string(rank) + " out of range [0, " +
                   std::to_string(topo_.world_size()) + ")");
  }
}

void Engine::schedule(double time, int rank, double clock,
                      std::coroutine_handle<> h) {
  events_.push(Event{time, next_seq_++, h, rank, clock});
}

RequestId Engine::post_send(int rank, int dst, std::span<const std::byte> data,
                            int tag) {
  check_rank(rank);
  check_rank(dst);
  auto& clock = now_[static_cast<std::size_t>(rank)];
  clock += model_.per_message_overhead();

  const auto id = static_cast<RequestId>(requests_.size());
  requests_.push_back(Request{rank, false, 0.0, nullptr});

  const std::uint64_t key = channel_key(rank, dst, tag);
  PendingOp op{id, clock, data.data(), nullptr, data.size(), {}};
  if (data.size() <= opts_.eager_threshold) {
    // Eager protocol: the payload is copied to a bounce buffer and the send
    // completes immediately; the sender may reuse its buffer right away.
    // The matched transfer below still sets the receive timing.
    if (opts_.copy_data && !data.empty()) {
      op.buffered.assign(data.begin(), data.end());
      op.send_data = op.buffered.data();
    }
    request_finished(id, clock + model_.memcpy_time(data.size(), data.size()));
  }
  pending_sends_[key].push_back(std::move(op));
  try_match(key, rank, dst);
  return id;
}

RequestId Engine::post_recv(int rank, int src, std::span<std::byte> data,
                            int tag) {
  check_rank(rank);
  check_rank(src);
  auto& clock = now_[static_cast<std::size_t>(rank)];
  clock += model_.per_message_overhead();

  const auto id = static_cast<RequestId>(requests_.size());
  requests_.push_back(Request{rank, false, 0.0, nullptr});

  const std::uint64_t key = channel_key(src, rank, tag);
  pending_recvs_[key].push_back(
      PendingOp{id, clock, nullptr, data.data(), data.size(), {}});
  try_match(key, src, rank);
  return id;
}

void Engine::try_match(std::uint64_t key, int src, int dst) {
  auto sit = pending_sends_.find(key);
  auto rit = pending_recvs_.find(key);
  while (sit != pending_sends_.end() && rit != pending_recvs_.end() &&
         !sit->second.empty() && !rit->second.empty()) {
    const PendingOp send = std::move(sit->second.front());
    const PendingOp recv = std::move(rit->second.front());
    sit->second.pop_front();
    rit->second.pop_front();
    complete_transfer(src, dst, send, recv);
  }
}

void Engine::complete_transfer(int src, int dst, const PendingOp& send,
                               const PendingOp& recv) {
  if (send.bytes != recv.bytes) {
    throw SimError("message size mismatch on channel " + std::to_string(src) +
                   "->" + std::to_string(dst) + ": send " +
                   std::to_string(send.bytes) + "B, recv " +
                   std::to_string(recv.bytes) + "B");
  }
  const double jitter =
      opts_.noise_sigma > 0.0 ? rng_.lognormal_jitter(opts_.noise_sigma) : 1.0;

  double start = std::max(send.post_time, recv.post_time);
  double send_finish = 0.0;
  double recv_finish = 0.0;
  if (model_.internode(src, dst)) {
    auto& tx = nic_tx_free_[static_cast<std::size_t>(topo_.node_of(src))];
    auto& rx = nic_rx_free_[static_cast<std::size_t>(topo_.node_of(dst))];
    start = std::max({start, tx, rx});
    const double occupancy = model_.wire_time(send.bytes) * jitter;
    tx = start + occupancy;
    rx = start + occupancy;
    // The sender's nonblocking op completes once the NIC has drained its
    // buffer; the receiver additionally waits out the wire latency.
    send_finish = start + occupancy;
    recv_finish = start + occupancy + model_.inter_alpha() * jitter;
  } else {
    const double duration =
        (model_.intra_alpha() +
         static_cast<double>(send.bytes) / model_.copy_bandwidth(send.bytes)) *
        jitter;
    send_finish = start + duration;
    recv_finish = start + duration;
  }

  if (opts_.copy_data && send.bytes > 0) {
    std::memcpy(recv.recv_data, send.send_data, send.bytes);
  }
  if (!requests_[send.req].done) {  // rendezvous sends finish on NIC drain
    request_finished(send.req, send_finish);
  }
  request_finished(recv.req, recv_finish);
}

void Engine::request_finished(RequestId id, double finish) {
  Request& req = requests_[id];
  req.done = true;
  req.finish = finish;
  if (WaitState* w = req.waiter) {
    w->ready = std::max(w->ready, finish);
    if (--w->remaining == 0) {
      schedule(w->ready, w->rank, w->ready, w->handle);
    }
  }
}

bool Engine::all_done(std::span<const RequestId> reqs) const {
  return std::all_of(reqs.begin(), reqs.end(),
                     [&](RequestId id) { return requests_[id].done; });
}

void Engine::complete_wait(int rank, std::span<const RequestId> reqs) {
  auto& clock = now_[static_cast<std::size_t>(rank)];
  for (const RequestId id : reqs) {
    clock = std::max(clock, requests_[id].finish);
  }
}

void Engine::suspend_wait(int rank, std::span<const RequestId> reqs,
                          std::coroutine_handle<> h) {
  waits_.push_back(WaitState{0, now_[static_cast<std::size_t>(rank)], rank, h});
  WaitState& w = waits_.back();
  for (const RequestId id : reqs) {
    Request& req = requests_[id];
    if (req.done) {
      w.ready = std::max(w.ready, req.finish);
    } else {
      if (req.waiter != nullptr) {
        throw SimError("request waited on twice");
      }
      req.waiter = &w;
      ++w.remaining;
    }
  }
  if (w.remaining == 0) {
    // Everything finished between the ready check and the suspension:
    // resume immediately at the fold of the finish times.
    schedule(w.ready, rank, w.ready, h);
  }
}

void Engine::local_compute(int rank, double seconds) {
  check_rank(rank);
  if (seconds < 0.0) throw SimError("negative compute interval");
  now_[static_cast<std::size_t>(rank)] += seconds;
}

void Engine::local_copy(int rank, std::uint64_t bytes,
                        std::uint64_t working_set) {
  check_rank(rank);
  now_[static_cast<std::size_t>(rank)] +=
      model_.memcpy_time(bytes, working_set);
}

void Engine::run(const std::function<RankTask(int)>& factory) {
  if (ran_) throw SimError("Engine::run called twice; construct a new Engine");
  ran_ = true;

  const int p = topo_.world_size();
  tasks_.reserve(static_cast<std::size_t>(p));
  for (int rank = 0; rank < p; ++rank) {
    tasks_.push_back(factory(rank));
    schedule(0.0, rank, 0.0, tasks_.back().handle());
  }

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    auto& clock = now_[static_cast<std::size_t>(ev.rank)];
    clock = std::max(clock, ev.clock);
    ev.handle.resume();
    if (ev.handle.done()) {
      ++completed_ranks_;
      auto typed = std::coroutine_handle<RankTask::promise_type>::from_address(
          ev.handle.address());
      if (typed.promise().exception) {
        std::rethrow_exception(typed.promise().exception);
      }
    }
  }

  if (completed_ranks_ != p) {
    std::string stuck;
    for (int rank = 0; rank < p; ++rank) {
      if (!tasks_[static_cast<std::size_t>(rank)].handle().done()) {
        if (!stuck.empty()) stuck += ", ";
        stuck += std::to_string(rank);
        if (stuck.size() > 60) {
          stuck += ", ...";
          break;
        }
      }
    }
    throw SimError("deadlock: ranks {" + stuck + "} never completed");
  }
}

double Engine::elapsed() const {
  return *std::max_element(now_.begin(), now_.end());
}

}  // namespace pml::sim
