// Discrete-event simulation engine for MPI-style rank programs.
//
// Each rank's program is a C++20 coroutine (`RankTask`). Communication calls
// suspend the coroutine; the engine matches sends with receives, computes
// transfer completion times from the NetworkModel, moves the actual payload
// bytes (so collective implementations are correctness-testable), and
// resumes coroutines in virtual-time order. The whole simulation is
// single-threaded and deterministic: identical seeds yield identical
// timings and identical event interleavings.
//
// Timing semantics:
//  - every posted send/recv charges the posting rank a CPU overhead `o`,
//  - an inter-node transfer occupies the source node's NIC TX port and the
//    destination node's NIC RX port for the wire time (bytes / NIC
//    bandwidth), which reproduces NIC congestion at high PPN,
//  - an intra-node transfer is a shared-memory copy at the L3-aware copy
//    bandwidth,
//  - each transfer duration is multiplied by deterministic log-normal
//    jitter (sigma configurable; 0 disables noise).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/network.hpp"

namespace pml::sim {

class Engine;

/// Coroutine type returned by every rank program.
class [[nodiscard]] RankTask {
 public:
  struct promise_type {
    RankTask get_return_object() {
      return RankTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }

    std::exception_ptr exception;
  };

  RankTask() = default;
  explicit RankTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  RankTask(RankTask&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  RankTask& operator=(RankTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  RankTask(const RankTask&) = delete;
  RankTask& operator=(const RankTask&) = delete;
  ~RankTask() { destroy(); }

  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }

 private:
  void destroy() noexcept {
    if (handle_) handle_.destroy();
    handle_ = nullptr;
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Identifier of an outstanding nonblocking operation.
using RequestId = std::uint32_t;

/// Engine configuration.
struct SimOptions {
  double noise_sigma = 0.0;   ///< log-normal jitter shape; 0 = deterministic
  std::uint64_t seed = 1;     ///< jitter stream seed
  bool copy_data = true;      ///< move real payload bytes on delivery
  /// Sends at or below this size complete eagerly at post time (the
  /// payload is buffered), as in real MPI eager/rendezvous protocols;
  /// larger sends complete when the NIC drains them.
  std::uint64_t eager_threshold = 16 * 1024;
};

/// Discrete-event engine. Construct, call run() with a program factory,
/// then read elapsed times. One Engine simulates one collective/application
/// invocation; construct a fresh Engine per invocation.
class Engine {
 public:
  Engine(const ClusterSpec& cluster, Topology topo, SimOptions opts = {});

  int world_size() const noexcept { return topo_.world_size(); }
  const Topology& topology() const noexcept { return topo_; }
  const NetworkModel& model() const noexcept { return model_; }

  /// Run `factory(rank)` as rank programs for all ranks to completion.
  /// Throws SimError on deadlock; rethrows the first rank exception.
  void run(const std::function<RankTask(int)>& factory);

  /// Latest rank clock after run(): the collective completion time (s).
  double elapsed() const;

  /// Per-rank completion times.
  const std::vector<double>& rank_clocks() const noexcept { return now_; }

  // --- Interface used by Comm awaitables (not for direct use) ---

  double now(int rank) const { return now_.at(static_cast<std::size_t>(rank)); }
  RequestId post_send(int rank, int dst, std::span<const std::byte> data, int tag);
  RequestId post_recv(int rank, int src, std::span<std::byte> data, int tag);
  bool all_done(std::span<const RequestId> reqs) const;
  /// All requests done: fold their finish times into the rank clock.
  void complete_wait(int rank, std::span<const RequestId> reqs);
  /// Not all done: park `h` until the last request finishes.
  void suspend_wait(int rank, std::span<const RequestId> reqs,
                    std::coroutine_handle<> h);
  /// Advance a rank's clock by a pure-compute interval.
  void local_compute(int rank, double seconds);
  /// Advance a rank's clock by a local copy of `bytes` with `working_set`.
  void local_copy(int rank, std::uint64_t bytes, std::uint64_t working_set);

 private:
  struct WaitState {
    int remaining = 0;
    double ready = 0.0;
    int rank = -1;
    std::coroutine_handle<> handle;
  };

  struct Request {
    int rank = -1;            // posting rank
    bool done = false;
    double finish = 0.0;
    WaitState* waiter = nullptr;
  };

  struct PendingOp {
    RequestId req = 0;
    double post_time = 0.0;
    const std::byte* send_data = nullptr;  // sends only
    std::byte* recv_data = nullptr;        // recvs only
    std::size_t bytes = 0;
    /// Eager sends buffer their payload at post time (the sender may reuse
    /// its buffer immediately, as real MPI eager protocols allow).
    std::vector<std::byte> buffered;
  };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> handle;
    int rank = -1;
    double clock = 0.0;  // rank clock to set on resume

    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  static std::uint64_t channel_key(int src, int dst, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  }

  void check_rank(int rank) const;
  void try_match(std::uint64_t key, int src, int dst);
  void complete_transfer(int src, int dst, const PendingOp& send,
                         const PendingOp& recv);
  void request_finished(RequestId id, double finish);
  void schedule(double time, int rank, double clock, std::coroutine_handle<> h);

  ClusterSpec cluster_;
  Topology topo_;
  NetworkModel model_;
  SimOptions opts_;
  Rng rng_;

  std::vector<double> now_;
  std::vector<double> nic_tx_free_;
  std::vector<double> nic_rx_free_;

  std::vector<Request> requests_;
  std::deque<WaitState> waits_;  // deque: stable addresses for Request::waiter
  std::unordered_map<std::uint64_t, std::deque<PendingOp>> pending_sends_;
  std::unordered_map<std::uint64_t, std::deque<PendingOp>> pending_recvs_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t next_seq_ = 0;
  int completed_ranks_ = 0;
  std::vector<RankTask> tasks_;
  bool ran_ = false;
};

}  // namespace pml::sim
