// Discrete-event simulation engine for MPI-style rank programs.
//
// Each rank's program is a C++20 coroutine (`RankTask`). Communication calls
// suspend the coroutine; the engine matches sends with receives, computes
// transfer completion times from the NetworkModel, moves the actual payload
// bytes (so collective implementations are correctness-testable), and
// resumes coroutines in virtual-time order. The whole simulation is
// single-threaded and deterministic: identical seeds yield identical
// timings and identical event interleavings.
//
// Timing semantics:
//  - every posted send/recv charges the posting rank a CPU overhead `o`,
//  - an inter-node transfer occupies the source node's NIC TX port and the
//    destination node's NIC RX port for the wire time (bytes / NIC
//    bandwidth), which reproduces NIC congestion at high PPN,
//  - an intra-node transfer is a shared-memory copy at the L3-aware copy
//    bandwidth,
//  - each transfer duration is multiplied by deterministic log-normal
//    jitter (sigma configurable; 0 disables noise).
//
// Hot-loop storage is allocation-free in steady state: pending operations
// live in a free-listed node pool indexed by a flat open-addressed channel
// table, events in a binary heap over a reusable vector, wait states in an
// index-linked vector, and coroutine frames in a per-thread size-bucketed
// pool. reset() rewinds an Engine for the next invocation while keeping
// every capacity, so sweep/benchmark loops reuse instead of reallocating.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace pml::sim {

class Engine;

namespace detail {

/// Thread-local size-bucketed pool for coroutine frames. Frames churn once
/// per rank per invocation; recycling them keeps the engine hot loop free of
/// heap traffic. Engine's constructor touches the pool so that it outlives
/// any thread-storage-duration object holding an Engine (thread_local
/// function-statics are destroyed in reverse construction order).
void* frame_alloc(std::size_t size);
void frame_free(void* p) noexcept;
void warm_frame_pool();

}  // namespace detail

/// Coroutine type returned by every rank program.
///
/// RankTasks compose: a schedule may `co_await` another RankTask (the
/// hierarchical collectives run a flat schedule per tier this way). The
/// child starts on the awaiting rank's execution thread via symmetric
/// transfer, suspends into the engine like any rank program, and resumes
/// its parent — again by symmetric transfer — when it completes. Child
/// frames come from the same pooled allocator as top-level frames, so the
/// timing-only steady state stays allocation-free.
class [[nodiscard]] RankTask {
 public:
  struct promise_type {
    RankTask get_return_object() {
      return RankTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    /// Completion transfers control to the awaiting parent frame when there
    /// is one; a top-level frame instead fires the engine's completion hook
    /// (rank accounting + exception capture). Always suspends, so the frame
    /// stays alive for the owning RankTask to destroy.
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        promise_type& p = h.promise();
        if (p.continuation) return p.continuation;
        if (p.on_complete) p.on_complete(p.on_complete_arg, p);
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }

    static void* operator new(std::size_t size) {
      return detail::frame_alloc(size);
    }
    static void operator delete(void* p) noexcept { detail::frame_free(p); }

    std::exception_ptr exception;
    std::coroutine_handle<> continuation;  ///< awaiting parent frame, if any
    void (*on_complete)(void*, promise_type&) = nullptr;  ///< top-level hook
    void* on_complete_arg = nullptr;
  };

  RankTask() = default;
  explicit RankTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  RankTask(RankTask&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  RankTask& operator=(RankTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  RankTask(const RankTask&) = delete;
  RankTask& operator=(const RankTask&) = delete;
  ~RankTask() { destroy(); }

  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }

  /// Awaiting a RankTask runs it as a child of the current coroutine: the
  /// child is started immediately (symmetric transfer), the parent resumes
  /// when it co_returns, and a child exception rethrows at the co_await.
  /// The awaited RankTask must outlive the co_await expression — awaiting
  /// the temporary returned by a schedule factory satisfies this, since the
  /// temporary lives to the end of the full-expression.
  struct Awaiter {
    std::coroutine_handle<promise_type> handle;

    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> parent) noexcept {
      handle.promise().continuation = parent;
      return handle;
    }
    void await_resume() const {
      if (handle && handle.promise().exception) {
        std::rethrow_exception(handle.promise().exception);
      }
    }
  };
  Awaiter operator co_await() const noexcept { return Awaiter{handle_}; }

 private:
  void destroy() noexcept {
    if (handle_) handle_.destroy();
    handle_ = nullptr;
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Identifier of an outstanding nonblocking operation.
using RequestId = std::uint32_t;

/// How an invocation treats payload bytes.
enum class PayloadMode {
  /// Move and verify real payload bytes on delivery (the default):
  /// collective implementations are correctness-testable.
  kVerify,
  /// Timing-only fast path: pending operations carry sizes only, the
  /// eager bounce-buffer copy is skipped, and collective implementations
  /// skip their local payload shuffling — the virtual-time result is
  /// bit-identical either way, because every data movement charges its
  /// time unconditionally.
  kTimingOnly,
};

/// Engine configuration.
struct SimOptions {
  double noise_sigma = 0.0;   ///< log-normal jitter shape; 0 = deterministic
  std::uint64_t seed = 1;     ///< jitter stream seed
  PayloadMode payload = PayloadMode::kVerify;
  /// Sends at or below this size complete eagerly at post time (the
  /// payload is buffered), as in real MPI eager/rendezvous protocols;
  /// larger sends complete when the NIC drains them.
  std::uint64_t eager_threshold = 16 * 1024;
  /// Deterministic fault injection (sim/fault.hpp). An empty plan (the
  /// default) is bit-identical to the pre-fault engine and costs one
  /// predictable branch on the hot paths.
  FaultPlan faults{};
  /// Intra-node shared-memory hierarchy (sim/network.hpp). The disabled
  /// default is bit-identical to the flat engine.
  HierarchySpec hierarchy{};

  bool payload_enabled() const noexcept {
    return payload == PayloadMode::kVerify;
  }
};

/// Options for one collective invocation through coll::run_collective.
/// Superset of SimOptions: adds the trace sink consumed by obs. Field
/// defaults are documented centrally in docs/API.md.
struct RunOptions {
  PayloadMode payload = PayloadMode::kVerify;
  double noise_sigma = 0.0;   ///< log-normal jitter shape; 0 = deterministic
  std::uint64_t seed = 1;     ///< jitter stream seed
  std::uint64_t eager_threshold = 16 * 1024;
  obs::Sink trace_sink{};     ///< empty = no trace capture/export
  FaultPlan faults{};         ///< deterministic fault injection; empty = none
  HierarchySpec hierarchy{};  ///< intra-node hierarchy; disabled = flat

  SimOptions sim_options() const {
    return SimOptions{noise_sigma, seed,   payload,
                      eager_threshold, faults, hierarchy};
  }
};

/// Non-owning reference to a callable `RankTask(int rank)` factory. Avoids
/// materialising a std::function (and its possible heap allocation) per
/// run() call; the referenced callable must outlive the run() invocation.
class RankFactoryRef {
 public:
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, RankFactoryRef>)
  RankFactoryRef(const F& f)  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* object, int rank) {
          return (*static_cast<const F*>(object))(rank);
        }) {}

  RankTask operator()(int rank) const { return call_(object_, rank); }

 private:
  void* object_;
  RankTask (*call_)(void*, int);
};

/// Discrete-event engine. Construct (or reset()) per collective/application
/// invocation, call run() with a program factory, then read elapsed times.
class Engine {
 public:
  Engine(const ClusterSpec& cluster, Topology topo, SimOptions opts = {});

  /// Rewind for the next invocation: same semantics as constructing a fresh
  /// Engine(cluster, topo, opts), but every internal buffer keeps its
  /// capacity. Steady-state reuse performs no heap allocations.
  void reset(const ClusterSpec& cluster, Topology topo, SimOptions opts = {});

  /// Capacity hint from the caller's known message count: pre-sizes request,
  /// wait, and event storage so the first run() grows no vectors.
  void reserve(std::size_t expected_requests);

  int world_size() const noexcept { return topo_.world_size(); }
  const Topology& topology() const noexcept { return topo_; }
  const NetworkModel& model() const noexcept { return model_; }
  const SimOptions& options() const noexcept { return opts_; }

  /// Run `factory(rank)` as rank programs for all ranks to completion.
  /// Throws SimError on deadlock; rethrows the first rank exception.
  void run(RankFactoryRef factory);

  /// Latest rank clock after run(): the collective completion time (s).
  double elapsed() const;

  /// Per-rank completion times.
  const std::vector<double>& rank_clocks() const noexcept { return now_; }

  /// Requests posted by the last run() (one per isend/irecv).
  std::size_t posted_requests() const noexcept { return requests_.size(); }

  /// Per-rank reusable staging buffer for collective schedules (two slots
  /// per rank). Capacity persists across reset(), so a steady-state
  /// schedule that stages through scratch performs no heap allocations.
  /// Contents are unspecified on entry.
  std::span<std::byte> scratch(int rank, std::size_t slot, std::size_t bytes);

  // --- Introspection for tests/benchmarks (capacity regression guards) ---

  /// Slots in the open-addressed channel table (power of two, high-water).
  std::size_t channel_table_slots() const noexcept { return channels_.size(); }
  /// Distinct (src, dst, tag) channels touched since the last reset.
  std::size_t channels_in_use() const noexcept { return channel_count_; }
  /// Pending-op nodes ever created (high-water; drained ops are recycled).
  std::size_t pending_pool_capacity() const noexcept { return pool_.size(); }
  /// Events popped by the last run() (always maintained; obs-independent).
  std::uint64_t events_processed() const noexcept { return stat_events_; }
  /// Channel-table probe steps since the last reset.
  std::uint64_t channel_probes() const noexcept { return stat_probes_; }
  /// Channel-table growth episodes since the last reset.
  std::uint64_t channel_resizes() const noexcept { return stat_resizes_; }

  // --- Fault-injection effect counts since the last reset (all zero when
  // the plan is empty); also flushed to `sim.faults.*` obs counters at the
  // end of run() when collection is enabled.

  /// CPU-side charges scaled up for a straggler rank.
  std::uint64_t fault_straggler_charges() const noexcept {
    return stat_fault_straggler_;
  }
  /// Inter-node transfers that ran degraded (slower wire or added latency).
  std::uint64_t fault_degraded_transfers() const noexcept {
    return stat_fault_degraded_;
  }
  /// Transfers stalled past the end of a NIC flap window.
  std::uint64_t fault_flap_stalls() const noexcept {
    return stat_fault_stalls_;
  }
  /// Delivered payloads with an injected bit flip (PayloadMode::kVerify).
  std::uint64_t fault_corrupted_payloads() const noexcept {
    return stat_fault_corrupted_;
  }

  // --- Interface used by Comm awaitables (not for direct use) ---

  double now(int rank) const { return now_.at(static_cast<std::size_t>(rank)); }
  RequestId post_send(int rank, int dst, std::span<const std::byte> data, int tag);
  RequestId post_recv(int rank, int src, std::span<std::byte> data, int tag);
  bool all_done(std::span<const RequestId> reqs) const;
  /// All requests done: fold their finish times into the rank clock.
  void complete_wait(int rank, std::span<const RequestId> reqs);
  /// Not all done: park `h` until the last request finishes.
  void suspend_wait(int rank, std::span<const RequestId> reqs,
                    std::coroutine_handle<> h);
  /// Advance a rank's clock by a pure-compute interval.
  void local_compute(int rank, double seconds);
  /// Advance a rank's clock by a local copy of `bytes` with `working_set`.
  void local_copy(int rank, std::uint64_t bytes, std::uint64_t working_set);

 private:
  struct WaitState {
    int remaining = 0;
    double ready = 0.0;
    int rank = -1;
    std::coroutine_handle<> handle;
  };

  struct Request {
    int rank = -1;             // posting rank
    bool done = false;
    double finish = 0.0;
    std::int32_t waiter = -1;  // index into waits_, -1 = none
  };

  /// Free-listed pending-operation node. `next` links the node into either
  /// a channel's FIFO queue or the pool free list.
  struct PendingOp {
    RequestId req = 0;
    double post_time = 0.0;
    const std::byte* send_data = nullptr;  // sends only
    std::byte* recv_data = nullptr;        // recvs only
    std::size_t bytes = 0;
    std::int32_t next = -1;
    /// Eager sends buffer their payload at post time (the sender may reuse
    /// its buffer immediately, as real MPI eager protocols allow). Unused —
    /// and unallocated — on the PayloadMode::kTimingOnly path; recycled
    /// nodes keep their capacity.
    std::vector<std::byte> buffered;
  };

  /// One (src, dst, tag) match point: FIFO queues of pending sends and
  /// recvs as head/tail indices into the node pool. Lives in a flat
  /// open-addressed table (linear probing, power-of-two sizing).
  struct Channel {
    std::uint64_t key = kEmptyKey;
    std::int32_t send_head = -1;
    std::int32_t send_tail = -1;
    std::int32_t recv_head = -1;
    std::int32_t recv_tail = -1;
  };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> handle;
    int rank = -1;
    double clock = 0.0;  // rank clock to set on resume

    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  /// A resolved NIC flap window, sorted by (start, node) so a forward scan
  /// in flap_stall() visits candidate windows in stall order.
  struct FlapWindow {
    double start = 0.0;
    double end = 0.0;
    int node = -1;
  };

  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  static constexpr int kMaxTag = (1 << 16) - 1;
  static constexpr int kMaxChannelRank = (1 << 24) - 1;

  /// Pack (src, dst, tag) into the 24/24/16-bit channel key. Throws
  /// SimError when a component exceeds its field (a silent wrap would alias
  /// another channel and corrupt matching).
  static std::uint64_t channel_key(int src, int dst, int tag);

  void check_rank(int rank) const;
  Channel& channel_for(std::uint64_t key);
  void grow_channels(std::size_t capacity);
  std::size_t probe(std::uint64_t key) const noexcept;
  std::int32_t acquire_node();
  void release_node(std::int32_t index) noexcept;
  void try_match(Channel& channel, int src, int dst);
  void complete_transfer(int src, int dst, const PendingOp& send,
                         const PendingOp& recv);
  void request_finished(RequestId id, double finish);
  void schedule(double time, int rank, double clock, std::coroutine_handle<> h);

  /// Resolve opts_.faults into the flat per-rank/per-node tables below.
  /// Called from the constructor and reset(); validates the plan (throws
  /// ConfigError) only when it is non-empty.
  void resolve_faults();
  /// Scale a CPU-side charge by the rank's straggler factor. Only called
  /// when faults_active_.
  double straggle(int rank, double seconds) noexcept;
  /// Push an inter-node transfer start time past every flap window covering
  /// it on either endpoint's node. Only called when faults_active_.
  double flap_stall(std::size_t src_node, std::size_t dst_node,
                    double start) noexcept;

  ClusterSpec cluster_;
  Topology topo_;
  NetworkModel model_;
  SimOptions opts_;
  Rng rng_;

  std::vector<double> now_;
  std::vector<double> nic_tx_free_;
  std::vector<double> nic_rx_free_;

  std::vector<Request> requests_;
  std::vector<WaitState> waits_;  // Request::waiter holds indices: stable
                                  // across growth, reusable across reset()
  std::vector<Channel> channels_;
  std::size_t channel_count_ = 0;
  std::vector<PendingOp> pool_;
  std::int32_t pool_free_ = -1;

  std::vector<Event> events_;  // binary min-heap (std::push_heap/pop_heap)
  std::vector<std::vector<std::byte>> scratch_;  // rank * 2 + slot; survives reset()
  std::uint64_t next_seq_ = 0;
  // Cheap always-on statistics (plain increments on members the hot loop
  // already owns); flushed to obs counters at the end of run() when
  // collection is enabled.
  std::uint64_t stat_events_ = 0;
  mutable std::uint64_t stat_probes_ = 0;  // probe() is logically const
  std::uint64_t stat_resizes_ = 0;
  // Fault-injection state, resolved from opts_.faults by resolve_faults().
  // With an empty plan faults_active_ is false and none of the tables are
  // read; every hot-path hook is behind that one branch.
  bool faults_active_ = false;
  std::vector<double> straggler_scale_;   // per rank, 1.0 = nominal
  std::vector<double> node_bw_scale_;     // per node, fraction of NIC bw
  std::vector<double> node_extra_alpha_;  // per node, added latency (s)
  std::vector<FlapWindow> flap_windows_;  // sorted by (start, node)
  std::uint64_t fault_transfer_seq_ = 0;  // corruption-draw ordinal
  std::uint64_t stat_fault_straggler_ = 0;
  std::uint64_t stat_fault_degraded_ = 0;
  std::uint64_t stat_fault_stalls_ = 0;
  std::uint64_t stat_fault_corrupted_ = 0;
  int completed_ranks_ = 0;
  /// First exception captured by a completed top-level task (set by the
  /// FinalAwaiter completion hook, rethrown by the run() event loop).
  std::exception_ptr pending_exception_;
  std::vector<RankTask> tasks_;
  bool ran_ = false;
};

}  // namespace pml::sim
