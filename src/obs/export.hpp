// Exporters for pml::obs snapshots: chrome://tracing JSON and a flat
// metrics.json summary, plus the ScopedCapture RAII helper that turns a
// Sink (from an options struct or the CLI) into files on scope exit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/obs.hpp"

namespace pml::obs {

/// Per-span-name duration summary. Percentiles use the nearest-rank
/// method on the sorted durations.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
};

/// Aggregate a snapshot's spans by name, sorted by name.
std::vector<SpanStats> span_stats(const Snapshot& snap);

/// chrome://tracing "trace event" document: one complete ("ph":"X") event
/// per span, timestamps/durations in microseconds.
Json chrome_trace_json(const Snapshot& snap);

/// Flat summary document: {"format":"pml-metrics-v1", "counters":{...},
/// "gauges":{...}, "spans":{name: {count,total_ns,min_ns,max_ns,p50_ns,
/// p95_ns}}}. Consumed by `pml stats` and tools/bench_compare.py.
Json metrics_json(const Snapshot& snap);

/// Snapshot and write to `path`; throws IoError on write failure.
void write_chrome_trace(const std::string& path);
void write_metrics(const std::string& path);

/// RAII capture: if the sink names any output, enables collection for the
/// scope and writes the requested files on destruction (restoring the
/// previous enabled state). With an empty sink it does nothing at all, so
/// instrumented entry points can hold one unconditionally.
class ScopedCapture {
 public:
  explicit ScopedCapture(Sink sink);
  ~ScopedCapture();
  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

 private:
  Sink sink_;
  bool active_ = false;
  bool was_enabled_ = false;
};

}  // namespace pml::obs
