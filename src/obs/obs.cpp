#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <mutex>
#include <string_view>
#include <unordered_map>

namespace pml::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// One recorded span interval. Stores the interned name pointer; names
/// have static storage duration (enforced by Span's contract) or live in
/// the registry's name store, so the pointer never dangles.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

struct GaugeCell {
  std::int64_t value = 0;
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::uint64_t last_set_ns = 0;  ///< picks the freshest `value` in merges
  bool set = false;
};

struct ThreadState;

/// Process-wide registry: name interning plus the set of live per-thread
/// buffers and the folded-in data of exited threads. Function-local
/// static, constructed before any ThreadState (whose constructor calls
/// registry()), hence destroyed after every ThreadState on the main
/// thread's exit path.
struct Registry {
  std::mutex mutex;
  std::deque<std::string> name_store;  // stable addresses for id -> name
  std::unordered_map<std::string_view, std::uint32_t> ids;
  std::vector<const char*> names;  // id -> interned name
  std::vector<ThreadState*> threads;
  std::uint32_t next_tid = 0;
  // Data folded in from exited threads.
  std::vector<std::uint64_t> retired_counters;
  std::vector<GaugeCell> retired_gauges;
  std::vector<SpanSample> retired_spans;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Per-thread recording buffers. The mutex exists only for snapshot()
/// and the thread's own exit merge; recording threads take it
/// uncontended. Vectors are indexed by interned id and grown lazily.
struct ThreadState {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<std::uint64_t> counters;
  std::vector<GaugeCell> gauges;
  std::vector<SpanEvent> spans;

  ThreadState() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    tid = r.next_tid++;
    r.threads.push_back(this);
  }

  ~ThreadState() {
    Registry& r = registry();
    std::lock_guard<std::mutex> reg_lock(r.mutex);
    std::lock_guard<std::mutex> self_lock(mutex);
    if (r.retired_counters.size() < counters.size()) {
      r.retired_counters.resize(counters.size(), 0);
    }
    for (std::size_t i = 0; i < counters.size(); ++i) {
      r.retired_counters[i] += counters[i];
    }
    if (r.retired_gauges.size() < gauges.size()) {
      r.retired_gauges.resize(gauges.size());
    }
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      const GaugeCell& cell = gauges[i];
      if (!cell.set) continue;
      GaugeCell& out = r.retired_gauges[i];
      out.max = out.set ? std::max(out.max, cell.max) : cell.max;
      if (!out.set || cell.last_set_ns >= out.last_set_ns) {
        out.value = cell.value;
        out.last_set_ns = cell.last_set_ns;
      }
      out.set = true;
    }
    for (const SpanEvent& e : spans) {
      r.retired_spans.push_back(SpanSample{e.name, e.start_ns, e.dur_ns, tid});
    }
    r.threads.erase(std::find(r.threads.begin(), r.threads.end(), this));
  }
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

std::uint32_t intern(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.ids.find(std::string_view(name));
  if (it != r.ids.end()) return it->second;
  r.name_store.emplace_back(name);  // own the bytes: callers may pass
                                    // short-lived strings to ctors
  const char* stored = r.name_store.back().c_str();
  const auto id = static_cast<std::uint32_t>(r.names.size());
  r.names.push_back(stored);
  r.ids.emplace(std::string_view(stored), id);
  return id;
}

}  // namespace

bool set_enabled(bool on) noexcept {
  return detail::g_enabled.exchange(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Counter::Counter(const char* name) : id_(intern(name)) {}

void Counter::add(std::uint64_t delta) noexcept {
  if (!enabled() || delta == 0) return;
  // Instrumentation is best-effort: swallow allocation failure rather
  // than propagate an exception into an instrumented noexcept path.
  try {
    ThreadState& ts = thread_state();
    std::lock_guard<std::mutex> lock(ts.mutex);
    if (ts.counters.size() <= id_) ts.counters.resize(id_ + 1, 0);
    ts.counters[id_] += delta;
  } catch (...) {
  }
}

Gauge::Gauge(const char* name) : id_(intern(name)) {}

void Gauge::set(std::int64_t value) noexcept {
  if (!enabled()) return;
  try {
    ThreadState& ts = thread_state();
    std::lock_guard<std::mutex> lock(ts.mutex);
    if (ts.gauges.size() <= id_) ts.gauges.resize(id_ + 1);
    GaugeCell& cell = ts.gauges[id_];
    cell.value = value;
    cell.max = cell.set ? std::max(cell.max, value) : value;
    cell.last_set_ns = now_ns();
    cell.set = true;
  } catch (...) {
  }
}

void Span::finish() noexcept {
  const std::uint64_t end_ns = now_ns();
  try {
    ThreadState& ts = thread_state();
    std::lock_guard<std::mutex> lock(ts.mutex);
    ts.spans.push_back(SpanEvent{name_, start_ns_, end_ns - start_ns_});
  } catch (...) {
  }
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);

  std::vector<std::uint64_t> counters = r.retired_counters;
  std::vector<GaugeCell> gauges = r.retired_gauges;
  Snapshot snap;
  snap.spans = r.retired_spans;

  for (ThreadState* ts : r.threads) {
    std::lock_guard<std::mutex> ts_lock(ts->mutex);
    if (counters.size() < ts->counters.size()) {
      counters.resize(ts->counters.size(), 0);
    }
    for (std::size_t i = 0; i < ts->counters.size(); ++i) {
      counters[i] += ts->counters[i];
    }
    if (gauges.size() < ts->gauges.size()) gauges.resize(ts->gauges.size());
    for (std::size_t i = 0; i < ts->gauges.size(); ++i) {
      const GaugeCell& cell = ts->gauges[i];
      if (!cell.set) continue;
      GaugeCell& out = gauges[i];
      out.max = out.set ? std::max(out.max, cell.max) : cell.max;
      if (!out.set || cell.last_set_ns >= out.last_set_ns) {
        out.value = cell.value;
        out.last_set_ns = cell.last_set_ns;
      }
      out.set = true;
    }
    for (const SpanEvent& e : ts->spans) {
      snap.spans.push_back(SpanSample{e.name, e.start_ns, e.dur_ns, ts->tid});
    }
  }

  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (counters[i] == 0) continue;
    snap.counters.push_back(CounterSample{r.names[i], counters[i]});
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (!gauges[i].set) continue;
    snap.gauges.push_back(GaugeSample{r.names[i], gauges[i].value, gauges[i].max});
  }

  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const GaugeSample& a, const GaugeSample& b) {
              return a.name < b.name;
            });
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanSample& a, const SpanSample& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return snap;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (ThreadState* ts : r.threads) {
    std::lock_guard<std::mutex> ts_lock(ts->mutex);
    std::fill(ts->counters.begin(), ts->counters.end(), 0);
    std::fill(ts->gauges.begin(), ts->gauges.end(), GaugeCell{});
    ts->spans.clear();  // clear() keeps capacity: warmed steady state
                        // stays allocation-free
  }
  std::fill(r.retired_counters.begin(), r.retired_counters.end(), 0);
  std::fill(r.retired_gauges.begin(), r.retired_gauges.end(), GaugeCell{});
  r.retired_spans.clear();
}

}  // namespace pml::obs
