#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/strings.hpp"

namespace pml::obs {

namespace {

std::uint64_t nearest_rank(const std::vector<std::uint64_t>& sorted,
                           double quantile) {
  // Nearest-rank percentile: the smallest element with cumulative
  // frequency >= quantile. sorted is non-empty here.
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(quantile * static_cast<double>(n) + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

std::vector<SpanStats> span_stats(const Snapshot& snap) {
  std::map<std::string, std::vector<std::uint64_t>> durations;
  for (const SpanSample& s : snap.spans) durations[s.name].push_back(s.dur_ns);

  std::vector<SpanStats> stats;
  stats.reserve(durations.size());
  for (auto& [name, durs] : durations) {
    std::sort(durs.begin(), durs.end());
    SpanStats st;
    st.name = name;
    st.count = durs.size();
    for (const std::uint64_t d : durs) st.total_ns += d;
    st.min_ns = durs.front();
    st.max_ns = durs.back();
    st.p50_ns = nearest_rank(durs, 0.50);
    st.p95_ns = nearest_rank(durs, 0.95);
    stats.push_back(std::move(st));
  }
  return stats;  // std::map iteration: already sorted by name
}

Json chrome_trace_json(const Snapshot& snap) {
  Json events = Json::array();
  for (const SpanSample& s : snap.spans) {
    Json e = Json::object();
    e["name"] = s.name;
    e["cat"] = "pml";
    e["ph"] = "X";
    e["pid"] = 1;
    e["tid"] = s.tid;
    e["ts"] = static_cast<double>(s.start_ns) / 1000.0;   // microseconds
    e["dur"] = static_cast<double>(s.dur_ns) / 1000.0;
    events.push_back(std::move(e));
  }

  Json counters = Json::object();
  for (const CounterSample& c : snap.counters) counters[c.name] = c.value;
  Json gauges = Json::object();
  for (const GaugeSample& g : snap.gauges) {
    Json cell = Json::object();
    cell["value"] = g.value;
    cell["max"] = g.max;
    gauges[g.name] = std::move(cell);
  }

  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  Json other = Json::object();
  other["counters"] = std::move(counters);
  other["gauges"] = std::move(gauges);
  doc["otherData"] = std::move(other);
  return doc;
}

Json metrics_json(const Snapshot& snap) {
  Json doc = Json::object();
  doc["format"] = "pml-metrics-v1";

  Json counters = Json::object();
  for (const CounterSample& c : snap.counters) counters[c.name] = c.value;
  doc["counters"] = std::move(counters);

  Json gauges = Json::object();
  for (const GaugeSample& g : snap.gauges) {
    Json cell = Json::object();
    cell["value"] = g.value;
    cell["max"] = g.max;
    gauges[g.name] = std::move(cell);
  }
  doc["gauges"] = std::move(gauges);

  Json spans = Json::object();
  for (const SpanStats& st : span_stats(snap)) {
    Json cell = Json::object();
    cell["count"] = st.count;
    cell["total_ns"] = st.total_ns;
    cell["min_ns"] = st.min_ns;
    cell["max_ns"] = st.max_ns;
    cell["p50_ns"] = st.p50_ns;
    cell["p95_ns"] = st.p95_ns;
    spans[st.name] = std::move(cell);
  }
  doc["spans"] = std::move(spans);
  return doc;
}

void write_chrome_trace(const std::string& path) {
  write_file(path, chrome_trace_json(snapshot()).dump(2) + "\n");
}

void write_metrics(const std::string& path) {
  write_file(path, metrics_json(snapshot()).dump(2) + "\n");
}

ScopedCapture::ScopedCapture(Sink sink) : sink_(std::move(sink)) {
  if (sink_.empty()) return;
  active_ = true;
  was_enabled_ = set_enabled(true);
}

ScopedCapture::~ScopedCapture() {
  if (!active_) return;
  // A destructor must not throw; report export failures to stderr.
  try {
    if (!sink_.chrome_trace.empty()) write_chrome_trace(sink_.chrome_trace);
    if (!sink_.metrics.empty()) write_metrics(sink_.metrics);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: trace export failed: %s\n", e.what());
  }
  set_enabled(was_enabled_);
}

}  // namespace pml::obs
