// pml::obs — zero-dependency observability: counters, gauges, and scoped
// trace spans, aggregated across threads (including common/parallel pool
// workers) into a process-wide snapshot.
//
// Design constraints, in order:
//  1. Near-zero cost when disabled. Collection is off by default; every
//     hot-path entry point is a relaxed atomic load and a predictable
//     branch. Span construction with tracing off touches no clock, takes
//     no lock, and allocates nothing.
//  2. No perturbation of results. Instrumented code must produce
//     bit-identical outputs (virtual times, trained model bytes) whether
//     tracing is on or off — instrumentation only observes, it never
//     feeds back into RNG streams, iteration order, or scheduling.
//  3. Thread safety without hot-path contention. Each thread records into
//     its own buffer behind its own (uncontended) mutex; the global
//     registry is touched only at registration, snapshot, and thread
//     exit. Buffers from exited threads are folded into the registry, so
//     pool workers that die before export are still counted.
//
// Usage:
//
//   static obs::Counter cells("dataset.cells");
//   void build_cell(...) {
//     obs::Span span("dataset.cell");   // RAII: records [ctor, dtor)
//     ...
//     cells.increment();
//   }
//
//   obs::set_enabled(true);
//   ... run workload ...
//   obs::Snapshot snap = obs::snapshot();
//
// Exporters (chrome://tracing JSON, metrics.json summaries) live in
// obs/export.hpp so that headers which only need the Sink type (options
// structs across sim/ and core/) stay light.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pml::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when collection is on. Relaxed load: the flag gates observation
/// only, it never orders data between threads.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turn collection on or off; returns the previous state. Existing
/// recorded data is kept (call reset() to drop it).
bool set_enabled(bool on) noexcept;

/// Nanoseconds since the process-wide trace epoch (first use).
std::uint64_t now_ns() noexcept;

/// Monotonic event counter. Construction interns the name (one global
/// lock, once — declare instances `static` at the recording site);
/// add() touches only the calling thread's cell.
class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t delta) noexcept;
  void increment() noexcept { add(1); }

 private:
  std::uint32_t id_;
};

/// Last-value-plus-maximum gauge (the aggregate keeps both the most
/// recently set value and the high-water mark across all threads).
class Gauge {
 public:
  explicit Gauge(const char* name);
  void set(std::int64_t value) noexcept;

 private:
  std::uint32_t id_;
};

/// RAII scoped timer. Records a [construction, destruction) interval into
/// the calling thread's trace buffer when collection is enabled at
/// construction time. `name` must have static storage duration (string
/// literals only): the buffer stores the pointer, not a copy.
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(enabled() ? name : nullptr), start_ns_(name_ ? now_ns() : 0) {}
  ~Span() {
    if (name_ != nullptr) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void finish() noexcept;

  const char* name_;
  std::uint64_t start_ns_;
};

/// Where a run should export its trace data. Empty paths mean "do not
/// export"; an all-empty sink disables capture entirely. Carried by the
/// options structs (sim::RunOptions, core::CompileOptions) and consumed
/// by obs::ScopedCapture in obs/export.hpp.
struct Sink {
  std::string chrome_trace;  ///< chrome://tracing JSON output path
  std::string metrics;       ///< metrics.json summary output path
  bool empty() const noexcept { return chrome_trace.empty() && metrics.empty(); }
};

// --- Snapshots -------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;  ///< most recently set value (any thread)
  std::int64_t max = 0;    ///< high-water mark across all threads
};

struct SpanSample {
  std::string name;
  std::uint64_t start_ns = 0;  ///< relative to the trace epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< dense per-thread id (registration order)
};

/// Point-in-time merge of every thread's data (live and exited).
/// Counters and gauges are sorted by name; spans by (start_ns, tid).
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<SpanSample> spans;
};

Snapshot snapshot();

/// Drop all recorded data (counters, gauges, span buffers) while keeping
/// every buffer's capacity, so a warmed-up enabled steady state records
/// without allocating. Interned names survive.
void reset();

}  // namespace pml::obs
