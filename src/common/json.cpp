#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pml {

Json& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  entries_.emplace_back(key, Json());
  return entries_.back().second;
}

const Json& JsonObject::at(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  throw JsonError("missing key: " + key);
}

bool JsonObject::contains(const std::string& key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  // 2^63 is exactly representable as a double; the valid range is
  // [-2^63, 2^63) because the cast truncates toward zero.
  if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
    throw JsonError("number out of integer range");
  }
  return static_cast<std::int64_t>(d);
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) throw JsonError("cannot serialize non-finite number");
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_value(const Json& v, std::string& out, int indent, int depth);

void dump_array(const Json::Array& a, std::string& out, int indent, int depth) {
  if (a.empty()) {
    out += "[]";
    return;
  }
  out += '[';
  bool first = true;
  for (const auto& item : a) {
    if (!first) out += ',';
    first = false;
    indent_to(out, indent, depth + 1);
    dump_value(item, out, indent, depth + 1);
  }
  indent_to(out, indent, depth);
  out += ']';
}

void dump_object(const JsonObject& o, std::string& out, int indent, int depth) {
  if (o.empty()) {
    out += "{}";
    return;
  }
  out += '{';
  bool first = true;
  for (const auto& [key, value] : o) {
    if (!first) out += ',';
    first = false;
    indent_to(out, indent, depth + 1);
    dump_string(key, out);
    out += indent < 0 ? ":" : ": ";
    dump_value(value, out, indent, depth + 1);
  }
  indent_to(out, indent, depth);
  out += '}';
}

void dump_value(const Json& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    dump_array(v.as_array(), out, indent, depth);
  } else {
    dump_object(v.as_object(), out, indent, depth);
  }
}

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError(msg + " at offset " + std::to_string(pos_));
  }

  void skip_ws() noexcept {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  /// The parser recurses once per nesting level, so adversarial input
  /// ("[[[[..." from a network peer) must hit a JsonError long before it
  /// can exhaust the thread's stack. 192 levels is far beyond any
  /// artifact or protocol document this library exchanges.
  static constexpr int kMaxDepth = 192;

  Json parse_value() {
    if (depth_ >= kMaxDepth) fail("nesting deeper than 192 levels");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    --depth_;
    return Json(std::move(obj));
  }

  Json parse_array() {
    ++depth_;
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    --depth_;
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid hex digit in \\u escape");
            }
            // Encode BMP code point as UTF-8 (surrogate pairs not needed for
            // the artefacts this library writes).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || first == last) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace pml
