// Versioned, checksummed JSON artifact envelopes and retrying IO.
//
// Every JSON artifact the framework persists (model bundles, tuning tables,
// cache entries) is wrapped in a small "pml-artifact-v1" envelope:
//
//   {
//     "format":   "pml-artifact-v1",
//     "kind":     "model" | "tuning-table" | ...,
//     "schema":   1,
//     "checksum": "fnv1a64:<16 hex digits>",   // over payload.dump()
//     "payload":  { ...the artifact document... }
//   }
//
// Writes are atomic (temp file + fsync + rename), so readers never observe
// a torn file; loads validate kind, schema version, and content checksum,
// so a flipped byte or a truncation is detected instead of silently
// consumed. Pre-envelope ("legacy") documents remain loadable where the
// caller opts in, and `pml doctor` classifies any on-disk artifact without
// throwing. RetryPolicy/with_retry implement the bounded-exponential-
// backoff rung of the online stage's degradation ladder (docs/API.md,
// "Fault injection & degradation policy").
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/json.hpp"

namespace pml {

inline constexpr std::string_view kArtifactFormat = "pml-artifact-v1";

/// FNV-1a 64-bit hash of a byte string.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Canonical checksum string for an artifact payload: "fnv1a64:" plus 16
/// hex digits over the payload's compact dump(). Json objects preserve
/// insertion order, so a parse -> dump round-trip reproduces the bytes and
/// the checksum can be re-validated after loading.
std::string payload_checksum(const Json& payload);

/// Wrap `payload` in a pml-artifact-v1 envelope and write it atomically
/// (write_file_atomic). Throws IoError on filesystem failure.
void write_artifact(const std::string& path, const Json& payload,
                    std::string_view kind, int schema_version = 1);

/// True if `doc` carries the pml-artifact-v1 envelope format key.
bool is_artifact_envelope(const Json& doc) noexcept;

/// Validate an envelope's kind, schema version, and checksum, returning its
/// payload; throws JsonError on any mismatch (a checksum mismatch means the
/// content is corrupt). A document without the envelope is returned
/// unchanged when `allow_legacy` (pre-envelope artifacts stay loadable) and
/// rejected otherwise.
Json artifact_payload(const Json& doc, std::string_view kind,
                      int schema_version = 1, bool allow_legacy = true);

/// `pml doctor` verdict for one on-disk artifact.
enum class ArtifactStatus {
  kOk,           ///< valid envelope, current schema, checksum matches
  kLegacy,       ///< parseable pml document without the envelope (no checksum)
  kStaleSchema,  ///< valid envelope but a schema version this build can't vouch for
  kCorrupt,      ///< unparseable JSON, broken envelope, or checksum mismatch
  kUnreadable,   ///< the file itself could not be read
};

/// Stable verdict name ("ok", "legacy", "stale-schema", "corrupt",
/// "unreadable").
const char* to_string(ArtifactStatus status) noexcept;

struct ArtifactInfo {
  ArtifactStatus status = ArtifactStatus::kUnreadable;
  std::string kind;    ///< envelope kind, or the legacy document's format key
  int schema = 0;      ///< envelope schema version; 0 when absent
  std::string detail;  ///< human-readable reason for non-ok verdicts
};

/// Classify one artifact file for `pml doctor`. Failures become verdicts,
/// not exceptions.
ArtifactInfo inspect_artifact(const std::string& path);

/// What `pml doctor --repair` did to one file.
enum class RepairAction {
  kNone,         ///< ok or stale-schema: left untouched
  kUpgraded,     ///< legacy document rewrapped in a checksummed envelope
  kQuarantined,  ///< corrupt file moved to the .quarantine/ sibling directory
  kFailed,       ///< unreadable, unmappable legacy format, or the fix itself failed
};

/// Stable action name ("none", "upgraded", "quarantined", "failed").
const char* to_string(RepairAction action) noexcept;

struct RepairResult {
  ArtifactInfo info;  ///< verdict the repair decision was based on
  RepairAction action = RepairAction::kNone;
  std::string detail;  ///< what happened (quarantine destination, skip reason)
};

/// Envelope kind for a legacy document's format key ("pml-mpi-model-v1" ->
/// "model", ...), or "" when this build knows no mapping (such files are
/// left untouched: quarantining data we merely fail to recognise would be
/// destructive).
std::string legacy_kind_for_format(std::string_view format) noexcept;

/// Fix one artifact file in place for `pml doctor --repair`:
///  - legacy documents with a known format key are rewrapped in a fresh
///    checksummed envelope via an atomic rewrite;
///  - corrupt files are moved to a `.quarantine/` directory next to the
///    file (created on demand; name collisions get a numeric suffix);
///  - ok/stale-schema files are never touched (stale schemas are a
///    version skew for a human, not damage to erase).
/// Failures become RepairAction::kFailed verdicts, not exceptions.
RepairResult repair_artifact(const std::string& path);

/// Bounded-exponential-backoff retry policy for transient IO failures.
struct RetryPolicy {
  int max_attempts = 3;                ///< total attempts, including the first
  double base_backoff_seconds = 1e-3;  ///< sleep before the first retry
  double backoff_multiplier = 8.0;     ///< backoff growth per retry
  /// Injectable clock for tests: called instead of a real sleep when set,
  /// so retry schedules are assertable without wall-clock waits.
  std::function<void(double)> sleep;
};

namespace detail {
/// policy.sleep when set, otherwise a real std::this_thread sleep.
void retry_sleep(const RetryPolicy& policy, double seconds);
}  // namespace detail

/// Run `attempt` up to policy.max_attempts times, backing off between
/// IoError failures, and rethrow the last IoError when attempts run out.
/// Non-IO errors propagate immediately: corrupt content does not become
/// less corrupt by retrying.
template <typename F>
auto with_retry(const RetryPolicy& policy, F&& attempt) -> decltype(attempt()) {
  const int attempts = policy.max_attempts > 1 ? policy.max_attempts : 1;
  double backoff = policy.base_backoff_seconds;
  for (int attempt_number = 1;; ++attempt_number) {
    try {
      return attempt();
    } catch (const IoError&) {
      if (attempt_number >= attempts) throw;
      detail::retry_sleep(policy, backoff);
      backoff *= policy.backoff_multiplier;
    }
  }
}

// --- Circuit breaker ---------------------------------------------------------
//
// with_retry handles a transiently failing operation *within* one call;
// the breaker handles an operation that keeps failing *across* calls
// (e.g. serve-side model recompiles against a broken artifact). After a
// threshold of consecutive failures the breaker opens for a bounded-
// exponential backoff window — callers skip the doomed operation and
// take their fallback immediately — then lets exactly one half-open
// probe through; the probe's outcome closes or re-opens it.

/// Breaker tuning. The backoff shape mirrors RetryPolicy (base window,
/// multiplicative growth), with an injectable clock instead of an
/// injectable sleep: the breaker never sleeps, it timestamps.
struct BreakerPolicy {
  int failure_threshold = 3;       ///< consecutive failures that open it
  double open_seconds = 5.0;       ///< first open window
  double backoff_multiplier = 2.0; ///< window growth per re-open
  double max_open_seconds = 60.0;  ///< window cap
  /// Injectable monotonic clock (seconds) for tests; a steady_clock
  /// read when unset.
  std::function<double()> now;
};

enum class BreakerState {
  kClosed,    ///< failures below threshold: all calls allowed
  kOpen,      ///< backoff window running: all calls rejected
  kHalfOpen,  ///< window expired: one probe in flight, others rejected
};

/// Stable state name ("closed", "open", "half-open").
const char* to_string(BreakerState state) noexcept;

/// Thread-safe circuit breaker. Callers bracket the guarded operation
/// with try_acquire() / record_success() / record_failure(); a rejected
/// caller takes its degradation path without touching the operation.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = {});

  enum class Decision {
    kAllow,   ///< closed: run the operation
    kProbe,   ///< half-open: run it as the recovery probe
    kReject,  ///< open (or a probe is already in flight): take the fallback
  };

  /// Ask to attempt the operation. kProbe is handed to exactly one
  /// caller per expired window; that caller must report the outcome via
  /// record_success()/record_failure() or the breaker stays half-open.
  Decision try_acquire();

  /// The operation succeeded: close, reset failure count and backoff.
  void record_success();

  /// The operation failed. Returns true when *this* failure opened (or
  /// re-opened) the breaker — callers use it to count open transitions.
  bool record_failure();

  BreakerState state() const;
  int consecutive_failures() const;

 private:
  double clock() const;

  mutable std::mutex mutex_;
  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  int failures_ = 0;        ///< consecutive failures since last success
  int open_count_ = 0;      ///< consecutive open windows (backoff exponent)
  double open_until_ = 0.0; ///< clock() time the current window expires
  bool probe_in_flight_ = false;
};

}  // namespace pml
