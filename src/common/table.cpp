#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace pml {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != 'x' && c != ' ') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw ConfigError("table: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw ConfigError("table: row has " + std::to_string(row.size()) +
                " cells, expected " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';

  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      out << ' ';
      if (align_right && looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
      out << " |";
    }
    out << '\n';
  };

  emit_row(header_, false);
  out << '|';
  for (const std::size_t w : width) out << std::string(w + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

}  // namespace pml
