#include "common/artifact.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/strings.hpp"

namespace pml {

namespace {

/// True when a parsed-but-unenveloped document looks like one of ours: every
/// pre-envelope artifact carries a "format" key starting with "pml-".
bool looks_like_pml_document(const Json& doc) noexcept {
  if (!doc.is_object() || !doc.contains("format")) return false;
  const Json& format = doc.at("format");
  return format.is_string() && format.as_string().rfind("pml-", 0) == 0;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string payload_checksum(const Json& payload) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "fnv1a64:%016llx",
                static_cast<unsigned long long>(fnv1a64(payload.dump())));
  return buf;
}

void write_artifact(const std::string& path, const Json& payload,
                    std::string_view kind, int schema_version) {
  Json envelope = Json::object();
  envelope["format"] = std::string(kArtifactFormat);
  envelope["kind"] = std::string(kind);
  envelope["schema"] = schema_version;
  envelope["checksum"] = payload_checksum(payload);
  envelope["payload"] = payload;
  write_file_atomic(path, envelope.dump(2) + "\n");
}

bool is_artifact_envelope(const Json& doc) noexcept {
  if (!doc.is_object() || !doc.contains("format")) return false;
  const Json& format = doc.at("format");
  return format.is_string() && format.as_string() == kArtifactFormat;
}

Json artifact_payload(const Json& doc, std::string_view kind,
                      int schema_version, bool allow_legacy) {
  if (!is_artifact_envelope(doc)) {
    if (allow_legacy) return doc;
    throw JsonError("expected a " + std::string(kArtifactFormat) +
                    " envelope of kind '" + std::string(kind) + "'");
  }
  if (!doc.contains("kind") || !doc.at("kind").is_string() ||
      doc.at("kind").as_string() != kind) {
    throw JsonError("artifact kind mismatch: expected '" + std::string(kind) +
                    "'");
  }
  if (!doc.contains("schema") || !doc.at("schema").is_number() ||
      doc.at("schema").as_int() != schema_version) {
    throw JsonError("artifact schema mismatch for kind '" + std::string(kind) +
                    "': expected version " + std::to_string(schema_version));
  }
  if (!doc.contains("payload")) {
    throw JsonError("artifact envelope has no payload");
  }
  const Json& payload = doc.at("payload");
  const std::string expected = payload_checksum(payload);
  if (!doc.contains("checksum") || !doc.at("checksum").is_string() ||
      doc.at("checksum").as_string() != expected) {
    throw JsonError("artifact checksum mismatch for kind '" +
                    std::string(kind) + "' (content corrupt?)");
  }
  return payload;
}

const char* to_string(ArtifactStatus status) noexcept {
  switch (status) {
    case ArtifactStatus::kOk: return "ok";
    case ArtifactStatus::kLegacy: return "legacy";
    case ArtifactStatus::kStaleSchema: return "stale-schema";
    case ArtifactStatus::kCorrupt: return "corrupt";
    case ArtifactStatus::kUnreadable: return "unreadable";
  }
  return "unknown";
}

ArtifactInfo inspect_artifact(const std::string& path) {
  ArtifactInfo info;

  std::string text;
  try {
    text = read_file(path);
  } catch (const Error& err) {
    info.status = ArtifactStatus::kUnreadable;
    info.detail = err.what();
    return info;
  }

  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const Error& err) {
    info.status = ArtifactStatus::kCorrupt;
    info.detail = std::string("not valid JSON: ") + err.what();
    return info;
  }

  if (!is_artifact_envelope(doc)) {
    if (looks_like_pml_document(doc)) {
      info.status = ArtifactStatus::kLegacy;
      info.kind = doc.at("format").as_string();
      info.detail = "pre-envelope artifact (no checksum); rewrite to upgrade";
    } else {
      info.status = ArtifactStatus::kCorrupt;
      info.detail = "not a pml artifact (no recognised format key)";
    }
    return info;
  }

  if (doc.contains("kind") && doc.at("kind").is_string()) {
    info.kind = doc.at("kind").as_string();
  }
  if (doc.contains("schema") && doc.at("schema").is_number()) {
    info.schema = static_cast<int>(doc.at("schema").as_int());
  }
  if (info.kind.empty() || !doc.contains("payload") ||
      !doc.contains("checksum") || !doc.at("checksum").is_string()) {
    info.status = ArtifactStatus::kCorrupt;
    info.detail = "incomplete envelope (missing kind/checksum/payload)";
    return info;
  }
  if (doc.at("checksum").as_string() != payload_checksum(doc.at("payload"))) {
    info.status = ArtifactStatus::kCorrupt;
    info.detail = "checksum mismatch (content corrupt)";
    return info;
  }
  if (info.schema != 1) {
    info.status = ArtifactStatus::kStaleSchema;
    info.detail = "schema version " + std::to_string(info.schema) +
                  " (this build expects 1)";
    return info;
  }
  info.status = ArtifactStatus::kOk;
  return info;
}

const char* to_string(RepairAction action) noexcept {
  switch (action) {
    case RepairAction::kNone: return "none";
    case RepairAction::kUpgraded: return "upgraded";
    case RepairAction::kQuarantined: return "quarantined";
    case RepairAction::kFailed: return "failed";
  }
  return "unknown";
}

std::string legacy_kind_for_format(std::string_view format) noexcept {
  if (format == "pml-mpi-model-v1") return "model";
  if (format == "pml-mpi-tuning-table-v1") return "tuning-table";
  if (format == "pml-mpi-tuning-table-v2") return "tuning-table";
  if (format == "pml-fault-plan-v1") return "fault-plan";
  if (format == "pml-dataset-v1") return "dataset";
  if (format == "pml-dataset-v2") return "dataset";
  return {};
}

namespace {

/// Move `path` into a `.quarantine/` directory beside it, appending ".1",
/// ".2", ... on name collisions so repeated repairs never overwrite an
/// earlier capture.
std::string quarantine_file(const std::filesystem::path& path) {
  namespace fs = std::filesystem;
  const fs::path dir = path.parent_path() / ".quarantine";
  fs::create_directories(dir);
  fs::path dest = dir / path.filename();
  for (int suffix = 1; fs::exists(dest); ++suffix) {
    dest = dir / (path.filename().string() + "." + std::to_string(suffix));
  }
  fs::rename(path, dest);
  return dest.string();
}

}  // namespace

RepairResult repair_artifact(const std::string& path) {
  RepairResult result;
  result.info = inspect_artifact(path);
  try {
    switch (result.info.status) {
      case ArtifactStatus::kOk:
      case ArtifactStatus::kStaleSchema:
        result.action = RepairAction::kNone;
        result.detail = result.info.status == ArtifactStatus::kOk
                            ? "already a valid envelope"
                            : "stale schema: version skew, not damage";
        break;
      case ArtifactStatus::kLegacy: {
        const std::string kind = legacy_kind_for_format(result.info.kind);
        if (kind.empty()) {
          result.action = RepairAction::kFailed;
          result.detail = "no envelope kind mapping for legacy format '" +
                          result.info.kind + "'";
          break;
        }
        // Re-parse and rewrap: write_artifact computes the checksum and
        // replaces the file atomically, so a crash mid-repair leaves the
        // original legacy document intact.
        write_artifact(path, Json::parse(read_file(path)), kind);
        result.action = RepairAction::kUpgraded;
        result.detail = "wrapped legacy '" + result.info.kind +
                        "' document in a checksummed envelope (kind '" +
                        kind + "')";
        break;
      }
      case ArtifactStatus::kCorrupt:
        result.action = RepairAction::kQuarantined;
        result.detail = "moved to " + quarantine_file(path);
        break;
      case ArtifactStatus::kUnreadable:
        result.action = RepairAction::kFailed;
        result.detail = "unreadable: " + result.info.detail;
        break;
    }
  } catch (const std::exception& err) {
    result.action = RepairAction::kFailed;
    result.detail = err.what();
  }
  return result;
}

namespace detail {

void retry_sleep(const RetryPolicy& policy, double seconds) {
  if (policy.sleep) {
    policy.sleep(seconds);
    return;
  }
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace detail

// --- CircuitBreaker ----------------------------------------------------------

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: break;
  }
  return "half-open";
}

CircuitBreaker::CircuitBreaker(BreakerPolicy policy)
    : policy_(std::move(policy)) {
  if (policy_.failure_threshold < 1) policy_.failure_threshold = 1;
}

double CircuitBreaker::clock() const {
  if (policy_.now) return policy_.now();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CircuitBreaker::Decision CircuitBreaker::try_acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return Decision::kAllow;
    case BreakerState::kOpen:
      if (clock() < open_until_) return Decision::kReject;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return Decision::kProbe;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return Decision::kReject;
      probe_in_flight_ = true;
      return Decision::kProbe;
  }
  return Decision::kReject;  // unreachable
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = BreakerState::kClosed;
  failures_ = 0;
  open_count_ = 0;
  probe_in_flight_ = false;
}

bool CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++failures_;
  const bool opens = state_ == BreakerState::kHalfOpen ||
                     (state_ == BreakerState::kClosed &&
                      failures_ >= policy_.failure_threshold);
  if (!opens) return false;
  probe_in_flight_ = false;
  state_ = BreakerState::kOpen;
  ++open_count_;
  double window = policy_.open_seconds;
  for (int i = 1; i < open_count_ && window < policy_.max_open_seconds; ++i) {
    window *= policy_.backoff_multiplier;
  }
  if (window > policy_.max_open_seconds) window = policy_.max_open_seconds;
  open_until_ = clock() + window;
  return true;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

}  // namespace pml
