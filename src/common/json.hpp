// Minimal JSON value type with parser and serializer.
//
// The tuning framework ships its artefacts (tuning tables, trained models,
// cluster descriptions) as JSON, exactly as the paper's framework emits
// "tuning tables ... stored in a readily accessible JSON format". This is a
// deliberately small, dependency-free implementation: objects preserve
// insertion order (stable, diff-able output) and numbers are stored as
// double (sufficient for every artefact we write).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace pml {

class Json;

/// Order-preserving string->Json map (insertion order kept for stable dumps).
class JsonObject {
 public:
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const noexcept;
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }
  auto begin() noexcept { return entries_.begin(); }
  auto end() noexcept { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Json>> entries_;
};

/// A JSON value: null, bool, number, string, array, or object.
class Json {
 public:
  using Array = std::vector<Json>;

  Json() noexcept : value_(nullptr) {}
  Json(std::nullptr_t) noexcept : value_(nullptr) {}
  Json(bool b) noexcept : value_(b) {}
  Json(double d) noexcept : value_(d) {}
  Json(int i) noexcept : value_(static_cast<double>(i)) {}
  Json(unsigned i) noexcept : value_(static_cast<double>(i)) {}
  Json(long i) noexcept : value_(static_cast<double>(i)) {}
  Json(unsigned long i) noexcept : value_(static_cast<double>(i)) {}
  Json(long long i) noexcept : value_(static_cast<double>(i)) {}
  Json(unsigned long long i) noexcept : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(Array{}); }

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return get<bool>("bool"); }
  double as_number() const { return get<double>("number"); }
  /// Integral view of a number. Throws JsonError when the value does not
  /// fit in int64 (NaN, ±inf, |x| >= 2^63): casting such doubles is UB,
  /// and every legitimate artifact field is far below the limit.
  std::int64_t as_int() const;
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  Array& as_array() { return get<Array>("array"); }
  const JsonObject& as_object() const { return get<JsonObject>("object"); }
  JsonObject& as_object() { return get<JsonObject>("object"); }

  /// Object access; creates the key if the value is an object.
  Json& operator[](const std::string& key) { return as_object()[key]; }
  const Json& at(const std::string& key) const { return as_object().at(key); }
  bool contains(const std::string& key) const {
    return is_object() && as_object().contains(key);
  }

  /// Array append.
  void push_back(Json v) { as_array().push_back(std::move(v)); }

  /// Serialize. indent < 0 → compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws JsonError on malformed input.
  static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b) noexcept {
    return a.value_ == b.value_;
  }

 private:
  template <typename T>
  const T& get(const char* name) const {
    if (const T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("value is not a ") + name);
  }
  template <typename T>
  T& get(const char* name) {
    if (T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("value is not a ") + name);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, JsonObject>
      value_;
};

inline bool operator==(const JsonObject& a, const JsonObject& b) noexcept {
  if (a.size() != b.size()) return false;
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first || !(ita->second == itb->second)) return false;
  }
  return true;
}

}  // namespace pml
