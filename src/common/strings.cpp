#include "common/strings.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace pml {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= (1ULL << 30) && bytes % (1ULL << 30) == 0) {
    return std::to_string(bytes >> 30) + "G";
  }
  if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
    return std::to_string(bytes >> 10) + "K";
  }
  return std::to_string(bytes);
}

std::string format_time(double seconds) {
  char buf[48];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f h", seconds / 3600.0);
  }
  return buf;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string read_file(const std::string& path) {
  // Opening a directory "succeeds" on Linux and reads silently yield
  // nothing; surface it as the IO failure it is.
  if (std::filesystem::is_directory(path)) {
    throw IoError("cannot read a directory: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open file for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) throw IoError("write failed: " + path);
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const auto fail = [&tmp](const std::string& what) -> IoError {
    IoError err(what + ": " + tmp + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return err;
  };

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw IoError("cannot open file for writing: " + tmp + ": " +
                  std::strerror(errno));
  }
  const char* data = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw fail("write failed");
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync before rename: without it a crash can publish an empty file
  // under the final name on some filesystems.
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw fail("fsync failed");
  }
  if (::close(fd) != 0) throw fail("close failed");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw fail("rename to " + path + " failed");
  }
}

}  // namespace pml
