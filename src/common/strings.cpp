#include "common/strings.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace pml {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= (1ULL << 30) && bytes % (1ULL << 30) == 0) {
    return std::to_string(bytes >> 30) + "G";
  }
  if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
    return std::to_string(bytes >> 10) + "K";
  }
  return std::to_string(bytes);
}

std::string format_time(double seconds) {
  char buf[48];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f h", seconds / 3600.0);
  }
  return buf;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open file for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) throw IoError("write failed: " + path);
}

}  // namespace pml
