#include "common/version.hpp"

namespace pml {

const std::vector<ArtifactFormat>& artifact_formats() {
  // Keep in sync with the emit/load sites: artifact.cpp (envelope,
  // legacy_kind_for_format), framework.cpp (model), tuning_table.cpp,
  // dataset_builder.cpp, fault.cpp, obs/export.cpp.
  static const std::vector<ArtifactFormat> formats = {
      {"envelope", "pml-artifact-v1", {"pml-artifact-v1"}},
      {"model", "pml-mpi-model-v1", {"pml-mpi-model-v1"}},
      {"tuning-table",
       "pml-mpi-tuning-table-v2",
       {"pml-mpi-tuning-table-v2", "pml-mpi-tuning-table-v1"}},
      {"dataset", "pml-dataset-v2", {"pml-dataset-v2", "pml-dataset-v1"}},
      {"fault-plan", "pml-fault-plan-v1", {"pml-fault-plan-v1"}},
      {"metrics", "pml-metrics-v1", {"pml-metrics-v1"}},
  };
  return formats;
}

Json version_json() {
  Json j = Json::object();
  j["version"] = std::string(kPmlVersion);
  Json artifacts = Json::object();
  for (const ArtifactFormat& f : artifact_formats()) {
    Json row = Json::object();
    row["writes"] = std::string(f.writes);
    Json reads = Json::array();
    for (const char* r : f.reads) reads.push_back(std::string(r));
    row["reads"] = std::move(reads);
    artifacts[f.kind] = std::move(row);
  }
  j["artifacts"] = std::move(artifacts);
  return j;
}

std::string version_text() {
  std::string out = "pml ";
  out += kPmlVersion;
  out += "\nartifact schemas (writes / reads):\n";
  for (const ArtifactFormat& f : artifact_formats()) {
    out += "  ";
    out += f.kind;
    out += ": ";
    out += f.writes;
    out += " / ";
    for (std::size_t i = 0; i < f.reads.size(); ++i) {
      if (i > 0) out += ", ";
      out += f.reads[i];
    }
    out += '\n';
  }
  return out;
}

}  // namespace pml
