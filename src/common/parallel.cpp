#include "common/parallel.hpp"

#include <algorithm>
#include <cstdio>

namespace pml {

namespace {

/// Set while a pool worker executes job bodies: nested parallel_for calls
/// from inside a worker degrade to the serial loop, which bounds the total
/// thread count at the pool size and makes nesting deadlock-free.
thread_local bool tls_in_pool_worker = false;

}  // namespace

int hardware_threads() noexcept {
  static const int n =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return n;
}

int resolve_threads(int threads) noexcept {
  return threads > 0 ? threads : hardware_threads();
}

ThreadPool::ThreadPool(int workers) {
  workers_.reserve(static_cast<std::size_t>(std::max(0, workers)));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  tls_in_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // post()ed tasks first: they are rare (async recompiles) and small in
    // number, and parallel_for callers participate in their own jobs, so
    // job latency is not starved by draining the task queue eagerly.
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      run_task(task);
      lock.lock();
      continue;
    }
    // Find a job that still has unclaimed indices and a free worker slot;
    // prune fully-claimed jobs as we go (their callers hold the storage and
    // wait for active == 0, so dropping the queue entry is safe).
    Job* job = nullptr;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if ((*it)->next.load() >= (*it)->n) {
        it = queue_.erase(it);
      } else if ((*it)->slots > 0) {
        job = *it;
        break;
      } else {
        ++it;
      }
    }
    if (job == nullptr) {
      if (stop_) return;
      work_cv_.wait(lock);
      continue;
    }
    --job->slots;
    ++job->active;
    lock.unlock();
    run(*job);
    lock.lock();
    --job->active;
    if (job->active == 0 && job->next.load() >= job->n) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1);
    if (i >= job.n) return;
    if (job.failed.load()) continue;  // drain remaining indices after failure
    try {
      (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.failed.load()) {
        job.error = std::current_exception();
        job.failed.store(true);
      }
    }
  }
}

void ThreadPool::run_task(const std::function<void()>& task) noexcept {
  try {
    task();
  } catch (const std::exception& err) {
    std::fprintf(stderr, "pml: warning: posted task threw: %s\n", err.what());
  } catch (...) {
    std::fprintf(stderr, "pml: warning: posted task threw\n");
  }
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!workers_.empty() && !stop_) {
      tasks_.push_back(std::move(task));
      work_cv_.notify_one();
      return;
    }
  }
  run_task(task);  // no workers (or shutting down): degrade to inline
}

void ThreadPool::parallel_for(int threads, std::size_t n, const Body& body) {
  if (n == 0) return;
  const int want = resolve_threads(threads);
  if (want <= 1 || n <= 1 || workers_.empty() || tls_in_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Job job;
  job.body = &body;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t extra = std::min(
        {static_cast<std::size_t>(want - 1), workers_.size(), n - 1});
    job.slots = static_cast<int>(extra);
    queue_.push_back(&job);
  }
  work_cv_.notify_all();

  run(job);  // the caller participates

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&job] {
      return job.active == 0 && job.next.load() >= job.n;
    });
    const auto it = std::find(queue_.begin(), queue_.end(), &job);
    if (it != queue_.end()) queue_.erase(it);
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::shared() {
  // hardware-1 workers so pool + caller saturate the machine; at least one
  // worker so parallel paths are exercised (and testable) even on one core.
  static ThreadPool pool(std::max(1, hardware_threads() - 1));
  return pool;
}

void parallel_for(int threads, std::size_t n, const ThreadPool::Body& body) {
  ThreadPool::shared().parallel_for(threads, n, body);
}

}  // namespace pml
