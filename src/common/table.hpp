// ASCII table printer for the bench binaries.
//
// Every bench reproduces a table or figure from the paper; this renders the
// rows in a compact aligned layout so bench_output.txt reads like the paper's
// tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pml {

/// Column-aligned ASCII table with a header row and optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }
  void add_row(std::vector<std::string> row);

  /// Render with column alignment; numeric-looking cells right-aligned.
  std::string str() const;

  /// Convenience: render to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pml
