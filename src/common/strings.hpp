// Small string and unit-formatting helpers used across the libraries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pml {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// "1", "1K", "64K", "1M" — power-of-two byte counts as OMB-style labels.
std::string format_bytes(std::uint64_t bytes);

/// "12.3 us", "4.56 ms", "7.89 s" — human-readable durations from seconds.
std::string format_time(double seconds);

/// Fixed-precision double, e.g. format_double(3.14159, 2) == "3.14".
std::string format_double(double value, int precision);

/// Read an entire file into a string; throws pml::Error on failure.
std::string read_file(const std::string& path);

/// Write a string to a file (overwrite); throws pml::Error on failure.
void write_file(const std::string& path, std::string_view contents);

/// Atomically replace `path` with `contents`: write to `path + ".tmp"`,
/// fsync, then rename over the target so readers never observe a torn
/// file. Throws pml::IoError on failure (the temp file is cleaned up).
void write_file_atomic(const std::string& path, std::string_view contents);

}  // namespace pml
