// Build identity: the pml release version and the artifact schema
// matrix this build writes and reads.
//
// Ops correlate a *running* daemon with on-disk artifacts audited by
// `pml doctor`: a serve reply and a doctor verdict only compose if both
// sides agree on which schema versions are in play. `pml --version`
// prints the full matrix; the serve protocol carries the release string
// in every ping/stats reply and the matrix in `health` replies.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"

namespace pml {

/// Release version of the pml toolchain, bumped when the artifact
/// schema matrix or the serve protocol changes shape.
inline constexpr const char* kPmlVersion = "0.10.0";

/// One artifact family: the format string this build writes, and every
/// format string it still reads (current plus grandfathered versions).
struct ArtifactFormat {
  const char* kind;                 ///< envelope kind ("model", ...)
  const char* writes;               ///< format emitted by this build
  std::vector<const char*> reads;   ///< formats accepted on load
};

/// The schema matrix, one row per artifact family (envelope included).
const std::vector<ArtifactFormat>& artifact_formats();

/// {"version":"0.10.0","artifacts":{"model":{"writes":...,"reads":[...]},...}}
/// — the machine-readable form carried by serve `health` replies.
Json version_json();

/// Multi-line human text for `pml --version`.
std::string version_text();

}  // namespace pml
