// Bounded thread pool with a blocking parallel_for.
//
// The hot offline/online paths (forest fitting, framework training, tuning
// table compilation) are embarrassingly parallel but must stay bit-for-bit
// deterministic: callers pre-split RNG streams and pre-size output slots, so
// the pool only has to distribute independent indices. The design is
// deliberately work-stealing-free: one shared index counter per job, caller
// participation, and serial fallback for nested calls.
//
// Semantics:
//  - parallel_for(threads, n, body) runs body(i) for every i in [0, n) and
//    blocks until all iterations finished. `threads` caps the concurrency of
//    this call (caller included); <= 0 means hardware_threads().
//  - threads == 1 (or n <= 1, or a nested call from inside a pool worker)
//    executes the plain serial loop on the calling thread — exactly the
//    historical code path.
//  - The first exception thrown by any iteration is re-thrown in the caller;
//    iterations not yet started are skipped after a failure.
//  - With threads > 1 the iteration bodies run concurrently, so they must
//    not mutate shared state without synchronisation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pml {

/// std::thread::hardware_concurrency with a floor of 1.
int hardware_threads() noexcept;

/// Resolve a threads knob: values <= 0 mean "use all hardware threads".
int resolve_threads(int threads) noexcept;

class ThreadPool {
 public:
  using Body = std::function<void(std::size_t)>;

  /// Spawns `workers` background threads (0 is valid: every parallel_for
  /// then runs serially on the caller).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// See the file header for the contract. Blocks until every iteration
  /// completed (or was skipped after a failure), then re-throws the first
  /// captured exception, if any.
  void parallel_for(int threads, std::size_t n, const Body& body);

  /// Fire-and-forget task submission on the same workers (used by the
  /// serve layer for async tuning-table recompiles). Never blocks: with no
  /// workers the task runs inline on the caller. The pool provides no
  /// completion signal — callers that must observe completion (or outlive
  /// the pool) track it themselves. Tasks must not throw; an escaped
  /// exception is swallowed after a stderr warning. Tasks still queued
  /// when the pool is destroyed are discarded. A task may call
  /// parallel_for, which then runs serially (nested-call rule).
  void post(std::function<void()> task);

  /// Process-wide pool shared by all library hot paths. Sized so that the
  /// pool plus a caller saturate the machine.
  static ThreadPool& shared();

 private:
  /// One parallel_for invocation; lives on the caller's stack.
  struct Job {
    const Body* body = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};  ///< next index to claim
    std::atomic<bool> failed{false};
    int slots = 0;   ///< workers still allowed to join (guarded by mutex_)
    int active = 0;  ///< workers currently running it (guarded by mutex_)
    std::exception_ptr error;  ///< first failure (guarded by mutex_)
  };

  void worker_loop();
  void run(Job& job);
  /// Run one post()ed task, containing any escaped exception (warn+drop).
  static void run_task(const std::function<void()>& task) noexcept;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait for queued jobs
  std::condition_variable done_cv_;  ///< callers wait for job completion
  std::deque<Job*> queue_;
  std::deque<std::function<void()>> tasks_;  ///< post()ed one-shot tasks
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::shared().
void parallel_for(int threads, std::size_t n, const ThreadPool::Body& body);

}  // namespace pml
