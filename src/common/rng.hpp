// Deterministic random number generation.
//
// All stochastic behaviour in the simulator and the ML library flows through
// this generator so that every experiment in the paper reproduction is
// bit-for-bit repeatable from a seed. The core generator is xoshiro256**,
// seeded via SplitMix64 (public-domain algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace pml {

/// SplitMix64 step; used for seeding and cheap hashing of seed material.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions, but the built-in helpers avoid the
/// libstdc++-version-dependent behaviour of std distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal multiplicative jitter with median 1 and shape sigma.
  double lognormal_jitter(double sigma) noexcept {
    return std::exp(sigma * normal());
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Spawn an independent stream (for per-tree / per-rank determinism).
  Rng split() noexcept {
    std::uint64_t sm = (*this)();
    return Rng(splitmix64(sm));
  }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      using std::swap;
      swap(c[i], c[static_cast<std::size_t>(uniform_index(i + 1))]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pml
