// Error types shared across the PML-MPI libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace pml {

/// Base class for all errors raised by the PML-MPI libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on malformed JSON input or type-mismatched JSON access.
class JsonError : public Error {
 public:
  explicit JsonError(const std::string& what) : Error("json: " + what) {}
};

/// Raised on invalid simulator configuration or protocol misuse
/// (e.g. mismatched send/recv sizes, deadlocked schedule).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error("sim: " + what) {}
};

/// Raised on invalid ML inputs (empty dataset, dimension mismatch, ...).
class MlError : public Error {
 public:
  explicit MlError(const std::string& what) : Error("ml: " + what) {}
};

/// Raised by the tuning framework (unknown cluster, missing table, ...).
class TuningError : public Error {
 public:
  explicit TuningError(const std::string& what) : Error("tuning: " + what) {}
};

}  // namespace pml
