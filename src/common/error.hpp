// Error types shared across the PML-MPI libraries.
//
// Every throw site under src/ raises a subclass of pml::Error. Each
// subclass carries an ErrorCode so that callers (notably pml_tool) can
// map failure classes to distinct exit statuses without string-matching
// what() text. The base class still derives from std::runtime_error so
// generic `catch (const std::exception&)` handlers keep working, but no
// code under src/ throws a raw std:: exception type.
#pragma once

#include <stdexcept>
#include <string>

namespace pml {

/// Stable failure classes, one per Error subclass. Values are also the
/// basis of pml_tool's exit statuses (see exit_status()).
enum class ErrorCode {
  kUnknown = 0,  ///< reserved for non-pml exceptions mapped at the CLI edge
  kConfig,       ///< invalid user-supplied configuration or arguments
  kIo,           ///< filesystem read/write failure
  kJson,         ///< malformed JSON input or type-mismatched access
  kSim,          ///< simulator misuse (mismatched sizes, deadlock, ...)
  kMl,           ///< invalid ML inputs (empty dataset, dim mismatch, ...)
  kTuning,       ///< tuning framework (unknown cluster, missing table, ...)
};

/// Short stable name for an ErrorCode ("config", "io", ...).
const char* to_string(ErrorCode code) noexcept;

/// Process exit status for an ErrorCode. 1 is reserved for unknown
/// failures and 2 for CLI usage errors, so codes start at 3.
int exit_status(ErrorCode code) noexcept;

/// Base class for all errors raised by the PML-MPI libraries.
class Error : public std::runtime_error {
 public:
  ErrorCode code() const noexcept { return code_; }

 protected:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code) {}

 private:
  ErrorCode code_;
};

/// Raised on invalid user-supplied configuration: bad cluster specs,
/// out-of-range option fields, malformed CLI values.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error(ErrorCode::kConfig, what) {}
};

/// Raised when a file cannot be read or written.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(ErrorCode::kIo, what) {}
};

/// Raised on malformed JSON input or type-mismatched JSON access.
class JsonError : public Error {
 public:
  explicit JsonError(const std::string& what) : Error(ErrorCode::kJson, what) {}
};

/// Raised on invalid simulator configuration or protocol misuse
/// (e.g. mismatched send/recv sizes, deadlocked schedule).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error(ErrorCode::kSim, what) {}
};

/// Raised on invalid ML inputs (empty dataset, dimension mismatch, ...).
class MlError : public Error {
 public:
  explicit MlError(const std::string& what) : Error(ErrorCode::kMl, what) {}
};

/// Raised by the tuning framework (unknown cluster, missing table, ...).
class TuningError : public Error {
 public:
  explicit TuningError(const std::string& what)
      : Error(ErrorCode::kTuning, what) {}
};

inline const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kConfig: return "config";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kJson: return "json";
    case ErrorCode::kSim: return "sim";
    case ErrorCode::kMl: return "ml";
    case ErrorCode::kTuning: return "tuning";
    case ErrorCode::kUnknown: break;
  }
  return "unknown";
}

inline int exit_status(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kConfig: return 3;
    case ErrorCode::kIo: return 4;
    case ErrorCode::kJson: return 5;
    case ErrorCode::kSim: return 6;
    case ErrorCode::kMl: return 7;
    case ErrorCode::kTuning: return 8;
    case ErrorCode::kUnknown: break;
  }
  return 1;
}

}  // namespace pml
