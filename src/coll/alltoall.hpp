// Flat MPI_Alltoall algorithms as simulated rank programs.
//
// Semantics match MPI_Alltoall: `send_buf` holds p blocks of `block_bytes`
// (block j is destined to rank j); on completion `recv_buf` holds p blocks
// (block i came from rank i). Payloads really move.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "coll/collective.hpp"
#include "sim/comm.hpp"

namespace pml::coll {

/// Dispatch to one of the five alltoall algorithms.
/// Throws pml::SimError if the algorithm does not support comm.size().
sim::RankTask run_alltoall(Algorithm algorithm, sim::Comm comm,
                           std::span<const std::byte> send_buf,
                           std::span<std::byte> recv_buf);

sim::RankTask alltoall_bruck(sim::Comm comm, std::span<const std::byte> send,
                             std::span<std::byte> recv);
sim::RankTask alltoall_scatter_dest(sim::Comm comm,
                                    std::span<const std::byte> send,
                                    std::span<std::byte> recv);
sim::RankTask alltoall_pairwise(sim::Comm comm,
                                std::span<const std::byte> send,
                                std::span<std::byte> recv);
sim::RankTask alltoall_recursive_doubling(sim::Comm comm,
                                          std::span<const std::byte> send,
                                          std::span<std::byte> recv);
sim::RankTask alltoall_inplace(sim::Comm comm, std::span<const std::byte> send,
                               std::span<std::byte> recv);

/// A (destination, origin) data block in flight during store-and-forward.
struct RoutedBlock {
  int dest = -1;
  int origin = -1;

  friend auto operator<=>(const RoutedBlock&, const RoutedBlock&) = default;
};

/// One recursive-doubling store-and-forward step for one rank.
struct AlltoallRdStep {
  int partner = -1;
  std::vector<RoutedBlock> send_blocks;  ///< sorted, forwarded to partner
  std::vector<RoutedBlock> recv_blocks;  ///< sorted, arriving from partner
};

/// Full store-and-forward schedule, plan[rank][step]. Requires a
/// power-of-two world. Exposed for tests: after the last step, every rank
/// must hold exactly the blocks destined to it, one per origin.
std::vector<std::vector<AlltoallRdStep>> alltoall_rd_plan(int world);

}  // namespace pml::coll
