#include "coll/allgather.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace pml::coll {

namespace {

using sim::Comm;
using sim::RankTask;

std::size_t block_of(std::span<const std::byte> recv, int p) {
  return recv.size() / static_cast<std::size_t>(p);
}

/// Copy own contribution into its slot of the result buffer.
void place_own_block(Comm& comm, std::span<const std::byte> send,
                     std::span<std::byte> recv, int p) {
  const std::size_t n = block_of(recv, p);
  if (send.size() != n) {
    throw SimError("allgather: send block size mismatch");
  }
  if (n == 0) return;
  if (comm.payload_enabled()) {
    std::memcpy(recv.data() + static_cast<std::size_t>(comm.rank()) * n,
                send.data(), n);
  }
  comm.copy(n, recv.size());
}

}  // namespace

std::vector<int> rd_owned_blocks(int rank, int step, int world) {
  const int m = floor_log2(world);
  const int pow2 = 1 << m;
  const int remainder = world - pow2;
  if (rank >= pow2) {
    throw SimError("rd_owned_blocks: rank must be in the power-of-two group");
  }
  // After the pre-step, rank i < pow2 owns {i} plus {i + pow2} if i hosts an
  // extra rank. After k doubling rounds it owns the union over its k-bit
  // neighbourhood.
  const int mask = ~((1 << step) - 1);
  const int group_start = rank & mask;
  std::vector<int> blocks;
  for (int j = group_start; j < group_start + (1 << step); ++j) {
    blocks.push_back(j);
    if (j < remainder) blocks.push_back(j + pow2);
  }
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

sim::RankTask allgather_recursive_doubling(Comm comm,
                                           std::span<const std::byte> send,
                                           std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_of(recv, p);
  place_own_block(comm, send, recv, p);
  if (p == 1) co_return;

  const int m = floor_log2(p);
  const int pow2 = 1 << m;
  const int remainder = p - pow2;

  auto block_ptr = [&](int b) {
    return recv.data() + static_cast<std::size_t>(b) * n;
  };

  // Pre-step: extra ranks park their block with a proxy in the pow2 group.
  if (rank >= pow2) {
    co_await comm.send(rank - pow2, send, /*tag=*/900);
    // Post-step below delivers the full result back.
    co_await comm.recv(rank - pow2, recv, /*tag=*/901);
    co_return;
  }
  if (rank < remainder) {
    co_await comm.recv(rank + pow2,
                       std::span<std::byte>(block_ptr(rank + pow2), n),
                       /*tag=*/900);
  }

  // Doubling rounds over the power-of-two group, exchanging full owned sets.
  std::vector<std::byte> stage_out;
  std::vector<std::byte> stage_in;
  for (int k = 0; k < m; ++k) {
    const int partner = rank ^ (1 << k);
    const std::vector<int> mine = rd_owned_blocks(rank, k, p);
    const std::vector<int> theirs = rd_owned_blocks(partner, k, p);

    auto contiguous = [&](const std::vector<int>& blocks) {
      for (std::size_t i = 1; i < blocks.size(); ++i) {
        if (blocks[i] != blocks[i - 1] + 1) return false;
      }
      return true;
    };

    if (contiguous(mine) && contiguous(theirs)) {
      // Power-of-two case: owned blocks form one contiguous region; exchange
      // directly out of / into the result buffer.
      co_await comm.sendrecv(
          partner,
          std::span<const std::byte>(block_ptr(mine.front()),
                                     mine.size() * n),
          partner,
          std::span<std::byte>(block_ptr(theirs.front()), theirs.size() * n),
          /*tag=*/k);
    } else {
      // Non-power-of-two: owned sets are scattered; pack, exchange, unpack.
      stage_out.resize(mine.size() * n);
      stage_in.resize(theirs.size() * n);
      if (comm.payload_enabled()) {
        for (std::size_t i = 0; i < mine.size(); ++i) {
          std::memcpy(stage_out.data() + i * n, block_ptr(mine[i]), n);
        }
      }
      comm.copy(stage_out.size(), recv.size());
      co_await comm.sendrecv(partner, stage_out, partner, stage_in,
                             /*tag=*/k);
      if (comm.payload_enabled()) {
        for (std::size_t i = 0; i < theirs.size(); ++i) {
          std::memcpy(block_ptr(theirs[i]), stage_in.data() + i * n, n);
        }
      }
      comm.copy(stage_in.size(), recv.size());
    }
  }

  // Post-step: proxies forward the complete result to their extra rank.
  if (rank < remainder) {
    co_await comm.send(rank + pow2, recv, /*tag=*/901);
  }
}

sim::RankTask allgather_ring(Comm comm, std::span<const std::byte> send,
                             std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_of(recv, p);
  place_own_block(comm, send, recv, p);
  if (p == 1) co_return;

  const int right = (rank + 1) % p;
  const int left = (rank - 1 + p) % p;
  for (int k = 0; k < p - 1; ++k) {
    const int send_block = (rank - k + p) % p;
    const int recv_block = (rank - k - 1 + p) % p;
    co_await comm.sendrecv(
        right,
        std::span<const std::byte>(
            recv.data() + static_cast<std::size_t>(send_block) * n, n),
        left,
        std::span<std::byte>(
            recv.data() + static_cast<std::size_t>(recv_block) * n, n),
        /*tag=*/k);
  }
}

sim::RankTask allgather_bruck(Comm comm, std::span<const std::byte> send,
                              std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_of(recv, p);
  if (p == 1) {
    place_own_block(comm, send, recv, p);
    co_return;
  }

  // temp[j] accumulates block (rank + j) mod p.
  std::vector<std::byte> temp(recv.size());
  if (n > 0 && comm.payload_enabled()) {
    std::memcpy(temp.data(), send.data(), n);
  }
  comm.copy(n, recv.size());

  for (int k = 0; (1 << k) < p; ++k) {
    const int dist = 1 << k;
    const int count = std::min(dist, p - dist);
    const int dst = (rank - dist + p) % p;
    const int src = (rank + dist) % p;
    co_await comm.sendrecv(
        dst,
        std::span<const std::byte>(temp.data(),
                                   static_cast<std::size_t>(count) * n),
        src,
        std::span<std::byte>(temp.data() + static_cast<std::size_t>(dist) * n,
                             static_cast<std::size_t>(count) * n),
        /*tag=*/k);
  }

  // Final rotation: temp[j] is block (rank + j) mod p.
  if (comm.payload_enabled()) {
    for (int j = 0; j < p; ++j) {
      const int b = (rank + j) % p;
      if (n > 0) {
        std::memcpy(recv.data() + static_cast<std::size_t>(b) * n,
                    temp.data() + static_cast<std::size_t>(j) * n, n);
      }
    }
  }
  comm.copy(recv.size(), recv.size());
}

std::vector<std::vector<NeighborStep>> neighbor_exchange_plan(int world) {
  if (world == 1) return {std::vector<std::vector<NeighborStep>>::value_type{}};
  if (world % 2 != 0) {
    throw SimError("neighbor exchange requires an even number of ranks");
  }
  const auto w = static_cast<std::size_t>(world);
  std::vector<std::vector<NeighborStep>> plan(w);

  // Step 0: even ranks pair with rank+1, odd with rank-1, exchanging the
  // single own block.
  std::vector<int> chunk_start(w);  // first block of the chunk acquired last
  for (int r = 0; r < world; ++r) {
    const bool even = r % 2 == 0;
    const int partner = even ? r + 1 : r - 1;
    plan[static_cast<std::size_t>(r)].push_back(
        NeighborStep{partner, r, partner, 1});
    chunk_start[static_cast<std::size_t>(r)] = even ? r : r - 1;
  }

  // Steps 1..p/2-1: alternate the other neighbour, forwarding the 2-block
  // chunk acquired in the previous step.
  for (int step = 1; step < world / 2; ++step) {
    std::vector<int> next_start(w);
    for (int r = 0; r < world; ++r) {
      const bool even = r % 2 == 0;
      // neighbour[0] = the step-0 partner; neighbour[1] = the other side.
      const int n0 = even ? (r + 1) % world : (r - 1 + world) % world;
      const int n1 = even ? (r - 1 + world) % world : (r + 1) % world;
      const int partner = (step % 2 == 1) ? n1 : n0;
      const int send_start = chunk_start[static_cast<std::size_t>(r)];
      const int recv_start = chunk_start[static_cast<std::size_t>(partner)];
      plan[static_cast<std::size_t>(r)].push_back(
          NeighborStep{partner, send_start, recv_start, 2});
      next_start[static_cast<std::size_t>(r)] = recv_start;
    }
    chunk_start = std::move(next_start);
  }
  return plan;
}

namespace {

const std::vector<std::vector<NeighborStep>>& cached_neighbor_plan(int world) {
  static std::mutex mu;
  static std::map<int, std::vector<std::vector<NeighborStep>>> cache;
  const std::scoped_lock lock(mu);
  auto it = cache.find(world);
  if (it == cache.end()) {
    it = cache.emplace(world, neighbor_exchange_plan(world)).first;
  }
  return it->second;
}

}  // namespace

sim::RankTask allgather_neighbor_exchange(Comm comm,
                                          std::span<const std::byte> send,
                                          std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_of(recv, p);
  place_own_block(comm, send, recv, p);
  if (p == 1) co_return;

  const auto& plan = cached_neighbor_plan(p);
  const auto& steps = plan[static_cast<std::size_t>(rank)];
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const NeighborStep& st = steps[s];
    const auto chunk = static_cast<std::size_t>(st.chunk_blocks) * n;
    co_await comm.sendrecv(
        st.partner,
        std::span<const std::byte>(
            recv.data() + static_cast<std::size_t>(st.send_block) * n, chunk),
        st.partner,
        std::span<std::byte>(
            recv.data() + static_cast<std::size_t>(st.recv_block) * n, chunk),
        static_cast<int>(s));
  }
}

sim::RankTask run_allgather(Algorithm algorithm, sim::Comm comm,
                            std::span<const std::byte> send_block,
                            std::span<std::byte> recv_buf) {
  if (collective_of(algorithm) != Collective::kAllgather) {
    throw SimError("run_allgather: not an allgather algorithm");
  }
  if (!algorithm_supports(algorithm, comm.size())) {
    throw SimError("algorithm " + display_name(algorithm) +
                   " does not support world size " +
                   std::to_string(comm.size()));
  }
  switch (algorithm) {
    case Algorithm::kAgRecursiveDoubling:
      return allgather_recursive_doubling(comm, send_block, recv_buf);
    case Algorithm::kAgRing:
      return allgather_ring(comm, send_block, recv_buf);
    case Algorithm::kAgBruck:
      return allgather_bruck(comm, send_block, recv_buf);
    case Algorithm::kAgRdComm:
      return allgather_neighbor_exchange(comm, send_block, recv_buf);
    default:
      throw SimError("unreachable");
  }
}

}  // namespace pml::coll
