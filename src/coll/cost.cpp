#include "coll/cost.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pml::coll {

namespace {

using sim::NetworkModel;

/// Number of block indices j in [0, p) with bit k set (Bruck send counts).
int bruck_count(int p, int k) {
  const int bit = 1 << k;
  const int period = bit << 1;
  const int full = (p / period) * bit;
  const int rem = std::max(0, (p % period) - bit);
  return full + rem;
}

double post_overhead(const NetworkModel& m, int messages) {
  return m.per_message_overhead() * messages;
}

/// Inter-node exchange where `flows` concurrent flows share each NIC.
double inter_round(const NetworkModel& m, std::uint64_t bytes, int flows) {
  return m.inter_alpha() +
         static_cast<double>(bytes) * std::max(1, flows) / m.inter_bandwidth();
}

double intra_round(const NetworkModel& m, std::uint64_t bytes) {
  return m.intra_alpha() +
         static_cast<double>(bytes) / m.copy_bandwidth(bytes);
}

}  // namespace

double round_cost(const NetworkModel& m, std::uint64_t bytes, int distance) {
  const auto& topo = m.topology();
  const int p = topo.world_size();
  const int d = ((distance % p) + p) % p;
  if (d == 0) return 0.0;
  const double overhead = post_overhead(m, 2);  // one send + one recv
  if (topo.nodes == 1) return overhead + intra_round(m, bytes);

  // Node-major layout: within each node, min(d, ppn) ranks have an off-node
  // partner at distance d; they serialise through the NIC. The round (a
  // lockstep exchange) completes when the slowest rank finishes.
  const int flows = std::min(d, topo.ppn);
  const double inter = inter_round(m, bytes, flows);
  if (flows >= topo.ppn) return overhead + inter;
  return overhead + std::max(inter, intra_round(m, bytes));
}

namespace {

// ---- MPI_Allgather --------------------------------------------------------

double ag_recursive_doubling(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  const int mlog = floor_log2(p);
  const int pow2 = 1 << mlog;
  const int remainder = p - pow2;

  double t = 0.0;
  if (remainder > 0) {
    // Extra ranks park blocks with proxies and later receive the full
    // result; meanwhile owned block sets are scattered and must be packed.
    t += round_cost(m, n, pow2);
  }
  for (int k = 0; k < mlog; ++k) {
    // With a remainder, each owned set is inflated by roughly p / pow2.
    const double inflate = static_cast<double>(p) / pow2;
    const auto bytes = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(1ULL << k) * static_cast<double>(n) *
                  inflate));
    t += round_cost(m, bytes, 1 << k);
    if (remainder > 0) {
      t += 2.0 * m.memcpy_time(bytes, static_cast<std::uint64_t>(p) * n);
    }
  }
  if (remainder > 0) {
    t += round_cost(m, static_cast<std::uint64_t>(p) * n, pow2);
  }
  return t;
}

double ag_ring(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  return (p - 1) * round_cost(m, n, 1);
}

double ag_bruck(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  const auto total = static_cast<std::uint64_t>(p) * n;
  double t = m.memcpy_time(n, total);  // seed the shifted temp buffer
  for (int k = 0; (1 << k) < p; ++k) {
    const int count = std::min(1 << k, p - (1 << k));
    t += round_cost(m, static_cast<std::uint64_t>(count) * n, 1 << k);
  }
  t += m.memcpy_time(total, total);  // final rotation into the result
  return t;
}

double ag_neighbor_exchange(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  // p/2 rounds of doubled payloads with neighbours. The alternating
  // left/right pattern costs a scheduling turnaround (~alpha/2) per round
  // and a pipeline-bubble derate on the wire time relative to a ring that
  // streams in one direction.
  constexpr double kTurnaround = 0.5;
  constexpr double kBubble = 1.08;
  const double step0 = round_cost(m, n, 1);
  double t = step0;
  for (int s = 1; s < p / 2; ++s) {
    const double base = round_cost(m, 2 * n, 1);
    t += base * kBubble + kTurnaround * m.inter_alpha();
  }
  return t;
}

// ---- MPI_Alltoall ---------------------------------------------------------

double aa_bruck(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  const auto total = static_cast<std::uint64_t>(p) * n;
  double t = 2.0 * m.memcpy_time(total, total);  // rotation in and out
  for (int k = 0; (1 << k) < p; ++k) {
    const auto bytes =
        static_cast<std::uint64_t>(bruck_count(p, k)) * n;
    t += round_cost(m, bytes, 1 << k);
    t += 2.0 * m.memcpy_time(bytes, total);  // pack + unpack staging
  }
  return t;
}

double aa_scatter_dest(const NetworkModel& m, std::uint64_t n) {
  const auto& topo = m.topology();
  const int p = topo.world_size();
  if (p == 1) return 0.0;
  // Posting 2(p-1) requests at once also pays unexpected-message queue
  // searches on the receive side, which grow with the number of
  // outstanding peers (lockstep schedules keep the queues short).
  const double queue_factor =
      1.0 + 0.25 * floor_log2(std::max(2, p - 1));
  const double posting = post_overhead(m, 2 * (p - 1)) * queue_factor;

  const double t_intra =
      topo.ppn > 1
          ? m.intra_alpha() + static_cast<double>(topo.ppn - 1) *
                                  static_cast<double>(n) /
                                  m.copy_bandwidth(n)
          : 0.0;
  if (topo.nodes == 1) return posting + t_intra;

  // All off-node traffic of a node funnels through its NIC; blasting
  // p-1 concurrent transfers additionally pays an incast/posted-queue
  // congestion derate that lockstep schedules avoid.
  const auto inter_bytes = static_cast<double>(topo.ppn) *
                           static_cast<double>(p - topo.ppn) *
                           static_cast<double>(n);
  const double fan_in = static_cast<double>(p - topo.ppn);
  const double incast = 1.0 + 0.18 * std::min(1.0, fan_in / 96.0);
  const double t_net = m.inter_alpha() + inter_bytes * incast / m.inter_bandwidth();
  return posting + std::max(t_net, t_intra);
}

double aa_pairwise(const NetworkModel& m, std::uint64_t n) {
  const auto& topo = m.topology();
  const int p = topo.world_size();
  if (p == 1) return 0.0;
  if (is_power_of_two(p)) {
    // XOR schedule: steps k < ppn stay on-node when ppn | p (node-major,
    // power-of-two ppn); the rest are fully off-node rounds.
    double t = 0.0;
    for (int k = 1; k < p; ++k) {
      const bool on_node = topo.nodes == 1 || k < topo.ppn;
      t += post_overhead(m, 2) + (on_node ? intra_round(m, n)
                                          : inter_round(m, n, topo.ppn));
    }
    return t;
  }
  double t = 0.0;
  for (int k = 1; k < p; ++k) t += round_cost(m, n, k);
  return t;
}

double aa_recursive_doubling(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  const auto total = static_cast<std::uint64_t>(p) * n;
  const auto half = static_cast<std::uint64_t>(p / 2) * n;
  double t = 2.0 * m.memcpy_time(total, total);  // seed + final placement
  const int mlog = floor_log2(p);
  for (int k = 0; k < mlog; ++k) {
    t += round_cost(m, half, 1 << k);
    t += 2.0 * m.memcpy_time(half, total);  // pack + unpack each hop
  }
  return t;
}

double aa_inplace(const NetworkModel& m, std::uint64_t n) {
  const auto& topo = m.topology();
  const int p = topo.world_size();
  if (p == 1) return 0.0;
  const auto total = static_cast<std::uint64_t>(p) * n;
  // Seeding copy, the up-front stash of the late-round half of the blocks,
  // and a bounce-block copy every round (the price of working in place).
  double t = m.memcpy_time(total, total);
  t += m.memcpy_time(static_cast<std::uint64_t>(p / 2) * n, total);
  t += (p - 1.0) * m.memcpy_time(n, n);
  // The communication schedule is pairwise with shift partners (distance k
  // at round k), which crosses nodes earlier than the XOR schedule.
  for (int k = 1; k < p; ++k) t += round_cost(m, n, k);
  return t;
}

// ---- MPI_Allreduce (extension) ---------------------------------------------

double reduce_time(const NetworkModel& m, std::uint64_t bytes,
                   std::uint64_t working_set) {
  return m.reduction_time(bytes, working_set);
}

double ar_recursive_doubling(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  double t = m.memcpy_time(n, n);  // seed the accumulation buffer
  for (int k = 0; (1 << k) < p; ++k) {
    t += round_cost(m, n, 1 << k) + reduce_time(m, n, n);
  }
  return t;
}

double ar_rabenseifner(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  const int mlog = floor_log2(p);
  double t = m.memcpy_time(n, n);
  // Reduce-scatter (halving) and its mirror-image allgather (doubling):
  // step k moves n / 2^(k+1) bytes at distance 2^k.
  for (int k = 0; k < mlog; ++k) {
    const std::uint64_t half = n >> (k + 1);
    t += round_cost(m, half, 1 << k) + reduce_time(m, half, n);
    t += round_cost(m, half, 1 << k);  // allgather phase, same volume
  }
  return t;
}

double ar_ring(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  const std::uint64_t chunk = std::max<std::uint64_t>(1, n / static_cast<std::uint64_t>(p));
  double t = m.memcpy_time(n, n);
  t += (p - 1.0) * (round_cost(m, chunk, 1) + reduce_time(m, chunk, n));
  t += (p - 1.0) * round_cost(m, chunk, 1);
  return t;
}

// ---- MPI_Bcast (extension) ---------------------------------------------------

double bc_binomial(const NetworkModel& m, std::uint64_t n) {
  const auto& topo = m.topology();
  const int p = topo.world_size();
  if (p == 1) return 0.0;
  // Critical path: one transfer per tree level. Unlike a lockstep round,
  // a tree level with span `mask` has only p/(2*mask) senders, so the
  // per-NIC flow count is max(1, ppn/(2*mask)) when the level crosses
  // nodes (mask >= ppn), and levels below ppn stay in shared memory.
  double t = 0.0;
  for (int k = 0; (1 << k) < p; ++k) {
    const int mask = 1 << k;
    if (topo.nodes > 1 && mask >= topo.ppn) {
      const int flows = std::max(1, topo.ppn / (2 * mask));
      t += post_overhead(m, 2) + inter_round(m, n, flows);
    } else {
      t += post_overhead(m, 2) + intra_round(m, n);
    }
  }
  return t;
}

double bc_scatter_allgather(const NetworkModel& m, std::uint64_t n) {
  const int p = m.topology().world_size();
  if (p == 1) return 0.0;
  const std::uint64_t chunk = std::max<std::uint64_t>(1, n / static_cast<std::uint64_t>(p));
  double t = 0.0;
  // Binomial scatter: level k hands over ~2^k chunks.
  for (int k = floor_log2(p); k >= 0; --k) {
    if ((1 << k) >= p) continue;
    t += round_cost(m, chunk << k, 1 << k);
  }
  if (is_power_of_two(p)) {
    // Recursive-doubling allgather over chunk ranges (van de Geijn).
    for (int k = 0; (1 << k) < p; ++k) {
      t += round_cost(m, chunk << k, 1 << k);
    }
  } else {
    t += (p - 1.0) * round_cost(m, chunk, 1);  // chunk-ring fallback
  }
  return t;
}

double bc_pipelined_ring(const NetworkModel& m, std::uint64_t n) {
  const auto& topo = m.topology();
  const int p = topo.world_size();
  if (p == 1) return 0.0;
  const auto seg = static_cast<std::uint64_t>(
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(n, 8 * 1024)));
  const double num_segs =
      n == 0 ? 1.0 : std::ceil(static_cast<double>(n) / static_cast<double>(seg));
  // Chain 0 -> 1 -> ... -> p-1 in node-major order: nodes-1 hops cross the
  // network, the rest are shared-memory. Fill = sum of hop costs; drain =
  // one slowest-hop interval per extra segment.
  const double hop_inter = inter_round(m, seg, 1) + post_overhead(m, 2);
  const double hop_intra = intra_round(m, seg) + post_overhead(m, 2);
  const double fill = (topo.nodes - 1) * hop_inter +
                      (p - topo.nodes) * hop_intra;
  const double slowest = topo.nodes > 1 ? hop_inter : hop_intra;
  return fill + (num_segs - 1.0) * slowest;
}

}  // namespace

double analytic_cost(const sim::NetworkModel& m, Algorithm algorithm,
                     std::uint64_t block_bytes) {
  const int p = m.topology().world_size();
  if (!algorithm_supports(algorithm, p)) {
    throw SimError("analytic_cost: " + display_name(algorithm) +
                   " unsupported at world size " + std::to_string(p));
  }
  switch (algorithm) {
    case Algorithm::kAgRecursiveDoubling: return ag_recursive_doubling(m, block_bytes);
    case Algorithm::kAgRing: return ag_ring(m, block_bytes);
    case Algorithm::kAgBruck: return ag_bruck(m, block_bytes);
    case Algorithm::kAgRdComm: return ag_neighbor_exchange(m, block_bytes);
    case Algorithm::kAaBruck: return aa_bruck(m, block_bytes);
    case Algorithm::kAaScatterDest: return aa_scatter_dest(m, block_bytes);
    case Algorithm::kAaPairwise: return aa_pairwise(m, block_bytes);
    case Algorithm::kAaRecursiveDoubling: return aa_recursive_doubling(m, block_bytes);
    case Algorithm::kAaInplace: return aa_inplace(m, block_bytes);
    case Algorithm::kArRecursiveDoubling: return ar_recursive_doubling(m, block_bytes);
    case Algorithm::kArRabenseifner: return ar_rabenseifner(m, block_bytes);
    case Algorithm::kArRing: return ar_ring(m, block_bytes);
    case Algorithm::kBcBinomial: return bc_binomial(m, block_bytes);
    case Algorithm::kBcScatterAllgather: return bc_scatter_allgather(m, block_bytes);
    case Algorithm::kBcPipelinedRing: return bc_pipelined_ring(m, block_bytes);
  }
  throw SimError("unknown algorithm");
}

double measured_cost(const sim::NetworkModel& m, Algorithm algorithm,
                     std::uint64_t block_bytes, int iterations, Rng& rng,
                     double noise_sigma) {
  if (iterations < 1) throw SimError("measured_cost: iterations must be >= 1");
  const double base = analytic_cost(m, algorithm, block_bytes);
  double total = 0.0;
  for (int i = 0; i < iterations; ++i) {
    total += base * (noise_sigma > 0.0 ? rng.lognormal_jitter(noise_sigma) : 1.0);
  }
  return total / iterations;
}

namespace {

/// Intra-node gather of one `bytes`-sized message from each of ppn-1 local
/// ranks onto the leader (or the mirror-image scatter): the transfers
/// serialise through the leader's memory system.
double leader_stage_cost(const NetworkModel& node_model, int ppn,
                         std::uint64_t bytes, std::uint64_t working_set) {
  if (ppn <= 1 || bytes == 0) return 0.0;
  return node_model.intra_alpha() +
         node_model.memcpy_time(static_cast<std::uint64_t>(ppn - 1) * bytes,
                                working_set) +
         node_model.per_message_overhead() * 2.0 * (ppn - 1);
}

double leader_cost(const sim::ClusterSpec& cluster, sim::Topology topo,
                   const Selection& s, std::uint64_t n) {
  const sim::NetworkModel leaders(cluster, sim::Topology{topo.nodes, 1});
  const sim::NetworkModel node(cluster, sim::Topology{1, topo.ppn});
  const auto ppn = static_cast<std::uint64_t>(topo.ppn);
  const auto p = static_cast<std::uint64_t>(topo.world_size());

  switch (s.collective()) {
    case Collective::kAllgather: {
      // Gather blocks onto the leader, allgather ppn*n super-blocks among
      // the leaders, broadcast the p*n result within each node.
      const std::uint64_t super = ppn * n;
      return leader_stage_cost(node, topo.ppn, n, super) +
             node.memcpy_time(n, super) +
             analytic_cost(leaders, s.algorithm, super) +
             analytic_cost(node, s.intra, p * n);
    }
    case Collective::kAlltoall: {
      // Gather full p*n send buffers, pack node super-blocks, exchange
      // ppn^2*n node pairs among leaders, unpack, scatter p*n results.
      const std::uint64_t node_bytes = ppn * p * n;
      const double stage =
          leader_stage_cost(node, topo.ppn, p * n, node_bytes);
      const double repack = 2.0 * node.memcpy_time(node_bytes, node_bytes);
      return 2.0 * stage + repack +
             analytic_cost(leaders, s.algorithm, ppn * ppn * n);
    }
    case Collective::kAllreduce: {
      // Binomial reduce onto the leader, allreduce n among the leaders,
      // broadcast the result within each node.
      const int levels = topo.ppn > 1 ? floor_log2(topo.ppn) +
                                            (is_power_of_two(topo.ppn) ? 0 : 1)
                                      : 0;
      const double level = node.intra_alpha() + node.memcpy_time(n, n) +
                           node.reduction_time(n, n) +
                           node.per_message_overhead() * 2.0;
      return node.memcpy_time(n, n) + levels * level +
             analytic_cost(leaders, s.algorithm, n) +
             analytic_cost(node, s.intra, n);
    }
    case Collective::kBcast:
      return analytic_cost(leaders, s.algorithm, n) +
             analytic_cost(node, s.intra, n);
  }
  throw SimError("unknown collective");
}

}  // namespace

double analytic_cost(const sim::ClusterSpec& cluster, sim::Topology topo,
                     const Selection& selection, std::uint64_t block_bytes) {
  if (!selection_supports(selection, topo)) {
    throw SimError("analytic_cost: " + selection.encode() +
                   " unsupported at " + std::to_string(topo.nodes) + "x" +
                   std::to_string(topo.ppn));
  }
  if (!selection.hierarchical()) {
    const sim::NetworkModel model(cluster, topo);
    return analytic_cost(model, selection.algorithm, block_bytes);
  }
  return leader_cost(cluster, topo, selection, block_bytes);
}

double measured_cost(const sim::ClusterSpec& cluster, sim::Topology topo,
                     const Selection& selection, std::uint64_t block_bytes,
                     int iterations, Rng& rng, double noise_sigma) {
  if (iterations < 1) throw SimError("measured_cost: iterations must be >= 1");
  const double base = analytic_cost(cluster, topo, selection, block_bytes);
  double total = 0.0;
  for (int i = 0; i < iterations; ++i) {
    total += base * (noise_sigma > 0.0 ? rng.lognormal_jitter(noise_sigma) : 1.0);
  }
  return total / iterations;
}

}  // namespace pml::coll
