// Flat MPI_Bcast algorithms (extension: paper §IX future work).
//
// Semantics match MPI_Bcast with root 0: on completion every rank's
// `buf` holds the root's payload. Real bytes move, so delivery is
// verifiable bit-for-bit.
#pragma once

#include <cstddef>
#include <span>

#include "coll/collective.hpp"
#include "sim/comm.hpp"

namespace pml::coll {

/// Dispatch to one of the three bcast algorithms (root is rank 0; on the
/// root `buf` is the source, elsewhere it is the destination).
sim::RankTask run_bcast(Algorithm algorithm, sim::Comm comm,
                        std::span<std::byte> buf);

sim::RankTask bcast_binomial(sim::Comm comm, std::span<std::byte> buf);
sim::RankTask bcast_scatter_allgather(sim::Comm comm, std::span<std::byte> buf);
sim::RankTask bcast_pipelined_ring(sim::Comm comm, std::span<std::byte> buf);

/// Pipeline segment size used by the pipelined ring (bytes).
std::size_t bcast_pipeline_segment(std::size_t total_bytes);

}  // namespace pml::coll
