#include "coll/runner.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "coll/alltoall.hpp"
#include "coll/bcast.hpp"
#include "coll/hierarchical.hpp"
#include "common/error.hpp"
#include "obs/export.hpp"
#include "sim/comm.hpp"

namespace pml::coll {

namespace {

/// Deterministic payload byte for (origin rank, destination-or-block, offset).
std::byte pattern(int origin, int block, std::size_t offset) {
  const auto h = static_cast<std::uint32_t>(origin) * 2654435761u ^
                 static_cast<std::uint32_t>(block) * 40503u ^
                 static_cast<std::uint32_t>(offset) * 2246822519u;
  return static_cast<std::byte>(h >> 24);
}

/// Buffer sizes per collective: (send bytes, recv bytes) for a per-block
/// payload of n bytes on p ranks.
std::pair<std::size_t, std::size_t> buffer_shape(Collective coll,
                                                 std::size_t n, int p) {
  switch (coll) {
    case Collective::kAllgather:
      return {n, n * static_cast<std::size_t>(p)};
    case Collective::kAlltoall:
      return {n * static_cast<std::size_t>(p), n * static_cast<std::size_t>(p)};
    case Collective::kAllreduce:
      return {n, n};
    case Collective::kBcast:
      return {0, n};  // single in-place buffer
  }
  throw SimError("unknown collective");
}

sim::RankTask dispatch(Collective coll, Algorithm algorithm, sim::Comm comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv) {
  switch (coll) {
    case Collective::kAllgather:
      return run_allgather(algorithm, comm, send, recv);
    case Collective::kAlltoall:
      return run_alltoall(algorithm, comm, send, recv);
    case Collective::kAllreduce:
      return run_allreduce(algorithm, comm, send, recv);
    case Collective::kBcast:
      return run_bcast(algorithm, comm, recv);
  }
  throw SimError("unknown collective");
}

sim::RankTask dispatch(Collective coll, const Selection& s, sim::Comm comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv) {
  if (!s.hierarchical()) return dispatch(coll, s.algorithm, comm, send, recv);
  return run_hierarchical(s, comm, send, recv);
}

/// Reusable per-thread simulation state for the timing-only fast path: one
/// engine (reset between invocations, all capacities retained) plus flat
/// send/recv arenas standing in for the per-rank payload buffers.
struct TimingContext {
  std::optional<sim::Engine> engine;
  std::vector<std::byte> send_arena;
  std::vector<std::byte> recv_arena;
};

TimingContext& timing_context() {
  // Touch the coroutine frame pool before constructing the context: the
  // pool must be destroyed after the engine (which owns coroutine frames
  // until its destructor runs at thread exit).
  sim::detail::warm_frame_pool();
  thread_local TimingContext ctx;
  return ctx;
}

/// Timing-only fast path: size-only pending operations, no payload
/// allocation, pattern fill, data movement, or verification. Virtual time
/// is bit-identical to the verified path.
RunResult run_timing_only(const sim::ClusterSpec& cluster, sim::Topology topo,
                          const Selection& selection, std::uint64_t block_bytes,
                          const sim::SimOptions& opts) {
  const int p = topo.world_size();
  const auto n = static_cast<std::size_t>(block_bytes);
  const Collective coll = selection.collective();
  const auto shape = buffer_shape(coll, n, p);
  const std::size_t send_bytes = shape.first;
  const std::size_t recv_bytes = shape.second;

  TimingContext& ctx = timing_context();
  ctx.send_arena.resize(send_bytes * static_cast<std::size_t>(p));
  ctx.recv_arena.resize(recv_bytes * static_cast<std::size_t>(p));
  if (ctx.engine) {
    ctx.engine->reset(cluster, topo, opts);
  } else {
    ctx.engine.emplace(cluster, topo, opts);
  }
  sim::Engine& engine = *ctx.engine;
  engine.reserve(std::min<std::size_t>(
      request_estimate(selection, topo, block_bytes), std::size_t{1} << 20));

  const auto factory = [&](int rank) {
    sim::Comm comm(engine, rank);
    const std::span<const std::byte> send(
        ctx.send_arena.data() + static_cast<std::size_t>(rank) * send_bytes,
        send_bytes);
    const std::span<std::byte> recv(
        ctx.recv_arena.data() + static_cast<std::size_t>(rank) * recv_bytes,
        recv_bytes);
    return dispatch(coll, selection, comm, send, recv);
  };
  engine.run(factory);

  RunResult result;
  result.seconds = engine.elapsed();
  return result;
}

}  // namespace

std::size_t request_estimate(Algorithm algorithm, int p,
                             std::uint64_t block_bytes) {
  const auto up = static_cast<std::size_t>(std::max(1, p));
  const auto logp =
      static_cast<std::size_t>(floor_log2(std::max(2, p)));
  switch (algorithm) {
    case Algorithm::kAgRecursiveDoubling:
      return 2 * up * (logp + 2);  // doubling rounds + pre/post proxy steps
    case Algorithm::kAgRing:
      return 2 * up * up;  // p-1 sendrecv rounds per rank
    case Algorithm::kAgBruck:
      return 2 * up * (logp + 1);
    case Algorithm::kAgRdComm:
      return up * up;  // p/2 neighbour-exchange rounds per rank
    case Algorithm::kAaScatterDest:
    case Algorithm::kAaPairwise:
    case Algorithm::kAaInplace:
      return 2 * up * up;  // p-1 peer exchanges per rank
    case Algorithm::kAaBruck:
    case Algorithm::kAaRecursiveDoubling:
      return 2 * up * (logp + 1);
    case Algorithm::kArRecursiveDoubling:
      return 2 * up * (logp + 1);
    case Algorithm::kArRabenseifner:
      return 4 * up * (logp + 1);  // reduce-scatter + allgather phases
    case Algorithm::kArRing:
      return 4 * up * up;  // two (p-1)-round ring phases
    case Algorithm::kBcBinomial:
      return 2 * up;
    case Algorithm::kBcScatterAllgather:
      return 2 * up * (logp + 1) + 2 * up * up;  // ring-allgather fallback
    case Algorithm::kBcPipelinedRing: {
      const std::size_t n = static_cast<std::size_t>(block_bytes);
      const std::size_t seg = bcast_pipeline_segment(n);
      const std::size_t segs = n == 0 ? 1 : (n + seg - 1) / seg;
      return 2 * up * segs;
    }
  }
  return 2 * up * (logp + 2);
}

RunResult run_collective(const sim::ClusterSpec& cluster, sim::Topology topo,
                         Algorithm algorithm, std::uint64_t block_bytes,
                         const sim::RunOptions& run_opts) {
  return run_selection(cluster, topo, Selection::flat(algorithm), block_bytes,
                       run_opts);
}

RunResult run_selection(const sim::ClusterSpec& cluster, sim::Topology topo,
                        const Selection& selection, std::uint64_t block_bytes,
                        const sim::RunOptions& run_opts) {
  obs::ScopedCapture capture(run_opts.trace_sink);
  const sim::SimOptions opts = run_opts.sim_options();
  if (!opts.payload_enabled()) {
    obs::Span span("coll.run.timing_only");
    return run_timing_only(cluster, topo, selection, block_bytes, opts);
  }
  obs::Span span("coll.run.verified");

  const int p = topo.world_size();
  const auto n = static_cast<std::size_t>(block_bytes);
  const Collective coll = selection.collective();
  const auto [send_bytes, recv_bytes] = buffer_shape(coll, n, p);

  std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(p));
  std::vector<std::vector<std::byte>> recv(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& s = send[static_cast<std::size_t>(r)];
    s.resize(send_bytes);
    for (std::size_t i = 0; i < send_bytes; ++i) {
      const int block = coll == Collective::kAlltoall
                            ? static_cast<int>(n == 0 ? 0 : i / n)
                            : r;
      s[i] = pattern(r, block, n == 0 ? 0 : i % n);
    }
    auto& d = recv[static_cast<std::size_t>(r)];
    d.assign(recv_bytes, std::byte{0});
    if (coll == Collective::kBcast && r == 0) {
      // Root's buffer carries the payload to broadcast.
      for (std::size_t i = 0; i < recv_bytes; ++i) d[i] = pattern(0, 0, i);
    }
  }

  sim::Engine engine(cluster, topo, opts);
  engine.reserve(std::min<std::size_t>(
      request_estimate(selection, topo, block_bytes), std::size_t{1} << 20));
  const auto factory = [&](int rank) {
    sim::Comm comm(engine, rank);
    auto& s = send[static_cast<std::size_t>(rank)];
    auto& d = recv[static_cast<std::size_t>(rank)];
    return dispatch(coll, selection, comm, s, d);
  };
  engine.run(factory);

  RunResult result;
  result.seconds = engine.elapsed();

  auto fail = [&](int rank, std::size_t offset) {
    throw SimError("payload mismatch: " + selection.display() + " rank " +
                   std::to_string(rank) + " offset " + std::to_string(offset));
  };
  for (int r = 0; r < p; ++r) {
    const auto& d = recv[static_cast<std::size_t>(r)];
    switch (coll) {
      case Collective::kAllgather:
      case Collective::kAlltoall:
        for (int b = 0; b < p; ++b) {
          for (std::size_t i = 0; i < n; ++i) {
            // Allgather: block b holds rank b's contribution.
            // Alltoall: block b holds rank b's block destined to r.
            const std::byte expect = coll == Collective::kAllgather
                                         ? pattern(b, b, i)
                                         : pattern(b, r, i);
            if (d[static_cast<std::size_t>(b) * n + i] != expect) {
              fail(r, static_cast<std::size_t>(b) * n + i);
            }
          }
        }
        break;
      case Collective::kAllreduce:
        for (std::size_t i = 0; i < n; ++i) {
          unsigned sum = 0;
          for (int src = 0; src < p; ++src) {
            sum += static_cast<unsigned>(pattern(src, src, i));
          }
          if (d[i] != static_cast<std::byte>(sum)) fail(r, i);
        }
        break;
      case Collective::kBcast:
        for (std::size_t i = 0; i < n; ++i) {
          if (d[i] != pattern(0, 0, i)) fail(r, i);
        }
        break;
    }
  }
  result.verified = true;
  return result;
}

std::size_t request_estimate(const Selection& selection, sim::Topology topo,
                             std::uint64_t block_bytes) {
  const int p = topo.world_size();
  if (!selection.hierarchical()) {
    return request_estimate(selection.algorithm, p, block_bytes);
  }
  const auto ppn = static_cast<std::uint64_t>(topo.ppn);
  std::uint64_t tier_bytes = block_bytes;
  std::uint64_t fanout_bytes = block_bytes;
  bool has_fanout = true;
  switch (selection.collective()) {
    case Collective::kAllgather:
      tier_bytes = ppn * block_bytes;
      fanout_bytes = static_cast<std::uint64_t>(p) * block_bytes;
      break;
    case Collective::kAlltoall:
      tier_bytes = ppn * ppn * block_bytes;
      has_fanout = false;  // results scatter point-to-point
      break;
    case Collective::kAllreduce:
    case Collective::kBcast:
      break;
  }
  // Staging gather/scatter posts plus the inner per-tier schedules.
  std::size_t total = 8 * static_cast<std::size_t>(p);
  total += request_estimate(selection.algorithm, topo.nodes, tier_bytes);
  if (has_fanout) {
    total += static_cast<std::size_t>(topo.nodes) *
             request_estimate(selection.intra, topo.ppn, fanout_bytes);
  }
  return total;
}

RunResult run_collective(const sim::ClusterSpec& cluster, sim::Topology topo,
                         Algorithm algorithm, std::uint64_t block_bytes,
                         sim::SimOptions opts) {
  return run_collective(
      cluster, topo, algorithm, block_bytes,
      sim::RunOptions{opts.payload, opts.noise_sigma, opts.seed,
                      opts.eager_threshold, {}, opts.faults});
}

}  // namespace pml::coll
