#include "coll/runner.hpp"

#include <cstring>
#include <string>
#include <vector>

#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "coll/alltoall.hpp"
#include "coll/bcast.hpp"
#include "common/error.hpp"

namespace pml::coll {

namespace {

/// Deterministic payload byte for (origin rank, destination-or-block, offset).
std::byte pattern(int origin, int block, std::size_t offset) {
  const auto h = static_cast<std::uint32_t>(origin) * 2654435761u ^
                 static_cast<std::uint32_t>(block) * 40503u ^
                 static_cast<std::uint32_t>(offset) * 2246822519u;
  return static_cast<std::byte>(h >> 24);
}

}  // namespace

namespace {

/// Buffer sizes per collective: (send bytes, recv bytes) for a per-block
/// payload of n bytes on p ranks.
std::pair<std::size_t, std::size_t> buffer_shape(Collective coll,
                                                 std::size_t n, int p) {
  switch (coll) {
    case Collective::kAllgather:
      return {n, n * static_cast<std::size_t>(p)};
    case Collective::kAlltoall:
      return {n * static_cast<std::size_t>(p), n * static_cast<std::size_t>(p)};
    case Collective::kAllreduce:
      return {n, n};
    case Collective::kBcast:
      return {0, n};  // single in-place buffer
  }
  throw SimError("unknown collective");
}

}  // namespace

RunResult run_collective(const sim::ClusterSpec& cluster, sim::Topology topo,
                         Algorithm algorithm, std::uint64_t block_bytes,
                         sim::SimOptions opts) {
  const int p = topo.world_size();
  const auto n = static_cast<std::size_t>(block_bytes);
  const Collective coll = collective_of(algorithm);
  const auto [send_bytes, recv_bytes] = buffer_shape(coll, n, p);

  std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(p));
  std::vector<std::vector<std::byte>> recv(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& s = send[static_cast<std::size_t>(r)];
    s.resize(send_bytes);
    for (std::size_t i = 0; i < send_bytes; ++i) {
      const int block = coll == Collective::kAlltoall
                            ? static_cast<int>(n == 0 ? 0 : i / n)
                            : r;
      s[i] = pattern(r, block, n == 0 ? 0 : i % n);
    }
    auto& d = recv[static_cast<std::size_t>(r)];
    d.assign(recv_bytes, std::byte{0});
    if (coll == Collective::kBcast && r == 0) {
      // Root's buffer carries the payload to broadcast.
      for (std::size_t i = 0; i < recv_bytes; ++i) d[i] = pattern(0, 0, i);
    }
  }

  sim::Engine engine(cluster, topo, opts);
  engine.run([&](int rank) {
    sim::Comm comm(engine, rank);
    auto& s = send[static_cast<std::size_t>(rank)];
    auto& d = recv[static_cast<std::size_t>(rank)];
    switch (coll) {
      case Collective::kAllgather:
        return run_allgather(algorithm, comm, s, d);
      case Collective::kAlltoall:
        return run_alltoall(algorithm, comm, s, d);
      case Collective::kAllreduce:
        return run_allreduce(algorithm, comm, s, d);
      case Collective::kBcast:
        return run_bcast(algorithm, comm, d);
    }
    throw SimError("unknown collective");
  });

  RunResult result;
  result.seconds = engine.elapsed();
  if (!opts.copy_data) return result;

  auto fail = [&](int rank, std::size_t offset) {
    throw SimError("payload mismatch: " + display_name(algorithm) + " rank " +
                   std::to_string(rank) + " offset " + std::to_string(offset));
  };
  for (int r = 0; r < p; ++r) {
    const auto& d = recv[static_cast<std::size_t>(r)];
    switch (coll) {
      case Collective::kAllgather:
      case Collective::kAlltoall:
        for (int b = 0; b < p; ++b) {
          for (std::size_t i = 0; i < n; ++i) {
            // Allgather: block b holds rank b's contribution.
            // Alltoall: block b holds rank b's block destined to r.
            const std::byte expect = coll == Collective::kAllgather
                                         ? pattern(b, b, i)
                                         : pattern(b, r, i);
            if (d[static_cast<std::size_t>(b) * n + i] != expect) {
              fail(r, static_cast<std::size_t>(b) * n + i);
            }
          }
        }
        break;
      case Collective::kAllreduce:
        for (std::size_t i = 0; i < n; ++i) {
          unsigned sum = 0;
          for (int src = 0; src < p; ++src) {
            sum += static_cast<unsigned>(pattern(src, src, i));
          }
          if (d[i] != static_cast<std::byte>(sum)) fail(r, i);
        }
        break;
      case Collective::kBcast:
        for (std::size_t i = 0; i < n; ++i) {
          if (d[i] != pattern(0, 0, i)) fail(r, i);
        }
        break;
    }
  }
  result.verified = true;
  return result;
}

}  // namespace pml::coll
