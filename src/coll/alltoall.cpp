#include "coll/alltoall.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>

#include "common/error.hpp"

namespace pml::coll {

namespace {

using sim::Comm;
using sim::RankTask;
using sim::RequestId;

std::size_t block_size(std::span<const std::byte> buf, int p) {
  const auto bytes = buf.size();
  const auto blocks = static_cast<std::size_t>(p);
  if (bytes % blocks != 0) {
    throw SimError("alltoall: buffer not divisible into p blocks");
  }
  return bytes / blocks;
}

const std::byte* cblock(std::span<const std::byte> buf, std::size_t n, int b) {
  return buf.data() + static_cast<std::size_t>(b) * n;
}

std::byte* mblock(std::span<std::byte> buf, std::size_t n, int b) {
  return buf.data() + static_cast<std::size_t>(b) * n;
}

}  // namespace

sim::RankTask alltoall_scatter_dest(Comm comm, std::span<const std::byte> send,
                                    std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_size(send, p);

  // Own block moves locally.
  if (n > 0 && comm.payload_enabled()) {
    std::memcpy(mblock(recv, n, rank), cblock(send, n, rank), n);
  }
  comm.copy(n, recv.size());

  // Post everything at once, destinations staggered to spread load, then
  // wait for the lot (MVAPICH "scatter destination" schedule).
  std::vector<RequestId> reqs;
  reqs.reserve(2 * static_cast<std::size_t>(p - 1));
  for (int i = 1; i < p; ++i) {
    const int dst = (rank + i) % p;
    reqs.push_back(comm.isend(
        dst, std::span<const std::byte>(cblock(send, n, dst), n), /*tag=*/0));
  }
  for (int i = 1; i < p; ++i) {
    const int src = (rank - i + p) % p;
    reqs.push_back(comm.irecv(
        src, std::span<std::byte>(mblock(recv, n, src), n), /*tag=*/0));
  }
  // Unexpected-message queue searches: with 2(p-1) requests outstanding,
  // each match scans queues that grow with the peer count (mirrored in the
  // analytic model, cost.cpp).
  const double queue_factor = 0.25 * floor_log2(std::max(2, p - 1));
  comm.compute(2.0 * (p - 1) *
               comm.engine().model().per_message_overhead() * queue_factor);
  co_await comm.wait_all(std::move(reqs));
}

sim::RankTask alltoall_pairwise(Comm comm, std::span<const std::byte> send,
                                std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_size(send, p);

  if (n > 0 && comm.payload_enabled()) {
    std::memcpy(mblock(recv, n, rank), cblock(send, n, rank), n);
  }
  comm.copy(n, recv.size());

  for (int k = 1; k < p; ++k) {
    int send_to = 0;
    int recv_from = 0;
    if (is_power_of_two(p)) {
      send_to = recv_from = rank ^ k;  // XOR schedule (paper §III)
    } else {
      send_to = (rank + k) % p;
      recv_from = (rank - k + p) % p;
    }
    co_await comm.sendrecv(
        send_to, std::span<const std::byte>(cblock(send, n, send_to), n),
        recv_from, std::span<std::byte>(mblock(recv, n, recv_from), n),
        /*tag=*/k);
  }
}

sim::RankTask alltoall_bruck(Comm comm, std::span<const std::byte> send,
                             std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_size(send, p);
  if (p == 1) {
    if (n > 0 && comm.payload_enabled()) {
      std::memcpy(recv.data(), send.data(), n);
    }
    comm.copy(n, n);
    co_return;
  }

  // Phase 1: local rotation. temp[j] = block destined to (rank + j) mod p.
  std::vector<std::byte> temp(send.size());
  if (comm.payload_enabled()) {
    for (int j = 0; j < p; ++j) {
      const int b = (rank + j) % p;
      if (n > 0) std::memcpy(mblock(temp, n, j), cblock(send, n, b), n);
    }
  }
  comm.copy(temp.size(), temp.size());

  // Phase 2: for each bit k, forward all blocks whose index has bit k set
  // to rank + 2^k; receive the same index set from rank - 2^k.
  std::vector<std::byte> stage_out;
  std::vector<std::byte> stage_in;
  for (int k = 0; (1 << k) < p; ++k) {
    const int dist = 1 << k;
    const int dst = (rank + dist) % p;
    const int src = (rank - dist + p) % p;

    std::vector<int> idx;
    for (int j = 0; j < p; ++j) {
      if ((j & dist) != 0) idx.push_back(j);
    }
    stage_out.resize(idx.size() * n);
    stage_in.resize(idx.size() * n);
    if (comm.payload_enabled()) {
      for (std::size_t i = 0; i < idx.size(); ++i) {
        if (n > 0) {
          std::memcpy(stage_out.data() + i * n, cblock(temp, n, idx[i]), n);
        }
      }
    }
    comm.copy(stage_out.size(), temp.size());

    co_await comm.sendrecv(dst, stage_out, src, stage_in, /*tag=*/k);

    if (comm.payload_enabled()) {
      for (std::size_t i = 0; i < idx.size(); ++i) {
        if (n > 0) {
          std::memcpy(mblock(temp, n, idx[i]), stage_in.data() + i * n, n);
        }
      }
    }
    comm.copy(stage_in.size(), temp.size());
  }

  // Phase 3: temp[j] now holds the block sent by (rank - j) mod p to us.
  if (comm.payload_enabled()) {
    for (int j = 0; j < p; ++j) {
      const int origin = (rank - j + p) % p;
      if (n > 0) std::memcpy(mblock(recv, n, origin), cblock(temp, n, j), n);
    }
  }
  comm.copy(recv.size(), recv.size());
}

std::vector<std::vector<AlltoallRdStep>> alltoall_rd_plan(int world) {
  if (!is_power_of_two(world)) {
    throw SimError("alltoall recursive doubling requires a power-of-two world");
  }
  const auto w = static_cast<std::size_t>(world);
  // holdings[r] = sorted blocks currently stored at rank r.
  std::vector<std::vector<RoutedBlock>> holdings(w);
  for (int r = 0; r < world; ++r) {
    for (int d = 0; d < world; ++d) {
      holdings[static_cast<std::size_t>(r)].push_back(RoutedBlock{d, r});
    }
    std::sort(holdings[static_cast<std::size_t>(r)].begin(),
              holdings[static_cast<std::size_t>(r)].end());
  }

  std::vector<std::vector<AlltoallRdStep>> plan(w);
  const int m = floor_log2(world);
  for (int k = 0; k < m; ++k) {
    const int bit = 1 << k;
    std::vector<std::vector<RoutedBlock>> next(w);
    for (int r = 0; r < world; ++r) {
      const int partner = r ^ bit;
      AlltoallRdStep step;
      step.partner = partner;
      for (const RoutedBlock& b : holdings[static_cast<std::size_t>(r)]) {
        // Forward every block whose destination lies in the partner's half.
        if ((b.dest & bit) == (partner & bit)) {
          step.send_blocks.push_back(b);
        } else {
          next[static_cast<std::size_t>(r)].push_back(b);
        }
      }
      plan[static_cast<std::size_t>(r)].push_back(std::move(step));
    }
    for (int r = 0; r < world; ++r) {
      auto& mine = plan[static_cast<std::size_t>(r)].back();
      const auto partner = static_cast<std::size_t>(mine.partner);
      mine.recv_blocks = plan[partner].back().send_blocks;
      auto& store = next[static_cast<std::size_t>(r)];
      store.insert(store.end(), mine.recv_blocks.begin(),
                   mine.recv_blocks.end());
      std::sort(store.begin(), store.end());
    }
    holdings = std::move(next);
  }

  for (int r = 0; r < world; ++r) {
    const auto& h = holdings[static_cast<std::size_t>(r)];
    if (static_cast<int>(h.size()) != world) {
      throw SimError("alltoall_rd_plan: rank holds wrong block count");
    }
    for (int o = 0; o < world; ++o) {
      if (h[static_cast<std::size_t>(o)].dest != r ||
          h[static_cast<std::size_t>(o)].origin != o) {
        throw SimError("alltoall_rd_plan: routing invariant violated");
      }
    }
  }
  return plan;
}

namespace {

const std::vector<std::vector<AlltoallRdStep>>& cached_rd_plan(int world) {
  static std::mutex mu;
  static std::map<int, std::vector<std::vector<AlltoallRdStep>>> cache;
  const std::scoped_lock lock(mu);
  auto it = cache.find(world);
  if (it == cache.end()) {
    it = cache.emplace(world, alltoall_rd_plan(world)).first;
  }
  return it->second;
}

}  // namespace

sim::RankTask alltoall_recursive_doubling(Comm comm,
                                          std::span<const std::byte> send,
                                          std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_size(send, p);
  if (p == 1) {
    if (n > 0 && comm.payload_enabled()) {
      std::memcpy(recv.data(), send.data(), n);
    }
    comm.copy(n, n);
    co_return;
  }

  // Store-and-forward: blocks keyed by (dest, origin). The store bookkeeping
  // runs in timing-only mode too (it drives the schedule); only the byte
  // copies in and out of it are skipped.
  std::map<RoutedBlock, std::vector<std::byte>> store;
  for (int d = 0; d < p; ++d) {
    std::vector<std::byte> data(n);
    if (n > 0 && comm.payload_enabled()) {
      std::memcpy(data.data(), cblock(send, n, d), n);
    }
    store.emplace(RoutedBlock{d, rank}, std::move(data));
  }
  comm.copy(send.size(), send.size());

  const auto& plan = cached_rd_plan(p);
  const auto& steps = plan[static_cast<std::size_t>(rank)];
  std::vector<std::byte> stage_out;
  std::vector<std::byte> stage_in;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const AlltoallRdStep& step = steps[s];

    stage_out.resize(step.send_blocks.size() * n);
    for (std::size_t i = 0; i < step.send_blocks.size(); ++i) {
      auto it = store.find(step.send_blocks[i]);
      if (it == store.end()) throw SimError("rd alltoall: missing block");
      if (n > 0 && comm.payload_enabled()) {
        std::memcpy(stage_out.data() + i * n, it->second.data(), n);
      }
      store.erase(it);
    }
    comm.copy(stage_out.size(), send.size());

    stage_in.resize(step.recv_blocks.size() * n);
    co_await comm.sendrecv(step.partner, stage_out, step.partner, stage_in,
                           static_cast<int>(s));

    for (std::size_t i = 0; i < step.recv_blocks.size(); ++i) {
      std::vector<std::byte> data(n);
      if (n > 0 && comm.payload_enabled()) {
        std::memcpy(data.data(), stage_in.data() + i * n, n);
      }
      store.emplace(step.recv_blocks[i], std::move(data));
    }
    comm.copy(stage_in.size(), send.size());
  }

  for (int o = 0; o < p; ++o) {
    auto it = store.find(RoutedBlock{rank, o});
    if (it == store.end()) throw SimError("rd alltoall: incomplete result");
    if (n > 0 && comm.payload_enabled()) {
      std::memcpy(mblock(recv, n, o), it->second.data(), n);
    }
  }
  comm.copy(recv.size(), recv.size());
}

sim::RankTask alltoall_inplace(Comm comm, std::span<const std::byte> send,
                               std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = block_size(send, p);

  // In-place semantics: the result buffer starts as a copy of the send
  // buffer; p-1 lockstep rounds replace one block at a time. Round k sends
  // block (rank+k) and overwrites block (rank-k), so blocks needed in late
  // rounds (k > p/2) would be clobbered by early ones — they are stashed up
  // front. Extra memory: half a buffer plus one bounce block, instead of a
  // full second buffer.
  if (!send.empty() && comm.payload_enabled()) {
    std::memcpy(recv.data(), send.data(), send.size());
  }
  comm.copy(send.size(), send.size());

  std::vector<std::vector<std::byte>> stash(static_cast<std::size_t>(p));
  for (int k = p / 2 + 1; k < p; ++k) {
    const int block = (rank + k) % p;
    auto& slot = stash[static_cast<std::size_t>(k)];
    slot.resize(n);
    if (n > 0 && comm.payload_enabled()) {
      std::memcpy(slot.data(), cblock(recv, n, block), n);
    }
    comm.copy(n, recv.size());
  }

  std::vector<std::byte> bounce(n);
  for (int k = 1; k < p; ++k) {
    const int send_to = (rank + k) % p;
    const int recv_from = (rank - k + p) % p;
    const std::byte* source = k > p / 2
                                  ? stash[static_cast<std::size_t>(k)].data()
                                  : cblock(recv, n, send_to);
    if (n > 0 && comm.payload_enabled()) {
      std::memcpy(bounce.data(), source, n);
    }
    comm.copy(n, n);
    co_await comm.sendrecv(
        send_to, bounce, recv_from,
        std::span<std::byte>(mblock(recv, n, recv_from), n), /*tag=*/k);
  }
}

sim::RankTask run_alltoall(Algorithm algorithm, sim::Comm comm,
                           std::span<const std::byte> send_buf,
                           std::span<std::byte> recv_buf) {
  if (collective_of(algorithm) != Collective::kAlltoall) {
    throw SimError("run_alltoall: not an alltoall algorithm");
  }
  if (!algorithm_supports(algorithm, comm.size())) {
    throw SimError("algorithm " + display_name(algorithm) +
                   " does not support world size " +
                   std::to_string(comm.size()));
  }
  switch (algorithm) {
    case Algorithm::kAaBruck:
      return alltoall_bruck(comm, send_buf, recv_buf);
    case Algorithm::kAaScatterDest:
      return alltoall_scatter_dest(comm, send_buf, recv_buf);
    case Algorithm::kAaPairwise:
      return alltoall_pairwise(comm, send_buf, recv_buf);
    case Algorithm::kAaRecursiveDoubling:
      return alltoall_recursive_doubling(comm, send_buf, recv_buf);
    case Algorithm::kAaInplace:
      return alltoall_inplace(comm, send_buf, recv_buf);
    default:
      throw SimError("unreachable");
  }
}

}  // namespace pml::coll
