// Event-engine execution of a collective with correctness verification.
#pragma once

#include <cstdint>

#include "coll/collective.hpp"
#include "sim/engine.hpp"

namespace pml::coll {

/// Outcome of one simulated collective invocation.
struct RunResult {
  double seconds = 0.0;  ///< simulated completion time (max over ranks)
  bool verified = false; ///< payload checked bit-for-bit on every rank
};

/// Execute `algorithm` on the event engine with `block_bytes` per block,
/// verifying the delivered payloads against the MPI-specified result.
/// Buffers are filled with a (origin, block, offset)-dependent pattern and
/// checked on every rank; `verified` is false only if `opts.copy_data` was
/// disabled (timing-only mode).
///
/// Throws pml::SimError on schedule deadlock, unsupported world size, or a
/// payload mismatch (an incorrect algorithm is a bug, not a data point).
RunResult run_collective(const sim::ClusterSpec& cluster, sim::Topology topo,
                         Algorithm algorithm, std::uint64_t block_bytes,
                         sim::SimOptions opts = {});

}  // namespace pml::coll
