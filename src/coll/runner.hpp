// Event-engine execution of a collective with correctness verification.
#pragma once

#include <cstdint>

#include "coll/collective.hpp"
#include "coll/selection.hpp"
#include "sim/engine.hpp"

namespace pml::coll {

/// Outcome of one simulated collective invocation.
struct RunResult {
  double seconds = 0.0;  ///< simulated completion time (max over ranks)
  bool verified = false; ///< payload checked bit-for-bit on every rank
};

/// Execute `algorithm` on the event engine with `block_bytes` per block.
///
/// With `opts.payload == PayloadMode::kVerify` (the default) buffers are
/// filled with an (origin, block, offset)-dependent pattern, real bytes
/// move through the simulation, and the delivered payloads are verified
/// against the MPI-specified result on every rank.
///
/// With `PayloadMode::kTimingOnly` the timing-only fast path runs instead:
/// no pattern fill, no payload movement, no verification, and a per-thread
/// engine + buffer arena are reused across invocations, so a steady-state
/// call performs zero heap allocations (measured by bench/sweep_hotpath).
/// `seconds` is bit-identical to the verified path — every payload
/// operation charges its simulated time whether or not bytes move.
///
/// A non-empty `opts.trace_sink` enables obs collection for the call and
/// writes the requested trace/metrics files on return.
///
/// Throws pml::SimError on schedule deadlock, unsupported world size, or a
/// payload mismatch (an incorrect algorithm is a bug, not a data point).
RunResult run_collective(const sim::ClusterSpec& cluster, sim::Topology topo,
                         Algorithm algorithm, std::uint64_t block_bytes,
                         const sim::RunOptions& opts = {});

/// Execute a structured selection. A flat selection takes exactly the same
/// internal path as run_collective(selection.algorithm, ...), so the two
/// produce bit-identical virtual times; a hierarchical selection dispatches
/// the leader-based schedule (hierarchical.hpp). Verification and the
/// timing-only 0-alloc fast path work identically for both.
/// Throws pml::SimError when the selection does not support `topo`.
RunResult run_selection(const sim::ClusterSpec& cluster, sim::Topology topo,
                        const Selection& selection, std::uint64_t block_bytes,
                        const sim::RunOptions& opts = {});

/// Transitional overload for the pre-RunOptions signature; forwards to the
/// RunOptions form (without trace capture). Removed after one release.
[[deprecated("pass sim::RunOptions instead of sim::SimOptions")]]
RunResult run_collective(const sim::ClusterSpec& cluster, sim::Topology topo,
                         Algorithm algorithm, std::uint64_t block_bytes,
                         sim::SimOptions opts);

/// Upper-bound estimate of the requests (isend/irecv posts) `algorithm`
/// issues across all ranks for a per-block payload of `block_bytes` on `p`
/// ranks. Used to pre-size engine storage; exact for the regular schedules,
/// conservative for the irregular ones.
std::size_t request_estimate(Algorithm algorithm, int p,
                             std::uint64_t block_bytes);

/// Request estimate for a structured selection: equals the flat estimate
/// for flat selections; a leader selection adds the staging posts plus the
/// per-tier inner estimates (conservative).
std::size_t request_estimate(const Selection& selection, sim::Topology topo,
                             std::uint64_t block_bytes);

}  // namespace pml::coll
