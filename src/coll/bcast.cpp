#include "coll/bcast.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace pml::coll {

namespace {

using sim::Comm;
using sim::RankTask;
using sim::RequestId;

std::size_t chunk_begin(std::size_t count, int parts, int i) {
  const int idx = std::clamp(i, 0, parts);
  return count * static_cast<std::size_t>(idx) / static_cast<std::size_t>(parts);
}

}  // namespace

std::size_t bcast_pipeline_segment(std::size_t total_bytes) {
  // 8 KiB segments balance pipeline depth against per-segment latency;
  // short messages go out in one piece.
  constexpr std::size_t kSegment = 8 * 1024;
  return std::max<std::size_t>(1, std::min(total_bytes, kSegment));
}

sim::RankTask bcast_binomial(Comm comm, std::span<std::byte> buf) {
  const int p = comm.size();
  const int rank = comm.rank();
  if (p == 1) co_return;

  // Root is 0, so relative rank == rank. Receive once from the ancestor,
  // then forward down the binomial tree (MPICH schedule).
  int mask = 1;
  while (mask < p) {
    if (rank & mask) {
      co_await comm.recv(rank - mask, buf, /*tag=*/0);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank + mask < p && (rank & (mask - 1)) == 0) {
      co_await comm.send(rank + mask, buf, /*tag=*/0);
    }
    mask >>= 1;
  }
}

sim::RankTask bcast_scatter_allgather(Comm comm, std::span<std::byte> buf) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = buf.size();
  if (p == 1) co_return;

  // Phase 1 (van de Geijn): binomial scatter of p balanced chunks; a node
  // entering at `mask` owns chunks [rank, rank+mask) and hands the upper
  // half of that range to rank+mask/2... here the standard top-down form:
  // the sender passes chunks [rank+mask, min(rank+2*mask, p)) wait —
  // sender at level `mask` passes the subtree chunks [rank+mask,
  // min(rank+2*mask, p)) is the receiver's range [r, r+mask).
  int entry_mask = 1;
  while (entry_mask < p) {
    if (rank & entry_mask) break;
    entry_mask <<= 1;
  }
  // Receive my subtree's chunk range from the ancestor.
  if (rank != 0) {
    const int src = rank - entry_mask;
    const std::size_t b = chunk_begin(n, p, rank);
    const std::size_t e = chunk_begin(n, p, std::min(rank + entry_mask, p));
    if (e > b) {
      co_await comm.recv(src, buf.subspan(b, e - b), /*tag=*/1);
    } else {
      // Zero-byte subtree range (tiny payloads): still synchronise.
      co_await comm.recv(src, buf.subspan(0, 0), /*tag=*/1);
    }
  }
  // Forward subtree halves downward.
  {
    int mask = rank == 0 ? 1 : entry_mask;
    // Highest power of two below p for the root.
    if (rank == 0) {
      while (mask < p) mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (rank + mask < p && (rank & (mask - 1)) == 0) {
        const int dst = rank + mask;
        const std::size_t b = chunk_begin(n, p, dst);
        const std::size_t e = chunk_begin(n, p, std::min(dst + mask, p));
        if (e > b) {
          co_await comm.send(dst, buf.subspan(b, e - b), /*tag=*/1);
        } else {
          co_await comm.send(dst, buf.subspan(0, 0), /*tag=*/1);
        }
      }
      mask >>= 1;
    }
  }

  // Phase 2: allgather of the chunks. Power-of-two worlds use recursive
  // doubling over contiguous chunk ranges (log p rounds — the van de Geijn
  // formulation); other worlds fall back to the chunk ring.
  if (is_power_of_two(p)) {
    for (int k = 0; (1 << k) < p; ++k) {
      const int partner = rank ^ (1 << k);
      const int group = 1 << k;
      const int my_start = (rank / group) * group;
      const int their_start = (partner / group) * group;
      const std::size_t sb = chunk_begin(n, p, my_start);
      const std::size_t se = chunk_begin(n, p, my_start + group);
      const std::size_t rb = chunk_begin(n, p, their_start);
      const std::size_t re = chunk_begin(n, p, their_start + group);
      co_await comm.sendrecv(
          partner, std::span<const std::byte>(buf.data() + sb, se - sb),
          partner, buf.subspan(rb, re - rb), /*tag=*/100 + k);
    }
    co_return;
  }
  const int right = (rank + 1) % p;
  const int left = (rank - 1 + p) % p;
  for (int k = 0; k < p - 1; ++k) {
    const int send_idx = ((rank - k) % p + p) % p;
    const int recv_idx = ((rank - k - 1) % p + p) % p;
    const std::size_t sb = chunk_begin(n, p, send_idx);
    const std::size_t se = chunk_begin(n, p, send_idx + 1);
    const std::size_t rb = chunk_begin(n, p, recv_idx);
    const std::size_t re = chunk_begin(n, p, recv_idx + 1);
    co_await comm.sendrecv(right,
                           std::span<const std::byte>(buf.data() + sb, se - sb),
                           left, buf.subspan(rb, re - rb),
                           /*tag=*/100 + k);
  }
}

sim::RankTask bcast_pipelined_ring(Comm comm, std::span<std::byte> buf) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = buf.size();
  if (p == 1) co_return;

  const std::size_t seg = bcast_pipeline_segment(n);
  const std::size_t num_segs = n == 0 ? 1 : (n + seg - 1) / seg;

  // Chain 0 -> 1 -> ... -> p-1; forwarding is nonblocking so segment j+1
  // overlaps the downstream hops of segment j.
  std::vector<RequestId> forwards;
  forwards.reserve(num_segs);
  for (std::size_t j = 0; j < num_segs; ++j) {
    const std::size_t b = j * seg;
    const std::size_t len = std::min(seg, n - b);
    const auto piece = buf.subspan(b, len);
    if (rank > 0) {
      co_await comm.recv(rank - 1, piece, /*tag=*/static_cast<int>(j));
    }
    if (rank + 1 < p) {
      forwards.push_back(
          comm.isend(rank + 1, piece, /*tag=*/static_cast<int>(j)));
    }
  }
  co_await comm.wait_all(std::move(forwards));
}

sim::RankTask run_bcast(Algorithm algorithm, sim::Comm comm,
                        std::span<std::byte> buf) {
  if (collective_of(algorithm) != Collective::kBcast) {
    throw SimError("run_bcast: not a bcast algorithm");
  }
  if (!algorithm_supports(algorithm, comm.size())) {
    throw SimError("algorithm " + display_name(algorithm) +
                   " does not support world size " +
                   std::to_string(comm.size()));
  }
  switch (algorithm) {
    case Algorithm::kBcBinomial:
      return bcast_binomial(comm, buf);
    case Algorithm::kBcScatterAllgather:
      return bcast_scatter_allgather(comm, buf);
    case Algorithm::kBcPipelinedRing:
      return bcast_pipelined_ring(comm, buf);
    default:
      throw SimError("unreachable");
  }
}

}  // namespace pml::coll
