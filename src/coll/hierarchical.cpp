#include "coll/hierarchical.hpp"

#include <cstring>
#include <vector>

#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "coll/alltoall.hpp"
#include "coll/bcast.hpp"
#include "common/error.hpp"

namespace pml::coll {

namespace {

using sim::Comm;
using sim::RankTask;
using sim::RequestId;

void charge_reduction(Comm& comm, std::size_t bytes, std::size_t working_set) {
  comm.compute(comm.engine().model().reduction_time(bytes, working_set));
}

/// Per-rank placement of one hierarchical run: the node subgroup spans the
/// ppn world ranks of this rank's node; the leader subgroup strides over
/// the nodes' first ranks.
struct Placement {
  int nodes = 1;
  int ppn = 1;
  int local = 0;     ///< rank within the node (0 == leader)
  int leader = 0;    ///< world rank of this node's leader
};

Placement placement_of(const Comm& comm) {
  const sim::Topology& topo = comm.engine().topology();
  Placement pl;
  pl.nodes = topo.nodes;
  pl.ppn = topo.ppn;
  pl.local = comm.world_rank() % topo.ppn;
  pl.leader = comm.world_rank() - pl.local;
  return pl;
}

}  // namespace

RankTask hier_allgather(Algorithm inter, Algorithm intra, Comm comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv) {
  const Placement pl = placement_of(comm);
  const std::size_t n = send.size();
  Comm local = comm.subgroup(pl.leader, 1, pl.ppn);

  if (pl.local == 0) {
    // Stage the node's super-block (ppn contiguous world blocks) in scratch.
    const std::span<std::byte> stage =
        comm.scratch(static_cast<std::size_t>(pl.ppn) * n, 1);
    if (n > 0 && comm.payload_enabled()) {
      std::memcpy(stage.data(), send.data(), n);
    }
    comm.copy(n, stage.size());
    std::vector<RequestId> reqs;
    reqs.reserve(static_cast<std::size_t>(pl.ppn) - 1);
    for (int l = 1; l < pl.ppn; ++l) {
      reqs.push_back(local.irecv(
          l, stage.subspan(static_cast<std::size_t>(l) * n, n), kHierTagBase));
    }
    co_await local.wait_all(std::move(reqs));

    // Node-major rank layout: leader j's super-block lands at world-block
    // offset j*ppn, so the inner allgather yields the world result directly.
    Comm leaders = comm.subgroup(0, pl.ppn, pl.nodes);
    co_await run_allgather(inter, leaders, stage, recv);
  } else {
    co_await local.send(0, send, kHierTagBase);
  }
  co_await run_bcast(intra, local, recv);
}

RankTask hier_alltoall(Algorithm inter, Comm comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv) {
  const Placement pl = placement_of(comm);
  const int p = pl.nodes * pl.ppn;
  const auto up = static_cast<std::size_t>(p);
  const auto uppn = static_cast<std::size_t>(pl.ppn);
  const std::size_t n = send.size() / up;  // per-block bytes
  Comm local = comm.subgroup(pl.leader, 1, pl.ppn);
  const std::size_t node_bytes = uppn * up * n;

  if (pl.local != 0) {
    co_await local.send(0, send, kHierTagBase);
    co_await local.recv(0, recv, kHierTagBase + 1);
    co_return;
  }

  // Leader staging: [gather_in | packed_out] in slot 0, recv_stage in slot 1.
  const std::span<std::byte> slab = comm.scratch(2 * node_bytes, 0);
  const std::span<std::byte> gather_in = slab.subspan(0, node_bytes);
  const std::span<std::byte> packed_out = slab.subspan(node_bytes, node_bytes);
  const std::span<std::byte> recv_stage = comm.scratch(node_bytes, 1);

  if (!send.empty() && comm.payload_enabled()) {
    std::memcpy(gather_in.data(), send.data(), send.size());
  }
  comm.copy(send.size(), node_bytes);
  {
    std::vector<RequestId> reqs;
    reqs.reserve(static_cast<std::size_t>(pl.ppn) - 1);
    for (int l = 1; l < pl.ppn; ++l) {
      reqs.push_back(local.irecv(
          l,
          gather_in.subspan(static_cast<std::size_t>(l) * up * n, up * n),
          kHierTagBase));
    }
    co_await local.wait_all(std::move(reqs));
  }

  // Pack node-destination super-blocks: for destination node d, the block
  // carries gather_in[lr][d*ppn + dl] at [(d*ppn + lr)*ppn + dl], i.e. the
  // inner alltoall exchanges ppn*ppn*n-byte node pairs.
  if (n > 0 && comm.payload_enabled()) {
    for (std::size_t d = 0; d < static_cast<std::size_t>(pl.nodes); ++d) {
      for (std::size_t lr = 0; lr < uppn; ++lr) {
        const std::size_t src = (lr * up + d * uppn) * n;
        const std::size_t dst = (d * uppn + lr) * uppn * n;
        std::memcpy(packed_out.data() + dst, gather_in.data() + src, uppn * n);
      }
    }
  }
  comm.copy(node_bytes, 2 * node_bytes);

  Comm leaders = comm.subgroup(0, pl.ppn, pl.nodes);
  co_await run_alltoall(inter, leaders, packed_out, recv_stage);

  // Unpack into per-local results (gather_in is dead after the pack) and
  // scatter them: local dl's block from world rank s*ppn+lr sits at
  // recv_stage[((s*ppn + lr)*ppn + dl)*n].
  if (n > 0 && comm.payload_enabled()) {
    for (std::size_t dl = 0; dl < uppn; ++dl) {
      std::byte* out = gather_in.data() + dl * up * n;
      for (std::size_t src = 0; src < up; ++src) {
        const std::size_t from = (src * uppn + dl) * n;
        std::memcpy(out + src * n, recv_stage.data() + from, n);
      }
    }
  }
  comm.copy(node_bytes, 2 * node_bytes);
  {
    std::vector<RequestId> reqs;
    reqs.reserve(static_cast<std::size_t>(pl.ppn) - 1);
    for (int dl = 1; dl < pl.ppn; ++dl) {
      reqs.push_back(local.isend(
          dl,
          gather_in.subspan(static_cast<std::size_t>(dl) * up * n, up * n),
          kHierTagBase + 1));
    }
    if (!recv.empty() && comm.payload_enabled()) {
      std::memcpy(recv.data(), gather_in.data(), recv.size());
    }
    comm.copy(recv.size(), node_bytes);
    co_await local.wait_all(std::move(reqs));
  }
}

RankTask hier_allreduce(Algorithm inter, Algorithm intra, Comm comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv) {
  const Placement pl = placement_of(comm);
  const std::size_t n = send.size();
  Comm local = comm.subgroup(pl.leader, 1, pl.ppn);

  if (n > 0 && comm.payload_enabled()) {
    std::memcpy(recv.data(), send.data(), n);
  }
  comm.copy(n, n);

  // Binomial reduce onto the leader (any ppn): at step k, ranks with bit k
  // set hand their partial sum down and leave; the rest absorb a child.
  const std::span<std::byte> incoming = comm.scratch(n, 1);
  for (int k = 0; (1 << k) < pl.ppn; ++k) {
    const int bit = 1 << k;
    if ((pl.local & bit) != 0) {
      co_await local.send(pl.local - bit, recv, kHierTagBase + k);
      break;
    }
    if (pl.local + bit < pl.ppn) {
      co_await local.recv(pl.local + bit, incoming, kHierTagBase + k);
      if (comm.payload_enabled()) combine_bytes(recv, incoming);
      charge_reduction(comm, n, n);
    }
  }

  if (pl.local == 0) {
    // The inner allreduce copies send into recv up front, so hand it the
    // node partial from scratch rather than aliasing recv with itself.
    if (n > 0 && comm.payload_enabled()) {
      std::memcpy(incoming.data(), recv.data(), n);
    }
    comm.copy(n, n);
    Comm leaders = comm.subgroup(0, pl.ppn, pl.nodes);
    co_await run_allreduce(inter, leaders, incoming, recv);
  }
  co_await run_bcast(intra, local, recv);
}

RankTask hier_bcast(Algorithm inter, Algorithm intra, Comm comm,
                    std::span<std::byte> buf) {
  const Placement pl = placement_of(comm);
  Comm local = comm.subgroup(pl.leader, 1, pl.ppn);
  if (pl.local == 0) {
    Comm leaders = comm.subgroup(0, pl.ppn, pl.nodes);
    co_await run_bcast(inter, leaders, buf);
  }
  co_await run_bcast(intra, local, buf);
}

RankTask run_hierarchical(Selection s, Comm comm,
                          std::span<const std::byte> send,
                          std::span<std::byte> recv) {
  if (!s.hierarchical()) {
    throw SimError("run_hierarchical: flat selection " + s.encode());
  }
  const sim::Topology& topo = comm.engine().topology();
  if (!selection_supports(s, topo)) {
    throw SimError("selection " + s.encode() + " does not support " +
                   std::to_string(topo.nodes) + "x" + std::to_string(topo.ppn));
  }
  switch (s.collective()) {
    case Collective::kAllgather:
      return hier_allgather(s.algorithm, s.intra, comm, send, recv);
    case Collective::kAlltoall:
      return hier_alltoall(s.algorithm, comm, send, recv);
    case Collective::kAllreduce:
      return hier_allreduce(s.algorithm, s.intra, comm, send, recv);
    case Collective::kBcast:
      return hier_bcast(s.algorithm, s.intra, comm, recv);
  }
  throw SimError("unknown collective");
}

}  // namespace pml::coll
