// Flat MPI_Allgather algorithms as simulated rank programs.
//
// Semantics match MPI_Allgather: every rank contributes `block_bytes` from
// `send_block`; on completion `recv_buf` (p * block_bytes) holds rank i's
// contribution at block offset i, on every rank. Payload bytes really move,
// so tests can assert the result bit-for-bit.
#pragma once

#include <cstddef>
#include <span>

#include "coll/collective.hpp"
#include "sim/comm.hpp"

namespace pml::coll {

/// Dispatch to one of the four allgather algorithms.
/// Throws pml::SimError if the algorithm does not support comm.size()
/// (see algorithm_supports).
sim::RankTask run_allgather(Algorithm algorithm, sim::Comm comm,
                            std::span<const std::byte> send_block,
                            std::span<std::byte> recv_buf);

/// Individual algorithms (exposed for targeted tests).
sim::RankTask allgather_recursive_doubling(sim::Comm comm,
                                           std::span<const std::byte> send,
                                           std::span<std::byte> recv);
sim::RankTask allgather_ring(sim::Comm comm, std::span<const std::byte> send,
                             std::span<std::byte> recv);
sim::RankTask allgather_bruck(sim::Comm comm, std::span<const std::byte> send,
                              std::span<std::byte> recv);
sim::RankTask allgather_neighbor_exchange(sim::Comm comm,
                                          std::span<const std::byte> send,
                                          std::span<std::byte> recv);

/// Block set owned by `rank` after `step` rounds of the (generalised,
/// non-power-of-two capable) recursive-doubling schedule. Exposed for tests.
std::vector<int> rd_owned_blocks(int rank, int step, int world);

/// One step of the neighbor-exchange schedule for a given rank.
struct NeighborStep {
  int partner = -1;
  int send_block = -1;   ///< first block index of the chunk sent
  int recv_block = -1;   ///< first block index of the chunk received
  int chunk_blocks = 1;  ///< 1 on step 0, 2 afterwards
};

/// Full neighbor-exchange schedule, plan[rank][step]. Requires even world
/// (or world == 1, yielding empty schedules). Exposed for tests.
std::vector<std::vector<NeighborStep>> neighbor_exchange_plan(int world);

}  // namespace pml::coll
