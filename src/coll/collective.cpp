#include "coll/collective.hpp"

#include "common/error.hpp"

namespace pml::coll {

const std::vector<Collective>& all_collectives() {
  static const std::vector<Collective> all = {
      Collective::kAllgather,
      Collective::kAlltoall,
      Collective::kAllreduce,
      Collective::kBcast,
  };
  return all;
}

const std::vector<Collective>& paper_collectives() {
  static const std::vector<Collective> two = {
      Collective::kAllgather,
      Collective::kAlltoall,
  };
  return two;
}

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kAgRecursiveDoubling: return "rd";
    case Algorithm::kAgRing: return "ring";
    case Algorithm::kAgBruck: return "bruck";
    case Algorithm::kAgRdComm: return "rd_comm";
    case Algorithm::kAaBruck: return "bruck";
    case Algorithm::kAaScatterDest: return "scatter_dest";
    case Algorithm::kAaPairwise: return "pairwise";
    case Algorithm::kAaRecursiveDoubling: return "rd";
    case Algorithm::kAaInplace: return "inplace";
    case Algorithm::kArRecursiveDoubling: return "rd";
    case Algorithm::kArRabenseifner: return "rabenseifner";
    case Algorithm::kArRing: return "ring";
    case Algorithm::kBcBinomial: return "binomial";
    case Algorithm::kBcScatterAllgather: return "scatter_allgather";
    case Algorithm::kBcPipelinedRing: return "pipelined_ring";
  }
  throw ConfigError("unknown algorithm");
}

std::string display_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAgRecursiveDoubling: return "Recursive Doubling";
    case Algorithm::kAgRing: return "Ring";
    case Algorithm::kAgBruck: return "Bruck";
    case Algorithm::kAgRdComm: return "Recursive Doubling Comm";
    case Algorithm::kAaBruck: return "Bruck";
    case Algorithm::kAaScatterDest: return "Scatter_Dest";
    case Algorithm::kAaPairwise: return "Pairwise";
    case Algorithm::kAaRecursiveDoubling: return "Recursive Doubling";
    case Algorithm::kAaInplace: return "Inplace";
    case Algorithm::kArRecursiveDoubling: return "Recursive Doubling";
    case Algorithm::kArRabenseifner: return "Rabenseifner";
    case Algorithm::kArRing: return "Ring";
    case Algorithm::kBcBinomial: return "Binomial Tree";
    case Algorithm::kBcScatterAllgather: return "Scatter-Allgather";
    case Algorithm::kBcPipelinedRing: return "Pipelined Ring";
  }
  throw ConfigError("unknown algorithm");
}

std::string to_string(Collective c) {
  switch (c) {
    case Collective::kAllgather: return "allgather";
    case Collective::kAlltoall: return "alltoall";
    case Collective::kAllreduce: return "allreduce";
    case Collective::kBcast: return "bcast";
  }
  throw ConfigError("unknown collective");
}

Collective collective_from_string(const std::string& name) {
  if (name == "allgather") return Collective::kAllgather;
  if (name == "alltoall") return Collective::kAlltoall;
  if (name == "allreduce") return Collective::kAllreduce;
  if (name == "bcast") return Collective::kBcast;
  throw ConfigError("unknown collective: " + name);
}

Algorithm algorithm_from_string(const std::string& name) {
  // Names are unique per collective but "rd"/"bruck" appear in both; resolve
  // with a collective-qualified form "collective:name" or unqualified when
  // unambiguous.
  const auto qualified = [&](Collective c, const std::string& n) {
    for (const Algorithm a : algorithms_for(c)) {
      if (to_string(a) == n) return a;
    }
    throw ConfigError("unknown algorithm: " + name);
  };
  const auto colon = name.find(':');
  if (colon != std::string::npos) {
    return qualified(collective_from_string(name.substr(0, colon)),
                     name.substr(colon + 1));
  }
  if (name == "rd_comm") return Algorithm::kAgRdComm;
  if (name == "rabenseifner") return Algorithm::kArRabenseifner;
  if (name == "binomial") return Algorithm::kBcBinomial;
  if (name == "scatter_allgather") return Algorithm::kBcScatterAllgather;
  if (name == "pipelined_ring") return Algorithm::kBcPipelinedRing;
  if (name == "scatter_dest") return Algorithm::kAaScatterDest;
  if (name == "pairwise") return Algorithm::kAaPairwise;
  if (name == "inplace") return Algorithm::kAaInplace;
  throw ConfigError("ambiguous algorithm name (qualify as collective:name): " + name);
}

Collective collective_of(Algorithm a) {
  switch (a) {
    case Algorithm::kAgRecursiveDoubling:
    case Algorithm::kAgRing:
    case Algorithm::kAgBruck:
    case Algorithm::kAgRdComm:
      return Collective::kAllgather;
    case Algorithm::kAaBruck:
    case Algorithm::kAaScatterDest:
    case Algorithm::kAaPairwise:
    case Algorithm::kAaRecursiveDoubling:
    case Algorithm::kAaInplace:
      return Collective::kAlltoall;
    case Algorithm::kArRecursiveDoubling:
    case Algorithm::kArRabenseifner:
    case Algorithm::kArRing:
      return Collective::kAllreduce;
    case Algorithm::kBcBinomial:
    case Algorithm::kBcScatterAllgather:
    case Algorithm::kBcPipelinedRing:
      return Collective::kBcast;
  }
  throw ConfigError("unknown algorithm");
}

const std::vector<Algorithm>& algorithms_for(Collective c) {
  static const std::vector<Algorithm> allgather = {
      Algorithm::kAgRecursiveDoubling,
      Algorithm::kAgRing,
      Algorithm::kAgBruck,
      Algorithm::kAgRdComm,
  };
  static const std::vector<Algorithm> alltoall = {
      Algorithm::kAaBruck,
      Algorithm::kAaScatterDest,
      Algorithm::kAaPairwise,
      Algorithm::kAaRecursiveDoubling,
      Algorithm::kAaInplace,
  };
  static const std::vector<Algorithm> allreduce = {
      Algorithm::kArRecursiveDoubling,
      Algorithm::kArRabenseifner,
      Algorithm::kArRing,
  };
  static const std::vector<Algorithm> bcast = {
      Algorithm::kBcBinomial,
      Algorithm::kBcScatterAllgather,
      Algorithm::kBcPipelinedRing,
  };
  switch (c) {
    case Collective::kAllgather: return allgather;
    case Collective::kAlltoall: return alltoall;
    case Collective::kAllreduce: return allreduce;
    case Collective::kBcast: return bcast;
  }
  throw ConfigError("unknown collective");
}

bool algorithm_supports(Algorithm a, int p) {
  if (p < 1) return false;
  switch (a) {
    case Algorithm::kAgRdComm:
      return p == 1 || p % 2 == 0;  // neighbor exchange needs even p
    case Algorithm::kAaRecursiveDoubling:
      return is_power_of_two(p);
    case Algorithm::kArRecursiveDoubling:
    case Algorithm::kArRabenseifner:
      return is_power_of_two(p);  // halving/doubling over a pow2 group
    default:
      return true;
  }
}

std::vector<Algorithm> valid_algorithms(Collective c, int p) {
  std::vector<Algorithm> out;
  for (const Algorithm a : algorithms_for(c)) {
    if (algorithm_supports(a, p)) out.push_back(a);
  }
  return out;
}

}  // namespace pml::coll
