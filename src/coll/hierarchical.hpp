// Hierarchical (leader-based) collective schedules.
//
// Each collective runs in up to three phases composed from the flat
// algorithms over subgroup communicators (sim::Comm::subgroup):
//   1. intra-node staging onto the node leader (world rank node*ppn),
//   2. an inter-node exchange among the leaders using the selection's
//      inter algorithm on the leader subgroup (size = nodes),
//   3. an intra-node fan-out using the selection's intra bcast algorithm
//      on the node subgroup (size = ppn).
// Aggregation turns nodes*ppn NIC flows into nodes flows of bigger
// messages, which is where leader schedules beat flat ones at high PPN.
//
// Semantics are identical to the flat collectives (MPI semantics with root
// 0 / byte-wise wrapping-sum reduce), so runner verification applies
// unchanged.
#pragma once

#include <cstddef>
#include <span>

#include "coll/selection.hpp"
#include "sim/comm.hpp"

namespace pml::coll {

/// Tag base for the staging (gather/scatter) phases; flat algorithms use
/// small tags, so hierarchy phases are collision-free on shared rank pairs.
inline constexpr int kHierTagBase = 32000;

/// Dispatch a hierarchical selection on the *world* communicator.
/// Precondition: s.hierarchical() and selection_supports(s, topology).
/// For bcast, `recv` is the in-place buffer (root world rank 0), matching
/// run_bcast; `send` is ignored.
sim::RankTask run_hierarchical(Selection s, sim::Comm comm,
                               std::span<const std::byte> send,
                               std::span<std::byte> recv);

/// Individual leader schedules (exposed for targeted tests).
sim::RankTask hier_allgather(Algorithm inter, Algorithm intra, sim::Comm comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv);
sim::RankTask hier_alltoall(Algorithm inter, sim::Comm comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv);
sim::RankTask hier_allreduce(Algorithm inter, Algorithm intra, sim::Comm comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv);
sim::RankTask hier_bcast(Algorithm inter, Algorithm intra, sim::Comm comm,
                         std::span<std::byte> buf);

}  // namespace pml::coll
