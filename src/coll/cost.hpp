// Closed-form analytic costs for the flat collective algorithms.
//
// The event engine (runner.hpp) replays every message of a schedule, which
// is exact but O(messages). Building the paper's ~9000-record training
// dataset (18 clusters x node counts x PPN x 21 message sizes x algorithms
// x iterations) and sweeping 16-node/56-PPN benchmark points needs a cost
// path that is O(log p). These formulas are derived from the same
// NetworkModel schedule parameters the engine uses (alpha/beta per link
// class, NIC serialisation across PPN concurrent flows, L3-aware copy
// bandwidth, per-message CPU overhead), so the two paths rank algorithms
// consistently; tests assert their agreement on small configurations.
#pragma once

#include <cstdint>

#include "coll/collective.hpp"
#include "coll/selection.hpp"
#include "common/rng.hpp"
#include "sim/network.hpp"

namespace pml::coll {

/// Deterministic (noise-free) cost in seconds of running `algorithm` with a
/// per-rank block of `block_bytes` on the given model's topology.
/// Precondition: algorithm_supports(algorithm, world).
double analytic_cost(const sim::NetworkModel& model, Algorithm algorithm,
                     std::uint64_t block_bytes);

/// Cost of one lockstep exchange round where each rank sends `bytes` to a
/// partner `distance` ranks away (node-major layout). Exposed for tests.
double round_cost(const sim::NetworkModel& model, std::uint64_t bytes,
                  int distance);

/// A noisy measurement of analytic_cost: multiplies by log-normal jitter
/// and averages `iterations` samples, mirroring how the paper averages
/// repeated benchmark runs to suppress dynamic network effects (§III).
double measured_cost(const sim::NetworkModel& model, Algorithm algorithm,
                     std::uint64_t block_bytes, int iterations, Rng& rng,
                     double noise_sigma);

/// Analytic cost of a structured selection at `topo` on `cluster`. A flat
/// selection costs exactly analytic_cost(NetworkModel(cluster, topo),
/// algorithm, block_bytes); a leader selection composes three models — the
/// world, the leader tier ({nodes, 1}), and one node ({1, ppn}) — into the
/// gather + inter-exchange + fan-out phases of the leader schedules.
/// Precondition: selection_supports(selection, topo).
double analytic_cost(const sim::ClusterSpec& cluster, sim::Topology topo,
                     const Selection& selection, std::uint64_t block_bytes);

/// Noisy-average counterpart of the selection analytic cost (mirrors the
/// algorithm-level measured_cost).
double measured_cost(const sim::ClusterSpec& cluster, sim::Topology topo,
                     const Selection& selection, std::uint64_t block_bytes,
                     int iterations, Rng& rng, double noise_sigma);

}  // namespace pml::coll
