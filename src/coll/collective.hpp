// Collective operations and their flat algorithm sets.
//
// The paper targets the flat (single-level) algorithms of MVAPICH for
// MPI_Allgather and MPI_Alltoall (paper §III). Each algorithm exists in two
// faithful forms here:
//  - an executable schedule against the simulated communicator
//    (allgather.hpp / alltoall.hpp) that moves real bytes, and
//  - a closed-form analytic cost (cost.hpp) derived from the same network
//    model, used for the large benchmark sweeps that build the training
//    dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pml::coll {

/// The two collectives studied in the paper, plus the two the paper's
/// future-work section targets next (implemented here as extensions).
enum class Collective : std::uint8_t {
  kAllgather,
  kAlltoall,
  kAllreduce,  ///< extension (paper §IX future work)
  kBcast,      ///< extension (paper §IX future work)
};

/// All collectives the framework can tune, in enum order.
const std::vector<Collective>& all_collectives();

/// The two collectives evaluated in the paper.
const std::vector<Collective>& paper_collectives();

/// Flat algorithms, grouped by collective (paper §III; allreduce/bcast
/// follow the classic MPICH/MVAPICH flat algorithm sets).
enum class Algorithm : std::uint8_t {
  // MPI_Allgather
  kAgRecursiveDoubling,  ///< pairwise halving/doubling, O(log p) steps
  kAgRing,               ///< logical ring, p-1 steps, bandwidth-optimal
  kAgBruck,              ///< dissemination, ceil(log p) steps, any p
  kAgRdComm,             ///< "Recursive Doubling Communication": the
                         ///< reduced-overhead neighbor-exchange variant,
                         ///< p/2 steps of doubled payloads (even p)
  // MPI_Alltoall
  kAaBruck,              ///< log p store-and-forward phases, small msgs
  kAaScatterDest,        ///< all nonblocking sends/recvs posted at once
  kAaPairwise,           ///< p-1 lockstep XOR/shift exchanges
  kAaRecursiveDoubling,  ///< log p store-and-forward halves (pow2 p)
  kAaInplace,            ///< lockstep in-place exchanges, half-buffer stash
  // MPI_Allreduce (extension)
  kArRecursiveDoubling,  ///< full-vector exchange + combine, log p steps
  kArRabenseifner,       ///< reduce-scatter (halving) + allgather (doubling)
  kArRing,               ///< reduce-scatter ring + allgather ring, 2(p-1)
  // MPI_Bcast (extension)
  kBcBinomial,           ///< binomial tree, log p rounds
  kBcScatterAllgather,   ///< van de Geijn: scatter + ring allgather
  kBcPipelinedRing,      ///< chunked chain pipeline, large messages
};

/// Short identifier used in tuning tables, e.g. "ring", "scatter_dest".
std::string to_string(Algorithm a);

/// Human-oriented name, e.g. "Recursive Doubling".
std::string display_name(Algorithm a);

std::string to_string(Collective c);

/// Parse to_string() output back; throws pml::Error on unknown names.
Algorithm algorithm_from_string(const std::string& name);
Collective collective_from_string(const std::string& name);

/// Which collective an algorithm implements.
Collective collective_of(Algorithm a);

/// All algorithms of a collective, in enum order.
const std::vector<Algorithm>& algorithms_for(Collective c);

/// True when the algorithm supports a world of `p` ranks (e.g. recursive
/// doubling requires a power of two, neighbor exchange an even count).
bool algorithm_supports(Algorithm a, int p);

/// Algorithms of `c` valid at world size `p` (never empty for p >= 1).
std::vector<Algorithm> valid_algorithms(Collective c, int p);

/// True if `p` is a power of two.
constexpr bool is_power_of_two(int p) noexcept {
  return p > 0 && (p & (p - 1)) == 0;
}

/// floor(log2(p)) for p >= 1.
constexpr int floor_log2(int p) noexcept {
  int l = 0;
  while (p > 1) {
    p >>= 1;
    ++l;
  }
  return l;
}

}  // namespace pml::coll
