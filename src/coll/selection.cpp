#include "coll/selection.hpp"

#include <array>
#include <string_view>

#include "common/error.hpp"

namespace pml::coll {

std::string to_string(HierarchyKind kind) {
  switch (kind) {
    case HierarchyKind::kFlat: return "flat";
    case HierarchyKind::kLeader: return "leader";
  }
  throw ConfigError("unknown hierarchy kind");
}

HierarchyKind hierarchy_kind_from_string(const std::string& name) {
  if (name == "flat") return HierarchyKind::kFlat;
  if (name == "leader") return HierarchyKind::kLeader;
  throw ConfigError("unknown hierarchy kind: " + name);
}

std::string Selection::encode() const {
  if (kind == HierarchyKind::kFlat) return to_string(algorithm);
  return "leader:" + to_string(algorithm) + "+" + to_string(intra);
}

std::string Selection::display() const {
  if (kind == HierarchyKind::kFlat) return display_name(algorithm);
  return "Leader (" + display_name(algorithm) + " / " + display_name(intra) +
         ")";
}

Selection Selection::decode(Collective collective, const std::string& text) {
  constexpr std::string_view kLeaderPrefix = "leader:";
  if (text.rfind(kLeaderPrefix, 0) != 0) {
    // A bare algorithm name: the v1 label encoding. Qualify it so
    // collective-ambiguous names ("ring", "rd") resolve in context.
    return Selection::flat(
        algorithm_from_string(to_string(collective) + ":" + text));
  }
  const std::string tiers = text.substr(kLeaderPrefix.size());
  const auto plus = tiers.find('+');
  if (plus == std::string::npos) {
    throw ConfigError("malformed leader selection (want leader:inter+intra): " +
                      text);
  }
  const Algorithm inter = algorithm_from_string(
      to_string(collective) + ":" + tiers.substr(0, plus));
  const Algorithm fanout =
      algorithm_from_string("bcast:" + tiers.substr(plus + 1));
  return Selection::leader(inter, fanout);
}

const std::vector<Algorithm>& intra_fanout_algorithms() {
  // The fan-out tier broadcasts within one node, so any-ppn bcast
  // algorithms only: binomial for latency, pipelined ring for bandwidth.
  static const std::vector<Algorithm> fanouts = {
      Algorithm::kBcBinomial,
      Algorithm::kBcPipelinedRing,
  };
  return fanouts;
}

namespace {

std::vector<Selection> build_selection_space(Collective c) {
  std::vector<Selection> space;
  // The flat prefix in enum order IS label space v1; v1 artifacts index
  // into v2 unchanged.
  for (const Algorithm a : algorithms_for(c)) {
    space.push_back(Selection::flat(a));
  }
  for (const Algorithm inter : algorithms_for(c)) {
    if (c == Collective::kAlltoall) {
      // The leader alltoall scatters per-local results point-to-point, so
      // there is no intra fan-out dimension; one entry per inter algorithm
      // with the intra tier normalised (see Selection::intra).
      space.push_back(Selection::leader(inter, Algorithm::kBcBinomial));
      continue;
    }
    for (const Algorithm fanout : intra_fanout_algorithms()) {
      space.push_back(Selection::leader(inter, fanout));
    }
  }
  return space;
}

}  // namespace

const std::vector<Selection>& selection_space(Collective c) {
  static const std::array<std::vector<Selection>, 4> spaces = {
      build_selection_space(Collective::kAllgather),
      build_selection_space(Collective::kAlltoall),
      build_selection_space(Collective::kAllreduce),
      build_selection_space(Collective::kBcast),
  };
  const auto idx = static_cast<std::size_t>(c);
  if (idx >= spaces.size()) throw ConfigError("unknown collective");
  return spaces[idx];
}

bool selection_supports(const Selection& s, sim::Topology topo) {
  const int world = topo.nodes * topo.ppn;
  if (s.kind == HierarchyKind::kFlat) {
    return algorithm_supports(s.algorithm, world);
  }
  // A leader schedule needs a real two-level structure: multiple nodes for
  // the inter tier and multiple local ranks for staging/fan-out to matter.
  return topo.nodes >= 2 && topo.ppn >= 2 &&
         algorithm_supports(s.algorithm, topo.nodes) &&
         algorithm_supports(s.intra, topo.ppn);
}

std::vector<Selection> valid_selections(Collective c, sim::Topology topo) {
  std::vector<Selection> out;
  for (const Selection& s : selection_space(c)) {
    if (selection_supports(s, topo)) out.push_back(s);
  }
  return out;
}

}  // namespace pml::coll
