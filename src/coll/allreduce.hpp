// Flat MPI_Allreduce algorithms (extension: paper §IX future work).
//
// Semantics match MPI_Allreduce with a byte-wise wrapping-sum operator
// (commutative and associative, valid for any payload size): on
// completion every rank's `recv_buf` holds the element-wise sum (mod 256)
// of all ranks' `send_buf` contributions. Real payloads move and combine,
// so the result is verifiable for any algorithm and world size.
#pragma once

#include <cstddef>
#include <span>

#include "coll/collective.hpp"
#include "sim/comm.hpp"

namespace pml::coll {

/// Byte-wise wrapping sum of `src` into `dst` (the simulator's reduce op).
void combine_bytes(std::span<std::byte> dst, std::span<const std::byte> src);

/// Dispatch to one of the three allreduce algorithms.
/// Throws pml::SimError if the algorithm does not support comm.size().
sim::RankTask run_allreduce(Algorithm algorithm, sim::Comm comm,
                            std::span<const std::byte> send_buf,
                            std::span<std::byte> recv_buf);

sim::RankTask allreduce_recursive_doubling(sim::Comm comm,
                                           std::span<const std::byte> send,
                                           std::span<std::byte> recv);
sim::RankTask allreduce_rabenseifner(sim::Comm comm,
                                     std::span<const std::byte> send,
                                     std::span<std::byte> recv);
sim::RankTask allreduce_ring(sim::Comm comm, std::span<const std::byte> send,
                             std::span<std::byte> recv);

}  // namespace pml::coll
