// Structured algorithm selection: label space v2.
//
// Label space v1 was a flat algorithm id — an index into
// algorithms_for(collective) that leaked through Selector::select,
// TuningTable entries, dataset labels, and the serve protocol as a raw
// int/string. The hierarchical collectives make the label a *composite*
// (hierarchy strategy x per-tier algorithm), so the raw id is replaced by
// coll::Selection: a kind plus tier algorithms with a stable string
// encoding. The canonical candidate list selection_space() defines the v2
// class-label space; its first algorithms_for(c).size() entries are the
// flat algorithms in enum order, i.e. label space v1 is a prefix of v2 and
// v1 artifacts decode losslessly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/collective.hpp"
#include "sim/network.hpp"

namespace pml::coll {

/// Transitional alias for the flat algorithm id. New code should speak
/// Selection; AlgorithmId remains for callers migrating off raw labels.
using AlgorithmId = Algorithm;

/// How a selection schedules the collective across the topology.
enum class HierarchyKind : std::uint8_t {
  kFlat,    ///< one flat algorithm over all ranks (label space v1)
  kLeader,  ///< per-node leader tier: intra-node staging, inter-node
            ///< exchange among node leaders, intra-node fan-out
};

/// Stable identifier ("flat" / "leader") and its inverse; the parse throws
/// pml::ConfigError on unknown names.
std::string to_string(HierarchyKind kind);
HierarchyKind hierarchy_kind_from_string(const std::string& name);

/// A structured algorithm selection: the unit the selector predicts, the
/// tuning table stores, and the serve protocol replies with.
struct Selection {
  HierarchyKind kind = HierarchyKind::kFlat;
  /// Flat: the algorithm. Leader: the inter-node (leader-tier) algorithm,
  /// which determines the collective.
  Algorithm algorithm = Algorithm::kAgRing;
  /// Leader only: the intra-node fan-out tier, drawn from the any-ppn
  /// bcast algorithms (intra_fanout_algorithms()). Normalised to
  /// kBcBinomial for flat selections so equality is structural.
  Algorithm intra = Algorithm::kBcBinomial;

  static Selection flat(Algorithm a) {
    return Selection{HierarchyKind::kFlat, a, Algorithm::kBcBinomial};
  }
  static Selection leader(Algorithm inter, Algorithm fanout) {
    return Selection{HierarchyKind::kLeader, inter, fanout};
  }

  Collective collective() const { return collective_of(algorithm); }
  bool hierarchical() const noexcept { return kind != HierarchyKind::kFlat; }

  /// Stable string encoding: a flat selection encodes as the v1 short name
  /// ("ring"), so every v1 label string is a valid v2 encoding; a leader
  /// selection encodes as "leader:<inter>+<intra>" ("leader:ring+binomial").
  std::string encode() const;

  /// Human-oriented rendering, e.g. "Leader (Ring / Binomial Tree)".
  std::string display() const;

  /// Parse encode() output (or a bare v1 algorithm name) in the context of
  /// `collective`; throws pml::ConfigError on unknown names or a tier
  /// algorithm of the wrong collective.
  static Selection decode(Collective collective, const std::string& text);

  bool operator==(const Selection&) const = default;
};

/// Flat-comparison convenience: a Selection equals an Algorithm iff it is
/// the flat selection of that algorithm. Keeps v1-era assertions readable.
inline bool operator==(const Selection& s, Algorithm a) {
  return s.kind == HierarchyKind::kFlat && s.algorithm == a;
}

/// Intra-node fan-out candidates: the bcast algorithms valid at any ppn.
const std::vector<Algorithm>& intra_fanout_algorithms();

/// The canonical candidate list of `c` — the v2 class-label space. Index
/// order is stable: first the flat algorithms in enum order (== the v1
/// label space), then every (leader-tier algorithm x intra fan-out) combo.
const std::vector<Selection>& selection_space(Collective c);

/// True when `s` can run at `topo`: flat needs algorithm_supports at the
/// world size; leader needs >= 2 nodes, >= 2 ppn, the inter algorithm
/// supported at the node count and the intra fan-out at the ppn.
bool selection_supports(const Selection& s, sim::Topology topo);

/// Selections of `c` valid at `topo` (never empty for world size >= 1).
std::vector<Selection> valid_selections(Collective c, sim::Topology topo);

}  // namespace pml::coll
