#include "coll/allreduce.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace pml::coll {

namespace {

using sim::Comm;
using sim::RankTask;

/// Chunk boundary i of `count` bytes split into `parts` (balanced).
std::size_t chunk_begin(std::size_t count, int parts, int i) {
  return count * static_cast<std::size_t>(i) / static_cast<std::size_t>(parts);
}

void charge_reduction(Comm& comm, std::size_t bytes, std::size_t working_set) {
  comm.compute(comm.engine().model().reduction_time(bytes, working_set));
}

}  // namespace

void combine_bytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  if (dst.size() != src.size()) {
    throw SimError("combine_bytes: operand size mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::byte>(static_cast<unsigned>(dst[i]) +
                                    static_cast<unsigned>(src[i]));
  }
}

sim::RankTask allreduce_recursive_doubling(Comm comm,
                                           std::span<const std::byte> send,
                                           std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = send.size();
  if (recv.size() != n) throw SimError("allreduce: buffer size mismatch");
  if (n > 0 && comm.payload_enabled()) {
    std::memcpy(recv.data(), send.data(), n);
  }
  comm.copy(n, n);
  if (p == 1) co_return;

  const std::span<std::byte> incoming = comm.scratch(n);
  for (int k = 0; (1 << k) < p; ++k) {
    const int partner = rank ^ (1 << k);
    co_await comm.sendrecv(partner, recv, partner, incoming, /*tag=*/k);
    if (comm.payload_enabled()) combine_bytes(recv, incoming);
    charge_reduction(comm, n, n);
  }
}

sim::RankTask allreduce_rabenseifner(Comm comm,
                                     std::span<const std::byte> send,
                                     std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = send.size();
  if (recv.size() != n) throw SimError("allreduce: buffer size mismatch");
  if (n > 0 && comm.payload_enabled()) {
    std::memcpy(recv.data(), send.data(), n);
  }
  comm.copy(n, n);
  if (p == 1) co_return;

  const int m = floor_log2(p);

  // Reduce-scatter by recursive halving: both partners hold the same
  // segment; the lower-bit rank keeps the lower half, the upper-bit rank
  // the upper half, and each combines the partner's copy of its kept half.
  std::size_t seg_begin = 0;
  std::size_t seg_size = n;
  // m = floor_log2(p) < 31 for any int world size; fixed-size step records
  // keep the coroutine body allocation-free.
  std::array<std::size_t, 31> begin_at_step{};
  std::array<std::size_t, 31> size_at_step{};
  for (int k = 0; k < m; ++k) {
    begin_at_step[static_cast<std::size_t>(k)] = seg_begin;
    size_at_step[static_cast<std::size_t>(k)] = seg_size;
    const int partner = rank ^ (1 << k);
    const std::size_t lower = seg_size / 2;
    const std::size_t upper = seg_size - lower;
    const bool keep_lower = (rank & (1 << k)) == 0;

    const std::size_t keep_begin = keep_lower ? seg_begin : seg_begin + lower;
    const std::size_t keep_size = keep_lower ? lower : upper;
    const std::size_t give_begin = keep_lower ? seg_begin + lower : seg_begin;
    const std::size_t give_size = keep_lower ? upper : lower;

    const std::span<std::byte> incoming = comm.scratch(keep_size);
    co_await comm.sendrecv(
        partner,
        std::span<const std::byte>(recv.data() + give_begin, give_size),
        partner, incoming, /*tag=*/k);
    if (comm.payload_enabled()) {
      combine_bytes(std::span<std::byte>(recv.data() + keep_begin, keep_size),
                    incoming);
    }
    charge_reduction(comm, keep_size, n);

    seg_begin = keep_begin;
    seg_size = keep_size;
  }

  // Allgather by recursive doubling, unwinding the halving in reverse:
  // partners exchange their owned (fully reduced) sub-segments, which are
  // the two halves of the step-k parent segment.
  for (int k = m - 1; k >= 0; --k) {
    const int partner = rank ^ (1 << k);
    const std::size_t parent_begin = begin_at_step[static_cast<std::size_t>(k)];
    const std::size_t parent_size = size_at_step[static_cast<std::size_t>(k)];
    const std::size_t lower = parent_size / 2;
    const bool kept_lower = (rank & (1 << k)) == 0;

    const std::size_t mine_begin = kept_lower ? parent_begin : parent_begin + lower;
    const std::size_t mine_size = kept_lower ? lower : parent_size - lower;
    const std::size_t theirs_begin = kept_lower ? parent_begin + lower : parent_begin;
    const std::size_t theirs_size = kept_lower ? parent_size - lower : lower;

    co_await comm.sendrecv(
        partner,
        std::span<const std::byte>(recv.data() + mine_begin, mine_size),
        partner, std::span<std::byte>(recv.data() + theirs_begin, theirs_size),
        /*tag=*/100 + k);
  }
}

sim::RankTask allreduce_ring(Comm comm, std::span<const std::byte> send,
                             std::span<std::byte> recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t n = send.size();
  if (recv.size() != n) throw SimError("allreduce: buffer size mismatch");
  if (n > 0 && comm.payload_enabled()) {
    std::memcpy(recv.data(), send.data(), n);
  }
  comm.copy(n, n);
  if (p == 1) co_return;

  const int right = (rank + 1) % p;
  const int left = (rank - 1 + p) % p;
  auto chunk = [&](int i) {
    const int idx = ((i % p) + p) % p;
    const std::size_t b = chunk_begin(n, p, idx);
    const std::size_t e = chunk_begin(n, p, idx + 1);
    return std::pair<std::size_t, std::size_t>(b, e - b);
  };

  // Phase 1: reduce-scatter ring. After step k, chunk (rank-k-1) holds the
  // partial sum of k+2 contributions; after p-1 steps each rank owns the
  // fully reduced chunk (rank+1).
  for (int k = 0; k < p - 1; ++k) {
    const auto [sb, ss] = chunk(rank - k);
    const auto [rb, rs] = chunk(rank - k - 1);
    const std::span<std::byte> incoming = comm.scratch(rs);
    co_await comm.sendrecv(
        right, std::span<const std::byte>(recv.data() + sb, ss), left,
        incoming, /*tag=*/k);
    if (comm.payload_enabled()) {
      combine_bytes(std::span<std::byte>(recv.data() + rb, rs), incoming);
    }
    charge_reduction(comm, rs, n);
  }

  // Phase 2: allgather ring circulating the reduced chunks.
  for (int k = 0; k < p - 1; ++k) {
    const auto [sb, ss] = chunk(rank + 1 - k);
    const auto [rb, rs] = chunk(rank - k);
    co_await comm.sendrecv(
        right, std::span<const std::byte>(recv.data() + sb, ss), left,
        std::span<std::byte>(recv.data() + rb, rs), /*tag=*/200 + k);
  }
}

sim::RankTask run_allreduce(Algorithm algorithm, sim::Comm comm,
                            std::span<const std::byte> send_buf,
                            std::span<std::byte> recv_buf) {
  if (collective_of(algorithm) != Collective::kAllreduce) {
    throw SimError("run_allreduce: not an allreduce algorithm");
  }
  if (!algorithm_supports(algorithm, comm.size())) {
    throw SimError("algorithm " + display_name(algorithm) +
                   " does not support world size " +
                   std::to_string(comm.size()));
  }
  switch (algorithm) {
    case Algorithm::kArRecursiveDoubling:
      return allreduce_recursive_doubling(comm, send_buf, recv_buf);
    case Algorithm::kArRabenseifner:
      return allreduce_rabenseifner(comm, send_buf, recv_buf);
    case Algorithm::kArRing:
      return allreduce_ring(comm, send_buf, recv_buf);
    default:
      throw SimError("unreachable");
  }
}

}  // namespace pml::coll
