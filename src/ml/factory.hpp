// JSON-parameterised constructors for the four model families of Table II.
#pragma once

#include <memory>
#include <string>

#include "ml/boosting.hpp"
#include "ml/cv.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/svm.hpp"

namespace pml::ml {

/// Build a classifier by family name with JSON hyperparameters. Recognised
/// names: "RandomForest", "GradientBoost", "KNN", "SVM". Unknown keys in
/// `params` are rejected, so typos in grids fail loudly.
std::unique_ptr<Classifier> make_classifier(const std::string& family,
                                            const Json& params);

/// ModelFactory bound to one family (for grid_search).
ModelFactory factory_for(const std::string& family);

}  // namespace pml::ml
