// Evaluation metrics: accuracy, confusion matrix, and the macro
// one-vs-rest ROC AUC the paper uses during cross-validation to guard
// against class imbalance (§V-C).
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace pml::ml {

/// Fraction of matching predictions.
double accuracy(std::span<const int> truth, std::span<const int> predicted);

/// counts[t][p] = rows with true class t predicted as p.
std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> truth, std::span<const int> predicted,
    int num_classes);

/// Binary ROC AUC by the Mann-Whitney statistic: probability that a random
/// positive scores above a random negative (ties count half).
double binary_auc(std::span<const double> scores,
                  std::span<const char> is_positive);

/// Macro-averaged one-vs-rest AUC over the classes present in `truth`.
/// proba row i holds the per-class probability estimates of row i.
double macro_ovr_auc(const Matrix& proba, std::span<const int> truth,
                     int num_classes);

/// Convenience overload for hand-built probability rows (tests, callers
/// without a Matrix); each inner vector must have num_classes entries.
double macro_ovr_auc(const std::vector<std::vector<double>>& proba,
                     std::span<const int> truth, int num_classes);

/// Predict every row of a dataset with a fitted classifier (one
/// predict_batch call; no per-row allocations).
std::vector<int> predict_all(const Classifier& model, const Dataset& data);

/// Per-row class probabilities for a whole dataset, written into the
/// row-major `out` (resized to data rows x num_classes; reuses its
/// allocation across calls). One predict_batch call, zero per-row
/// allocations.
void predict_proba_all(const Classifier& model, const Dataset& data,
                       Matrix& out);

/// Allocating convenience wrapper over the buffer-filling overload.
Matrix predict_proba_all(const Classifier& model, const Dataset& data);

/// Convenience: accuracy of a fitted model on a dataset.
double evaluate_accuracy(const Classifier& model, const Dataset& data);

/// Convenience: macro OvR AUC of a fitted model on a dataset.
double evaluate_auc(const Classifier& model, const Dataset& data);

}  // namespace pml::ml
