#include "ml/flat_forest.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/obs.hpp"

namespace pml::ml {

void FlatForest::clear() {
  nodes_.clear();
  roots_.clear();
  leaf_proba_.clear();
  build_left_.clear();
  n_leaves_ = 0;
  build_base_ = 0;
  min_row_length_ = 0;
  num_classes_ = 0;
  sealed_ = false;
}

void FlatForest::begin_tree() {
  if (sealed_) throw MlError("flat forest: append after finish");
  build_base_ = nodes_.size();
  roots_.push_back(build_base_);
}

void FlatForest::add_split(int feature, double threshold, int left,
                           int right) {
  if (roots_.empty()) throw MlError("flat forest: add_split before begin_tree");
  Node node;
  node.threshold = threshold;
  node.feature = static_cast<std::int32_t>(feature);
  node.slot = static_cast<std::int32_t>(build_base_) + right;
  nodes_.push_back(node);
  build_left_.push_back(static_cast<std::int32_t>(build_base_) + left);
}

void FlatForest::add_leaf(std::span<const double> proba) {
  if (roots_.empty()) throw MlError("flat forest: add_leaf before begin_tree");
  Node node;
  node.feature = -1;
  node.slot = static_cast<std::int32_t>(n_leaves_);
  nodes_.push_back(node);
  build_left_.push_back(-1);
  ++n_leaves_;
  leaf_proba_.insert(leaf_proba_.end(), proba.begin(), proba.end());
}

void FlatForest::finish(int num_classes) {
  if (num_classes < 1) throw MlError("flat forest: num_classes must be >= 1");
  if (roots_.empty()) throw MlError("flat forest: no trees appended");
  num_classes_ = num_classes;
  const auto k = static_cast<std::size_t>(num_classes);
  if (leaf_proba_.size() != n_leaves_ * k) {
    throw MlError("flat forest: pooled leaf buffer holds " +
                  std::to_string(leaf_proba_.size()) + " values for " +
                  std::to_string(n_leaves_) + " leaves of " +
                  std::to_string(num_classes) + " classes");
  }
  const auto n_leaves = static_cast<std::int32_t>(n_leaves_);
  const auto n_nodes = static_cast<std::int32_t>(nodes_.size());
  min_row_length_ = 0;
  for (std::int32_t i = 0; i < n_nodes; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if (node.feature >= 0) {
      const auto f = static_cast<std::size_t>(node.feature);
      min_row_length_ = std::max(min_row_length_, f + 1);
      // Trees serialize in pre-order: a split's left subtree follows it
      // immediately, so left == i + 1 (which the packed record relies on)
      // and the right child points strictly forward; that also proves
      // every walk terminates.
      const std::int32_t l = build_left_[static_cast<std::size_t>(i)];
      if (l != i + 1) {
        throw MlError("flat forest: split node " + std::to_string(i) +
                      " has left child " + std::to_string(l) +
                      ", pre-order requires " + std::to_string(i + 1));
      }
      if (node.slot <= i || node.slot >= n_nodes) {
        throw MlError("flat forest: split node " + std::to_string(i) +
                      " has child outside (" + std::to_string(i) + ", " +
                      std::to_string(n_nodes) + ")");
      }
    } else {
      if (node.slot < 0 || node.slot >= n_leaves) {
        throw MlError("flat forest: leaf node " + std::to_string(i) +
                      " references pooled slot " + std::to_string(node.slot) +
                      " of " + std::to_string(n_leaves));
      }
    }
  }
  build_left_.clear();
  build_left_.shrink_to_fit();
  sealed_ = true;
}

std::span<const double> FlatForest::walk(std::size_t root,
                                         std::span<const double> row) const {
  const Node* const nodes = nodes_.data();
  std::size_t i = root;
  while (nodes[i].feature >= 0) {
    i = row[static_cast<std::size_t>(nodes[i].feature)] <= nodes[i].threshold
            ? i + 1
            : static_cast<std::size_t>(nodes[i].slot);
  }
  return {leaf_proba_.data() + static_cast<std::size_t>(nodes[i].slot) *
                                   static_cast<std::size_t>(num_classes_),
          static_cast<std::size_t>(num_classes_)};
}

void FlatForest::predict_proba_into(std::span<const double> row,
                                    std::span<double> out) const {
  if (!sealed_) throw MlError("flat forest: predict before finish");
  if (out.size() != static_cast<std::size_t>(num_classes_)) {
    throw MlError("flat forest: output buffer holds " +
                  std::to_string(out.size()) + " classes, want " +
                  std::to_string(num_classes_));
  }
  if (row.size() < min_row_length_) {
    throw MlError("flat forest: row has too few features");
  }
  std::fill(out.begin(), out.end(), 0.0);
  for (const std::size_t root : roots_) {
    const auto leaf = walk(root, row);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += leaf[c];
  }
  const auto n_trees = static_cast<double>(roots_.size());
  for (double& p : out) p /= n_trees;
}

std::span<const double> FlatForest::tree_leaf(
    std::size_t tree, std::span<const double> row) const {
  if (!sealed_) throw MlError("flat forest: predict before finish");
  if (tree >= roots_.size()) throw MlError("flat forest: tree out of range");
  if (row.size() < min_row_length_) {
    throw MlError("flat forest: row has too few features");
  }
  return walk(roots_[tree], row);
}

void FlatForest::predict_batch(const Matrix& rows, Matrix& out) const {
  // Batch validation happens once here, not per row: the kernel below walks
  // unchecked.
  if (!sealed_) throw MlError("flat forest: predict before finish");
  const auto k = static_cast<std::size_t>(num_classes_);
  if (out.rows() != rows.rows() || out.cols() != k) {
    throw MlError("flat forest: predict_batch output shape is " +
                  std::to_string(out.rows()) + "x" +
                  std::to_string(out.cols()) + ", want " +
                  std::to_string(rows.rows()) + "x" + std::to_string(k) +
                  " (rows x num_classes)");
  }
  if (rows.cols() < min_row_length_) {
    throw MlError("flat forest: batch rows carry " +
                  std::to_string(rows.cols()) +
                  " features, walks reference up to feature " +
                  std::to_string(min_row_length_ - 1));
  }
  const std::size_t n = rows.rows();
  if (n == 0) return;
  static obs::Counter batch_calls("ml.batch.calls");
  static obs::Counter batch_rows("ml.batch.rows");
  batch_calls.increment();
  batch_rows.add(n);

  // Tree-major blocked traversal (header comment). Rows are processed in
  // blocks sized so the block's output rows and the tree's top levels stay
  // cache-resident while every tree re-walks the block; within a block
  // kLanes row-walks advance in lockstep so their dependent node loads
  // overlap. Each lane's advance is branchless — a parked lane (one that
  // reached its leaf) keeps re-selecting its own index via cmov instead of
  // taking a data-dependent branch, so the only branch in the steady state
  // is the well-predicted "any lane still active" loop check. That is
  // where the speedup over the scalar walk comes from: per split the
  // scalar path pays an unpredictable x-vs-threshold branch, the lanes pay
  // a conditional move. Each row still accumulates tree 0..T in sequence
  // and divides once, so the output is byte-identical to the scalar path.
  constexpr std::size_t kBlock = 64;
  constexpr std::size_t kLanes = 8;
  const Node* const nodes = nodes_.data();
  const double* const leaves = leaf_proba_.data();
  const auto n_trees = static_cast<double>(roots_.size());

  const auto accumulate = [&](std::size_t leaf_node, std::span<double> o) {
    const double* const p =
        leaves + static_cast<std::size_t>(nodes[leaf_node].slot) * k;
    for (std::size_t c = 0; c < k; ++c) o[c] += p[c];
  };

  // The branchless advance reads x[0] on parked lanes (the index select
  // discards the result); that needs at least one feature column to exist.
  // A forest with min_row_length_ == 0 is all single-leaf trees and may
  // legitimately see 0-column batches, so route it through the guarded
  // scalar walk instead.
  const bool lanes_ok = rows.cols() > 0;

  for (std::size_t b0 = 0; b0 < n; b0 += kBlock) {
    const std::size_t b1 = std::min(n, b0 + kBlock);
    for (std::size_t r = b0; r < b1; ++r) {
      const auto o = out.row(r);
      std::fill(o.begin(), o.end(), 0.0);
    }
    for (const std::size_t root : roots_) {
      std::size_t r = b0;
      for (; lanes_ok && r + kLanes <= b1; r += kLanes) {
        const double* x[kLanes];
        std::size_t idx[kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
          x[l] = rows.row(r + l).data();
          idx[l] = root;
        }
        for (;;) {
          std::size_t active = 0;
          for (std::size_t l = 0; l < kLanes; ++l) {
            const Node nd = nodes[idx[l]];
            // All-ones masks instead of ternaries: GCC compiles the
            // x-vs-threshold ternary to a jump, which reintroduces the
            // per-split misprediction this kernel exists to avoid.
            const auto go_mask = static_cast<std::size_t>(
                -static_cast<std::ptrdiff_t>(nd.feature >= 0));
            // Parked lanes load x[0] (valid: lanes_ok) and discard it.
            const std::size_t f =
                static_cast<std::size_t>(
                    static_cast<std::uint32_t>(nd.feature)) &
                go_mask;
            const auto le_mask = static_cast<std::size_t>(
                -static_cast<std::ptrdiff_t>(x[l][f] <= nd.threshold));
            const std::size_t next =
                ((idx[l] + 1) & le_mask) |
                (static_cast<std::size_t>(static_cast<std::uint32_t>(nd.slot)) &
                 ~le_mask);
            idx[l] = (next & go_mask) | (idx[l] & ~go_mask);
            active |= go_mask;
          }
          if (!active) break;
        }
        for (std::size_t l = 0; l < kLanes; ++l) {
          accumulate(idx[l], out.row(r + l));
        }
      }
      for (; r < b1; ++r) {
        const auto leaf = walk(root, rows.row(r));
        const auto o = out.row(r);
        for (std::size_t c = 0; c < k; ++c) o[c] += leaf[c];
      }
    }
    for (std::size_t r = b0; r < b1; ++r) {
      for (double& p : out.row(r)) p /= n_trees;
    }
  }
}

}  // namespace pml::ml
