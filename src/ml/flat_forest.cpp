#include "ml/flat_forest.hpp"

#include <algorithm>
#include <string>

namespace pml::ml {

void FlatForest::clear() {
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  roots_.clear();
  leaf_proba_.clear();
  n_leaves_ = 0;
  build_base_ = 0;
  min_row_length_ = 0;
  num_classes_ = 0;
  sealed_ = false;
}

void FlatForest::begin_tree() {
  if (sealed_) throw MlError("flat forest: append after finish");
  build_base_ = feature_.size();
  roots_.push_back(build_base_);
}

void FlatForest::add_split(int feature, double threshold, int left,
                           int right) {
  if (roots_.empty()) throw MlError("flat forest: add_split before begin_tree");
  feature_.push_back(static_cast<std::int32_t>(feature));
  threshold_.push_back(threshold);
  left_.push_back(static_cast<std::int32_t>(build_base_) + left);
  right_.push_back(static_cast<std::int32_t>(build_base_) + right);
}

void FlatForest::add_leaf(std::span<const double> proba) {
  if (roots_.empty()) throw MlError("flat forest: add_leaf before begin_tree");
  feature_.push_back(-1);
  threshold_.push_back(0.0);
  left_.push_back(static_cast<std::int32_t>(n_leaves_));
  right_.push_back(-1);
  ++n_leaves_;
  leaf_proba_.insert(leaf_proba_.end(), proba.begin(), proba.end());
}

void FlatForest::finish(int num_classes) {
  if (num_classes < 1) throw MlError("flat forest: num_classes must be >= 1");
  if (roots_.empty()) throw MlError("flat forest: no trees appended");
  num_classes_ = num_classes;
  const auto k = static_cast<std::size_t>(num_classes);
  if (leaf_proba_.size() != n_leaves_ * k) {
    throw MlError("flat forest: pooled leaf buffer holds " +
                  std::to_string(leaf_proba_.size()) + " values for " +
                  std::to_string(n_leaves_) + " leaves of " +
                  std::to_string(num_classes) + " classes");
  }
  const auto n_leaves = static_cast<std::int32_t>(n_leaves_);
  const auto n_nodes = static_cast<std::int32_t>(feature_.size());
  min_row_length_ = 0;
  for (std::int32_t i = 0; i < n_nodes; ++i) {
    if (feature_[static_cast<std::size_t>(i)] >= 0) {
      const auto f =
          static_cast<std::size_t>(feature_[static_cast<std::size_t>(i)]);
      min_row_length_ = std::max(min_row_length_, f + 1);
      const std::int32_t l = left_[static_cast<std::size_t>(i)];
      const std::int32_t r = right_[static_cast<std::size_t>(i)];
      // Trees serialize children in pre-order, so both ids point forward;
      // that also proves every walk terminates.
      if (l <= i || l >= n_nodes || r <= i || r >= n_nodes) {
        throw MlError("flat forest: split node " + std::to_string(i) +
                      " has child outside (" + std::to_string(i) + ", " +
                      std::to_string(n_nodes) + ")");
      }
    } else {
      const std::int32_t leaf = left_[static_cast<std::size_t>(i)];
      if (leaf < 0 || leaf >= n_leaves) {
        throw MlError("flat forest: leaf node " + std::to_string(i) +
                      " references pooled slot " + std::to_string(leaf) +
                      " of " + std::to_string(n_leaves));
      }
    }
  }
  sealed_ = true;
}

std::span<const double> FlatForest::walk(std::size_t root,
                                         std::span<const double> row) const {
  std::size_t k = root;
  while (feature_[k] >= 0) {
    k = static_cast<std::size_t>(row[static_cast<std::size_t>(feature_[k])] <=
                                         threshold_[k]
                                     ? left_[k]
                                     : right_[k]);
  }
  return {leaf_proba_.data() +
              static_cast<std::size_t>(left_[k]) *
                  static_cast<std::size_t>(num_classes_),
          static_cast<std::size_t>(num_classes_)};
}

void FlatForest::predict_proba_into(std::span<const double> row,
                                    std::span<double> out) const {
  if (!sealed_) throw MlError("flat forest: predict before finish");
  if (out.size() != static_cast<std::size_t>(num_classes_)) {
    throw MlError("flat forest: output buffer holds " +
                  std::to_string(out.size()) + " classes, want " +
                  std::to_string(num_classes_));
  }
  if (row.size() < min_row_length_) {
    throw MlError("flat forest: row has too few features");
  }
  std::fill(out.begin(), out.end(), 0.0);
  for (const std::size_t root : roots_) {
    const auto leaf = walk(root, row);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += leaf[c];
  }
  const auto n_trees = static_cast<double>(roots_.size());
  for (double& p : out) p /= n_trees;
}

std::span<const double> FlatForest::tree_leaf(
    std::size_t tree, std::span<const double> row) const {
  if (!sealed_) throw MlError("flat forest: predict before finish");
  if (tree >= roots_.size()) throw MlError("flat forest: tree out of range");
  if (row.size() < min_row_length_) {
    throw MlError("flat forest: row has too few features");
  }
  return walk(roots_[tree], row);
}

void FlatForest::predict_batch(const Matrix& rows, Matrix& out) const {
  if (!sealed_) throw MlError("flat forest: predict before finish");
  if (out.rows() != rows.rows() ||
      out.cols() != static_cast<std::size_t>(num_classes_)) {
    throw MlError("flat forest: predict_batch output shape mismatch");
  }
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    predict_proba_into(rows.row(r), out.row(r));
  }
}

}  // namespace pml::ml
