// Cross-validation and hyperparameter grid search.
//
// The paper tunes every model with "extensive hyperparameter tuning" and
// scores cross-validation folds by AUC rather than accuracy to resist
// class imbalance (§V-C). Grid candidates are JSON objects so every model
// family shares one search loop; a factory lambda turns a candidate into a
// fresh classifier.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"

namespace pml::ml {

using ModelFactory = std::function<std::unique_ptr<Classifier>(const Json&)>;

/// Mean of a fold-wise metric under stratified k-fold cross-validation.
/// metric: "auc" (default, as in the paper) or "accuracy".
double cross_val_score(const ModelFactory& factory, const Json& params,
                       const Dataset& data, int folds, Rng& rng,
                       const std::string& metric = "auc");

struct GridSearchResult {
  Json best_params;
  double best_score = 0.0;
  std::vector<std::pair<Json, double>> all_scores;  // candidate -> CV score
};

/// Exhaustive search over candidate parameter sets, CV-scored by `metric`.
GridSearchResult grid_search(const ModelFactory& factory,
                             const std::vector<Json>& candidates,
                             const Dataset& data, int folds, Rng& rng,
                             const std::string& metric = "auc");

/// Cartesian product of per-key value lists, e.g.
/// {"n_trees": [50,100], "max_depth": [8,-1]} -> 4 candidates.
std::vector<Json> param_grid(
    const std::vector<std::pair<std::string, std::vector<Json>>>& axes);

}  // namespace pml::ml
