// Linear SVM, one-vs-rest, trained with the Pegasos stochastic subgradient
// method on standardised features.
#pragma once

#include "ml/model.hpp"

namespace pml::ml {

struct SvmParams {
  double lambda = 1e-3;  ///< L2 regularisation strength
  int epochs = 20;       ///< passes over the training set
};

class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(SvmParams params = {}) : params_(params) {}

  std::string name() const override { return "SVM"; }
  void fit(const Dataset& train, Rng& rng) override;
  std::vector<double> predict_proba(std::span<const double> row) const override;

  const SvmParams& params() const noexcept { return params_; }

  /// Raw one-vs-rest margins (before the softmax calibration).
  std::vector<double> decision_function(std::span<const double> row) const;

 private:
  SvmParams params_;
  Standardizer scaler_;
  std::vector<std::vector<double>> weights_;  // per class, + bias at the end
};

}  // namespace pml::ml
