// Common classifier interface.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace pml::ml {

/// Abstract multiclass classifier. Implementations: RandomForest,
/// GradientBoosting, Knn, LinearSvm (the four models of paper Table II).
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual std::string name() const = 0;

  /// Train on the dataset; all stochastic choices flow through `rng`.
  virtual void fit(const Dataset& train, Rng& rng) = 0;

  /// Class-probability estimates for one feature row (size num_classes()).
  virtual std::vector<double> predict_proba(
      std::span<const double> row) const = 0;

  /// predict_proba written into a caller-owned buffer of size num_classes().
  /// Hot-path entry point: overrides (RandomForest, GradientBoosting) are
  /// allocation-free, so callers that reuse `out` across rows never touch
  /// the heap. The default falls back to predict_proba.
  virtual void predict_proba_into(std::span<const double> row,
                                  std::span<double> out) const {
    const auto p = predict_proba(row);
    if (out.size() != p.size()) {
      throw MlError(name() + ": proba buffer holds " +
                    std::to_string(out.size()) + " classes, want " +
                    std::to_string(p.size()));
    }
    std::copy(p.begin(), p.end(), out.begin());
  }

  /// Argmax of predict_proba.
  virtual int predict(std::span<const double> row) const {
    const auto p = predict_proba(row);
    return static_cast<int>(
        std::max_element(p.begin(), p.end()) - p.begin());
  }

  int num_classes() const noexcept { return num_classes_; }
  bool fitted() const noexcept { return num_classes_ > 0; }

 protected:
  void require_fitted() const {
    if (!fitted()) throw MlError(name() + ": predict before fit");
  }

  int num_classes_ = 0;
};

}  // namespace pml::ml
