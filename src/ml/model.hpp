// Common classifier interface.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace pml::ml {

/// Abstract multiclass classifier. Implementations: RandomForest,
/// GradientBoosting, Knn, LinearSvm (the four models of paper Table II).
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual std::string name() const = 0;

  /// Train on the dataset; all stochastic choices flow through `rng`.
  virtual void fit(const Dataset& train, Rng& rng) = 0;

  /// Class-probability estimates for one feature row (size num_classes()).
  virtual std::vector<double> predict_proba(
      std::span<const double> row) const = 0;

  /// predict_proba written into a caller-owned buffer of size num_classes().
  /// Hot-path entry point: overrides (RandomForest, GradientBoosting) are
  /// allocation-free, so callers that reuse `out` across rows never touch
  /// the heap. The default falls back to predict_proba.
  virtual void predict_proba_into(std::span<const double> row,
                                  std::span<double> out) const {
    const auto p = predict_proba(row);
    if (out.size() != p.size()) {
      throw MlError(name() + ": proba buffer holds " +
                    std::to_string(out.size()) + " classes, want " +
                    std::to_string(p.size()));
    }
    std::copy(p.begin(), p.end(), out.begin());
  }

  /// Class probabilities for every row of `rows`, written into the
  /// row-major `out` (rows.rows() x num_classes()). The default loops
  /// predict_proba_into with one shape validation up front; RandomForest
  /// overrides it with the FlatForest tree-major blocked kernel. Either
  /// way out[r] is bit-identical to predict_proba_into(rows.row(r)).
  virtual void predict_batch(const Matrix& rows, Matrix& out) const {
    const auto k = static_cast<std::size_t>(num_classes());
    if (out.rows() != rows.rows() || out.cols() != k) {
      throw MlError(name() + ": predict_batch output shape is " +
                    std::to_string(out.rows()) + "x" +
                    std::to_string(out.cols()) + ", want " +
                    std::to_string(rows.rows()) + "x" + std::to_string(k) +
                    " (rows x num_classes)");
    }
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      predict_proba_into(rows.row(r), out.row(r));
    }
  }

  /// Argmax of predict_proba.
  virtual int predict(std::span<const double> row) const {
    const auto p = predict_proba(row);
    return static_cast<int>(
        std::max_element(p.begin(), p.end()) - p.begin());
  }

  int num_classes() const noexcept { return num_classes_; }
  bool fitted() const noexcept { return num_classes_ > 0; }

 protected:
  void require_fitted() const {
    if (!fitted()) throw MlError(name() + ": predict before fit");
  }

  int num_classes_ = 0;
};

}  // namespace pml::ml
