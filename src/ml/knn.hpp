// K-nearest-neighbours classifier over standardised features.
#pragma once

#include "ml/model.hpp"

namespace pml::ml {

struct KnnParams {
  int k = 5;
  bool distance_weighted = false;  ///< 1/d vote weights instead of uniform
};

class Knn final : public Classifier {
 public:
  explicit Knn(KnnParams params = {}) : params_(params) {}

  std::string name() const override { return "KNN"; }
  void fit(const Dataset& train, Rng& rng) override;
  std::vector<double> predict_proba(std::span<const double> row) const override;

  const KnnParams& params() const noexcept { return params_; }

 private:
  KnnParams params_;
  Standardizer scaler_;
  Matrix x_;             // standardised training rows
  std::vector<int> y_;
};

}  // namespace pml::ml
