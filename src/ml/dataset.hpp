// Tabular dataset container and feature standardisation.
//
// The ML substrate replaces the paper's scikit-learn 1.2.2 dependency with
// from-scratch C++ implementations of the same model classes. A Dataset is
// a dense row-major feature matrix with integer class labels and named
// columns (the 14 MPI-specific + hardware features of paper §V-A).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pml::ml {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Append one row; its length must equal cols() (or define cols if empty).
  void push_row(std::span<const double> row);

  /// Reshape to rows x cols with every element zeroed. Reuses the existing
  /// allocation when capacity allows, so batch consumers can recycle one
  /// Matrix across calls without touching the heap in steady state.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Feature matrix + labels + metadata.
struct Dataset {
  Matrix x;
  std::vector<int> y;
  int num_classes = 0;
  std::vector<std::string> feature_names;
  std::vector<std::string> class_names;

  std::size_t size() const noexcept { return y.size(); }

  /// Consistency check; throws MlError on shape/label violations.
  void validate() const;

  /// Subset by row indices (labels and features copied).
  Dataset subset(std::span<const std::size_t> indices) const;
};

/// Split of a dataset into train and test index sets.
struct TrainTestSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random split with the given train fraction (paper: 70/30), shuffled by
/// `rng`. Guarantees at least one row on each side for fractions in (0,1).
TrainTestSplit random_split(std::size_t n, double train_fraction, Rng& rng);

/// Stratified k-fold indices: fold f's test set has roughly equal class
/// proportions. Returns k (train, test) pairs.
std::vector<TrainTestSplit> stratified_kfold(std::span<const int> labels,
                                             int folds, Rng& rng);

/// Per-feature affine standardiser (zero mean, unit variance on fit data).
class Standardizer {
 public:
  void fit(const Matrix& x);
  bool fitted() const noexcept { return !mean_.empty(); }

  Matrix transform(const Matrix& x) const;
  std::vector<double> transform_row(std::span<const double> row) const;

  std::span<const double> mean() const noexcept { return mean_; }
  std::span<const double> stddev() const noexcept { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace pml::ml
