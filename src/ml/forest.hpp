// Random Forest classifier — the model the paper selects (Table II) and
// ships pre-trained with the MPI library.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/json.hpp"
#include "ml/flat_forest.hpp"
#include "ml/model.hpp"
#include "ml/tree.hpp"

namespace pml::ml {

struct RandomForestParams {
  int n_trees = 100;
  int max_depth = -1;
  int min_samples_leaf = 1;
  /// Features tried per split; -1 = floor(sqrt(total)) (sklearn default).
  int max_features = -1;
  bool bootstrap = true;
  /// Threads used by fit(); <= 0 = all hardware threads, 1 = serial. Purely
  /// a runtime knob: per-tree RNG streams are pre-split sequentially before
  /// dispatch, so the fitted model (and its JSON) is bit-identical at any
  /// thread count. Not serialized with the model.
  int threads = 0;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestParams params = {}) : params_(params) {}

  std::string name() const override { return "RandomForest"; }
  void fit(const Dataset& train, Rng& rng) override;
  std::vector<double> predict_proba(std::span<const double> row) const override;

  /// Allocation-free prediction through the flattened forest (bit-identical
  /// to the per-tree node walk).
  void predict_proba_into(std::span<const double> row,
                          std::span<double> out) const override;

  /// Batched prediction through the FlatForest tree-major blocked kernel;
  /// `out` must be rows.rows() x num_classes(). Byte-identical to calling
  /// predict_proba_into row by row.
  void predict_batch(const Matrix& rows, Matrix& out) const override;

  /// The structure-of-arrays representation used for inference (rebuilt by
  /// fit() and from_json()).
  const FlatForest& flat() const noexcept { return flat_; }

  /// Normalised Gini-decrease feature importances (sum to 1): per-feature
  /// impurity decreases accumulated across all trees, as described in
  /// paper §V-A.
  std::vector<double> feature_importances() const;

  /// Out-of-bag accuracy estimate (only when bootstrap was enabled).
  std::optional<double> oob_score() const noexcept { return oob_score_; }

  const RandomForestParams& params() const noexcept { return params_; }
  std::size_t tree_count() const noexcept { return trees_.size(); }

  Json to_json() const;
  static RandomForest from_json(const Json& j);

 private:
  /// Rebuild flat_ from trees_ (after fit or deserialization).
  void rebuild_flat();

  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
  FlatForest flat_;
  std::size_t n_features_ = 0;
  std::optional<double> oob_score_;
};

}  // namespace pml::ml
