// Multiclass gradient boosting (Friedman) with regression-tree weak
// learners and softmax coupling — the "GradientBoost" column of Table II.
#pragma once

#include <vector>

#include "ml/model.hpp"
#include "ml/tree.hpp"

namespace pml::ml {

struct GradientBoostingParams {
  int n_rounds = 100;
  double learning_rate = 0.1;
  int max_depth = 3;
  int min_samples_leaf = 1;
  double subsample = 1.0;  ///< fraction of rows per round (stochastic GBM)
};

class GradientBoosting final : public Classifier {
 public:
  explicit GradientBoosting(GradientBoostingParams params = {})
      : params_(params) {}

  std::string name() const override { return "GradientBoost"; }
  void fit(const Dataset& train, Rng& rng) override;
  std::vector<double> predict_proba(std::span<const double> row) const override;

  /// Allocation-free scoring: accumulates the per-stage Newton steps and
  /// softmaxes directly in `out` (size num_classes()).
  void predict_proba_into(std::span<const double> row,
                          std::span<double> out) const override;

  const GradientBoostingParams& params() const noexcept { return params_; }
  std::size_t round_count() const noexcept {
    return stages_.empty() ? 0 : stages_.size();
  }

 private:
  GradientBoostingParams params_;
  std::vector<double> base_score_;                  // per-class prior logit
  std::vector<std::vector<RegressionTree>> stages_; // [round][class]
};

}  // namespace pml::ml
