#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pml::ml {

void LinearSvm::fit(const Dataset& train, Rng& rng) {
  train.validate();
  if (params_.lambda <= 0.0) throw MlError("svm: lambda must be positive");
  if (params_.epochs < 1) throw MlError("svm: epochs must be >= 1");
  num_classes_ = train.num_classes;
  scaler_.fit(train.x);
  const Matrix x = scaler_.transform(train.x);
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  weights_.assign(static_cast<std::size_t>(num_classes_),
                  std::vector<double>(d + 1, 0.0));

  // Pegasos: at step t, eta = 1 / (lambda * t); update on one random row.
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    auto& w = weights_[c];
    std::size_t t = 0;
    for (int epoch = 0; epoch < params_.epochs; ++epoch) {
      for (std::size_t step = 0; step < n; ++step) {
        ++t;
        const auto i = static_cast<std::size_t>(rng.uniform_index(n));
        const auto row = x.row(i);
        const double label = train.y[i] == static_cast<int>(c) ? 1.0 : -1.0;
        double margin = w[d];
        for (std::size_t f = 0; f < d; ++f) margin += w[f] * row[f];
        const double eta = 1.0 / (params_.lambda * static_cast<double>(t));
        const double shrink = 1.0 - eta * params_.lambda;
        for (std::size_t f = 0; f < d; ++f) w[f] *= shrink;
        if (label * margin < 1.0) {
          for (std::size_t f = 0; f < d; ++f) w[f] += eta * label * row[f];
          w[d] += eta * label;  // unregularised bias
        }
      }
    }
  }
}

std::vector<double> LinearSvm::decision_function(
    std::span<const double> row) const {
  require_fitted();
  const auto q = scaler_.transform_row(row);
  std::vector<double> margins(weights_.size(), 0.0);
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    const auto& w = weights_[c];
    double m = w[q.size()];
    for (std::size_t f = 0; f < q.size(); ++f) m += w[f] * q[f];
    margins[c] = m;
  }
  return margins;
}

std::vector<double> LinearSvm::predict_proba(
    std::span<const double> row) const {
  auto scores = decision_function(row);
  const double mx = *std::max_element(scores.begin(), scores.end());
  double sum = 0.0;
  for (double& s : scores) {
    s = std::exp(s - mx);
    sum += s;
  }
  for (double& s : scores) s /= sum;
  return scores;
}

}  // namespace pml::ml
