#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pml::ml {

void Knn::fit(const Dataset& train, Rng& /*rng*/) {
  train.validate();
  if (params_.k < 1) throw MlError("knn: k must be >= 1");
  num_classes_ = train.num_classes;
  scaler_.fit(train.x);
  x_ = scaler_.transform(train.x);
  y_ = train.y;
}

std::vector<double> Knn::predict_proba(std::span<const double> row) const {
  require_fitted();
  const auto q = scaler_.transform_row(row);
  const std::size_t n = x_.rows();
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(params_.k), n);

  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = x_.row(i);
    double d = 0.0;
    for (std::size_t c = 0; c < q.size(); ++c) {
      const double diff = r[c] - q[c];
      d += diff * diff;
    }
    dist[i] = {d, i};
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());

  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const double w = params_.distance_weighted
                         ? 1.0 / (std::sqrt(dist[i].first) + 1e-9)
                         : 1.0;
    votes[static_cast<std::size_t>(y_[dist[i].second])] += w;
  }
  const double total = std::accumulate(votes.begin(), votes.end(), 0.0);
  for (double& v : votes) v /= total;
  return votes;
}

}  // namespace pml::ml
