#include "ml/metrics.hpp"

#include <algorithm>
#include <numeric>

namespace pml::ml {

double accuracy(std::span<const int> truth, std::span<const int> predicted) {
  if (truth.size() != predicted.size() || truth.empty()) {
    throw MlError("accuracy: size mismatch or empty input");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    hits += truth[i] == predicted[i] ? 1u : 0u;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> truth, std::span<const int> predicted,
    int num_classes) {
  if (truth.size() != predicted.size()) {
    throw MlError("confusion_matrix: size mismatch");
  }
  std::vector<std::vector<std::size_t>> counts(
      static_cast<std::size_t>(num_classes),
      std::vector<std::size_t>(static_cast<std::size_t>(num_classes), 0));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    counts.at(static_cast<std::size_t>(truth[i]))
        .at(static_cast<std::size_t>(predicted[i]))++;
  }
  return counts;
}

double binary_auc(std::span<const double> scores,
                  std::span<const char> is_positive) {
  if (scores.size() != is_positive.size() || scores.empty()) {
    throw MlError("binary_auc: size mismatch or empty input");
  }
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Average ranks over ties, then the Mann-Whitney U statistic.
  std::vector<double> rank(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double avg_rank = 0.5 * (static_cast<double>(i) +
                                   static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }

  double pos_rank_sum = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t k = 0; k < scores.size(); ++k) {
    if (is_positive[k]) {
      pos_rank_sum += rank[k];
      ++n_pos;
    }
  }
  const std::size_t n_neg = scores.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) {
    throw MlError("binary_auc: needs both classes present");
  }
  const double u = pos_rank_sum -
                   static_cast<double>(n_pos) *
                       (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

namespace {

/// Shared macro-OvR core over any row accessor (Matrix row or vector row).
template <typename RowAt>
double macro_ovr_auc_impl(std::size_t n_rows, RowAt row_at,
                          std::span<const int> truth, int num_classes) {
  if (n_rows != truth.size() || n_rows == 0) {
    throw MlError("macro_ovr_auc: size mismatch or empty input");
  }
  double total = 0.0;
  int classes_scored = 0;
  std::vector<double> scores(truth.size());
  std::vector<char> positive(truth.size());
  for (int c = 0; c < num_classes; ++c) {
    std::size_t n_pos = 0;
    for (std::size_t r = 0; r < truth.size(); ++r) {
      scores[r] = row_at(r)[static_cast<std::size_t>(c)];
      positive[r] = truth[r] == c ? 1 : 0;
      n_pos += positive[r] ? 1u : 0u;
    }
    if (n_pos == 0 || n_pos == truth.size()) continue;  // class absent
    total += binary_auc(scores, positive);
    ++classes_scored;
  }
  if (classes_scored == 0) {
    throw MlError("macro_ovr_auc: no class has both positives and negatives");
  }
  return total / classes_scored;
}

}  // namespace

double macro_ovr_auc(const Matrix& proba, std::span<const int> truth,
                     int num_classes) {
  return macro_ovr_auc_impl(
      proba.rows(), [&](std::size_t r) { return proba.row(r); }, truth,
      num_classes);
}

double macro_ovr_auc(const std::vector<std::vector<double>>& proba,
                     std::span<const int> truth, int num_classes) {
  return macro_ovr_auc_impl(
      proba.size(), [&](std::size_t r) { return std::span(proba[r]); }, truth,
      num_classes);
}

std::vector<int> predict_all(const Classifier& model, const Dataset& data) {
  // One predict_batch call (forest: the tree-major blocked kernel), then an
  // argmax pass over the shared probability matrix — nothing per row.
  Matrix proba;
  predict_proba_all(model, data, proba);
  std::vector<int> out;
  out.reserve(proba.rows());
  for (std::size_t r = 0; r < proba.rows(); ++r) {
    const auto p = proba.row(r);
    out.push_back(
        static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin()));
  }
  return out;
}

void predict_proba_all(const Classifier& model, const Dataset& data,
                       Matrix& out) {
  out.resize(data.x.rows(), static_cast<std::size_t>(model.num_classes()));
  model.predict_batch(data.x, out);
}

Matrix predict_proba_all(const Classifier& model, const Dataset& data) {
  Matrix out;
  predict_proba_all(model, data, out);
  return out;
}

double evaluate_accuracy(const Classifier& model, const Dataset& data) {
  return accuracy(data.y, predict_all(model, data));
}

double evaluate_auc(const Classifier& model, const Dataset& data) {
  return macro_ovr_auc(predict_proba_all(model, data), data.y,
                       data.num_classes);
}

}  // namespace pml::ml
