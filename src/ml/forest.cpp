#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace pml::ml {

void RandomForest::fit(const Dataset& train, Rng& rng) {
  train.validate();
  if (params_.n_trees < 1) throw MlError("forest: n_trees must be >= 1");
  num_classes_ = train.num_classes;
  n_features_ = train.x.cols();
  oob_score_.reset();

  TreeParams tp;
  tp.max_depth = params_.max_depth;
  tp.min_samples_leaf = params_.min_samples_leaf;
  tp.max_features =
      params_.max_features > 0
          ? params_.max_features
          : std::max(1, static_cast<int>(std::floor(
                            std::sqrt(static_cast<double>(n_features_)))));

  const std::size_t n = train.size();
  const auto n_trees = static_cast<std::size_t>(params_.n_trees);

  // Pre-split the per-tree RNG streams sequentially: tree t sees exactly the
  // stream the serial loop would hand it, so the fitted forest is
  // bit-identical to the threads=1 build at any thread count.
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) tree_rngs.push_back(rng.split());

  trees_.assign(n_trees, DecisionTree(tp));
  // Per-tree OOB contributions (row index, span into the fitted tree's leaf
  // distribution — no copies), merged in tree order after the barrier so the
  // floating-point accumulation order matches the serial loop exactly. The
  // spans stay valid because trees_ is not resized after this point.
  std::vector<std::vector<std::pair<std::size_t, std::span<const double>>>>
      oob_parts(params_.bootstrap ? n_trees : 0);

  parallel_for(params_.threads, n_trees, [&](std::size_t t) {
    obs::Span span("ml.tree_fit");
    Rng& tree_rng = tree_rngs[t];
    if (params_.bootstrap) {
      std::vector<char> in_bag(n, 0);
      std::vector<std::size_t> sample(n);
      for (std::size_t i = 0; i < n; ++i) {
        sample[i] = static_cast<std::size_t>(tree_rng.uniform_index(n));
        in_bag[sample[i]] = 1;
      }
      trees_[t].fit(train.x, train.y, num_classes_, tree_rng, sample);
      for (std::size_t i = 0; i < n; ++i) {
        if (in_bag[i]) continue;
        oob_parts[t].emplace_back(i, trees_[t].leaf_proba_for(train.x.row(i)));
      }
    } else {
      trees_[t].fit(train.x, train.y, num_classes_, tree_rng);
    }
  });

  if (params_.bootstrap) {
    // OOB vote accumulation: votes[i][c] over trees where i was out of bag.
    std::vector<std::vector<double>> oob_votes(
        n, std::vector<double>(static_cast<std::size_t>(num_classes_), 0.0));
    for (std::size_t t = 0; t < n_trees; ++t) {
      for (const auto& [i, p] : oob_parts[t]) {
        for (std::size_t c = 0; c < p.size(); ++c) oob_votes[i][c] += p[c];
      }
    }
    std::size_t scored = 0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& v = oob_votes[i];
      double total = 0.0;
      for (const double x : v) total += x;
      if (total <= 0.0) continue;  // never out of bag
      ++scored;
      const int pred = static_cast<int>(
          std::max_element(v.begin(), v.end()) - v.begin());
      if (pred == train.y[i]) ++correct;
    }
    if (scored > 0) {
      oob_score_ = static_cast<double>(correct) / static_cast<double>(scored);
    }
  }
  rebuild_flat();
}

void RandomForest::rebuild_flat() {
  flat_.clear();
  for (const DecisionTree& tree : trees_) tree.append_flat(flat_);
  flat_.finish(num_classes_);
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> row) const {
  require_fitted();
  std::vector<double> proba(static_cast<std::size_t>(num_classes_));
  flat_.predict_proba_into(row, proba);
  return proba;
}

void RandomForest::predict_proba_into(std::span<const double> row,
                                      std::span<double> out) const {
  require_fitted();
  flat_.predict_proba_into(row, out);
}

void RandomForest::predict_batch(const Matrix& rows, Matrix& out) const {
  require_fitted();
  flat_.predict_batch(rows, out);
}

std::vector<double> RandomForest::feature_importances() const {
  require_fitted();
  std::vector<double> total(n_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto imp = tree.feature_importances();
    // Loaded pre-importances bundles may carry fewer entries than
    // n_features_ (trailing unused features): missing entries are zero.
    const std::size_t m = std::min(total.size(), imp.size());
    for (std::size_t f = 0; f < m; ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

Json RandomForest::to_json() const {
  require_fitted();
  Json j = Json::object();
  j["model"] = "random_forest";
  j["num_classes"] = num_classes_;
  j["n_features"] = n_features_;
  Json params = Json::object();
  params["n_trees"] = params_.n_trees;
  params["max_depth"] = params_.max_depth;
  params["min_samples_leaf"] = params_.min_samples_leaf;
  params["max_features"] = params_.max_features;
  params["bootstrap"] = params_.bootstrap;
  j["params"] = std::move(params);
  Json trees = Json::array();
  for (const DecisionTree& t : trees_) trees.push_back(t.to_json());
  j["trees"] = std::move(trees);
  return j;
}

RandomForest RandomForest::from_json(const Json& j) {
  if (j.at("model").as_string() != "random_forest") {
    throw MlError("from_json: not a random_forest model");
  }
  RandomForestParams params;
  const Json& pj = j.at("params");
  params.n_trees = static_cast<int>(pj.at("n_trees").as_int());
  params.max_depth = static_cast<int>(pj.at("max_depth").as_int());
  params.min_samples_leaf =
      static_cast<int>(pj.at("min_samples_leaf").as_int());
  params.max_features = static_cast<int>(pj.at("max_features").as_int());
  params.bootstrap = pj.at("bootstrap").as_bool();

  RandomForest forest(params);
  forest.num_classes_ = static_cast<int>(j.at("num_classes").as_int());
  if (forest.num_classes_ < 1) {
    throw MlError("from_json: forest num_classes must be >= 1");
  }
  forest.n_features_ =
      static_cast<std::size_t>(j.at("n_features").as_int());
  for (const Json& tj : j.at("trees").as_array()) {
    forest.trees_.push_back(DecisionTree::from_json(tj));
    // A corrupt or hand-edited bundle must fail here with a clean MlError,
    // not as an out-of-bounds read at inference time: every split must
    // reference a feature the forest's rows actually have, and every leaf
    // distribution must match the forest's class count (the tree-level
    // loader already checks proba sizes against the tree's own num_classes).
    const DecisionTree& tree = forest.trees_.back();
    const std::size_t t = forest.trees_.size() - 1;
    if (tree.num_classes() != forest.num_classes_) {
      throw MlError("from_json: tree " + std::to_string(t) + " has " +
                    std::to_string(tree.num_classes()) +
                    " classes, forest has " +
                    std::to_string(forest.num_classes_));
    }
    const int max_feature = tree.max_feature_index();
    if (max_feature >= 0 &&
        static_cast<std::size_t>(max_feature) >= forest.n_features_) {
      throw MlError("from_json: tree " + std::to_string(t) +
                    " splits on feature " + std::to_string(max_feature) +
                    " but the forest has " +
                    std::to_string(forest.n_features_) + " features");
    }
  }
  if (forest.trees_.empty()) throw MlError("from_json: forest has no trees");
  forest.rebuild_flat();
  return forest;
}

}  // namespace pml::ml
