#include "ml/boosting.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pml::ml {

namespace {

void softmax_inplace(std::span<double> scores) {
  const double mx = *std::max_element(scores.begin(), scores.end());
  double sum = 0.0;
  for (double& s : scores) {
    s = std::exp(s - mx);
    sum += s;
  }
  for (double& s : scores) s /= sum;
}

}  // namespace

void GradientBoosting::fit(const Dataset& train, Rng& rng) {
  train.validate();
  if (params_.n_rounds < 1) throw MlError("boosting: n_rounds must be >= 1");
  if (params_.subsample <= 0.0 || params_.subsample > 1.0) {
    throw MlError("boosting: subsample must be in (0, 1]");
  }
  num_classes_ = train.num_classes;
  const auto k = static_cast<std::size_t>(num_classes_);
  const std::size_t n = train.size();
  stages_.clear();

  // Class priors as initial logits.
  base_score_.assign(k, 0.0);
  for (const int y : train.y) base_score_[static_cast<std::size_t>(y)] += 1.0;
  for (double& b : base_score_) {
    b = std::log(std::max(b / static_cast<double>(n), 1e-9));
  }

  // Running raw scores F[i][c].
  std::vector<std::vector<double>> f(n, base_score_);

  TreeParams tp;
  tp.max_depth = params_.max_depth;
  tp.min_samples_leaf = params_.min_samples_leaf;

  std::vector<double> residual(n);
  std::vector<std::size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);

  for (int round = 0; round < params_.n_rounds; ++round) {
    // Stochastic GBM row subset for this round.
    std::span<const std::size_t> used(rows);
    if (params_.subsample < 1.0) {
      rng.shuffle(rows);
      const auto keep = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::llround(
                 params_.subsample * static_cast<double>(n))));
      used = std::span<const std::size_t>(rows.data(), keep);
    }

    auto& stage = stages_.emplace_back();
    stage.reserve(k);
    // Current probabilities for the residuals of this round.
    std::vector<std::vector<double>> proba(n);
    for (std::size_t i = 0; i < n; ++i) {
      proba[i] = f[i];
      softmax_inplace(proba[i]);
    }
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        const double target =
            train.y[i] == static_cast<int>(c) ? 1.0 : 0.0;
        residual[i] = target - proba[i][c];
      }
      Rng tree_rng = rng.split();
      RegressionTree tree(tp);
      tree.fit(train.x, residual, tree_rng, used);

      // Friedman's multiclass Newton step per leaf:
      // gamma = (K-1)/K * sum(r) / sum(|r| (1 - |r|)).
      for (std::size_t leaf = 0; leaf < tree.leaf_count(); ++leaf) {
        double num = 0.0;
        double den = 0.0;
        for (const std::size_t i : tree.leaf_members()[leaf]) {
          const double r = residual[i];
          num += r;
          den += std::abs(r) * (1.0 - std::abs(r));
        }
        const double gamma =
            den > 1e-12
                ? (static_cast<double>(k) - 1.0) / static_cast<double>(k) *
                      num / den
                : 0.0;
        tree.set_leaf_value(static_cast<int>(leaf), gamma);
      }
      // Update all rows' scores (not only the subsample).
      for (std::size_t i = 0; i < n; ++i) {
        f[i][c] += params_.learning_rate * tree.predict(train.x.row(i));
      }
      stage.push_back(std::move(tree));
    }
  }
}

std::vector<double> GradientBoosting::predict_proba(
    std::span<const double> row) const {
  std::vector<double> scores(base_score_.size());
  predict_proba_into(row, scores);
  return scores;
}

void GradientBoosting::predict_proba_into(std::span<const double> row,
                                          std::span<double> out) const {
  require_fitted();
  if (out.size() != base_score_.size()) {
    throw MlError("boosting: proba buffer holds " +
                  std::to_string(out.size()) + " classes, want " +
                  std::to_string(base_score_.size()));
  }
  std::copy(base_score_.begin(), base_score_.end(), out.begin());
  // RegressionTree::predict is a pure node walk, so the whole accumulation
  // is allocation-free.
  for (const auto& stage : stages_) {
    for (std::size_t c = 0; c < out.size(); ++c) {
      out[c] += params_.learning_rate * stage[c].predict(row);
    }
  }
  softmax_inplace(out);
}

}  // namespace pml::ml
