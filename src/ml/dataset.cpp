#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pml::ml {

void Matrix::push_row(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  } else if (row.size() != cols_) {
    throw MlError("push_row: expected " + std::to_string(cols_) +
                  " columns, got " + std::to_string(row.size()));
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

void Dataset::validate() const {
  if (x.rows() != y.size()) {
    throw MlError("dataset: row count " + std::to_string(x.rows()) +
                  " != label count " + std::to_string(y.size()));
  }
  if (!feature_names.empty() && feature_names.size() != x.cols()) {
    throw MlError("dataset: feature name count mismatch");
  }
  if (num_classes <= 0) throw MlError("dataset: num_classes must be positive");
  for (const int label : y) {
    if (label < 0 || label >= num_classes) {
      throw MlError("dataset: label " + std::to_string(label) +
                    " outside [0, " + std::to_string(num_classes) + ")");
    }
  }
  if (!class_names.empty() &&
      class_names.size() != static_cast<std::size_t>(num_classes)) {
    throw MlError("dataset: class name count mismatch");
  }
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.num_classes = num_classes;
  out.feature_names = feature_names;
  out.class_names = class_names;
  out.x = Matrix(indices.size(), x.cols());
  out.y.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= x.rows()) throw MlError("subset: index out of range");
    std::copy(x.row(src).begin(), x.row(src).end(), out.x.row(i).begin());
    out.y.push_back(y[src]);
  }
  return out;
}

TrainTestSplit random_split(std::size_t n, double train_fraction, Rng& rng) {
  if (n < 2) throw MlError("random_split: need at least 2 rows");
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw MlError("random_split: train fraction must be in (0, 1)");
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  auto cut = static_cast<std::size_t>(
      std::round(train_fraction * static_cast<double>(n)));
  cut = std::clamp<std::size_t>(cut, 1, n - 1);
  TrainTestSplit split;
  split.train.assign(order.begin(), order.begin() + static_cast<long>(cut));
  split.test.assign(order.begin() + static_cast<long>(cut), order.end());
  return split;
}

std::vector<TrainTestSplit> stratified_kfold(std::span<const int> labels,
                                             int folds, Rng& rng) {
  if (folds < 2) throw MlError("stratified_kfold: need >= 2 folds");
  if (labels.size() < static_cast<std::size_t>(folds)) {
    throw MlError("stratified_kfold: more folds than rows");
  }
  // Group row indices per class, shuffle within each class, then deal them
  // round-robin across folds so every fold mirrors the class proportions.
  int num_classes = 0;
  for (const int l : labels) num_classes = std::max(num_classes, l + 1);
  std::vector<std::vector<std::size_t>> per_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    per_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  std::vector<std::vector<std::size_t>> fold_test(
      static_cast<std::size_t>(folds));
  for (auto& rows : per_class) {
    rng.shuffle(rows);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      fold_test[i % static_cast<std::size_t>(folds)].push_back(rows[i]);
    }
  }
  std::vector<TrainTestSplit> out(static_cast<std::size_t>(folds));
  for (int f = 0; f < folds; ++f) {
    auto& split = out[static_cast<std::size_t>(f)];
    split.test = fold_test[static_cast<std::size_t>(f)];
    std::sort(split.test.begin(), split.test.end());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (!std::binary_search(split.test.begin(), split.test.end(), i)) {
        split.train.push_back(i);
      }
    }
  }
  return out;
}

void Standardizer::fit(const Matrix& x) {
  if (x.rows() == 0) throw MlError("standardizer: empty matrix");
  const std::size_t cols = x.cols();
  mean_.assign(cols, 0.0);
  std_.assign(cols, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) mean_[c] += x.at(r, c);
  }
  for (auto& m : mean_) m /= static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double d = x.at(r, c) - mean_[c];
      std_[c] += d * d;
    }
  }
  for (auto& s : std_) {
    s = std::sqrt(s / static_cast<double>(x.rows()));
    if (s < 1e-12) s = 1.0;  // constant features pass through unscaled
  }
}

Matrix Standardizer::transform(const Matrix& x) const {
  if (!fitted()) throw MlError("standardizer: transform before fit");
  if (x.cols() != mean_.size()) throw MlError("standardizer: column mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out.at(r, c) = (x.at(r, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

std::vector<double> Standardizer::transform_row(
    std::span<const double> row) const {
  if (!fitted()) throw MlError("standardizer: transform before fit");
  if (row.size() != mean_.size()) throw MlError("standardizer: column mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / std_[c];
  }
  return out;
}

}  // namespace pml::ml
