// CART decision trees: Gini classification and variance-reduction
// regression (the weak learner for gradient boosting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace pml::ml {

/// Shared tree growth limits.
struct TreeParams {
  int max_depth = -1;        ///< -1 = unlimited
  int min_samples_leaf = 1;
  int min_samples_split = 2;
  int max_features = -1;     ///< features tried per split; -1 = all
  /// Use the retained O(classes)-per-candidate reference split finder
  /// instead of the incremental-Gini one. Both must produce byte-identical
  /// trees; the flag exists so tests and benches can compare them.
  bool reference_splitter = false;
};

/// Gini impurity of a class-count histogram (paper Eq. 1).
double gini_impurity(std::span<const double> class_counts);

class FlatForest;

/// Binary CART classifier with Gini splits.
class DecisionTree {
 public:
  explicit DecisionTree(TreeParams params = {}) : params_(params) {}

  /// Fit on the rows of `x` selected by `samples` (possibly with
  /// repetitions, enabling bootstrap); empty `samples` means all rows.
  void fit(const Matrix& x, std::span<const int> y, int num_classes, Rng& rng,
           std::span<const std::size_t> samples = {});

  std::vector<double> predict_proba(std::span<const double> row) const;
  int predict(std::span<const double> row) const;

  /// Class distribution of the leaf this row lands in — a span into the
  /// tree's own storage (valid until the next fit). Allocation-free.
  std::span<const double> leaf_proba_for(std::span<const double> row) const;

  /// Append this tree to a structure-of-arrays forest (see FlatForest).
  void append_flat(FlatForest& flat) const;

  int num_classes() const noexcept { return num_classes_; }

  /// Largest feature index any split references; -1 for a leaf-only tree.
  int max_feature_index() const noexcept;

  /// Unnormalised Gini-decrease importances, one per feature; accumulated
  /// across splits as (n_node/n_total) * impurity decrease.
  std::span<const double> feature_importances() const noexcept {
    return importances_;
  }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  int depth() const noexcept { return depth_; }
  bool fitted() const noexcept { return !nodes_.empty(); }

  Json to_json() const;
  static DecisionTree from_json(const Json& j);

 private:
  struct Node {
    int feature = -1;       ///< -1 marks a leaf
    double threshold = 0.0; ///< go left if value <= threshold
    int left = -1;
    int right = -1;
    std::vector<double> proba;  ///< leaf class distribution
  };

  /// Per-fit scratch shared by every node of one tree, so build() performs
  /// no per-node or per-candidate heap allocations.
  struct FitWorkspace {
    std::vector<std::size_t> order;     ///< sort buffer, sized to the sample count
    std::vector<std::size_t> features;  ///< candidate feature subset
    std::vector<double> counts;         ///< node class histogram
    std::vector<double> left;           ///< running left-child histogram
    std::vector<double> right;          ///< running right-child histogram
    std::vector<double> best_left;      ///< left histogram at the best split
    std::uint64_t split_candidates = 0; ///< thresholds scored this fit
  };

  int build(const Matrix& x, std::span<const int> y, int num_classes,
            std::vector<std::size_t>& samples, std::size_t begin,
            std::size_t end, int level, double total_samples, Rng& rng,
            FitWorkspace& ws);

  /// Retained pre-optimisation split finder (re-sorts per feature and scores
  /// every candidate with two full gini_impurity passes). Kept as the
  /// correctness oracle for the incremental path.
  int build_reference(const Matrix& x, std::span<const int> y, int num_classes,
                      std::vector<std::size_t>& samples, std::size_t begin,
                      std::size_t end, int level, double total_samples,
                      Rng& rng);

  TreeParams params_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  int num_classes_ = 0;
  int depth_ = 0;
};

/// Binary CART regression tree (variance-reduction splits). Leaf values are
/// externally adjustable so gradient boosting can install Newton-step
/// estimates per leaf.
class RegressionTree {
 public:
  explicit RegressionTree(TreeParams params = {}) : params_(params) {}

  void fit(const Matrix& x, std::span<const double> targets, Rng& rng,
           std::span<const std::size_t> samples = {});

  double predict(std::span<const double> row) const;

  /// Index of the leaf this row lands in.
  int apply(std::span<const double> row) const;

  /// Rows (positions into the fit-time sample list) grouped per leaf.
  const std::vector<std::vector<std::size_t>>& leaf_members() const noexcept {
    return leaf_members_;
  }

  void set_leaf_value(int leaf_id, double value);
  double leaf_value(int leaf_id) const;
  std::size_t leaf_count() const noexcept { return leaf_members_.size(); }
  bool fitted() const noexcept { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int leaf_id = -1;
    double value = 0.0;
  };

  /// Per-fit scratch (see DecisionTree::FitWorkspace).
  struct FitWorkspace {
    std::vector<std::size_t> order;
    std::vector<std::size_t> features;
  };

  int build(const Matrix& x, std::span<const double> targets,
            std::vector<std::size_t>& samples, std::size_t begin,
            std::size_t end, int level, Rng& rng, FitWorkspace& ws);

  TreeParams params_;
  std::vector<Node> nodes_;
  std::vector<int> leaf_nodes_;  // leaf_id -> node index
  std::vector<std::vector<std::size_t>> leaf_members_;
};

}  // namespace pml::ml
