#include "ml/cv.hpp"

namespace pml::ml {

double cross_val_score(const ModelFactory& factory, const Json& params,
                       const Dataset& data, int folds, Rng& rng,
                       const std::string& metric) {
  data.validate();
  if (metric != "auc" && metric != "accuracy") {
    throw MlError("cross_val_score: unknown metric " + metric);
  }
  const auto splits = stratified_kfold(data.y, folds, rng);
  double total = 0.0;
  int scored = 0;
  for (const TrainTestSplit& split : splits) {
    const Dataset train = data.subset(split.train);
    const Dataset test = data.subset(split.test);
    auto model = factory(params);
    Rng fit_rng = rng.split();
    model->fit(train, fit_rng);
    try {
      total += metric == "auc" ? evaluate_auc(*model, test)
                               : evaluate_accuracy(*model, test);
      ++scored;
    } catch (const MlError&) {
      // A fold whose test slice lacks class diversity cannot be AUC-scored;
      // skip it rather than poison the mean.
    }
  }
  if (scored == 0) throw MlError("cross_val_score: no scorable folds");
  return total / scored;
}

GridSearchResult grid_search(const ModelFactory& factory,
                             const std::vector<Json>& candidates,
                             const Dataset& data, int folds, Rng& rng,
                             const std::string& metric) {
  if (candidates.empty()) throw MlError("grid_search: no candidates");
  GridSearchResult result;
  result.best_score = -1.0;
  for (const Json& candidate : candidates) {
    Rng cv_rng = rng.split();
    const double score =
        cross_val_score(factory, candidate, data, folds, cv_rng, metric);
    result.all_scores.emplace_back(candidate, score);
    if (score > result.best_score) {
      result.best_score = score;
      result.best_params = candidate;
    }
  }
  return result;
}

std::vector<Json> param_grid(
    const std::vector<std::pair<std::string, std::vector<Json>>>& axes) {
  std::vector<Json> grid;
  grid.push_back(Json::object());
  for (const auto& [key, values] : axes) {
    if (values.empty()) throw MlError("param_grid: empty axis " + key);
    std::vector<Json> expanded;
    expanded.reserve(grid.size() * values.size());
    for (const Json& base : grid) {
      for (const Json& v : values) {
        Json next = base;
        next[key] = v;
        expanded.push_back(std::move(next));
      }
    }
    grid = std::move(expanded);
  }
  return grid;
}

}  // namespace pml::ml
