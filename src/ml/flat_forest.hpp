// Packed decision-forest representation for the inference hot path.
//
// DecisionTree keeps one heap-allocated Node (with its own proba vector) per
// tree node, which is convenient for growth and serialization but walks
// scattered memory at predict time and forces an allocation per call.
// FlatForest packs every tree of a forest into one contiguous array of
// 16-byte node records plus one pooled leaf-probability buffer, so a forest
// prediction is a handful of linear array walks and predict_proba_into()
// touches no allocator at all.
//
// Node layout. Trees serialize their nodes in pre-order (DecisionTree::build
// emits a split node immediately followed by its entire left subtree), so a
// split's left child is always the next record and only the right child
// needs storing. One record therefore holds the whole traversal state —
//
//   { double threshold; int32 feature; int32 slot; }   // 16 bytes
//
// where feature < 0 marks a leaf whose `slot` is its pooled-leaf ordinal,
// and a split's `slot` is its right-child index (left child = self + 1).
// finish() validates the pre-order invariant, so a malformed builder
// sequence or corrupt bundle fails loudly instead of walking garbage.
//
// Inference comes in two shapes that are bit-identical to each other and to
// the per-tree node walk: predict_proba_into() walks one row through all
// trees (tree 0..T in sequence, one divide at the end), and predict_batch()
// runs the tree-major blocked kernel — outer loop over trees, inner loop
// over blocks of rows with eight interleaved row-walks advancing in
// lockstep. Each lane's advance is branchless (all-ones masks select
// left-child/right-child/parked), so the per-split data-dependent branch
// the scalar walk mispredicts becomes a conditional move, the eight
// independent load chains hide each other's latency, and the tree's top
// levels stay in L1/L2 across the whole block. Per-row accumulation order
// is tree 0..T either way, so batched output is byte-identical to the
// scalar path (~2-3x the scalar loop in rows/sec, gated in
// bench/ml_hotpath).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace pml::ml {

class FlatForest {
 public:
  bool empty() const noexcept { return roots_.empty(); }
  std::size_t tree_count() const noexcept { return roots_.size(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  int num_classes() const noexcept { return num_classes_; }

  /// Smallest feature-row length every walk is guaranteed to stay inside
  /// (largest referenced feature index + 1).
  std::size_t min_row_length() const noexcept { return min_row_length_; }

  void clear();

  // --- Builder interface (used by DecisionTree::append_flat) ----------------

  /// Start appending one tree; its nodes arrive in the tree's own node-id
  /// order, so child ids passed to add_split are tree-local.
  void begin_tree();
  void add_split(int feature, double threshold, int left, int right);
  void add_leaf(std::span<const double> proba);

  /// Validate and seal after all trees are appended: every leaf must carry
  /// `num_classes` probabilities, every split must reference a feature and
  /// children inside bounds, and nodes must be in pre-order (each split's
  /// left child immediately follows it). Throws MlError otherwise.
  void finish(int num_classes);

  // --- Inference -------------------------------------------------------------

  /// Mean class distribution over all trees, written into `out` (size
  /// num_classes()). Allocation-free; bit-identical to averaging the
  /// node-walk predictions tree by tree.
  void predict_proba_into(std::span<const double> row,
                          std::span<double> out) const;

  /// Un-normalised leaf distribution of one tree for this row (span into
  /// the pooled buffer).
  std::span<const double> tree_leaf(std::size_t tree,
                                    std::span<const double> row) const;

  /// predict_proba_into for many rows at once; `out` is row-major
  /// rows.rows() x num_classes(). Runs the tree-major blocked kernel
  /// (header comment) — byte-identical to calling predict_proba_into row
  /// by row, with all shape validation hoisted to one check per batch and
  /// zero allocations.
  void predict_batch(const Matrix& rows, Matrix& out) const;

 private:
  /// One traversal record (header comment). `slot` is the right-child
  /// index for a split (left child = self + 1) and the pooled-leaf
  /// ordinal for a leaf (feature < 0).
  struct Node {
    double threshold = 0.0;
    std::int32_t feature = -1;
    std::int32_t slot = -1;
  };
  static_assert(sizeof(Node) == 16, "traversal record must stay 16 bytes");

  std::span<const double> walk(std::size_t root,
                               std::span<const double> row) const;

  std::vector<Node> nodes_;           ///< all trees' packed records
  std::vector<std::size_t> roots_;    ///< global index of each tree's root
  std::vector<double> leaf_proba_;    ///< pooled leaf distributions
  /// Build-time staging: left-child index per node (validated against the
  /// pre-order invariant, then discarded by finish()).
  std::vector<std::int32_t> build_left_;
  std::size_t n_leaves_ = 0;
  std::size_t build_base_ = 0;        ///< first node of the tree being built
  std::size_t min_row_length_ = 0;
  int num_classes_ = 0;
  bool sealed_ = false;
};

}  // namespace pml::ml
