// Structure-of-arrays decision-forest representation for the inference hot
// path.
//
// DecisionTree keeps one heap-allocated Node (with its own proba vector) per
// tree node, which is convenient for growth and serialization but walks
// scattered memory at predict time and forces an allocation per call.
// FlatForest packs every tree of a forest into four contiguous parallel
// arrays (feature / threshold / left / right) plus one pooled
// leaf-probability buffer, so a forest prediction is a handful of linear
// array walks and predict_proba_into() touches no allocator at all. The
// accumulation order over trees matches the node-walk implementation
// exactly, so results are bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace pml::ml {

class FlatForest {
 public:
  bool empty() const noexcept { return roots_.empty(); }
  std::size_t tree_count() const noexcept { return roots_.size(); }
  std::size_t node_count() const noexcept { return feature_.size(); }
  int num_classes() const noexcept { return num_classes_; }

  /// Smallest feature-row length every walk is guaranteed to stay inside
  /// (largest referenced feature index + 1).
  std::size_t min_row_length() const noexcept { return min_row_length_; }

  void clear();

  // --- Builder interface (used by DecisionTree::append_flat) ----------------

  /// Start appending one tree; its nodes arrive in the tree's own node-id
  /// order, so child ids passed to add_split are tree-local.
  void begin_tree();
  void add_split(int feature, double threshold, int left, int right);
  void add_leaf(std::span<const double> proba);

  /// Validate and seal after all trees are appended: every leaf must carry
  /// `num_classes` probabilities and every split must reference a feature
  /// and children inside bounds. Throws MlError otherwise.
  void finish(int num_classes);

  // --- Inference -------------------------------------------------------------

  /// Mean class distribution over all trees, written into `out` (size
  /// num_classes()). Allocation-free; bit-identical to averaging the
  /// node-walk predictions tree by tree.
  void predict_proba_into(std::span<const double> row,
                          std::span<double> out) const;

  /// Un-normalised leaf distribution of one tree for this row (span into
  /// the pooled buffer).
  std::span<const double> tree_leaf(std::size_t tree,
                                    std::span<const double> row) const;

  /// predict_proba_into for many rows; `out` is row-major
  /// rows.rows() x num_classes().
  void predict_batch(const Matrix& rows, Matrix& out) const;

 private:
  std::span<const double> walk(std::size_t root,
                               std::span<const double> row) const;

  // Parallel per-node arrays. feature_[k] < 0 marks a leaf, whose left_[k]
  // is its leaf ordinal: the pooled distribution lives at
  // leaf_proba_[ordinal * num_classes_ .. +num_classes_).
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::size_t> roots_;    ///< global index of each tree's root
  std::vector<double> leaf_proba_;    ///< pooled leaf distributions
  std::size_t n_leaves_ = 0;
  std::size_t build_base_ = 0;        ///< first node of the tree being built
  std::size_t min_row_length_ = 0;
  int num_classes_ = 0;
  bool sealed_ = false;
};

}  // namespace pml::ml
