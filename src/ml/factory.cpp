#include "ml/factory.hpp"

namespace pml::ml {

namespace {

/// Reject unknown hyperparameter keys so grid typos fail loudly.
void check_keys(const Json& params,
                std::initializer_list<const char*> allowed) {
  if (!params.is_object()) throw MlError("params must be a JSON object");
  for (const auto& [key, value] : params.as_object()) {
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) throw MlError("unknown hyperparameter: " + key);
  }
}

int get_int(const Json& params, const char* key, int fallback) {
  return params.contains(key) ? static_cast<int>(params.at(key).as_int())
                              : fallback;
}

double get_double(const Json& params, const char* key, double fallback) {
  return params.contains(key) ? params.at(key).as_number() : fallback;
}

bool get_bool(const Json& params, const char* key, bool fallback) {
  return params.contains(key) ? params.at(key).as_bool() : fallback;
}

}  // namespace

std::unique_ptr<Classifier> make_classifier(const std::string& family,
                                            const Json& params) {
  if (family == "RandomForest") {
    check_keys(params, {"n_trees", "max_depth", "min_samples_leaf",
                        "max_features", "bootstrap", "threads"});
    RandomForestParams p;
    p.n_trees = get_int(params, "n_trees", p.n_trees);
    p.max_depth = get_int(params, "max_depth", p.max_depth);
    p.min_samples_leaf = get_int(params, "min_samples_leaf", p.min_samples_leaf);
    p.max_features = get_int(params, "max_features", p.max_features);
    p.bootstrap = get_bool(params, "bootstrap", p.bootstrap);
    p.threads = get_int(params, "threads", p.threads);
    return std::make_unique<RandomForest>(p);
  }
  if (family == "GradientBoost") {
    check_keys(params, {"n_rounds", "learning_rate", "max_depth",
                        "min_samples_leaf", "subsample"});
    GradientBoostingParams p;
    p.n_rounds = get_int(params, "n_rounds", p.n_rounds);
    p.learning_rate = get_double(params, "learning_rate", p.learning_rate);
    p.max_depth = get_int(params, "max_depth", p.max_depth);
    p.min_samples_leaf = get_int(params, "min_samples_leaf", p.min_samples_leaf);
    p.subsample = get_double(params, "subsample", p.subsample);
    return std::make_unique<GradientBoosting>(p);
  }
  if (family == "KNN") {
    check_keys(params, {"k", "distance_weighted"});
    KnnParams p;
    p.k = get_int(params, "k", p.k);
    p.distance_weighted =
        get_bool(params, "distance_weighted", p.distance_weighted);
    return std::make_unique<Knn>(p);
  }
  if (family == "SVM") {
    check_keys(params, {"lambda", "epochs"});
    SvmParams p;
    p.lambda = get_double(params, "lambda", p.lambda);
    p.epochs = get_int(params, "epochs", p.epochs);
    return std::make_unique<LinearSvm>(p);
  }
  throw MlError("unknown model family: " + family);
}

ModelFactory factory_for(const std::string& family) {
  return [family](const Json& params) {
    return make_classifier(family, params);
  };
}

}  // namespace pml::ml
