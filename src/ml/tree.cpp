#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/flat_forest.hpp"
#include "obs/obs.hpp"

namespace pml::ml {

double gini_impurity(std::span<const double> class_counts) {
  double total = 0.0;
  for (const double c : class_counts) total += c;
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (const double c : class_counts) {
    const double p = c / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

namespace {

/// Candidate feature subset for one split (without replacement).
std::vector<std::size_t> sample_features(std::size_t total, int max_features,
                                         Rng& rng) {
  std::vector<std::size_t> all(total);
  std::iota(all.begin(), all.end(), 0u);
  if (max_features <= 0 || static_cast<std::size_t>(max_features) >= total) {
    return all;
  }
  rng.shuffle(all);
  all.resize(static_cast<std::size_t>(max_features));
  return all;
}

/// sample_features into a reused buffer; consumes the RNG stream identically
/// (fresh iota, one full shuffle, truncate) so fitted trees do not depend on
/// which variant ran.
void sample_features_into(std::size_t total, int max_features, Rng& rng,
                          std::vector<std::size_t>& out) {
  out.resize(total);
  std::iota(out.begin(), out.end(), 0u);
  if (max_features <= 0 || static_cast<std::size_t>(max_features) >= total) {
    return;
  }
  rng.shuffle(out);
  out.resize(static_cast<std::size_t>(max_features));
}

struct SplitResult {
  bool found = false;
  std::size_t feature = 0;
  double threshold = 0.0;
  double decrease = 0.0;  // impurity decrease, unweighted by node share
};

}  // namespace

// ---- DecisionTree ----------------------------------------------------------

void DecisionTree::fit(const Matrix& x, std::span<const int> y,
                       int num_classes, Rng& rng,
                       std::span<const std::size_t> samples) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    throw MlError("tree: bad training shape");
  }
  if (num_classes < 1) throw MlError("tree: num_classes must be >= 1");
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0 || y[i] >= num_classes) {
      throw MlError("tree: label " + std::to_string(y[i]) + " at row " +
                    std::to_string(i) + " outside [0, " +
                    std::to_string(num_classes) + ")");
    }
  }
  nodes_.clear();
  depth_ = 0;
  num_classes_ = num_classes;
  importances_.assign(x.cols(), 0.0);

  std::vector<std::size_t> idx;
  if (samples.empty()) {
    idx.resize(x.rows());
    std::iota(idx.begin(), idx.end(), 0u);
  } else {
    idx.assign(samples.begin(), samples.end());
  }
  if (params_.reference_splitter) {
    build_reference(x, y, num_classes, idx, 0, idx.size(), 0,
                    static_cast<double>(idx.size()), rng);
    return;
  }
  FitWorkspace ws;
  ws.order.reserve(idx.size());
  ws.features.reserve(x.cols());
  ws.counts.resize(static_cast<std::size_t>(num_classes));
  ws.left.resize(static_cast<std::size_t>(num_classes));
  ws.right.resize(static_cast<std::size_t>(num_classes));
  ws.best_left.resize(static_cast<std::size_t>(num_classes));
  build(x, y, num_classes, idx, 0, idx.size(), 0,
        static_cast<double>(idx.size()), rng, ws);
  if (obs::enabled()) {
    // Accumulated branchlessly in the split loop; flushed once per fit.
    static obs::Counter candidates("ml.split_candidates");
    candidates.add(ws.split_candidates);
  }
}

// Optimised split finder. Scores every candidate threshold in O(1) via
// incrementally-maintained sums of squared class counts instead of two full
// gini_impurity passes, and draws all scratch from the per-fit workspace.
// Class counts are integers held exactly in doubles, so the running
// sum-of-squares updates are exact; the winning split's impurity decrease is
// then recomputed with gini_impurity from the snapshotted winning histogram,
// which makes serialized trees (thresholds, leaf distributions AND
// importances) bit-identical to build_reference.
int DecisionTree::build(const Matrix& x, std::span<const int> y,
                        int num_classes, std::vector<std::size_t>& samples,
                        std::size_t begin, std::size_t end, int level,
                        double total_samples, Rng& rng, FitWorkspace& ws) {
  depth_ = std::max(depth_, level);
  const std::size_t n = end - begin;
  const auto k = static_cast<std::size_t>(num_classes);

  // ws.counts/left/right/best_left are only read between here and the
  // recursive calls below, so one workspace serves every node of the tree.
  std::fill(ws.counts.begin(), ws.counts.end(), 0.0);
  for (std::size_t i = begin; i < end; ++i) {
    ws.counts[static_cast<std::size_t>(y[samples[i]])] += 1.0;
  }
  const double node_gini = gini_impurity(ws.counts);

  auto make_leaf = [&] {
    Node leaf;
    leaf.proba.resize(k);
    for (std::size_t c = 0; c < k; ++c) {
      leaf.proba[c] = ws.counts[c] / static_cast<double>(n);
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size() - 1);
  };

  const bool depth_capped = params_.max_depth >= 0 && level >= params_.max_depth;
  if (node_gini <= 0.0 || depth_capped ||
      n < static_cast<std::size_t>(params_.min_samples_split)) {
    return make_leaf();
  }

  // Maximising  S = sumsq_l/n_l + sumsq_r/n_r  is equivalent to minimising
  // the weighted child impurity: n_l*gini_l + n_r*gini_r = n - S. The
  // reference acceptance rule `decrease > best + 1e-15` on
  // decrease = node_gini - (n - S)/n maps to `S > best_S + n * 1e-15`, with
  // the no-split baseline at S0 = n * (1 - node_gini).
  SplitResult best;
  double best_score =
      static_cast<double>(n) * (1.0 - node_gini);  // parent impurity baseline
  const double score_tol = static_cast<double>(n) * 1e-15;
  std::size_t best_nl = 0;

  sample_features_into(x.cols(), params_.max_features, rng, ws.features);
  ws.order.assign(samples.begin() + static_cast<long>(begin),
                  samples.begin() + static_cast<long>(end));
  const std::span<std::size_t> order(ws.order.data(), n);
  for (const std::size_t f : ws.features) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return x.at(a, f) < x.at(b, f);
    });
    std::fill(ws.left.begin(), ws.left.end(), 0.0);
    std::copy(ws.counts.begin(), ws.counts.end(), ws.right.begin());
    double sumsq_l = 0.0;
    double sumsq_r = 0.0;
    for (const double c : ws.counts) sumsq_r += c * c;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto cls = static_cast<std::size_t>(y[order[i]]);
      sumsq_l += 2.0 * ws.left[cls] + 1.0;
      sumsq_r -= 2.0 * ws.right[cls] - 1.0;
      ws.left[cls] += 1.0;
      ws.right[cls] -= 1.0;
      const double lo = x.at(order[i], f);
      const double hi = x.at(order[i + 1], f);
      if (hi <= lo) continue;  // no threshold separates equal values
      ++ws.split_candidates;
      const auto nl = static_cast<double>(i + 1);
      const auto nr = static_cast<double>(n - i - 1);
      if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) {
        continue;
      }
      const double score = sumsq_l / nl + sumsq_r / nr;
      if (score > best_score + score_tol) {
        best.found = true;
        best.feature = f;
        best.threshold = 0.5 * (lo + hi);
        best_score = score;
        best_nl = i + 1;
        std::copy(ws.left.begin(), ws.left.end(), ws.best_left.begin());
      }
    }
  }
  if (!best.found) return make_leaf();

  // Reference-exact impurity decrease of the winning split, from the
  // snapshotted left histogram (right = counts - left, exact integers).
  {
    for (std::size_t c = 0; c < k; ++c) {
      ws.right[c] = ws.counts[c] - ws.best_left[c];
    }
    const auto nl = static_cast<double>(best_nl);
    const auto nr = static_cast<double>(n - best_nl);
    const double child =
        (nl * gini_impurity(ws.best_left) + nr * gini_impurity(ws.right)) /
        static_cast<double>(n);
    best.decrease = node_gini - child;
  }

  // sklearn-style importance: node share of total samples times decrease.
  importances_[best.feature] +=
      (static_cast<double>(n) / total_samples) * best.decrease;

  const auto mid_it = std::partition(
      samples.begin() + static_cast<long>(begin),
      samples.begin() + static_cast<long>(end), [&](std::size_t s) {
        return x.at(s, best.feature) <= best.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - samples.begin());

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].feature =
      static_cast<int>(best.feature);
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  const int left_id = build(x, y, num_classes, samples, begin, mid, level + 1,
                            total_samples, rng, ws);
  const int right_id = build(x, y, num_classes, samples, mid, end, level + 1,
                             total_samples, rng, ws);
  nodes_[static_cast<std::size_t>(node_id)].left = left_id;
  nodes_[static_cast<std::size_t>(node_id)].right = right_id;
  return node_id;
}

// Pre-optimisation split finder, retained verbatim as the correctness
// oracle: tests assert the optimised build produces byte-identical JSON.
int DecisionTree::build_reference(const Matrix& x, std::span<const int> y,
                                  int num_classes,
                                  std::vector<std::size_t>& samples,
                                  std::size_t begin, std::size_t end, int level,
                                  double total_samples, Rng& rng) {
  depth_ = std::max(depth_, level);
  const std::size_t n = end - begin;

  std::vector<double> counts(static_cast<std::size_t>(num_classes), 0.0);
  for (std::size_t i = begin; i < end; ++i) {
    counts[static_cast<std::size_t>(y[samples[i]])] += 1.0;
  }
  const double node_gini = gini_impurity(counts);

  auto make_leaf = [&] {
    Node leaf;
    leaf.proba.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      leaf.proba[c] = counts[c] / static_cast<double>(n);
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size() - 1);
  };

  const bool depth_capped = params_.max_depth >= 0 && level >= params_.max_depth;
  if (node_gini <= 0.0 || depth_capped ||
      n < static_cast<std::size_t>(params_.min_samples_split)) {
    return make_leaf();
  }

  // Best Gini split over a (possibly random) feature subset.
  SplitResult best;
  const auto features = sample_features(x.cols(), params_.max_features, rng);
  std::vector<std::size_t> order(samples.begin() + static_cast<long>(begin),
                                 samples.begin() + static_cast<long>(end));
  std::vector<double> left(counts.size());
  for (const std::size_t f : features) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return x.at(a, f) < x.at(b, f);
    });
    std::fill(left.begin(), left.end(), 0.0);
    std::vector<double> right = counts;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto cls = static_cast<std::size_t>(y[order[i]]);
      left[cls] += 1.0;
      right[cls] -= 1.0;
      const double lo = x.at(order[i], f);
      const double hi = x.at(order[i + 1], f);
      if (hi <= lo) continue;  // no threshold separates equal values
      const auto nl = static_cast<double>(i + 1);
      const auto nr = static_cast<double>(n - i - 1);
      if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) {
        continue;
      }
      const double child =
          (nl * gini_impurity(left) + nr * gini_impurity(right)) /
          static_cast<double>(n);
      const double decrease = node_gini - child;
      if (decrease > best.decrease + 1e-15) {
        best.found = true;
        best.feature = f;
        best.threshold = 0.5 * (lo + hi);
        best.decrease = decrease;
      }
    }
  }
  if (!best.found) return make_leaf();

  // sklearn-style importance: node share of total samples times decrease.
  importances_[best.feature] +=
      (static_cast<double>(n) / total_samples) * best.decrease;

  const auto mid_it = std::partition(
      samples.begin() + static_cast<long>(begin),
      samples.begin() + static_cast<long>(end), [&](std::size_t s) {
        return x.at(s, best.feature) <= best.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - samples.begin());

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].feature =
      static_cast<int>(best.feature);
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  const int left_id = build_reference(x, y, num_classes, samples, begin, mid,
                                      level + 1, total_samples, rng);
  const int right_id = build_reference(x, y, num_classes, samples, mid, end,
                                       level + 1, total_samples, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left_id;
  nodes_[static_cast<std::size_t>(node_id)].right = right_id;
  return node_id;
}

std::span<const double> DecisionTree::leaf_proba_for(
    std::span<const double> row) const {
  if (nodes_.empty()) throw MlError("tree: predict before fit");
  const Node* node = &nodes_[0];
  while (node->feature >= 0) {
    const std::size_t f = static_cast<std::size_t>(node->feature);
    if (f >= row.size()) throw MlError("tree: row has too few features");
    node = row[f] <= node->threshold
               ? &nodes_[static_cast<std::size_t>(node->left)]
               : &nodes_[static_cast<std::size_t>(node->right)];
  }
  return node->proba;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> row) const {
  const auto leaf = leaf_proba_for(row);
  return {leaf.begin(), leaf.end()};
}

int DecisionTree::predict(std::span<const double> row) const {
  const auto p = leaf_proba_for(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

int DecisionTree::max_feature_index() const noexcept {
  int max_feature = -1;
  for (const Node& n : nodes_) max_feature = std::max(max_feature, n.feature);
  return max_feature;
}

void DecisionTree::append_flat(FlatForest& flat) const {
  if (nodes_.empty()) throw MlError("tree: flatten before fit");
  flat.begin_tree();
  for (const Node& n : nodes_) {
    if (n.feature >= 0) {
      flat.add_split(n.feature, n.threshold, n.left, n.right);
    } else {
      flat.add_leaf(n.proba);
    }
  }
}

Json DecisionTree::to_json() const {
  Json j = Json::object();
  j["num_classes"] = num_classes_;
  j["depth"] = depth_;
  Json importances = Json::array();
  for (const double v : importances_) importances.push_back(v);
  j["importances"] = std::move(importances);
  Json nodes = Json::array();
  for (const Node& n : nodes_) {
    Json nj = Json::object();
    nj["feature"] = n.feature;
    if (n.feature >= 0) {
      nj["threshold"] = n.threshold;
      nj["left"] = n.left;
      nj["right"] = n.right;
    } else {
      Json proba = Json::array();
      for (const double p : n.proba) proba.push_back(p);
      nj["proba"] = std::move(proba);
    }
    nodes.push_back(std::move(nj));
  }
  j["nodes"] = std::move(nodes);
  return j;
}

DecisionTree DecisionTree::from_json(const Json& j) {
  DecisionTree tree;
  tree.num_classes_ = static_cast<int>(j.at("num_classes").as_int());
  if (tree.num_classes_ < 1) {
    throw MlError("tree: serialized num_classes must be >= 1");
  }
  tree.depth_ = static_cast<int>(j.at("depth").as_int());
  for (const Json& nj : j.at("nodes").as_array()) {
    Node n;
    n.feature = static_cast<int>(nj.at("feature").as_int());
    if (n.feature >= 0) {
      n.threshold = nj.at("threshold").as_number();
      n.left = static_cast<int>(nj.at("left").as_int());
      n.right = static_cast<int>(nj.at("right").as_int());
    } else {
      for (const Json& p : nj.at("proba").as_array()) {
        n.proba.push_back(p.as_number());
      }
    }
    tree.nodes_.push_back(std::move(n));
  }
  if (tree.nodes_.empty()) throw MlError("tree: empty serialized model");

  // A hand-edited or truncated bundle must fail loudly, not crash
  // predict_proba. The serializer allocates node ids in pre-order, so every
  // child index points strictly forward — enforcing that also guarantees
  // the node graph terminates (no cycles are reachable).
  const int count = static_cast<int>(tree.nodes_.size());
  std::size_t max_feature = 0;
  bool any_split = false;
  for (int k = 0; k < count; ++k) {
    const Node& n = tree.nodes_[static_cast<std::size_t>(k)];
    if (n.feature >= 0) {
      any_split = true;
      max_feature = std::max(max_feature, static_cast<std::size_t>(n.feature));
      if (n.left <= k || n.left >= count || n.right <= k || n.right >= count) {
        throw MlError("tree: node " + std::to_string(k) +
                      " has child index outside (" + std::to_string(k) + ", " +
                      std::to_string(count) + ")");
      }
    } else if (n.proba.size() !=
               static_cast<std::size_t>(tree.num_classes_)) {
      throw MlError("tree: leaf node " + std::to_string(k) + " has " +
                    std::to_string(n.proba.size()) + " probabilities, want " +
                    std::to_string(tree.num_classes_));
    }
  }

  if (j.contains("importances")) {
    for (const Json& v : j.at("importances").as_array()) {
      tree.importances_.push_back(v.as_number());
    }
    if (any_split && tree.importances_.size() <= max_feature) {
      throw MlError("tree: importances cover " +
                    std::to_string(tree.importances_.size()) +
                    " features but splits reference feature " +
                    std::to_string(max_feature));
    }
  } else {
    // Pre-importances bundles: fall back to zeros wide enough for every
    // feature the splits reference.
    tree.importances_.assign(any_split ? max_feature + 1 : 0, 0.0);
  }
  return tree;
}

// ---- RegressionTree --------------------------------------------------------

void RegressionTree::fit(const Matrix& x, std::span<const double> targets,
                         Rng& rng, std::span<const std::size_t> samples) {
  if (x.rows() == 0 || x.rows() != targets.size()) {
    throw MlError("regression tree: bad training shape");
  }
  nodes_.clear();
  leaf_nodes_.clear();
  leaf_members_.clear();

  std::vector<std::size_t> idx;
  if (samples.empty()) {
    idx.resize(x.rows());
    std::iota(idx.begin(), idx.end(), 0u);
  } else {
    idx.assign(samples.begin(), samples.end());
  }
  FitWorkspace ws;
  ws.order.reserve(idx.size());
  ws.features.reserve(x.cols());
  build(x, targets, idx, 0, idx.size(), 0, rng, ws);
}

int RegressionTree::build(const Matrix& x, std::span<const double> targets,
                          std::vector<std::size_t>& samples, std::size_t begin,
                          std::size_t end, int level, Rng& rng,
                          FitWorkspace& ws) {
  const std::size_t n = end - begin;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double t = targets[samples[i]];
    sum += t;
    sum_sq += t * t;
  }
  const double mean = sum / static_cast<double>(n);
  const double sse = sum_sq - sum * mean;  // total squared error around mean

  auto make_leaf = [&] {
    Node leaf;
    leaf.value = mean;
    leaf.leaf_id = static_cast<int>(leaf_nodes_.size());
    nodes_.push_back(leaf);
    const int node_id = static_cast<int>(nodes_.size() - 1);
    leaf_nodes_.push_back(node_id);
    leaf_members_.emplace_back(samples.begin() + static_cast<long>(begin),
                               samples.begin() + static_cast<long>(end));
    return node_id;
  };

  const bool depth_capped = params_.max_depth >= 0 && level >= params_.max_depth;
  if (sse <= 1e-12 || depth_capped ||
      n < static_cast<std::size_t>(params_.min_samples_split)) {
    return make_leaf();
  }

  SplitResult best;
  sample_features_into(x.cols(), params_.max_features, rng, ws.features);
  ws.order.assign(samples.begin() + static_cast<long>(begin),
                  samples.begin() + static_cast<long>(end));
  const std::span<std::size_t> order(ws.order.data(), n);
  for (const std::size_t f : ws.features) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return x.at(a, f) < x.at(b, f);
    });
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double t = targets[order[i]];
      left_sum += t;
      left_sq += t * t;
      const double lo = x.at(order[i], f);
      const double hi = x.at(order[i + 1], f);
      if (hi <= lo) continue;
      const auto nl = static_cast<double>(i + 1);
      const auto nr = static_cast<double>(n - i - 1);
      if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double sse_l = left_sq - left_sum * left_sum / nl;
      const double sse_r = right_sq - right_sum * right_sum / nr;
      const double decrease = sse - sse_l - sse_r;
      if (decrease > best.decrease + 1e-15) {
        best.found = true;
        best.feature = f;
        best.threshold = 0.5 * (lo + hi);
        best.decrease = decrease;
      }
    }
  }
  if (!best.found) return make_leaf();

  const auto mid_it = std::partition(
      samples.begin() + static_cast<long>(begin),
      samples.begin() + static_cast<long>(end), [&](std::size_t s) {
        return x.at(s, best.feature) <= best.threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - samples.begin());

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].feature =
      static_cast<int>(best.feature);
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  const int left_id =
      build(x, targets, samples, begin, mid, level + 1, rng, ws);
  const int right_id = build(x, targets, samples, mid, end, level + 1, rng, ws);
  nodes_[static_cast<std::size_t>(node_id)].left = left_id;
  nodes_[static_cast<std::size_t>(node_id)].right = right_id;
  return node_id;
}

int RegressionTree::apply(std::span<const double> row) const {
  if (nodes_.empty()) throw MlError("regression tree: apply before fit");
  const Node* node = &nodes_[0];
  while (node->feature >= 0) {
    const std::size_t f = static_cast<std::size_t>(node->feature);
    if (f >= row.size()) throw MlError("regression tree: short feature row");
    node = row[f] <= node->threshold
               ? &nodes_[static_cast<std::size_t>(node->left)]
               : &nodes_[static_cast<std::size_t>(node->right)];
  }
  return node->leaf_id;
}

double RegressionTree::predict(std::span<const double> row) const {
  return leaf_value(apply(row));
}

void RegressionTree::set_leaf_value(int leaf_id, double value) {
  nodes_[static_cast<std::size_t>(leaf_nodes_.at(
             static_cast<std::size_t>(leaf_id)))]
      .value = value;
}

double RegressionTree::leaf_value(int leaf_id) const {
  return nodes_[static_cast<std::size_t>(leaf_nodes_.at(
                    static_cast<std::size_t>(leaf_id)))]
      .value;
}

}  // namespace pml::ml
