#include "core/overhead.hpp"

#include "coll/cost.hpp"
#include "common/error.hpp"
#include "sim/network.hpp"

namespace pml::core {

int omb_iterations(std::uint64_t msg_bytes) {
  // OSU micro-benchmark defaults: 1000 iterations up to 8 KiB, 100 beyond
  // (plus warmup, folded in here).
  return msg_bytes <= 8192 ? 1200 : 120;
}

double microbenchmark_core_hours(const sim::ClusterSpec& cluster,
                                 coll::Collective collective, int nodes,
                                 int ppn,
                                 std::span<const std::uint64_t> msg_sizes) {
  const sim::Topology topo{nodes, ppn};
  const sim::NetworkModel model(cluster, topo);
  double wall_seconds = 0.0;
  for (const std::uint64_t msg : msg_sizes) {
    for (const coll::Algorithm a :
         coll::valid_algorithms(collective, topo.world_size())) {
      wall_seconds +=
          coll::analytic_cost(model, a, msg) * omb_iterations(msg);
    }
  }
  return wall_seconds * topo.world_size() / 3600.0;
}

double acclaim_core_hours(int nodes, int ppn) {
  if (nodes < 1 || ppn < 1) throw TuningError("invalid job shape");
  constexpr double kAcclaimMinutes = 5.62;  // published, 128 nodes, allgather
  return kAcclaimMinutes / 60.0 * static_cast<double>(nodes) *
         static_cast<double>(ppn);
}

double pml_core_hours(double inference_seconds) {
  if (inference_seconds < 0.0) throw TuningError("negative inference time");
  return inference_seconds / 3600.0;  // a single process
}

}  // namespace pml::core
