// Tuning-dataset construction (paper §V-B, Table I).
//
// For every (cluster, #nodes, ppn, message size) point of a cluster's sweep
// the builder benchmarks every valid algorithm (averaged noisy iterations,
// exactly as the paper averages repeated runs) and labels the point with
// the fastest one. The result is the ~9000-record-per-collective dataset
// the paper trains on.
//
// Two cost sources are available per build (CostSource):
//  - kAnalytic: the closed-form coll::analytic_cost path with multiplicative
//    log-normal jitter — O(log p) per measurement, the default.
//  - kEngine:   the exact event engine via coll::run_collective in
//    timing-only payload mode — O(messages) per measurement, but the only
//    path that understands a sim::FaultPlan (the analytic model is
//    fault-blind), so faulted/contended grids must build through it.
//
// The engine path is made affordable by analytic top-k pruning: per cell,
// all valid algorithms are ranked by their noise-free analytic cost and only
// the top prune_topk contenders (plus a deterministic ε-sample of the rest,
// drawn from the cell's RNG) are measured on the engine. Pruning is
// restricted to clean grids — a non-empty FaultPlan forces exhaustive
// engine measurement, because the analytic ranking knows nothing about
// faults. prune_audit measures everything and counts the cells where
// pruning would have mislabeled (see BuildStats / dataset.* counters).
//
// The sweep is embarrassingly parallel: every grid cell derives its own
// noise stream from cell_seed(), and engine measurements seed their jitter
// from measurement_seed(), so records are bit-identical at any thread
// count and independent of iteration order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "coll/collective.hpp"
#include "common/json.hpp"
#include "core/features.hpp"
#include "ml/dataset.hpp"
#include "sim/fault.hpp"
#include "sim/hardware.hpp"

namespace pml::core {

/// One benchmark point: features, per-candidate timings, and the label.
struct TuningRecord {
  std::string cluster;
  int nodes = 0;
  int ppn = 0;
  std::uint64_t msg_bytes = 0;
  coll::Collective collective = coll::Collective::kAllgather;
  std::vector<double> features;  ///< full 14-column row
  /// Measured seconds per candidate, indexed like
  /// coll::selection_space(collective). Flat builds (BuildOptions::
  /// hierarchy == false) measure only the space's flat prefix — whose
  /// indices equal the v1 algorithms_for(collective) label space — so
  /// their vectors are prefix-length. +inf marks candidates invalid at
  /// this topology or skipped by the engine-mode pruning layer (only
  /// measured entries can be the label).
  std::vector<double> times;
  int label = -1;  ///< selection-space index of the fastest measured candidate
};

/// Engine-mode pruning is disabled below this world size: at degenerate
/// tiny worlds the closed forms collapse (at p=2 every alltoall is one
/// exchange and the analytic ordering is meaningless — observed strict
/// rank 4 of the engine argmin), while exhaustive engine measurement
/// costs next to nothing there anyway.
inline constexpr int kPruneWorldFloor = 8;

/// Which cost model a dataset build measures cells with (header comment).
enum class CostSource : std::uint8_t {
  kAnalytic,  ///< closed-form coll::measured_cost (fault-blind, O(log p))
  kEngine,    ///< event engine, timing-only payload mode (exact, O(messages))
};

/// Stable identifier ("analytic" / "engine") and its inverse; the parse
/// throws pml::ConfigError on unknown names (CLI --cost-source).
std::string to_string(CostSource source);
CostSource cost_source_from_string(const std::string& name);

/// Aggregate outcome of one build_records call (also flushed to the
/// dataset.* obs counters when collection is enabled).
struct BuildStats {
  std::uint64_t cells = 0;           ///< records built
  std::uint64_t measured_evals = 0;  ///< (algorithm x cell) points measured
  /// Engine-mode pruning effect: measurements skipped because the algorithm
  /// ranked outside the analytic top-k, and measurements performed only
  /// because the ε-sample drew the algorithm back in. In audit mode both
  /// count the *simulated* pruning decision (nothing is actually skipped).
  std::uint64_t pruned_evals = 0;
  std::uint64_t epsilon_evals = 0;
  /// Audit mode only: cells whose exhaustive engine label lies outside the
  /// pruned measurement set, i.e. cells pruning would have mislabeled.
  std::uint64_t prune_mispredictions = 0;
};

struct BuildOptions {
  int iterations = 5;          ///< averaged per measurement (noise suppression)
  double noise_sigma = 0.015;  ///< dynamic network effects (paper §III)
  std::uint64_t seed = 2024;
  /// Sweep concurrency: 1 = serial, <= 0 = all hardware threads. Records are
  /// bit-identical at any setting (per-cell RNG split, see cell_seed()).
  int threads = 1;
  /// Cost model for the per-algorithm measurements (header comment).
  CostSource cost_source = CostSource::kAnalytic;
  /// Deterministic fault injection for engine-mode builds. Must be empty
  /// with kAnalytic (the analytic model is fault-blind: TuningError), must
  /// validate against every cell's topology, and — being invisible to the
  /// analytic ranking — forces exhaustive engine measurement (no pruning).
  sim::FaultPlan faults{};
  /// Engine-mode pruning: measure only the prune_topk analytically-cheapest
  /// valid algorithms per cell; <= 0 measures exhaustively. The cut is
  /// tie-inclusive — algorithms whose analytic cost equals the k-th ranked
  /// cost are all kept, because the closed forms coincide for whole
  /// algorithm families and an enum-order tie-break would prune the true
  /// winner arbitrarily. Cells with world size below kPruneWorldFloor are
  /// always measured exhaustively. Ignored by the analytic path (ranking
  /// and measuring with the same model is free).
  int prune_topk = 3;
  /// Probability in [0, 1] that an algorithm pruned by the top-k cut is
  /// measured anyway (one deterministic Bernoulli draw per pruned algorithm
  /// from the cell's RNG), bounding the pruning error observably.
  double prune_epsilon = 0.0;
  /// Audit mode (engine + pruning): measure every valid algorithm so the
  /// records stay exhaustive, but count the cells where the pruned
  /// measurement set would have missed the true label (BuildStats::
  /// prune_mispredictions / the dataset.prune_mispredictions counter).
  bool prune_audit = false;
  /// Label space v2: measure the full coll::selection_space(collective) —
  /// flat algorithms plus leader-based hierarchical schedules — instead of
  /// the flat prefix only. Engine builds additionally run under the
  /// cluster's intra-node tier model (sim::HierarchySpec::from_cluster),
  /// so flat and hierarchical candidates are timed in the same world.
  bool hierarchy = false;
};

/// Deterministic per-cell noise-stream seed: a splitmix64 sponge over
/// (seed, cluster, collective, nodes, ppn, msg). Each grid cell of the sweep
/// draws its measurement jitter from an Rng seeded with this value, which
/// makes the dataset independent of cell iteration order and thread count.
std::uint64_t cell_seed(std::uint64_t seed, std::string_view cluster,
                        coll::Collective collective, int nodes, int ppn,
                        std::uint64_t msg_bytes);

/// Deterministic engine jitter seed for one (cell, algorithm, iteration)
/// measurement: the same sponge discipline over the cell seed. A pure
/// function of the measurement's identity, so pruning never perturbs the
/// values of the measurements it keeps and any thread count is
/// bit-identical.
std::uint64_t measurement_seed(std::uint64_t cell, std::size_t algorithm,
                               int iteration);

/// Human-locatable identity of one sweep cell, used in builder error
/// messages: "cluster 'X' <collective> (nodes=.., ppn=.., msg_bytes=..)".
std::string sweep_cell_context(std::string_view cluster,
                               coll::Collective collective, int nodes, int ppn,
                               std::uint64_t msg_bytes);

/// Benchmark one cluster's full Table-I sweep for one collective.
std::vector<TuningRecord> build_cluster_records(const sim::ClusterSpec& cluster,
                                                coll::Collective collective,
                                                const BuildOptions& options);

/// Benchmark a set of clusters (all of Table I by default). The overload
/// with `stats` also reports the build's measurement/pruning tallies.
std::vector<TuningRecord> build_records(
    std::span<const sim::ClusterSpec> clusters, coll::Collective collective,
    const BuildOptions& options);
std::vector<TuningRecord> build_records(
    std::span<const sim::ClusterSpec> clusters, coll::Collective collective,
    const BuildOptions& options, BuildStats& stats);

/// Serialize records to/from a "pml-dataset-v2" document (the payload of a
/// pml-artifact-v1 envelope of kind "dataset"; `pml dataset` writes these).
/// v2 carries a "selections" array naming the encoded label space the
/// `times` columns index; v1 documents (bare flat label space) are still
/// read for one release. All records must share `collective` and label
/// width; from_json validates shapes and throws TuningError/JsonError on
/// mismatch.
Json records_to_json(std::span<const TuningRecord> records,
                     coll::Collective collective);
std::vector<TuningRecord> records_from_json(const Json& j);

/// Convert records to an ML dataset. `columns` selects feature columns
/// (empty = all 14). Class labels index coll::selection_space(collective)
/// (whose flat prefix is the v1 algorithm label space), so flat-built and
/// hierarchical datasets train models over one stable class layout.
ml::Dataset to_ml_dataset(std::span<const TuningRecord> records,
                          coll::Collective collective,
                          const std::vector<std::size_t>& columns = {});

/// Row indices whose cluster name is in `clusters` (cluster-based splits).
std::vector<std::size_t> rows_in_clusters(
    std::span<const TuningRecord> records,
    std::span<const std::string> clusters);

/// Row indices with node count <= / > `threshold` (node-based splits).
std::vector<std::size_t> rows_with_nodes_at_most(
    std::span<const TuningRecord> records, int threshold);
std::vector<std::size_t> rows_with_nodes_above(
    std::span<const TuningRecord> records, int threshold);

}  // namespace pml::core
