// Tuning-dataset construction (paper §V-B, Table I).
//
// For every (cluster, #nodes, ppn, message size) point of a cluster's sweep
// the builder benchmarks every valid algorithm (averaged noisy iterations,
// exactly as the paper averages repeated runs) and labels the point with
// the fastest one. The result is the ~9000-record-per-collective dataset
// the paper trains on.
//
// The sweep is embarrassingly parallel: every grid cell derives its own
// noise stream from cell_seed(), so records are bit-identical at any thread
// count and independent of iteration order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "coll/collective.hpp"
#include "core/features.hpp"
#include "ml/dataset.hpp"
#include "sim/hardware.hpp"

namespace pml::core {

/// One benchmark point: features, per-algorithm timings, and the label.
struct TuningRecord {
  std::string cluster;
  int nodes = 0;
  int ppn = 0;
  std::uint64_t msg_bytes = 0;
  coll::Collective collective = coll::Collective::kAllgather;
  std::vector<double> features;  ///< full 14-column row
  /// Measured seconds per algorithm, indexed like algorithms_for(collective);
  /// +inf marks algorithms invalid at this world size.
  std::vector<double> times;
  int label = -1;  ///< index of the fastest algorithm
};

struct BuildOptions {
  int iterations = 5;          ///< averaged per measurement (noise suppression)
  double noise_sigma = 0.015;  ///< dynamic network effects (paper §III)
  std::uint64_t seed = 2024;
  /// Sweep concurrency: 1 = serial, <= 0 = all hardware threads. Records are
  /// bit-identical at any setting (per-cell RNG split, see cell_seed()).
  int threads = 1;
};

/// Deterministic per-cell noise-stream seed: a splitmix64 sponge over
/// (seed, cluster, collective, nodes, ppn, msg). Each grid cell of the sweep
/// draws its measurement jitter from an Rng seeded with this value, which
/// makes the dataset independent of cell iteration order and thread count.
std::uint64_t cell_seed(std::uint64_t seed, std::string_view cluster,
                        coll::Collective collective, int nodes, int ppn,
                        std::uint64_t msg_bytes);

/// Benchmark one cluster's full Table-I sweep for one collective.
std::vector<TuningRecord> build_cluster_records(const sim::ClusterSpec& cluster,
                                                coll::Collective collective,
                                                const BuildOptions& options);

/// Benchmark a set of clusters (all of Table I by default).
std::vector<TuningRecord> build_records(
    std::span<const sim::ClusterSpec> clusters, coll::Collective collective,
    const BuildOptions& options);

/// Convert records to an ML dataset. `columns` selects feature columns
/// (empty = all 14). Class labels index algorithms_for(collective).
ml::Dataset to_ml_dataset(std::span<const TuningRecord> records,
                          coll::Collective collective,
                          const std::vector<std::size_t>& columns = {});

/// Row indices whose cluster name is in `clusters` (cluster-based splits).
std::vector<std::size_t> rows_in_clusters(
    std::span<const TuningRecord> records,
    std::span<const std::string> clusters);

/// Row indices with node count <= / > `threshold` (node-based splits).
std::vector<std::size_t> rows_with_nodes_at_most(
    std::span<const TuningRecord> records, int threshold);
std::vector<std::size_t> rows_with_nodes_above(
    std::span<const TuningRecord> records, int threshold);

}  // namespace pml::core
