// pml::core serve — selector-as-a-service.
//
// A long-running, zero-new-dependency daemon that answers the online
// stage's two query shapes over a newline-delimited JSON protocol
// (docs/API.md, "Serve protocol"):
//
//   {"op":"table",  "cluster":...}                          -> tuning table
//   {"op":"select", "cluster":..., "collective":"allgather",
//    "nodes":8, "ppn":4, "msg_bytes":65536}                 -> one algorithm
//
// plus "ping" and "stats" for health checks. One engine instance serves
// any number of transport threads (stdio pipe, TCP connections): all
// shared state is behind a sharded LRU cache of compiled tuning tables
// keyed by (model artifact checksum, cluster hardware fingerprint,
// resolved sweep grids), so a redeployed model or a respec'd cluster can
// never be answered from a stale table.
//
// Cache misses never block the reply (unless the client asks to "wait"):
// a recompile is posted to ThreadPool::shared() — whose workers also
// batch the FlatForest inference inside each compile via parallel_for —
// and the miss is answered immediately one rung down the degradation
// ladder: direct model inference for "select", HeuristicSelector for
// "table". Heuristic answers are marked "degraded" and are never cached,
// and each one bumps the same online.fallback.* counters as the batch
// online stage.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/framework.hpp"
#include "obs/obs.hpp"

namespace pml::core {

struct ServeOptions {
  /// Model bundle path (pml-artifact-v1 "model" envelope or legacy
  /// bundle). Empty, unreadable, or corrupt => the engine starts in (or
  /// degrades to) heuristic-only serving instead of failing; every
  /// compile attempt re-reads the file, so replacing or repairing the
  /// artifact on disk is picked up without a restart.
  std::string model_path;
  /// LRU shards (>= 1). More shards = less lock contention across
  /// transport threads; keys spread by FNV-1a hash.
  int shards = 4;
  /// Compiled tables kept per shard (>= 1).
  std::size_t shard_capacity = 8;
  /// Base compile options for cache-miss recompiles: sweep grid defaults
  /// (empty axes = the target cluster's own grid) and sweep threads.
  /// cache_dir / cache_retry / heuristic_fallback are unused here — the
  /// serve cache is in-memory and the ladder is always on.
  CompileOptions compile;
  /// When false, cache misses compile synchronously on the request
  /// thread (deterministic tests); the reply still reports its rung.
  bool async_compile = true;
  /// Upper bound on the select micro-batch (>= 1). Concurrent uncached
  /// "select" requests answered by direct model inference coalesce — per
  /// (model instance, cluster hardware fingerprint, collective) — into
  /// one batched FlatForest sweep, amortizing node-array traffic across
  /// requests exactly like a tuning-table cell compile. 1 disables
  /// coalescing. Replies are unchanged either way: the batched kernel is
  /// bit-identical to per-request select().
  int micro_batch = 16;

  /// Throws pml::ConfigError on non-positive shards/capacity or an
  /// invalid compile sweep.
  void validate() const;
};

/// One cached compile result: the table plus its pre-serialized compact
/// JSON, so "table" replies are built once and byte-stable across
/// requests, shards, and runs (lookup tie-breaks are deterministic too;
/// see TuningTable::lookup).
struct ServedTable {
  TuningTable table;
  std::string json;
};

/// Sharded LRU map: cache key -> immutable ServedTable. Each shard has
/// its own mutex and LRU list; entries are shared_ptr so a hit can be
/// used lock-free after the (brief) shard lock drops, even if the entry
/// is evicted concurrently.
class ServeCache {
 public:
  ServeCache(int shards, std::size_t shard_capacity);

  ServeCache(const ServeCache&) = delete;
  ServeCache& operator=(const ServeCache&) = delete;

  /// nullptr on miss; refreshes LRU order on hit.
  std::shared_ptr<const ServedTable> get(const std::string& key);

  /// Insert (or replace) an entry, evicting the shard's least recently
  /// used entry when over capacity.
  void put(const std::string& key, std::shared_ptr<const ServedTable> entry);

  /// Total entries across shards (point-in-time; shards are sampled one
  /// at a time).
  std::size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::string> lru;
    std::unordered_map<std::string,
                       std::pair<std::list<std::string>::iterator,
                                 std::shared_ptr<const ServedTable>>>
        entries;
  };

  Shard& shard_for(const std::string& key);

  std::vector<Shard> shards_;
  std::size_t capacity_;
};

/// Owns the loaded model and its identity. The identity is the FNV-1a
/// checksum of the artifact's file bytes: cache keys embed it, so a
/// model redeploy (new bytes) naturally invalidates every cached table
/// without an explicit flush. revalidate() re-reads the file and
/// reloads only when the bytes changed; a now-corrupt artifact drops
/// the engine to heuristic-only serving (the file on disk is the source
/// of truth — the in-memory copy is not kept once it can no longer be
/// vouched for).
class ModelHost {
 public:
  /// Lenient: a missing/corrupt artifact logs a warning and starts
  /// degraded instead of throwing. An empty path never loads.
  explicit ModelHost(std::string path);

  bool has_path() const noexcept { return !path_.empty(); }

  /// Current model, or nullptr while degraded. The framework is safe
  /// for concurrent select()/compile_for() (see framework.hpp).
  std::shared_ptr<PmlFramework> framework() const;

  /// "fnv1a64:<16 hex>" over the artifact file bytes; "" while degraded.
  std::string checksum() const;

  /// Re-read the artifact; reload if its bytes changed. Returns true
  /// when a usable model is loaded afterwards.
  bool revalidate();

 private:
  bool load_locked();

  mutable std::mutex mutex_;
  std::string path_;
  std::shared_ptr<PmlFramework> framework_;
  std::string checksum_;
};

/// The transport-independent request handler. Thread-safe: handle_line
/// may be called concurrently from any number of transport threads.
class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options);
  /// Blocks until in-flight async recompiles finish (they capture
  /// `this`).
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Handle one request line (no trailing newline) and return the reply
  /// line (no trailing newline). Never throws: every failure becomes an
  /// {"ok":false,...} reply carrying the error-taxonomy code and the
  /// exit status `pml <verb>` would have returned for the same failure.
  std::string handle_line(const std::string& line);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t compiles = 0;
    std::uint64_t degraded = 0;
    std::uint64_t errors = 0;
  };
  Stats stats() const;

  std::size_t cached_tables() const { return cache_.size(); }
  bool model_loaded() const { return model_.framework() != nullptr; }

  /// Block until no async recompiles are in flight (tests).
  void drain();

 private:
  struct CompileJob {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const ServedTable> result;  ///< nullptr on failure
  };

  std::string handle_select(const Json& request);
  std::string handle_table(const Json& request);
  std::string handle_stats();

  /// One uncached select waiting for a model micro-batch. Stack-owned by
  /// its blocked request thread (so the cluster pointer stays valid);
  /// every field after `query` is written by the draining leader under
  /// batch_mutex_.
  struct PendingSelect {
    PmlFramework* framework = nullptr;
    const sim::ClusterSpec* cluster = nullptr;
    std::uint64_t fingerprint = 0;
    coll::Collective collective{};
    PmlFramework::SelectQuery query;
    coll::Selection result = coll::Selection::flat(coll::Algorithm::kAgRing);
    std::exception_ptr error;
    bool done = false;
  };

  /// Leader/follower micro-batching around PmlFramework::select_batch
  /// (serve.cpp comment). Returns what framework->select(...) would, or
  /// rethrows its error.
  coll::Selection batched_model_select(PmlFramework& framework,
                                       const sim::ClusterSpec& cluster,
                                       coll::Collective collective,
                                       sim::Topology topo,
                                       std::uint64_t msg_bytes);

  /// Drain batch_queue_ until empty, one compatible group at a time.
  /// Pre: `lock` holds batch_mutex_ and this thread is the leader.
  void drain_select_batches(std::unique_lock<std::mutex>& lock);

  /// Find-or-start the compile job for `key`. At most one job per key is
  /// in flight; duplicates wait on the same job.
  std::shared_ptr<CompileJob> ensure_compile(const std::string& key,
                                             const sim::ClusterSpec& cluster,
                                             const CompileOptions& resolved);
  void run_compile(const std::shared_ptr<CompileJob>& job,
                   const std::string& requested_key,
                   const sim::ClusterSpec& cluster,
                   const CompileOptions& resolved) noexcept;
  std::shared_ptr<const ServedTable> wait_for(CompileJob& job);

  /// "<checksum>/<fingerprint hex>/<sweep hash hex>".
  std::string cache_key(const std::string& checksum,
                        const sim::ClusterSpec& cluster,
                        const CompileOptions& resolved) const;

  /// Memoized select-path cache keys for *named* clusters under the
  /// default sweep: name -> (checksum the key was derived under, key).
  /// A cached-select hit then costs one map probe instead of a
  /// ClusterSpec copy + hardware-fingerprint hash + sweep-token build;
  /// entries self-invalidate when the model checksum moves. Bounded by
  /// the builtin-cluster census (inline spec objects bypass the memo).
  std::mutex select_keys_mutex_;
  std::unordered_map<std::string, std::pair<std::string, std::string>>
      select_keys_;

  /// Rolling reply-latency percentiles, exported as the
  /// serve.latency.p50_ns / p99_ns gauges.
  class LatencyRecorder {
   public:
    LatencyRecorder();
    void record(std::uint64_t ns);

   private:
    static constexpr std::size_t kWindow = 1024;
    static constexpr std::size_t kUpdateEvery = 64;

    std::mutex mutex_;
    std::vector<std::uint64_t> ring_;
    std::size_t count_ = 0;
    obs::Gauge p50_;
    obs::Gauge p99_;
  };

  ServeOptions options_;
  ModelHost model_;
  ServeCache cache_;
  LatencyRecorder latency_;

  std::mutex jobs_mutex_;
  std::condition_variable idle_cv_;
  std::unordered_map<std::string, std::shared_ptr<CompileJob>> jobs_;
  int in_flight_ = 0;

  /// Select micro-batcher state (batched_model_select).
  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::vector<PendingSelect*> batch_queue_;
  bool batch_leader_active_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> errors_{0};
};

/// Serve newline-delimited requests from `in` to `out` until EOF (the
/// `pml serve --stdio` transport; also what the protocol round-trip
/// tests drive through a shell pipe). Blank lines are ignored.
void serve_stdio(ServeEngine& engine, std::FILE* in, std::FILE* out);

/// Minimal TCP transport: accepts loopback connections and runs one
/// thread per connection, each feeding lines to the shared engine.
/// POSIX sockets only — no new dependencies.
class TcpServer {
 public:
  explicit TcpServer(ServeEngine& engine) : engine_(engine) {}
  ~TcpServer() { stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral), start the accept thread, and
  /// return the bound port. Throws pml::IoError on socket failure.
  int start(int port);

  /// Close the listener and all live connections; join every thread.
  /// Idempotent.
  void stop();

  /// Block until stop() is called from another thread (or the accept
  /// loop dies). The CLI foreground mode parks on this.
  void wait();

  int port() const noexcept { return port_; }

 private:
  void accept_loop();
  void client_loop(int fd);

  ServeEngine& engine_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mutex_;
  std::vector<int> client_fds_;          ///< live connection sockets
  std::vector<std::thread> client_threads_;
};

}  // namespace pml::core
