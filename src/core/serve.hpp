// pml::core serve — selector-as-a-service.
//
// A long-running, zero-new-dependency daemon that answers the online
// stage's two query shapes over a newline-delimited JSON protocol
// (docs/API.md, "Serve protocol"):
//
//   {"op":"table",  "cluster":...}                          -> tuning table
//   {"op":"select", "cluster":..., "collective":"allgather",
//    "nodes":8, "ppn":4, "msg_bytes":65536}                 -> one algorithm
//
// plus "ping", "stats", and "health" for health checks. One engine
// instance serves any number of transport threads (stdio pipe, TCP
// connections): all shared state is behind a sharded LRU cache of
// compiled tuning tables keyed by (model artifact checksum, cluster
// hardware fingerprint, resolved sweep grids), so a redeployed model or
// a respec'd cluster can never be answered from a stale table.
//
// Cache misses never block the reply (unless the client asks to "wait"):
// a recompile is posted to ThreadPool::shared() — whose workers also
// batch the FlatForest inference inside each compile via parallel_for —
// and the miss is answered immediately one rung down the degradation
// ladder: direct model inference for "select", HeuristicSelector for
// "table". Heuristic answers are marked "degraded" and are never cached,
// and each one bumps the same online.fallback.* counters as the batch
// online stage.
//
// The stack is overload-safe by construction (docs/API.md, "Serve
// protocol > Limits"): the engine sheds misses past a bounded pending-
// compile queue straight to the heuristic rung (source:"shed"), runs a
// circuit breaker around model recompiles so a persistently broken
// artifact stops burning compile threads, honors per-request
// "deadline_ms" on waited recompiles, and can drain gracefully. The TCP
// transport bounds per-connection line buffers, caps concurrent
// connections, and evicts slow-loris/idle peers on a read deadline —
// every rejection is a structured one-line error, never a silent drop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/artifact.hpp"
#include "core/framework.hpp"
#include "obs/obs.hpp"

namespace pml::core {

struct ServeOptions {
  /// Model bundle path (pml-artifact-v1 "model" envelope or legacy
  /// bundle). Empty, unreadable, or corrupt => the engine starts in (or
  /// degrades to) heuristic-only serving instead of failing; every
  /// compile attempt re-reads the file, so replacing or repairing the
  /// artifact on disk is picked up without a restart.
  std::string model_path;
  /// LRU shards (>= 1). More shards = less lock contention across
  /// transport threads; keys spread by FNV-1a hash.
  int shards = 4;
  /// Compiled tables kept per shard (>= 1).
  std::size_t shard_capacity = 8;
  /// Base compile options for cache-miss recompiles: sweep grid defaults
  /// (empty axes = the target cluster's own grid) and sweep threads.
  /// cache_dir / cache_retry / heuristic_fallback are unused here — the
  /// serve cache is in-memory and the ladder is always on.
  CompileOptions compile;
  /// When false, cache misses compile synchronously on the request
  /// thread (deterministic tests); the reply still reports its rung.
  bool async_compile = true;
  /// Upper bound on the select micro-batch (>= 1). Concurrent uncached
  /// "select" requests answered by direct model inference coalesce — per
  /// (model instance, cluster hardware fingerprint, collective) — into
  /// one batched FlatForest sweep, amortizing node-array traffic across
  /// requests exactly like a tuning-table cell compile. 1 disables
  /// coalescing. Replies are unchanged either way: the batched kernel is
  /// bit-identical to per-request select().
  int micro_batch = 16;

  // --- Transport limits (TcpServer) ---

  /// Longest request line (bytes, newline excluded) a connection may
  /// send. A connection whose unterminated buffer grows past this gets
  /// a structured error reply and is closed, so a never-newline byte
  /// flood cannot grow server memory.
  std::size_t max_line_bytes = 1 << 20;
  /// Hard cap on concurrent TCP connections. Excess accepts receive a
  /// single {"ok":false,"error":"overloaded",...} line and are closed.
  int max_connections = 256;
  /// Socket read deadline (SO_RCVTIMEO) and per-line completion
  /// deadline in one: a connection that sends nothing for this long, or
  /// drip-feeds bytes without ever completing a line (slow loris), is
  /// sent a structured error and evicted. 0 disables both deadlines.
  int read_timeout_ms = 30'000;

  // --- Engine admission control ---

  /// Max concurrently pending recompiles (>= 1). A miss that would push
  /// the pending-compile count past this is shed: answered immediately
  /// from the heuristic rung (source:"shed", degraded:true) instead of
  /// queueing without bound. Joining an already-pending compile for the
  /// same key adds no queue pressure and is never shed.
  int queue_limit = 32;
  /// Circuit breaker over model recompiles: `failure_threshold`
  /// consecutive compile failures stop compile attempts for a bounded-
  /// exponential backoff window (misses answer from the heuristic rung
  /// immediately), then a single half-open probe restores service.
  BreakerPolicy breaker;
  /// Chaos/test hook: when set, invoked at the top of every compile
  /// attempt (before model revalidation). Tests make it throw or block
  /// to script compile failures and slow compiles deterministically.
  std::function<void()> compile_fault;

  /// Throws pml::ConfigError on non-positive shards/capacity/limits or
  /// an invalid compile sweep.
  void validate() const;
};

/// One cached compile result: the table plus its pre-serialized compact
/// JSON, so "table" replies are built once and byte-stable across
/// requests, shards, and runs (lookup tie-breaks are deterministic too;
/// see TuningTable::lookup).
struct ServedTable {
  TuningTable table;
  std::string json;
};

/// Sharded LRU map: cache key -> immutable ServedTable. Each shard has
/// its own mutex and LRU list; entries are shared_ptr so a hit can be
/// used lock-free after the (brief) shard lock drops, even if the entry
/// is evicted concurrently.
class ServeCache {
 public:
  ServeCache(int shards, std::size_t shard_capacity);

  ServeCache(const ServeCache&) = delete;
  ServeCache& operator=(const ServeCache&) = delete;

  /// nullptr on miss; refreshes LRU order on hit.
  std::shared_ptr<const ServedTable> get(const std::string& key);

  /// Insert (or replace) an entry, evicting the shard's least recently
  /// used entry when over capacity.
  void put(const std::string& key, std::shared_ptr<const ServedTable> entry);

  /// Total entries across shards (point-in-time; shards are sampled one
  /// at a time).
  std::size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::string> lru;
    std::unordered_map<std::string,
                       std::pair<std::list<std::string>::iterator,
                                 std::shared_ptr<const ServedTable>>>
        entries;
  };

  Shard& shard_for(const std::string& key);

  std::vector<Shard> shards_;
  std::size_t capacity_;
};

/// Owns the loaded model and its identity. The identity is the FNV-1a
/// checksum of the artifact's file bytes: cache keys embed it, so a
/// model redeploy (new bytes) naturally invalidates every cached table
/// without an explicit flush. revalidate() re-reads the file and
/// reloads only when the bytes changed; a now-corrupt artifact drops
/// the engine to heuristic-only serving (the file on disk is the source
/// of truth — the in-memory copy is not kept once it can no longer be
/// vouched for).
class ModelHost {
 public:
  /// Lenient: a missing/corrupt artifact logs a warning and starts
  /// degraded instead of throwing. An empty path never loads.
  explicit ModelHost(std::string path);

  bool has_path() const noexcept { return !path_.empty(); }

  /// Current model, or nullptr while degraded. The framework is safe
  /// for concurrent select()/compile_for() (see framework.hpp).
  std::shared_ptr<PmlFramework> framework() const;

  /// "fnv1a64:<16 hex>" over the artifact file bytes; "" while degraded.
  std::string checksum() const;

  /// Re-read the artifact; reload if its bytes changed. Returns true
  /// when a usable model is loaded afterwards.
  bool revalidate();

 private:
  bool load_locked();

  mutable std::mutex mutex_;
  std::string path_;
  std::shared_ptr<PmlFramework> framework_;
  std::string checksum_;
};

/// The transport-independent request handler. Thread-safe: handle_line
/// may be called concurrently from any number of transport threads.
class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options);
  /// Blocks until in-flight async recompiles finish (they capture
  /// `this`).
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Handle one request line (no trailing newline) and return the reply
  /// line (no trailing newline). Never throws: every failure becomes an
  /// {"ok":false,...} reply carrying the error-taxonomy code and the
  /// exit status `pml <verb>` would have returned for the same failure.
  std::string handle_line(const std::string& line);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t compiles = 0;
    std::uint64_t degraded = 0;
    std::uint64_t errors = 0;
    std::uint64_t shed = 0;              ///< misses answered via admission shedding
    std::uint64_t deadline_expired = 0;  ///< waited recompiles that hit deadline_ms
    std::uint64_t compile_failures = 0;  ///< recompile attempts that threw
    std::uint64_t evicted = 0;     ///< transport: read-deadline evictions
    std::uint64_t overloaded = 0;  ///< transport: accepts rejected at the cap
    std::uint64_t overlong = 0;    ///< transport: lines over max_line_bytes
  };
  Stats stats() const;

  std::size_t cached_tables() const { return cache_.size(); }
  bool model_loaded() const { return model_.framework() != nullptr; }

  const ServeOptions& options() const noexcept { return options_; }

  /// Stop admitting select/table work: those requests get a structured
  /// "draining" error reply while ping/stats/health keep answering (so
  /// ops can watch the drain finish). One-way; there is no undrain.
  void begin_drain();
  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  BreakerState breaker_state() const { return breaker_.state(); }
  /// Pending recompile jobs right now (admitted, not yet finished).
  int queue_depth() const;
  int connections() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Transport hooks: connection counts and rejection tallies live on
  /// the engine so stats/health replies report one truth regardless of
  /// which transport produced them.
  void add_connection(int delta);
  void note_evicted();
  void note_overloaded();
  void note_overlong();

  /// Block until no async recompiles are in flight (tests).
  void drain();

 private:
  struct CompileJob {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const ServedTable> result;  ///< nullptr on failure
  };

  std::string handle_select(const Json& request);
  std::string handle_table(const Json& request);
  std::string handle_stats();
  std::string handle_health();

  /// One uncached select waiting for a model micro-batch. Stack-owned by
  /// its blocked request thread (so the cluster pointer stays valid);
  /// every field after `query` is written by the draining leader under
  /// batch_mutex_.
  struct PendingSelect {
    PmlFramework* framework = nullptr;
    const sim::ClusterSpec* cluster = nullptr;
    std::uint64_t fingerprint = 0;
    coll::Collective collective{};
    PmlFramework::SelectQuery query;
    coll::Selection result = coll::Selection::flat(coll::Algorithm::kAgRing);
    std::exception_ptr error;
    bool done = false;
  };

  /// Leader/follower micro-batching around PmlFramework::select_batch
  /// (serve.cpp comment). Returns what framework->select(...) would, or
  /// rethrows its error.
  coll::Selection batched_model_select(PmlFramework& framework,
                                       const sim::ClusterSpec& cluster,
                                       coll::Collective collective,
                                       sim::Topology topo,
                                       std::uint64_t msg_bytes);

  /// Drain batch_queue_ until empty, one compatible group at a time.
  /// Pre: `lock` holds batch_mutex_ and this thread is the leader.
  void drain_select_batches(std::unique_lock<std::mutex>& lock);

  /// How admit_compile disposed of a cache miss.
  enum class Admission {
    kAdmitted,     ///< a compile job exists (joined or freshly started)
    kShed,         ///< pending-compile queue full: answer heuristic now
    kBreakerOpen,  ///< compile breaker open: answer heuristic now
  };
  struct AdmitResult {
    std::shared_ptr<CompileJob> job;  ///< null unless kAdmitted
    Admission admission = Admission::kAdmitted;
  };

  /// Find-or-start the compile job for `key`, subject to admission
  /// control. Joining an existing job always succeeds (no new queue
  /// pressure); starting a fresh one is shed when the pending-compile
  /// count is at queue_limit and rejected while the breaker is open. At
  /// most one job per key is in flight; duplicates wait on the same job.
  AdmitResult admit_compile(const std::string& key,
                            const sim::ClusterSpec& cluster,
                            const CompileOptions& resolved);
  void run_compile(const std::shared_ptr<CompileJob>& job,
                   const std::string& requested_key,
                   const sim::ClusterSpec& cluster,
                   const CompileOptions& resolved) noexcept;
  /// Wait for `job`, or for `deadline_ms` milliseconds when >= 0
  /// (sets `timed_out` and returns nullptr on expiry).
  std::shared_ptr<const ServedTable> wait_for(CompileJob& job,
                                              std::int64_t deadline_ms,
                                              bool& timed_out);

  /// "<checksum>/<fingerprint hex>/<sweep hash hex>".
  std::string cache_key(const std::string& checksum,
                        const sim::ClusterSpec& cluster,
                        const CompileOptions& resolved) const;

  /// Memoized select-path cache keys for *named* clusters under the
  /// default sweep: name -> (checksum the key was derived under, key).
  /// A cached-select hit then costs one map probe instead of a
  /// ClusterSpec copy + hardware-fingerprint hash + sweep-token build;
  /// entries self-invalidate when the model checksum moves. Bounded by
  /// the builtin-cluster census (inline spec objects bypass the memo).
  std::mutex select_keys_mutex_;
  std::unordered_map<std::string, std::pair<std::string, std::string>>
      select_keys_;

  /// Rolling reply-latency percentiles, exported as the
  /// serve.latency.p50_ns / p99_ns gauges.
  class LatencyRecorder {
   public:
    LatencyRecorder();
    void record(std::uint64_t ns);

   private:
    static constexpr std::size_t kWindow = 1024;
    static constexpr std::size_t kUpdateEvery = 64;

    std::mutex mutex_;
    std::vector<std::uint64_t> ring_;
    std::size_t count_ = 0;
    obs::Gauge p50_;
    obs::Gauge p99_;
  };

  ServeOptions options_;
  ModelHost model_;
  ServeCache cache_;
  LatencyRecorder latency_;

  mutable std::mutex jobs_mutex_;
  std::condition_variable idle_cv_;
  std::unordered_map<std::string, std::shared_ptr<CompileJob>> jobs_;
  int in_flight_ = 0;

  /// Select micro-batcher state (batched_model_select).
  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::vector<PendingSelect*> batch_queue_;
  bool batch_leader_active_ = false;

  CircuitBreaker breaker_;
  std::atomic<bool> draining_{false};
  std::atomic<int> connections_{0};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> compile_failures_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> overlong_{0};
};

/// One structured {"ok":false,...} error line (no trailing newline) in
/// the engine's reply format, for transports that must reject before a
/// request ever reaches handle_line (overload, oversize, eviction).
std::string serve_error_line(const std::string& what, ErrorCode code);

/// Serve newline-delimited requests from `in` to `out` until EOF (the
/// `pml serve --stdio` transport; also what the protocol round-trip
/// tests drive through a shell pipe). Blank lines are ignored.
void serve_stdio(ServeEngine& engine, std::FILE* in, std::FILE* out);

/// Minimal TCP transport: accepts loopback connections and runs one
/// thread per connection, each feeding lines to the shared engine.
/// POSIX sockets only — no new dependencies. Enforces the engine's
/// ServeOptions transport limits: connection cap (excess accepts get
/// one {"error":"overloaded"} line), bounded line buffers, and read/
/// slow-loris deadlines via SO_RCVTIMEO. Finished connection threads
/// are reaped continuously (each accept sweeps them), not only at
/// stop(), so long-lived daemons don't accumulate dead threads or fds.
class TcpServer {
 public:
  explicit TcpServer(ServeEngine& engine) : engine_(engine) {}
  ~TcpServer() { stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral), start the accept thread, and
  /// return the bound port. Throws pml::IoError on socket failure.
  int start(int port);

  /// Close the listener and terminate; join every thread. Idempotent.
  /// drain=false hard-closes live connections. drain=true is a graceful
  /// drain: the engine stops admitting select/table work, each live
  /// connection's read side is shut down so its buffered requests finish
  /// and their replies still send, then threads are joined.
  void stop(bool drain = false);

  /// Block until stop() is called from another thread (or the accept
  /// loop dies). The CLI foreground mode parks on this.
  void wait();

  int port() const noexcept { return port_; }

 private:
  /// One connection. The client thread only shuts the socket down and
  /// marks `done`; the fd is closed (and the thread joined) by whoever
  /// reaps it — the accept loop or stop() — so close() races with
  /// in-flight recv/send cannot happen.
  struct Client {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void client_loop(Client* client);
  /// Join and close every finished client; called from the accept loop
  /// on each accept and from stop().
  void reap_finished();

  ServeEngine& engine_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Client>> clients_;  ///< live + unreaped
};

}  // namespace pml::core
