#include "core/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <optional>

#include "common/artifact.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/version.hpp"
#include "core/selectors.hpp"
#include "sim/hardware.hpp"

namespace pml::core {

namespace {

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

void warn(const std::string& message) {
  std::fprintf(stderr, "pml: warning: %s\n", message.c_str());
}

// --- request parsing --------------------------------------------------------

const Json& require_field(const Json& request, const char* key) {
  if (!request.contains(key)) {
    throw ConfigError(std::string("serve: request missing \"") + key +
                      "\" field");
  }
  return request.at(key);
}

int require_positive_int(const Json& request, const char* key) {
  const std::int64_t v = require_field(request, key).as_int();
  if (v < 1 || v > std::numeric_limits<int>::max()) {
    throw ConfigError(std::string("serve: \"") + key +
                      "\" must be a positive 32-bit integer");
  }
  return static_cast<int>(v);
}

std::uint64_t require_nonneg_u64(const Json& request, const char* key) {
  const std::int64_t v = require_field(request, key).as_int();
  if (v < 0) {
    throw ConfigError(std::string("serve: \"") + key + "\" must be >= 0");
  }
  return static_cast<std::uint64_t>(v);
}

/// Optional "deadline_ms" on waited requests; -1 = wait forever.
std::int64_t deadline_ms_of(const Json& request) {
  if (!request.contains("deadline_ms")) return -1;
  const std::int64_t v = request.at("deadline_ms").as_int();
  if (v < 0) throw ConfigError("serve: \"deadline_ms\" must be >= 0");
  return v;
}

bool truthy_flag(const Json& request, const char* key) {
  return request.contains(key) && request.at(key).is_bool() &&
         request.at(key).as_bool();
}

/// "cluster" is either a builtin cluster name or an inline ClusterSpec
/// document — the same shapes `pml compile --cluster` accepts.
sim::ClusterSpec parse_cluster(const Json& request) {
  const Json& c = require_field(request, "cluster");
  if (c.is_string()) return sim::cluster_by_name(c.as_string());
  if (c.is_object()) return sim::ClusterSpec::from_json(c);
  throw ConfigError(
      "serve: \"cluster\" must be a builtin name or a cluster spec object");
}

/// Optional per-request sweep override for "table" requests.
void apply_sweep_overrides(const Json& request, CompileOptions& options) {
  if (request.contains("node_counts")) {
    options.node_counts.clear();
    for (const Json& n : request.at("node_counts").as_array()) {
      options.node_counts.push_back(static_cast<int>(n.as_int()));
    }
  }
  if (request.contains("ppn_values")) {
    options.ppn_values.clear();
    for (const Json& p : request.at("ppn_values").as_array()) {
      options.ppn_values.push_back(static_cast<int>(p.as_int()));
    }
  }
  if (request.contains("msg_sizes")) {
    options.message_sizes.clear();
    for (const Json& m : request.at("msg_sizes").as_array()) {
      options.message_sizes.push_back(static_cast<std::uint64_t>(m.as_int()));
    }
  }
}

std::string error_reply(const std::string& what, ErrorCode code) {
  Json j = Json::object();
  j["ok"] = false;
  j["error"] = what;
  j["code"] = std::string(to_string(code));
  j["status"] = exit_status(code);
  return j.dump();
}

}  // namespace

std::string serve_error_line(const std::string& what, ErrorCode code) {
  return error_reply(what, code);
}

// --- ServeOptions -----------------------------------------------------------

void ServeOptions::validate() const {
  if (shards < 1) throw ConfigError("serve: shards must be >= 1");
  if (shard_capacity < 1) {
    throw ConfigError("serve: shard_capacity must be >= 1");
  }
  if (micro_batch < 1) throw ConfigError("serve: micro_batch must be >= 1");
  if (max_line_bytes < 64) {
    throw ConfigError("serve: max_line_bytes must be >= 64");
  }
  if (max_connections < 1) {
    throw ConfigError("serve: max_connections must be >= 1");
  }
  if (read_timeout_ms < 0) {
    throw ConfigError("serve: read_timeout_ms must be >= 0");
  }
  if (queue_limit < 1) throw ConfigError("serve: queue_limit must be >= 1");
  compile.validate();
}

// --- ServeCache -------------------------------------------------------------

ServeCache::ServeCache(int shards, std::size_t shard_capacity)
    : shards_(static_cast<std::size_t>(std::max(1, shards))),
      capacity_(std::max<std::size_t>(1, shard_capacity)) {}

ServeCache::Shard& ServeCache::shard_for(const std::string& key) {
  return shards_[fnv1a64(key) % shards_.size()];
}

std::shared_ptr<const ServedTable> ServeCache::get(const std::string& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.first);
  return it->second.second;
}

void ServeCache::put(const std::string& key,
                     std::shared_ptr<const ServedTable> entry) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    it->second.second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.first);
    return;
  }
  shard.lru.push_front(key);
  shard.entries.emplace(key, std::make_pair(shard.lru.begin(), std::move(entry)));
  if (shard.entries.size() > capacity_) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
  }
}

std::size_t ServeCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

// --- ModelHost --------------------------------------------------------------

ModelHost::ModelHost(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  load_locked();
}

std::shared_ptr<PmlFramework> ModelHost::framework() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return framework_;
}

std::string ModelHost::checksum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checksum_;
}

bool ModelHost::revalidate() {
  if (path_.empty()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return load_locked();
}

bool ModelHost::load_locked() {
  std::string bytes;
  try {
    bytes = read_file(path_);
  } catch (const Error& err) {
    if (framework_ != nullptr) {
      static obs::Counter unusable("serve.model.unusable");
      unusable.increment();
      warn("serve: model artifact became unreadable (" +
           std::string(err.what()) + "); degrading to heuristic serving");
    }
    framework_.reset();
    checksum_.clear();
    return false;
  }
  const std::string sum = "fnv1a64:" + hex16(fnv1a64(bytes));
  if (sum == checksum_ && framework_ != nullptr) return true;  // unchanged
  try {
    const Json doc = Json::parse(bytes);
    auto loaded = std::make_shared<PmlFramework>(
        PmlFramework::load(artifact_payload(doc, "model")));
    framework_ = std::move(loaded);
    checksum_ = sum;
    static obs::Counter reloaded("serve.model.loaded");
    reloaded.increment();
    return true;
  } catch (const Error& err) {
    // The artifact on disk is the model's source of truth: once its
    // bytes no longer validate, keep serving heuristics rather than
    // answers from a bundle we can no longer vouch for. Tables already
    // cached under the old checksum stay servable (they were compiled
    // from a then-valid model), so established clients see no errors.
    static obs::Counter unusable("serve.model.unusable");
    unusable.increment();
    warn("serve: model artifact failed to load (" + std::string(err.what()) +
         "); degrading to heuristic serving");
    framework_.reset();
    checksum_.clear();
    return false;
  }
}

// --- ServeEngine ------------------------------------------------------------

ServeEngine::LatencyRecorder::LatencyRecorder()
    : p50_("serve.latency.p50_ns"), p99_("serve.latency.p99_ns") {
  ring_.resize(kWindow, 0);
}

void ServeEngine::LatencyRecorder::record(std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[count_ % kWindow] = ns;
  ++count_;
  if (count_ % kUpdateEvery != 0 && count_ != 1) return;
  std::vector<std::uint64_t> window(
      ring_.begin(),
      ring_.begin() + static_cast<std::ptrdiff_t>(std::min(count_, kWindow)));
  const auto nth = [&window](double q) {
    const std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(window.size() - 1) + 0.5);
    std::nth_element(window.begin(),
                     window.begin() + static_cast<std::ptrdiff_t>(i),
                     window.end());
    return static_cast<std::int64_t>(window[i]);
  };
  p50_.set(nth(0.50));
  p99_.set(nth(0.99));
}

ServeEngine::ServeEngine(ServeOptions options)
    : options_(std::move(options)),
      model_(options_.model_path),
      cache_(options_.shards, options_.shard_capacity),
      breaker_(options_.breaker) {
  options_.validate();
}

ServeEngine::~ServeEngine() { drain(); }

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ServeEngine::begin_drain() {
  if (!draining_.exchange(true)) {
    static obs::Counter draining("serve.drain.begin");
    draining.increment();
  }
}

int ServeEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  return in_flight_;
}

void ServeEngine::add_connection(int delta) {
  const int now = connections_.fetch_add(delta) + delta;
  static obs::Gauge gauge("serve.connections");
  gauge.set(now);
}

void ServeEngine::note_evicted() {
  evicted_.fetch_add(1);
  static obs::Counter evicted("serve.evicted");
  evicted.increment();
}

void ServeEngine::note_overloaded() {
  overloaded_.fetch_add(1);
  static obs::Counter overloaded("serve.overloaded");
  overloaded.increment();
}

void ServeEngine::note_overlong() {
  overlong_.fetch_add(1);
  static obs::Counter overlong("serve.overlong_line");
  overlong.increment();
}

ServeEngine::Stats ServeEngine::stats() const {
  Stats s;
  s.requests = requests_.load();
  s.cache_hits = cache_hits_.load();
  s.cache_misses = cache_misses_.load();
  s.compiles = compiles_.load();
  s.degraded = degraded_.load();
  s.errors = errors_.load();
  s.shed = shed_.load();
  s.deadline_expired = deadline_expired_.load();
  s.compile_failures = compile_failures_.load();
  s.evicted = evicted_.load();
  s.overloaded = overloaded_.load();
  s.overlong = overlong_.load();
  return s;
}

std::string ServeEngine::cache_key(const std::string& checksum,
                                   const sim::ClusterSpec& cluster,
                                   const CompileOptions& resolved) const {
  std::string sweep;
  for (const int n : resolved.node_counts) {
    sweep += std::to_string(n);
    sweep += ',';
  }
  sweep += ';';
  for (const int p : resolved.ppn_values) {
    sweep += std::to_string(p);
    sweep += ',';
  }
  sweep += ';';
  for (const std::uint64_t m : resolved.message_sizes) {
    sweep += std::to_string(m);
    sweep += ',';
  }
  return checksum + "/" + hex16(cluster.hardware_fingerprint()) + "/" +
         hex16(fnv1a64(sweep));
}

ServeEngine::AdmitResult ServeEngine::admit_compile(
    const std::string& key, const sim::ClusterSpec& cluster,
    const CompileOptions& resolved) {
  static obs::Gauge queue_gauge("serve.queue.depth");
  std::shared_ptr<CompileJob> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(key);
    if (it != jobs_.end()) {
      // Joining an existing job adds no queue pressure and must not be
      // shed: the work is already paid for.
      return {it->second, Admission::kAdmitted};
    }
    if (in_flight_ >= options_.queue_limit) {
      shed_.fetch_add(1);
      static obs::Counter shed("serve.shed");
      shed.increment();
      return {nullptr, Admission::kShed};
    }
    // Breaker checked after the queue-limit gate so a request that would
    // be shed anyway never consumes the half-open probe token.
    switch (breaker_.try_acquire()) {
      case CircuitBreaker::Decision::kReject: {
        static obs::Counter rejected("serve.breaker.rejected");
        rejected.increment();
        return {nullptr, Admission::kBreakerOpen};
      }
      case CircuitBreaker::Decision::kProbe: {
        static obs::Counter probe("serve.breaker.probe");
        probe.increment();
        break;
      }
      case CircuitBreaker::Decision::kAllow:
        break;
    }
    job = std::make_shared<CompileJob>();
    jobs_.emplace(key, job);
    ++in_flight_;
    queue_gauge.set(in_flight_);
  }
  // Captures by value: the transport thread that triggered the miss
  // may be gone (client hung up) before the compile runs.
  auto run = [this, job, key, cluster, resolved] {
    run_compile(job, key, cluster, resolved);
  };
  if (options_.async_compile) {
    ThreadPool::shared().post(std::move(run));
  } else {
    run();
  }
  return {job, Admission::kAdmitted};
}

void ServeEngine::run_compile(const std::shared_ptr<CompileJob>& job,
                              const std::string& requested_key,
                              const sim::ClusterSpec& cluster,
                              const CompileOptions& resolved) noexcept {
  std::shared_ptr<const ServedTable> result;
  bool failed = false;
  try {
    obs::Span span("serve.compile");
    if (options_.compile_fault) options_.compile_fault();
    // Re-read the artifact first: this is both how a redeployed model is
    // picked up and how a corrupted one drops the ladder to heuristics.
    model_.revalidate();
    if (const std::shared_ptr<PmlFramework> framework = model_.framework()) {
      auto entry = std::make_shared<ServedTable>();
      entry->table = framework->compile_for(cluster, resolved);
      entry->json = entry->table.to_json().dump();
      // Key under the model's *current* identity: if the artifact was
      // swapped while this job sat in the queue, cache under the new
      // checksum so the next request (which recomputes the key) hits.
      cache_.put(cache_key(model_.checksum(), cluster, resolved), entry);
      compiles_.fetch_add(1);
      static obs::Counter compiled("serve.compiles");
      compiled.increment();
      result = std::move(entry);
    }
  } catch (const std::exception& err) {
    failed = true;
    compile_failures_.fetch_add(1);
    static obs::Counter failed_counter("serve.compile_failed");
    failed_counter.increment();
    warn("serve: recompile failed (" + std::string(err.what()) +
         "); waiters fall back to heuristics");
  }
  if (failed) {
    if (breaker_.record_failure()) {
      static obs::Counter opened("serve.breaker.open");
      opened.increment();
      warn(
          "serve: compile circuit breaker opened after repeated failures; "
          "misses answer from the heuristic rung until a probe succeeds");
    }
  } else {
    // "Nothing to compile" (no model) resolves the breaker too: a probe
    // must always be accounted for or the breaker would stay half-open
    // rejecting forever, and a model-less compile pass costs nothing.
    breaker_.record_success();
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->result = result;
    job->done = true;
  }
  job->cv.notify_all();
  {
    // Erase strictly after the cache put + done flag above: a concurrent
    // request either finds the job (and waits on it) or misses the map
    // and sees the freshly cached entry — never neither. Notify while
    // still holding the lock: once it drops with in_flight_ == 0 the
    // destructor's drain() may return and destroy the condition variable.
    static obs::Gauge queue_gauge("serve.queue.depth");
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.erase(requested_key);
    --in_flight_;
    queue_gauge.set(in_flight_);
    idle_cv_.notify_all();
  }
}

std::shared_ptr<const ServedTable> ServeEngine::wait_for(
    CompileJob& job, std::int64_t deadline_ms, bool& timed_out) {
  timed_out = false;
  std::unique_lock<std::mutex> lock(job.mutex);
  if (deadline_ms < 0) {
    job.cv.wait(lock, [&job] { return job.done; });
    return job.result;
  }
  if (!job.cv.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                       [&job] { return job.done; })) {
    // Deadline lapsed: the compile keeps running (the next request will
    // hit its cached result); this reply degrades to the current rung.
    timed_out = true;
    deadline_expired_.fetch_add(1);
    static obs::Counter expired("serve.deadline.expired");
    expired.increment();
    return nullptr;
  }
  return job.result;
}

// --- Select micro-batching ----------------------------------------------------
//
// Uncached selects answered by direct model inference are the one serve
// path that still ran one forest sweep per request. Under concurrent
// traffic those requests now coalesce: the first arrival becomes the
// *leader* and drains the queue in groups of up to micro_batch compatible
// requests — same model instance, same cluster hardware fingerprint
// (the equivalence the cache key already relies on), same collective —
// answering each group with one PmlFramework::select_batch call, i.e. one
// tree-major blocked FlatForest sweep. Followers just block on their
// stack-owned PendingSelect until the leader marks it done. Results and
// errors are written under batch_mutex_, so the handoff is a plain
// happens-before; the kernel itself is bit-identical to per-request
// select(), so replies do not depend on who shared a batch with whom.

void ServeEngine::drain_select_batches(std::unique_lock<std::mutex>& lock) {
  static obs::Gauge batch_size("serve.batch.size");
  thread_local std::vector<PendingSelect*> group;
  thread_local std::vector<PmlFramework::SelectQuery> queries;
  thread_local std::vector<coll::Selection> results;
  while (!batch_queue_.empty()) {
    // Peel the oldest request plus everything compatible with it, up to
    // the micro_batch cap, preserving arrival order.
    const PendingSelect* const head = batch_queue_.front();
    const std::size_t cap = static_cast<std::size_t>(options_.micro_batch);
    group.clear();
    std::erase_if(batch_queue_, [&](PendingSelect* p) {
      if (group.size() >= cap) return false;
      if (p->framework != head->framework ||
          p->fingerprint != head->fingerprint ||
          p->collective != head->collective) {
        return false;
      }
      group.push_back(p);
      return true;
    });

    queries.resize(group.size());
    results.resize(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      queries[i] = group[i]->query;
    }
    PmlFramework& framework = *group.front()->framework;
    const sim::ClusterSpec& cluster = *group.front()->cluster;

    lock.unlock();
    batch_size.set(static_cast<std::int64_t>(group.size()));
    std::exception_ptr error;
    try {
      framework.select_batch(head->collective, cluster, queries, results);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i]->result = results[i];
      group[i]->error = error;
      group[i]->done = true;
    }
    batch_cv_.notify_all();
  }
}

coll::Selection ServeEngine::batched_model_select(PmlFramework& framework,
                                                  const sim::ClusterSpec& cluster,
                                                  coll::Collective collective,
                                                  sim::Topology topo,
                                                  std::uint64_t msg_bytes) {
  if (options_.micro_batch <= 1) {
    return framework.select(collective, cluster, topo, msg_bytes);
  }
  PendingSelect pending;
  pending.framework = &framework;
  pending.cluster = &cluster;
  pending.fingerprint = cluster.hardware_fingerprint();
  pending.collective = collective;
  pending.query = PmlFramework::SelectQuery{topo, msg_bytes};

  std::unique_lock<std::mutex> lock(batch_mutex_);
  batch_queue_.push_back(&pending);
  while (!pending.done) {
    if (!batch_leader_active_) {
      // Become the leader; draining runs until the queue is empty, which
      // necessarily answers our own request too.
      batch_leader_active_ = true;
      drain_select_batches(lock);
      batch_leader_active_ = false;
      batch_cv_.notify_all();
    } else {
      batch_cv_.wait(lock,
                     [&] { return pending.done || !batch_leader_active_; });
    }
  }
  if (pending.error != nullptr) std::rethrow_exception(pending.error);
  return pending.result;
}

std::string ServeEngine::handle_select(const Json& request) {
  const coll::Collective collective = coll::collective_from_string(
      require_field(request, "collective").as_string());
  const int nodes = require_positive_int(request, "nodes");
  const int ppn = require_positive_int(request, "ppn");
  const std::uint64_t msg_bytes = require_nonneg_u64(request, "msg_bytes");
  const std::string checksum = model_.checksum();

  // A cached select must not pay for what only a miss needs: for a named
  // cluster under the default sweep the cache key is a pure function of
  // (model checksum, name), so probe the memo first and materialize the
  // ClusterSpec + resolved sweep lazily, on the slow paths only.
  const Json& cluster_field = require_field(request, "cluster");
  std::string key;
  if (cluster_field.is_string()) {
    std::lock_guard<std::mutex> lock(select_keys_mutex_);
    const auto it = select_keys_.find(cluster_field.as_string());
    if (it != select_keys_.end() && it->second.first == checksum) {
      key = it->second.second;
    }
  }
  std::optional<sim::ClusterSpec> cluster;
  std::optional<CompileOptions> resolved;
  const auto materialize = [&] {
    if (!cluster.has_value()) {
      cluster = parse_cluster(request);
      resolved = resolve_compile_sweep(*cluster, options_.compile);
    }
  };
  if (key.empty()) {
    materialize();
    key = cache_key(checksum, *cluster, *resolved);
    if (cluster_field.is_string()) {
      std::lock_guard<std::mutex> lock(select_keys_mutex_);
      select_keys_[cluster_field.as_string()] = {checksum, key};
    }
  }

  std::string cache_state = "hit";
  std::string source = "table";
  bool degraded = false;
  bool timed_out = false;
  Admission admission = Admission::kAdmitted;
  coll::Selection selection = coll::Selection::flat(coll::Algorithm::kAgRing);

  std::shared_ptr<const ServedTable> entry = cache_.get(key);
  if (entry != nullptr) {
    cache_hits_.fetch_add(1);
    static obs::Counter hits("serve.cache.hit");
    hits.increment();
  } else {
    cache_misses_.fetch_add(1);
    static obs::Counter misses("serve.cache.miss");
    misses.increment();
    materialize();
    const AdmitResult admitted = admit_compile(key, *cluster, *resolved);
    admission = admitted.admission;
    if (admitted.job != nullptr && truthy_flag(request, "wait")) {
      entry = wait_for(*admitted.job, deadline_ms_of(request), timed_out);
      if (entry != nullptr) cache_state = "compiled";
    }
  }

  if (entry != nullptr) {
    selection = entry->table.lookup(collective, nodes, ppn, msg_bytes);
  } else if (admission != Admission::kAdmitted) {
    // Shed (queue full) and breaker-open misses skip even direct model
    // inference — the point of both is to spend nothing extra on this
    // request. The reply is still a valid selection, one rung down.
    cache_state = "miss";
    source = admission == Admission::kShed ? "shed" : "heuristic";
    degraded = true;
    degraded_.fetch_add(1);
    static obs::Counter fallback("online.fallback.heuristic");
    fallback.increment();
    static obs::Counter served_degraded("serve.degraded");
    served_degraded.increment();
    selection = HeuristicSelector().select(collective, *cluster,
                                           sim::Topology{nodes, ppn},
                                           msg_bytes);
  } else if (const std::shared_ptr<PmlFramework> framework =
                 model_.framework()) {
    // Miss, not waiting, model healthy: answer by direct inference while
    // the table compiles in the background. Same model, same quality —
    // not a degraded reply.
    cache_state = "miss";
    source = "model";
    materialize();
    selection = batched_model_select(*framework, *cluster, collective,
                                     sim::Topology{nodes, ppn}, msg_bytes);
  } else {
    // Bottom rung: no table, no model. Same counter the batch online
    // stage uses, so dashboards see one ladder.
    cache_state = "miss";
    source = "heuristic";
    degraded = true;
    degraded_.fetch_add(1);
    static obs::Counter fallback("online.fallback.heuristic");
    fallback.increment();
    static obs::Counter served_degraded("serve.degraded");
    served_degraded.increment();
    materialize();
    selection = HeuristicSelector().select(collective, *cluster,
                                           sim::Topology{nodes, ppn},
                                           msg_bytes);
  }

  Json reply = Json::object();
  reply["ok"] = true;
  reply["op"] = std::string("select");
  // Protocol v2: the structured selection rides alongside the legacy
  // `algorithm` field (which flattens a hierarchical choice to its inter
  // algorithm) so v1 clients keep parsing replies for one release.
  reply["algorithm"] = coll::to_string(selection.algorithm);
  reply["display_name"] = selection.display();
  Json sel = Json::object();
  sel["kind"] = coll::to_string(selection.kind);
  sel["algorithm"] = coll::to_string(selection.algorithm);
  sel["intra"] = coll::to_string(selection.intra);
  sel["encoded"] = selection.encode();
  reply["selection"] = std::move(sel);
  reply["cache"] = cache_state;
  reply["source"] = source;
  reply["degraded"] = degraded;
  if (timed_out) reply["deadline"] = std::string("expired");
  if (admission == Admission::kBreakerOpen) {
    reply["breaker"] = std::string("open");
  }
  return reply.dump();
}

std::string ServeEngine::handle_table(const Json& request) {
  const sim::ClusterSpec cluster = parse_cluster(request);
  CompileOptions options = options_.compile;
  apply_sweep_overrides(request, options);
  const CompileOptions resolved = resolve_compile_sweep(cluster, options);
  const std::string key = cache_key(model_.checksum(), cluster, resolved);

  std::string cache_state = "hit";
  bool timed_out = false;
  Admission admission = Admission::kAdmitted;
  std::shared_ptr<const ServedTable> entry = cache_.get(key);
  if (entry != nullptr) {
    cache_hits_.fetch_add(1);
    static obs::Counter hits("serve.cache.hit");
    hits.increment();
  } else {
    cache_misses_.fetch_add(1);
    static obs::Counter misses("serve.cache.miss");
    misses.increment();
    const AdmitResult admitted = admit_compile(key, cluster, resolved);
    admission = admitted.admission;
    if (admitted.job != nullptr && truthy_flag(request, "wait")) {
      entry = wait_for(*admitted.job, deadline_ms_of(request), timed_out);
      if (entry != nullptr) cache_state = "compiled";
    }
  }

  if (entry != nullptr) {
    // Splice the pre-serialized table in verbatim: replies for one cache
    // entry are byte-identical, request after request.
    std::string reply = "{\"ok\":true,\"op\":\"table\",\"cache\":\"";
    reply += cache_state;
    reply += "\",\"source\":\"model\",\"degraded\":false,\"table\":";
    reply += entry->json;
    reply += "}";
    return reply;
  }

  // Heuristic rung: answer now, never cache (a later compile supersedes
  // this, and the ladder contract is that heuristic output is transient).
  // Shed misses carry source:"shed" so clients can tell overload apart
  // from an absent model.
  degraded_.fetch_add(1);
  static obs::Counter fallback("online.fallback.heuristic");
  fallback.increment();
  static obs::Counter served_degraded("serve.degraded");
  served_degraded.increment();
  const TuningTable table = heuristic_table(cluster, resolved);
  std::string reply = "{\"ok\":true,\"op\":\"table\",\"cache\":\"miss\","
                      "\"source\":\"";
  reply += admission == Admission::kShed ? "shed" : "heuristic";
  reply += "\",\"degraded\":true,";
  if (timed_out) reply += "\"deadline\":\"expired\",";
  if (admission == Admission::kBreakerOpen) reply += "\"breaker\":\"open\",";
  reply += "\"table\":";
  reply += table.to_json().dump();
  reply += "}";
  return reply;
}

std::string ServeEngine::handle_stats() {
  const Stats s = stats();
  Json reply = Json::object();
  reply["ok"] = true;
  reply["op"] = std::string("stats");
  reply["version"] = std::string(kPmlVersion);
  reply["requests"] = static_cast<std::int64_t>(s.requests);
  reply["cache_hits"] = static_cast<std::int64_t>(s.cache_hits);
  reply["cache_misses"] = static_cast<std::int64_t>(s.cache_misses);
  reply["compiles"] = static_cast<std::int64_t>(s.compiles);
  reply["degraded"] = static_cast<std::int64_t>(s.degraded);
  reply["errors"] = static_cast<std::int64_t>(s.errors);
  reply["shed"] = static_cast<std::int64_t>(s.shed);
  reply["deadline_expired"] = static_cast<std::int64_t>(s.deadline_expired);
  reply["compile_failures"] = static_cast<std::int64_t>(s.compile_failures);
  reply["evicted"] = static_cast<std::int64_t>(s.evicted);
  reply["overloaded"] = static_cast<std::int64_t>(s.overloaded);
  reply["overlong"] = static_cast<std::int64_t>(s.overlong);
  reply["queue_depth"] = queue_depth();
  reply["connections"] = connections();
  reply["breaker"] = std::string(to_string(breaker_state()));
  reply["draining"] = draining();
  reply["tables_cached"] = static_cast<std::int64_t>(cache_.size());
  reply["model_loaded"] = model_loaded();
  const std::string checksum = model_.checksum();
  if (!checksum.empty()) reply["model_checksum"] = checksum;
  return reply.dump();
}

std::string ServeEngine::handle_health() {
  Json reply = Json::object();
  reply["ok"] = true;
  reply["op"] = std::string("health");
  reply["version"] = std::string(kPmlVersion);
  reply["artifacts"] = version_json().at("artifacts");
  reply["breaker"] = std::string(to_string(breaker_state()));
  reply["queue_depth"] = queue_depth();
  reply["queue_limit"] = options_.queue_limit;
  reply["connections"] = connections();
  reply["max_connections"] = options_.max_connections;
  reply["draining"] = draining();
  reply["tables_cached"] = static_cast<std::int64_t>(cache_.size());
  reply["model_loaded"] = model_loaded();
  const std::string checksum = model_.checksum();
  if (!checksum.empty()) reply["model_checksum"] = checksum;
  // Which degradation-ladder rungs can answer right now. "heuristic" is
  // definitionally always available — that is the ladder's floor.
  Json rungs = Json::object();
  rungs["table"] = cache_.size() > 0;
  rungs["model"] = model_loaded();
  rungs["heuristic"] = true;
  reply["rungs"] = std::move(rungs);
  return reply.dump();
}

std::string ServeEngine::handle_line(const std::string& line) {
  static obs::Counter requests("serve.requests");
  requests.increment();
  requests_.fetch_add(1);
  obs::Span span("serve.request");
  const std::uint64_t start_ns = obs::now_ns();
  std::string reply;
  try {
    const Json request = Json::parse(line);
    const std::string op = require_field(request, "op").as_string();
    if (op == "select" || op == "table") {
      if (draining()) {
        // Reject new work with an identifiable error; ping/stats/health
        // below keep answering so ops can watch the drain complete.
        errors_.fetch_add(1);
        static obs::Counter rejected("serve.rejected.draining");
        rejected.increment();
        Json j = Json::object();
        j["ok"] = false;
        j["error"] = std::string("serve: draining; not accepting new work");
        j["code"] = std::string(to_string(ErrorCode::kConfig));
        j["status"] = exit_status(ErrorCode::kConfig);
        j["draining"] = true;
        reply = j.dump();
      } else if (op == "select") {
        reply = handle_select(request);
      } else {
        reply = handle_table(request);
      }
    } else if (op == "stats") {
      reply = handle_stats();
    } else if (op == "health") {
      reply = handle_health();
    } else if (op == "ping") {
      Json pong = Json::object();
      pong["ok"] = true;
      pong["op"] = std::string("ping");
      pong["version"] = std::string(kPmlVersion);
      pong["model_loaded"] = model_loaded();
      reply = pong.dump();
    } else {
      throw ConfigError("serve: unknown op \"" + op + "\"");
    }
  } catch (const Error& err) {
    errors_.fetch_add(1);
    static obs::Counter errors("serve.errors");
    errors.increment();
    reply = error_reply(err.what(), err.code());
  } catch (const std::exception& err) {
    errors_.fetch_add(1);
    static obs::Counter errors("serve.errors");
    errors.increment();
    reply = error_reply(err.what(), ErrorCode::kUnknown);
  }
  latency_.record(obs::now_ns() - start_ns);
  return reply;
}

// --- stdio transport --------------------------------------------------------

void serve_stdio(ServeEngine& engine, std::FILE* in, std::FILE* out) {
  std::string line;
  for (int c = std::fgetc(in);; c = std::fgetc(in)) {
    if (c != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) {
      const std::string reply = engine.handle_line(line);
      std::fwrite(reply.data(), 1, reply.size(), out);
      std::fputc('\n', out);
      std::fflush(out);
      line.clear();
    }
    if (c == EOF) return;
  }
}

// --- TCP transport ----------------------------------------------------------

int TcpServer::start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("serve: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  acceptor_ = std::thread([this] { accept_loop(); });
  return port_;
}

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

void TcpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;  // transient accept failure (e.g. EINTR)
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    reap_finished();
    const ServeOptions& options = engine_.options();
    if (engine_.connections() >= options.max_connections) {
      // Over the cap: one structured line, then close. Best effort — a
      // peer that already hung up just loses the courtesy reply.
      engine_.note_overloaded();
      std::string line = serve_error_line("overloaded", ErrorCode::kConfig);
      line.push_back('\n');
      send_all(fd, line);
      ::shutdown(fd, SHUT_WR);
      // Discard whatever request bytes already arrived: closing with
      // unread data pending makes the kernel RST the connection, which
      // can destroy the reject line before the peer reads it.
      char sink[256];
      while (::recv(fd, sink, sizeof sink, MSG_DONTWAIT) > 0) {
      }
      ::close(fd);
      continue;
    }
    if (options.read_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options.read_timeout_ms / 1000;
      tv.tv_usec = static_cast<decltype(tv.tv_usec)>(
          (options.read_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
    auto client = std::make_unique<Client>();
    client->fd = fd;
    Client* raw = client.get();
    // Counted before the thread starts so the cap check never overshoots.
    engine_.add_connection(1);
    std::lock_guard<std::mutex> lock(mutex_);
    clients_.push_back(std::move(client));
    raw->thread = std::thread([this, raw] { client_loop(raw); });
  }
}

void TcpServer::client_loop(Client* client) {
  const ServeOptions& options = engine_.options();
  const int fd = client->fd;
  std::string buffer;
  char chunk[4096];
  // Structured error to send before disconnecting, when the connection
  // itself (not a request) breaks a limit.
  std::string close_reason;
  auto line_deadline = std::chrono::steady_clock::time_point{};
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO fired: nothing at all for read_timeout_ms.
        engine_.note_evicted();
        close_reason = serve_error_line(
            "serve: read deadline exceeded; closing connection",
            ErrorCode::kIo);
      }
      break;
    }
    if (buffer.empty()) {
      line_deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(options.read_timeout_ms);
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    bool completed_line = false;
    bool peer_gone = false;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      completed_line = true;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string reply = engine_.handle_line(line);
      reply.push_back('\n');
      if (!send_all(fd, reply)) {
        peer_gone = true;
        break;
      }
    }
    if (peer_gone) break;
    if (!buffer.empty()) {
      if (buffer.size() > options.max_line_bytes) {
        engine_.note_overlong();
        close_reason = serve_error_line(
            "serve: request line exceeds max_line_bytes (" +
                std::to_string(options.max_line_bytes) +
                "); closing connection",
            ErrorCode::kConfig);
        break;
      }
      if (completed_line) {
        // Progress was made this round; restart the partial line's clock.
        line_deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.read_timeout_ms);
      } else if (options.read_timeout_ms > 0 &&
                 std::chrono::steady_clock::now() > line_deadline) {
        // Slow loris: bytes keep trickling in but no line ever completes,
        // so SO_RCVTIMEO alone would never fire.
        engine_.note_evicted();
        close_reason = serve_error_line(
            "serve: read deadline exceeded; closing connection",
            ErrorCode::kIo);
        break;
      }
    }
  }
  if (!close_reason.empty()) {
    close_reason.push_back('\n');
    send_all(fd, close_reason);
  }
  // Only shut down here; the fd is closed by whoever reaps this client
  // (accept loop or stop), after joining the thread — so a close can
  // never race the recv/send above.
  ::shutdown(fd, SHUT_RDWR);
  engine_.add_connection(-1);
  client->done.store(true);
}

void TcpServer::reap_finished() {
  std::vector<std::unique_ptr<Client>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.begin();
    while (it != clients_.end()) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::unique_ptr<Client>& client : finished) {
    if (client->thread.joinable()) client->thread.join();
    ::close(client->fd);
  }
}

void TcpServer::stop(bool drain) {
  if (stopping_.exchange(true)) {
    // Second caller (e.g. dtor after explicit stop): nothing to do.
    return;
  }
  if (drain) engine_.begin_drain();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<Client>> clients;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    clients.swap(clients_);
  }
  // Hard stop cuts both directions; drain cuts only the read side, so
  // each connection's already-buffered requests finish and their replies
  // still send before the recv loop sees EOF.
  for (const std::unique_ptr<Client>& c : clients) {
    ::shutdown(c->fd, drain ? SHUT_RD : SHUT_RDWR);
  }
  for (const std::unique_ptr<Client>& c : clients) {
    if (c->thread.joinable()) c->thread.join();
  }
  for (const std::unique_ptr<Client>& c : clients) ::close(c->fd);
  if (drain) engine_.drain();  // let in-flight recompiles land too
  listen_fd_ = -1;
}

void TcpServer::wait() {
  if (acceptor_.joinable()) acceptor_.join();
}

}  // namespace pml::core
