// Tuning tables: the JSON artefact the framework emits at MPI-library
// compile time (paper Fig. 4) and consults at application runtime.
//
// A table maps (collective, #nodes, ppn, message-size range) to an
// algorithm. Consecutive message sizes that select the same algorithm are
// compressed into ranges, matching the look-up-table format of offline
// micro-benchmarking tools.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "coll/collective.hpp"
#include "common/json.hpp"
#include "core/selectors.hpp"

namespace pml::core {

/// One size range: applies to message sizes <= max_bytes (entries are
/// ordered; the last entry of a job table is open-ended). Since table
/// schema v2 the entry stores a structured coll::Selection; v1 artifacts
/// (bare algorithm names) decode into flat selections.
struct TuningEntry {
  std::uint64_t max_bytes = 0;
  coll::Selection selection = coll::Selection::flat(coll::Algorithm::kAgRing);
};

/// Entries for one (collective, nodes, ppn) job shape.
struct JobTable {
  coll::Collective collective = coll::Collective::kAllgather;
  int nodes = 0;
  int ppn = 0;
  std::vector<TuningEntry> entries;  ///< ascending max_bytes, non-empty
};

class TuningTable {
 public:
  TuningTable() = default;
  explicit TuningTable(std::string cluster_name)
      : cluster_name_(std::move(cluster_name)) {}

  const std::string& cluster_name() const noexcept { return cluster_name_; }
  std::size_t job_count() const noexcept { return jobs_.size(); }
  bool empty() const noexcept { return jobs_.empty(); }

  /// Register a job table; throws TuningError on empty/unsorted entries or
  /// a duplicate (collective, nodes, ppn) key.
  void add(JobTable job);

  bool has(coll::Collective collective, int nodes, int ppn) const;

  /// Registered job tables, in registration order (exposed so the online
  /// ladder can merge per-collective heuristic jobs into a partial table).
  const std::vector<JobTable>& jobs() const noexcept { return jobs_; }

  /// Algorithm for the job shape and message size. Exact (nodes, ppn) match
  /// preferred; otherwise the geometrically nearest registered shape of the
  /// collective is used (as MPI libraries fall back to the closest tuned
  /// configuration). Distance ties are broken deterministically — smaller
  /// nodes first, then smaller ppn — so the result is independent of job
  /// registration order and lookup replies are byte-stable across runs and
  /// cache shards. Throws TuningError if the collective has no entries.
  coll::Selection lookup(coll::Collective collective, int nodes, int ppn,
                         std::uint64_t msg_bytes) const;

  /// Transitional raw-label lookup; flattens a hierarchical entry to its
  /// inter algorithm. Removed after one release.
  [[deprecated("call lookup() and use the structured coll::Selection")]]
  coll::Algorithm lookup_algorithm(coll::Collective collective, int nodes,
                                   int ppn, std::uint64_t msg_bytes) const {
    return lookup(collective, nodes, ppn, msg_bytes).algorithm;
  }

  /// Build a table by querying a selector over a sweep (used both for the
  /// ML path and for baking baseline heuristics into table form).
  /// `collectives` defaults to the two the paper evaluates. With
  /// threads > 1 the (collective, nodes, ppn) job cells are filled
  /// concurrently — the selector's select() must then be thread-safe
  /// (stateless selectors qualify, as does PmlFramework for select() *and*
  /// compile paths — see the thread-safety contract in core/framework.hpp;
  /// RandomSelector does not) — and the output ordering is identical to
  /// the serial sweep.
  static TuningTable generate(Selector& selector,
                              const sim::ClusterSpec& cluster,
                              std::span<const int> node_counts,
                              std::span<const int> ppn_values,
                              std::span<const std::uint64_t> msg_sizes);
  static TuningTable generate(Selector& selector,
                              const sim::ClusterSpec& cluster,
                              std::span<const int> node_counts,
                              std::span<const int> ppn_values,
                              std::span<const std::uint64_t> msg_sizes,
                              std::span<const coll::Collective> collectives,
                              int threads = 1);

  // --- Sweep & cluster provenance --------------------------------------------
  // generate() records the grids it swept and the target's hardware
  // fingerprint so cache layers can tell whether an existing table actually
  // covers a requested sweep *and* the same silicon (hand-built tables have
  // empty grids / a zero fingerprint and never match).

  void set_sweep(std::span<const int> node_counts,
                 std::span<const int> ppn_values,
                 std::span<const std::uint64_t> msg_sizes);
  bool matches_sweep(std::span<const int> node_counts,
                     std::span<const int> ppn_values,
                     std::span<const std::uint64_t> msg_sizes) const noexcept;
  const std::vector<int>& sweep_nodes() const noexcept { return sweep_nodes_; }
  const std::vector<int>& sweep_ppn() const noexcept { return sweep_ppn_; }
  const std::vector<std::uint64_t>& sweep_msg_sizes() const noexcept {
    return sweep_msgs_;
  }

  /// sim::ClusterSpec::hardware_fingerprint() of the compiled-for cluster;
  /// 0 for hand-built tables and artifacts predating the field. Serialized,
  /// so persisted caches keep distinguishing same-name clusters.
  std::uint64_t cluster_fingerprint() const noexcept {
    return cluster_fingerprint_;
  }
  void set_cluster_fingerprint(std::uint64_t fp) noexcept {
    cluster_fingerprint_ = fp;
  }

  /// True when this table was compiled for `cluster` (name and hardware
  /// fingerprint both match) — the cache-hit precondition alongside
  /// matches_sweep(). Tables without a fingerprint never match: recompiling
  /// upgrades them, exactly like pre-envelope cache entries.
  bool matches_cluster(const sim::ClusterSpec& cluster) const;

  /// Wall-clock seconds of the compile_for sweep that produced this table
  /// (the paper's "model inference overhead"); 0 for hand-built or loaded
  /// tables. Not serialized: artifacts must stay byte-identical across
  /// runs of identical inputs.
  double compile_seconds() const noexcept { return compile_seconds_; }
  void set_compile_seconds(double seconds) noexcept {
    compile_seconds_ = seconds;
  }

  Json to_json() const;
  static TuningTable from_json(const Json& j);

 private:
  const JobTable* find(coll::Collective collective, int nodes, int ppn) const;
  const JobTable* nearest(coll::Collective collective, int nodes,
                          int ppn) const;

  std::string cluster_name_;
  std::vector<JobTable> jobs_;
  std::vector<int> sweep_nodes_;
  std::vector<int> sweep_ppn_;
  std::vector<std::uint64_t> sweep_msgs_;
  std::uint64_t cluster_fingerprint_ = 0;
  double compile_seconds_ = 0.0;
};

}  // namespace pml::core
