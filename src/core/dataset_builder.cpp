#include "core/dataset_builder.hpp"

#include <algorithm>
#include <limits>

#include "coll/cost.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "sim/network.hpp"

namespace pml::core {

std::uint64_t cell_seed(std::uint64_t seed, std::string_view cluster,
                        coll::Collective collective, int nodes, int ppn,
                        std::uint64_t msg_bytes) {
  // Sponge construction: fold each component into the state, then replace
  // the state with the splitmix64 mix of it. Folding the *output* back (not
  // just advancing the counter) makes absorption positional — swapping two
  // components yields a different seed, unlike additive chaining.
  std::uint64_t state = seed;
  const auto absorb = [&state](std::uint64_t value) {
    state ^= value;
    state = splitmix64(state);
  };
  for (const char ch : cluster) absorb(static_cast<unsigned char>(ch));
  absorb(static_cast<std::uint64_t>(collective));
  absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(nodes)));
  absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ppn)));
  absorb(msg_bytes);
  return splitmix64(state);
}

namespace {

/// One (cluster, nodes, ppn, msg) point of the Table-I sweep grid.
struct GridCell {
  const sim::ClusterSpec* cluster = nullptr;
  int nodes = 0;
  int ppn = 0;
  std::uint64_t msg = 0;
};

/// Append a cluster's sweep cells in the canonical (nodes, ppn, msg) order.
/// Record order always mirrors this enumeration, at any thread count.
void enumerate_cells(const sim::ClusterSpec& cluster,
                     std::vector<GridCell>& cells) {
  for (const int nodes : cluster.node_counts) {
    for (const int ppn : cluster.ppn_values) {
      if (ppn > cluster.hw.threads) continue;
      for (const std::uint64_t msg : cluster.message_sizes) {
        cells.push_back(GridCell{&cluster, nodes, ppn, msg});
      }
    }
  }
}

/// Benchmark one cell: every valid algorithm, averaged noisy iterations,
/// labelled with the argmin. Self-contained (fresh NetworkModel, per-cell
/// RNG), so cells can run concurrently in any order.
TuningRecord build_cell(const GridCell& cell, coll::Collective collective,
                        const BuildOptions& options) {
  obs::Span span("dataset.cell");
  const sim::ClusterSpec& cluster = *cell.cluster;
  const sim::Topology topo{cell.nodes, cell.ppn};
  const sim::NetworkModel model(cluster, topo);
  Rng rng(cell_seed(options.seed, cluster.name, collective, cell.nodes,
                    cell.ppn, cell.msg));

  const auto& algorithms = coll::algorithms_for(collective);
  TuningRecord rec;
  rec.cluster = cluster.name;
  rec.nodes = cell.nodes;
  rec.ppn = cell.ppn;
  rec.msg_bytes = cell.msg;
  rec.collective = collective;
  rec.features = extract_features(cluster, cell.nodes, cell.ppn, cell.msg);
  rec.times.assign(algorithms.size(), std::numeric_limits<double>::infinity());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    if (!coll::algorithm_supports(algorithms[a], topo.world_size())) continue;
    rec.times[a] = coll::measured_cost(model, algorithms[a], cell.msg,
                                       options.iterations, rng,
                                       options.noise_sigma);
  }
  const auto best = std::min_element(rec.times.begin(), rec.times.end());
  if (!std::isfinite(*best)) {
    throw TuningError("no valid algorithm at world size " +
                      std::to_string(topo.world_size()));
  }
  rec.label = static_cast<int>(best - rec.times.begin());
  return rec;
}

std::vector<TuningRecord> build_cells(std::span<const sim::ClusterSpec> clusters,
                                      coll::Collective collective,
                                      const BuildOptions& options) {
  if (options.iterations < 1) throw TuningError("iterations must be >= 1");
  std::vector<GridCell> cells;
  for (const sim::ClusterSpec& cluster : clusters) {
    enumerate_cells(cluster, cells);
  }
  // Pre-sized output slots + per-cell RNG streams: the pool only distributes
  // independent indices, so any thread count is bit-identical to serial.
  obs::Span span("dataset.build");
  std::vector<TuningRecord> records(cells.size());
  parallel_for(options.threads, cells.size(), [&](std::size_t i) {
    records[i] = build_cell(cells[i], collective, options);
  });
  if (obs::enabled()) {
    static obs::Counter built("dataset.cells_built");
    built.add(records.size());
  }
  return records;
}

}  // namespace

std::vector<TuningRecord> build_cluster_records(const sim::ClusterSpec& cluster,
                                                coll::Collective collective,
                                                const BuildOptions& options) {
  return build_cells({&cluster, 1}, collective, options);
}

std::vector<TuningRecord> build_records(
    std::span<const sim::ClusterSpec> clusters, coll::Collective collective,
    const BuildOptions& options) {
  return build_cells(clusters, collective, options);
}

ml::Dataset to_ml_dataset(std::span<const TuningRecord> records,
                          coll::Collective collective,
                          const std::vector<std::size_t>& columns) {
  if (records.empty()) throw TuningError("no records to convert");
  ml::Dataset data;
  const auto& algorithms = coll::algorithms_for(collective);
  data.num_classes = static_cast<int>(algorithms.size());
  for (const coll::Algorithm a : algorithms) {
    data.class_names.push_back(coll::to_string(a));
  }
  if (columns.empty()) {
    data.feature_names = feature_names();
  } else {
    for (const std::size_t c : columns) {
      data.feature_names.push_back(feature_names().at(c));
    }
  }
  for (const TuningRecord& rec : records) {
    if (rec.collective != collective) {
      throw TuningError("record collective mismatch");
    }
    const auto row = columns.empty() ? rec.features
                                     : project_features(rec.features, columns);
    data.x.push_row(row);
    data.y.push_back(rec.label);
  }
  data.validate();
  return data;
}

std::vector<std::size_t> rows_in_clusters(
    std::span<const TuningRecord> records,
    std::span<const std::string> clusters) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (const std::string& name : clusters) {
      if (records[i].cluster == name) {
        rows.push_back(i);
        break;
      }
    }
  }
  return rows;
}

std::vector<std::size_t> rows_with_nodes_at_most(
    std::span<const TuningRecord> records, int threshold) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].nodes <= threshold) rows.push_back(i);
  }
  return rows;
}

std::vector<std::size_t> rows_with_nodes_above(
    std::span<const TuningRecord> records, int threshold) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].nodes > threshold) rows.push_back(i);
  }
  return rows;
}

}  // namespace pml::core
