#include "core/dataset_builder.hpp"

#include <algorithm>
#include <limits>

#include "coll/cost.hpp"
#include "common/error.hpp"
#include "sim/network.hpp"

namespace pml::core {

std::vector<TuningRecord> build_cluster_records(const sim::ClusterSpec& cluster,
                                                coll::Collective collective,
                                                const BuildOptions& options) {
  if (options.iterations < 1) throw TuningError("iterations must be >= 1");
  std::vector<TuningRecord> records;
  // Deterministic per (cluster, collective) noise stream.
  std::uint64_t seed_material = options.seed;
  for (const char ch : cluster.name) {
    seed_material = seed_material * 31 + static_cast<unsigned char>(ch);
  }
  seed_material = seed_material * 31 + static_cast<unsigned>(collective);
  Rng rng(splitmix64(seed_material));

  const auto& algorithms = coll::algorithms_for(collective);
  for (const int nodes : cluster.node_counts) {
    for (const int ppn : cluster.ppn_values) {
      if (ppn > cluster.hw.threads) continue;
      const sim::Topology topo{nodes, ppn};
      const sim::NetworkModel model(cluster, topo);
      for (const std::uint64_t msg : cluster.message_sizes) {
        TuningRecord rec;
        rec.cluster = cluster.name;
        rec.nodes = nodes;
        rec.ppn = ppn;
        rec.msg_bytes = msg;
        rec.collective = collective;
        rec.features = extract_features(cluster, nodes, ppn, msg);
        rec.times.assign(algorithms.size(),
                         std::numeric_limits<double>::infinity());
        for (std::size_t a = 0; a < algorithms.size(); ++a) {
          if (!coll::algorithm_supports(algorithms[a], topo.world_size())) {
            continue;
          }
          rec.times[a] = coll::measured_cost(model, algorithms[a], msg,
                                             options.iterations, rng,
                                             options.noise_sigma);
        }
        const auto best = std::min_element(rec.times.begin(), rec.times.end());
        if (!std::isfinite(*best)) {
          throw TuningError("no valid algorithm at world size " +
                            std::to_string(topo.world_size()));
        }
        rec.label = static_cast<int>(best - rec.times.begin());
        records.push_back(std::move(rec));
      }
    }
  }
  return records;
}

std::vector<TuningRecord> build_records(
    std::span<const sim::ClusterSpec> clusters, coll::Collective collective,
    const BuildOptions& options) {
  std::vector<TuningRecord> all;
  for (const sim::ClusterSpec& cluster : clusters) {
    auto recs = build_cluster_records(cluster, collective, options);
    all.insert(all.end(), std::make_move_iterator(recs.begin()),
               std::make_move_iterator(recs.end()));
  }
  return all;
}

ml::Dataset to_ml_dataset(std::span<const TuningRecord> records,
                          coll::Collective collective,
                          const std::vector<std::size_t>& columns) {
  if (records.empty()) throw TuningError("no records to convert");
  ml::Dataset data;
  const auto& algorithms = coll::algorithms_for(collective);
  data.num_classes = static_cast<int>(algorithms.size());
  for (const coll::Algorithm a : algorithms) {
    data.class_names.push_back(coll::to_string(a));
  }
  if (columns.empty()) {
    data.feature_names = feature_names();
  } else {
    for (const std::size_t c : columns) {
      data.feature_names.push_back(feature_names().at(c));
    }
  }
  for (const TuningRecord& rec : records) {
    if (rec.collective != collective) {
      throw TuningError("record collective mismatch");
    }
    const auto row = columns.empty() ? rec.features
                                     : project_features(rec.features, columns);
    data.x.push_row(row);
    data.y.push_back(rec.label);
  }
  data.validate();
  return data;
}

std::vector<std::size_t> rows_in_clusters(
    std::span<const TuningRecord> records,
    std::span<const std::string> clusters) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (const std::string& name : clusters) {
      if (records[i].cluster == name) {
        rows.push_back(i);
        break;
      }
    }
  }
  return rows;
}

std::vector<std::size_t> rows_with_nodes_at_most(
    std::span<const TuningRecord> records, int threshold) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].nodes <= threshold) rows.push_back(i);
  }
  return rows;
}

std::vector<std::size_t> rows_with_nodes_above(
    std::span<const TuningRecord> records, int threshold) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].nodes > threshold) rows.push_back(i);
  }
  return rows;
}

}  // namespace pml::core
