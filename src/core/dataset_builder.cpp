#include "core/dataset_builder.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>

#include "coll/cost.hpp"
#include "coll/runner.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "sim/network.hpp"

namespace pml::core {

namespace {

/// Splitmix64 sponge shared by the seed derivations below: fold each
/// component into the state, then replace the state with the splitmix64 mix
/// of it. Folding the *output* back (not just advancing the counter) makes
/// absorption positional — swapping two components yields a different seed,
/// unlike additive chaining.
struct SeedSponge {
  std::uint64_t state;
  explicit SeedSponge(std::uint64_t seed) : state(seed) {}
  void absorb(std::uint64_t value) {
    state ^= value;
    state = splitmix64(state);
  }
  std::uint64_t squeeze() { return splitmix64(state); }
};

}  // namespace

std::uint64_t cell_seed(std::uint64_t seed, std::string_view cluster,
                        coll::Collective collective, int nodes, int ppn,
                        std::uint64_t msg_bytes) {
  SeedSponge sponge(seed);
  for (const char ch : cluster) sponge.absorb(static_cast<unsigned char>(ch));
  sponge.absorb(static_cast<std::uint64_t>(collective));
  sponge.absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(nodes)));
  sponge.absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ppn)));
  sponge.absorb(msg_bytes);
  return sponge.squeeze();
}

std::uint64_t measurement_seed(std::uint64_t cell, std::size_t algorithm,
                               int iteration) {
  SeedSponge sponge(cell);
  sponge.absorb(static_cast<std::uint64_t>(algorithm));
  sponge.absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(iteration)));
  return sponge.squeeze();
}

std::string sweep_cell_context(std::string_view cluster,
                               coll::Collective collective, int nodes, int ppn,
                               std::uint64_t msg_bytes) {
  return "cluster '" + std::string(cluster) + "' " + coll::to_string(collective) +
         " (nodes=" + std::to_string(nodes) + ", ppn=" + std::to_string(ppn) +
         ", msg_bytes=" + std::to_string(msg_bytes) + ")";
}

std::string to_string(CostSource source) {
  switch (source) {
    case CostSource::kAnalytic: return "analytic";
    case CostSource::kEngine: return "engine";
  }
  return "unknown";
}

CostSource cost_source_from_string(const std::string& name) {
  if (name == "analytic") return CostSource::kAnalytic;
  if (name == "engine") return CostSource::kEngine;
  throw ConfigError("unknown cost source '" + name +
                    "' (expected 'analytic' or 'engine')");
}

namespace {

/// One (cluster, nodes, ppn, msg) point of the Table-I sweep grid.
struct GridCell {
  const sim::ClusterSpec* cluster = nullptr;
  int nodes = 0;
  int ppn = 0;
  std::uint64_t msg = 0;
};

/// Per-cell measurement tallies, summed into BuildStats after the parallel
/// loop (each cell writes its own slot, so the sum is order-independent).
struct CellStats {
  std::uint32_t measured = 0;
  std::uint32_t pruned = 0;
  std::uint32_t epsilon = 0;
  std::uint32_t mispredicted = 0;
};

/// Append a cluster's sweep cells in the canonical (nodes, ppn, msg) order.
/// Record order always mirrors this enumeration, at any thread count.
void enumerate_cells(const sim::ClusterSpec& cluster,
                     std::vector<GridCell>& cells) {
  for (const int nodes : cluster.node_counts) {
    for (const int ppn : cluster.ppn_values) {
      if (ppn > cluster.hw.threads) continue;
      for (const std::uint64_t msg : cluster.message_sizes) {
        cells.push_back(GridCell{&cluster, nodes, ppn, msg});
      }
    }
  }
}

/// Engine-mode measurement of one (cell, candidate): averaged timing-only
/// engine runs, one independently seeded jitter stream per iteration. The
/// per-thread engine/arena reuse inside run_selection makes the steady
/// state allocation-free; virtual time is a pure function of the arguments.
/// Hierarchical builds time every candidate under the cluster's intra-node
/// tier model so flat and leader schedules compete in the same world.
double engine_cost(const GridCell& cell, sim::Topology topo,
                   const coll::Selection& selection, std::size_t space_index,
                   std::uint64_t cellseed, const BuildOptions& options) {
  sim::RunOptions run;
  run.payload = sim::PayloadMode::kTimingOnly;
  run.noise_sigma = options.noise_sigma;
  run.faults = options.faults;
  if (options.hierarchy) {
    run.hierarchy = sim::HierarchySpec::from_cluster(*cell.cluster);
  }
  double total = 0.0;
  for (int it = 0; it < options.iterations; ++it) {
    run.seed = measurement_seed(cellseed, space_index, it);
    total += coll::run_selection(*cell.cluster, topo, selection, cell.msg, run)
                 .seconds;
  }
  return total / options.iterations;
}

/// Noise-free analytic cost of one candidate: flat candidates reuse the
/// cell's prebuilt NetworkModel (bit-identical to the v1 flat path);
/// leader candidates go through the composed selection cost model.
double candidate_analytic_cost(const sim::NetworkModel& model,
                               const GridCell& cell, sim::Topology topo,
                               const coll::Selection& selection) {
  return selection.hierarchical()
             ? coll::analytic_cost(*cell.cluster, topo, selection, cell.msg)
             : coll::analytic_cost(model, selection.algorithm, cell.msg);
}

/// The engine-mode measurement plan for one cell: which candidates the
/// pruning layer keeps. Top-k by noise-free analytic cost plus one
/// Bernoulli(ε) draw per pruned candidate, in selection-space order, from
/// the cell's RNG — deterministic for the cell regardless of thread count.
std::vector<bool> pruned_selection(const sim::NetworkModel& model,
                                   std::span<const coll::Selection> candidates,
                                   const std::vector<std::size_t>& valid,
                                   const GridCell& cell, sim::Topology topo,
                                   const BuildOptions& options, Rng& rng,
                                   CellStats& stats) {
  std::vector<double> analytic(candidates.size(),
                               std::numeric_limits<double>::infinity());
  for (const std::size_t a : valid) {
    analytic[a] = candidate_analytic_cost(model, cell, topo, candidates[a]);
  }
  std::vector<std::size_t> order = valid;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return analytic[a] < analytic[b];
  });

  std::vector<bool> keep(candidates.size(), false);
  const auto k = static_cast<std::size_t>(options.prune_topk);
  // The cut is tie-inclusive: every candidate whose cost equals the k-th
  // ranked cost is kept. The closed forms coincide for whole algorithm
  // families (e.g. the log-step alltoalls at power-of-2 p), and breaking
  // such a tie by enum order would prune the true winner on a coin flip.
  const double cutoff = k <= order.size()
                            ? analytic[order[k - 1]]
                            : std::numeric_limits<double>::infinity();
  for (const std::size_t a : valid) {
    if (analytic[a] <= cutoff) keep[a] = true;
  }
  // ε-draws iterate the pruned candidates in space order (a fixed order, so
  // the draw a candidate receives never depends on the analytic ranking).
  for (const std::size_t a : valid) {
    if (keep[a]) continue;
    if (options.prune_epsilon > 0.0 && rng.bernoulli(options.prune_epsilon)) {
      keep[a] = true;
      ++stats.epsilon;
    } else {
      ++stats.pruned;
    }
  }
  return keep;
}

/// Benchmark one cell: valid candidates through the configured cost source,
/// averaged noisy iterations, labelled with the argmin of the measured set.
/// Candidates are a prefix of coll::selection_space(collective): the flat
/// prefix (== the v1 label space, bit-identical records) by default, the
/// full space under BuildOptions::hierarchy. Self-contained (fresh
/// NetworkModel, per-cell RNG), so cells can run concurrently in any order.
TuningRecord build_cell(const GridCell& cell, coll::Collective collective,
                        const BuildOptions& options, CellStats& stats) {
  obs::Span span("dataset.cell");
  const sim::ClusterSpec& cluster = *cell.cluster;
  const sim::Topology topo{cell.nodes, cell.ppn};
  const sim::NetworkModel model(cluster, topo);
  const std::uint64_t cellseed = cell_seed(options.seed, cluster.name,
                                           collective, cell.nodes, cell.ppn,
                                           cell.msg);
  Rng rng(cellseed);

  const auto& space = coll::selection_space(collective);
  const std::size_t width = options.hierarchy
                                ? space.size()
                                : coll::algorithms_for(collective).size();
  const std::span<const coll::Selection> candidates(space.data(), width);
  TuningRecord rec;
  rec.cluster = cluster.name;
  rec.nodes = cell.nodes;
  rec.ppn = cell.ppn;
  rec.msg_bytes = cell.msg;
  rec.collective = collective;
  rec.features = extract_features(cluster, cell.nodes, cell.ppn, cell.msg);
  rec.times.assign(width, std::numeric_limits<double>::infinity());

  std::vector<std::size_t> valid;
  for (std::size_t a = 0; a < candidates.size(); ++a) {
    if (coll::selection_supports(candidates[a], topo)) {
      valid.push_back(a);
    }
  }
  if (valid.empty()) {
    throw TuningError("no valid candidate at world size " +
                      std::to_string(topo.world_size()) + " for " +
                      sweep_cell_context(cluster.name, collective, cell.nodes,
                                         cell.ppn, cell.msg));
  }

  const bool engine = options.cost_source == CostSource::kEngine;
  // Pruning needs the analytic ranking to be meaningful, which a non-empty
  // FaultPlan breaks (the closed forms are fault-blind) and degenerate tiny
  // worlds break too (kPruneWorldFloor): both are measured exhaustively.
  const bool prune = engine && options.prune_topk > 0 &&
                     options.faults.empty() &&
                     topo.world_size() >= kPruneWorldFloor &&
                     static_cast<std::size_t>(options.prune_topk) < valid.size();
  std::vector<bool> keep;
  if (prune) {
    keep = pruned_selection(model, candidates, valid, cell, topo, options, rng,
                            stats);
  }

  for (const std::size_t a : valid) {
    if (prune && !options.prune_audit && !keep[a]) continue;
    rec.times[a] = engine
                       ? engine_cost(cell, topo, candidates[a], a, cellseed,
                                     options)
                       : candidates[a].hierarchical()
                             ? coll::measured_cost(cluster, topo, candidates[a],
                                                   cell.msg, options.iterations,
                                                   rng, options.noise_sigma)
                             : coll::measured_cost(model,
                                                   candidates[a].algorithm,
                                                   cell.msg, options.iterations,
                                                   rng, options.noise_sigma);
    ++stats.measured;
  }
  const auto best = std::min_element(rec.times.begin(), rec.times.end());
  if (!std::isfinite(*best)) {
    throw TuningError("no measured candidate at world size " +
                      std::to_string(topo.world_size()) + " for " +
                      sweep_cell_context(cluster.name, collective, cell.nodes,
                                         cell.ppn, cell.msg));
  }
  rec.label = static_cast<int>(best - rec.times.begin());
  if (prune && options.prune_audit &&
      !keep[static_cast<std::size_t>(rec.label)]) {
    ++stats.mispredicted;
  }
  return rec;
}

void validate_options(const BuildOptions& options) {
  if (options.iterations < 1) throw TuningError("iterations must be >= 1");
  if (options.prune_epsilon < 0.0 || options.prune_epsilon > 1.0 ||
      !std::isfinite(options.prune_epsilon)) {
    throw TuningError("prune_epsilon must be in [0, 1]");
  }
  if (options.cost_source == CostSource::kAnalytic && !options.faults.empty()) {
    throw TuningError(
        "analytic cost source cannot honor a fault plan (the closed-form "
        "model is fault-blind); build faulted grids with "
        "CostSource::kEngine");
  }
}

std::vector<TuningRecord> build_cells(std::span<const sim::ClusterSpec> clusters,
                                      coll::Collective collective,
                                      const BuildOptions& options,
                                      BuildStats& stats) {
  validate_options(options);
  std::vector<GridCell> cells;
  for (const sim::ClusterSpec& cluster : clusters) {
    enumerate_cells(cluster, cells);
  }
  // Pre-sized output slots + per-cell RNG streams: the pool only distributes
  // independent indices, so any thread count is bit-identical to serial.
  obs::Span span("dataset.build");
  std::vector<TuningRecord> records(cells.size());
  std::vector<CellStats> cell_stats(cells.size());
  parallel_for(options.threads, cells.size(), [&](std::size_t i) {
    records[i] = build_cell(cells[i], collective, options, cell_stats[i]);
  });

  stats.cells += records.size();
  for (const CellStats& c : cell_stats) {
    stats.measured_evals += c.measured;
    stats.pruned_evals += c.pruned;
    stats.epsilon_evals += c.epsilon;
    stats.prune_mispredictions += c.mispredicted;
  }
  if (obs::enabled()) {
    static obs::Counter built("dataset.cells");
    static obs::Counter measured("dataset.measured_evals");
    static obs::Counter pruned("dataset.pruned_evals");
    static obs::Counter epsilon("dataset.epsilon_evals");
    static obs::Counter mispredicted("dataset.prune_mispredictions");
    built.add(records.size());
    measured.add(stats.measured_evals);
    pruned.add(stats.pruned_evals);
    epsilon.add(stats.epsilon_evals);
    mispredicted.add(stats.prune_mispredictions);
  }
  return records;
}

}  // namespace

std::vector<TuningRecord> build_cluster_records(const sim::ClusterSpec& cluster,
                                                coll::Collective collective,
                                                const BuildOptions& options) {
  BuildStats stats;
  return build_cells({&cluster, 1}, collective, options, stats);
}

std::vector<TuningRecord> build_records(
    std::span<const sim::ClusterSpec> clusters, coll::Collective collective,
    const BuildOptions& options) {
  BuildStats stats;
  return build_cells(clusters, collective, options, stats);
}

std::vector<TuningRecord> build_records(
    std::span<const sim::ClusterSpec> clusters, coll::Collective collective,
    const BuildOptions& options, BuildStats& stats) {
  return build_cells(clusters, collective, options, stats);
}

Json records_to_json(std::span<const TuningRecord> records,
                     coll::Collective collective) {
  Json j = Json::object();
  j["format"] = "pml-dataset-v2";
  j["collective"] = coll::to_string(collective);
  // The label space the `times` columns index: a prefix of
  // selection_space(collective) — the flat prefix for flat-built records,
  // the full space for hierarchical builds. Recorded explicitly so readers
  // never have to guess the column meaning from the width.
  const auto& space = coll::selection_space(collective);
  const std::size_t width =
      records.empty() ? space.size() : records.front().times.size();
  if (width > space.size()) {
    throw TuningError("record label space wider than selection_space");
  }
  Json selections = Json::array();
  for (std::size_t i = 0; i < width; ++i) {
    selections.push_back(space[i].encode());
  }
  j["selections"] = std::move(selections);
  Json rows = Json::array();
  for (const TuningRecord& rec : records) {
    if (rec.collective != collective) {
      throw TuningError("record collective mismatch");
    }
    if (rec.times.size() != width) {
      throw TuningError("records mix label-space widths (" +
                        std::to_string(rec.times.size()) + " vs " +
                        std::to_string(width) + ")");
    }
    Json row = Json::object();
    row["cluster"] = rec.cluster;
    row["nodes"] = rec.nodes;
    row["ppn"] = rec.ppn;
    row["msg_bytes"] = static_cast<std::int64_t>(rec.msg_bytes);
    Json features = Json::array();
    for (const double f : rec.features) features.push_back(f);
    row["features"] = std::move(features);
    Json times = Json::array();
    for (const double t : rec.times) {
      // +inf (invalid/pruned) is not representable in JSON: encode as null.
      if (std::isfinite(t)) {
        times.push_back(t);
      } else {
        times.push_back(Json());
      }
    }
    row["times"] = std::move(times);
    row["label"] = rec.label;
    rows.push_back(std::move(row));
  }
  j["records"] = std::move(rows);
  return j;
}

std::vector<TuningRecord> records_from_json(const Json& j) {
  if (!j.contains("format") || !j.at("format").is_string()) {
    throw TuningError("not a pml-dataset document");
  }
  const std::string format = j.at("format").as_string();
  if (format != "pml-dataset-v2" && format != "pml-dataset-v1") {
    throw TuningError("not a pml-dataset-v1/v2 document");
  }
  const auto collective =
      coll::collective_from_string(j.at("collective").as_string());
  const auto& space = coll::selection_space(collective);
  // v1 documents predate the selections array and always carried the flat
  // label space; v2 names its space, which must be a selection_space prefix.
  std::size_t width = coll::algorithms_for(collective).size();
  if (format == "pml-dataset-v2") {
    const auto& sels = j.at("selections").as_array();
    if (sels.size() > space.size()) {
      throw TuningError("dataset label space wider than selection_space");
    }
    for (std::size_t i = 0; i < sels.size(); ++i) {
      if (sels[i].as_string() != space[i].encode()) {
        throw TuningError("dataset label space mismatch at index " +
                          std::to_string(i) + ": '" + sels[i].as_string() +
                          "' != '" + space[i].encode() + "'");
      }
    }
    width = sels.size();
  }
  std::vector<TuningRecord> records;
  for (const Json& row : j.at("records").as_array()) {
    TuningRecord rec;
    rec.collective = collective;
    rec.cluster = row.at("cluster").as_string();
    rec.nodes = static_cast<int>(row.at("nodes").as_int());
    rec.ppn = static_cast<int>(row.at("ppn").as_int());
    rec.msg_bytes = static_cast<std::uint64_t>(row.at("msg_bytes").as_int());
    for (const Json& f : row.at("features").as_array()) {
      rec.features.push_back(f.as_number());
    }
    for (const Json& t : row.at("times").as_array()) {
      rec.times.push_back(t.is_null()
                              ? std::numeric_limits<double>::infinity()
                              : t.as_number());
    }
    rec.label = static_cast<int>(row.at("label").as_int());
    if (rec.times.size() != width || rec.label < 0 ||
        static_cast<std::size_t>(rec.label) >= width ||
        !std::isfinite(rec.times[static_cast<std::size_t>(rec.label)]) ||
        rec.features.size() != feature_count()) {
      throw TuningError("malformed dataset record for " +
                        sweep_cell_context(rec.cluster, collective, rec.nodes,
                                           rec.ppn, rec.msg_bytes));
    }
    records.push_back(std::move(rec));
  }
  return records;
}

ml::Dataset to_ml_dataset(std::span<const TuningRecord> records,
                          coll::Collective collective,
                          const std::vector<std::size_t>& columns) {
  if (records.empty()) throw TuningError("no records to convert");
  ml::Dataset data;
  // Classes index the full selection space regardless of how wide the
  // records' measured space was: flat-built records only ever emit flat
  // labels, and the extra classes just stay unpopulated. One stable class
  // layout lets flat and hierarchical bundles share the inference path.
  const auto& space = coll::selection_space(collective);
  data.num_classes = static_cast<int>(space.size());
  for (const coll::Selection& sel : space) {
    data.class_names.push_back(sel.encode());
  }
  if (columns.empty()) {
    data.feature_names = feature_names();
  } else {
    for (const std::size_t c : columns) {
      data.feature_names.push_back(feature_names().at(c));
    }
  }
  for (const TuningRecord& rec : records) {
    if (rec.collective != collective) {
      throw TuningError("record collective mismatch");
    }
    const auto row = columns.empty() ? rec.features
                                     : project_features(rec.features, columns);
    data.x.push_row(row);
    data.y.push_back(rec.label);
  }
  data.validate();
  return data;
}

std::vector<std::size_t> rows_in_clusters(
    std::span<const TuningRecord> records,
    std::span<const std::string> clusters) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (const std::string& name : clusters) {
      if (records[i].cluster == name) {
        rows.push_back(i);
        break;
      }
    }
  }
  return rows;
}

std::vector<std::size_t> rows_with_nodes_at_most(
    std::span<const TuningRecord> records, int threshold) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].nodes <= threshold) rows.push_back(i);
  }
  return rows;
}

std::vector<std::size_t> rows_with_nodes_above(
    std::span<const TuningRecord> records, int threshold) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].nodes > threshold) rows.push_back(i);
  }
  return rows;
}

}  // namespace pml::core
