// Startup-overhead models for the Fig. 1 / Fig. 7 core-hours comparison.
//
// Core hours = number of processes x wall-clock time / 3600 (paper's
// definition). Three strategies are compared:
//  - offline micro-benchmarking: exhaustively times every algorithm at
//    every message size with an OMB-style iteration schedule;
//  - ACCLAiM: the published runtime model overhead (5.62 minutes for
//    MPI_Allgather on 128 nodes [Wilkins et al. 2022]), charged on every
//    process of the job — the paper treats this as a lower bound;
//  - PML-MPI: one process running a sub-second inference sweep.
#pragma once

#include <cstdint>
#include <span>

#include "coll/collective.hpp"
#include "sim/hardware.hpp"

namespace pml::core {

/// OMB-style iteration count for one message size (more iterations at
/// small sizes, fewer at large, as osu_allgather does).
int omb_iterations(std::uint64_t msg_bytes);

/// Core-hours for the exhaustive offline sweep of every valid algorithm
/// over `msg_sizes` on (nodes x ppn) processes of `cluster`.
double microbenchmark_core_hours(const sim::ClusterSpec& cluster,
                                 coll::Collective collective, int nodes,
                                 int ppn,
                                 std::span<const std::uint64_t> msg_sizes);

/// ACCLAiM's published overhead scaled to the job size: 5.62 minutes of
/// online training occupying all nodes*ppn processes.
double acclaim_core_hours(int nodes, int ppn);

/// PML-MPI overhead: `inference_seconds` of wall time on a single process.
double pml_core_hours(double inference_seconds);

}  // namespace pml::core
