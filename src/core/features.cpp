#include "core/features.hpp"

#include "common/error.hpp"

namespace pml::core {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      // MPI-specific
      "num_nodes",
      "ppn",
      "msg_size",
      // hardware (paper §V-A)
      "cpu_max_clock_ghz",
      "l3_cache_mb",
      "mem_bw_gbs",
      "core_count",
      "thread_count",
      "sockets",
      "numa_nodes",
      "pcie_lanes",
      "pcie_version",
      "hca_link_speed_gbps",
      "hca_link_width",
  };
  return names;
}

std::size_t feature_count() { return feature_names().size(); }

std::size_t feature_index(const std::string& name) {
  const auto& names = feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  throw TuningError("unknown feature: " + name);
}

std::vector<double> extract_features(const sim::ClusterSpec& cluster,
                                     int nodes, int ppn,
                                     std::uint64_t msg_bytes) {
  std::vector<double> out;
  extract_features_into(cluster, nodes, ppn, msg_bytes, out);
  return out;
}

void extract_features_into(const sim::ClusterSpec& cluster, int nodes, int ppn,
                           std::uint64_t msg_bytes, std::vector<double>& out) {
  if (nodes < 1 || ppn < 1) throw TuningError("invalid job shape");
  const sim::HardwareSpec& hw = cluster.hw;
  out.assign({
      static_cast<double>(nodes),
      static_cast<double>(ppn),
      static_cast<double>(msg_bytes),
      hw.cpu_max_clock_ghz,
      hw.l3_cache_mb,
      hw.mem_bw_gbs,
      static_cast<double>(hw.cores),
      static_cast<double>(hw.threads),
      static_cast<double>(hw.sockets),
      static_cast<double>(hw.numa_nodes),
      static_cast<double>(hw.pcie_lanes),
      static_cast<double>(hw.pcie_version),
      hw.hca_link_speed_gbps,
      static_cast<double>(hw.hca_link_width),
  });
}

std::vector<double> project_features(const std::vector<double>& full,
                                     const std::vector<std::size_t>& columns) {
  std::vector<double> out;
  project_features_into(full, columns, out);
  return out;
}

void project_features_into(const std::vector<double>& full,
                           const std::vector<std::size_t>& columns,
                           std::vector<double>& out) {
  out.clear();
  out.reserve(columns.size());
  for (const std::size_t c : columns) {
    if (c >= full.size()) throw TuningError("feature column out of range");
    out.push_back(full[c]);
  }
}

}  // namespace pml::core
