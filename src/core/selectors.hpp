// Algorithm-selection strategies: the baselines the paper compares against.
//
//  - MvapichDefaultSelector: static message-size thresholds modelled on the
//    MVAPICH2 2.3.7 default tuning tables ("relies on a static tuning
//    table, which lacks optimization for the specific cluster").
//  - OpenMpiDefaultSelector: fixed decision rules modelled on Open MPI's
//    tuned-collectives defaults (different thresholds, different mid-size
//    choices).
//  - RandomSelector: uniform choice among valid algorithms (paper Fig. 8).
//  - OracleSelector: exhaustive offline micro-benchmarking — evaluates
//    every algorithm with the cost model and returns the argmin. This is
//    the upper bound the paper's §VII-C "slowdown vs offline
//    micro-benchmarking" is measured against.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "coll/collective.hpp"
#include "coll/selection.hpp"
#include "common/rng.hpp"
#include "sim/hardware.hpp"
#include "sim/network.hpp"

namespace pml::core {

/// Strategy interface: pick a structured selection (label space v2:
/// hierarchy strategy x per-tier algorithm) for a (collective, cluster,
/// job, message size) point. Implementations must return a selection for
/// which coll::selection_supports(selection, topo) holds; flat-only
/// strategies return coll::Selection::flat(...).
class Selector {
 public:
  virtual ~Selector() = default;
  virtual std::string name() const = 0;
  virtual coll::Selection select(coll::Collective collective,
                                 const sim::ClusterSpec& cluster,
                                 sim::Topology topo,
                                 std::uint64_t msg_bytes) = 0;

  /// Batched select over one (collective, cluster, topology) cell: fills
  /// out[i] with the choice for msg_sizes[i] (sizes must equal out size).
  /// The default loops select(); model-backed selectors override it to run
  /// one batched inference per cell. Overrides must return exactly what a
  /// select() loop would (table compilation depends on it).
  virtual void select_many(coll::Collective collective,
                           const sim::ClusterSpec& cluster, sim::Topology topo,
                           std::span<const std::uint64_t> msg_sizes,
                           std::span<coll::Selection> out);

  /// Transitional raw-label accessor for callers not yet migrated to
  /// Selection; flattens a hierarchical choice to its inter algorithm.
  /// Removed after one release.
  [[deprecated("call select() and use the structured coll::Selection")]]
  coll::Algorithm select_algorithm(coll::Collective collective,
                                   const sim::ClusterSpec& cluster,
                                   sim::Topology topo, std::uint64_t msg_bytes) {
    return select(collective, cluster, topo, msg_bytes).algorithm;
  }
};

class MvapichDefaultSelector final : public Selector {
 public:
  std::string name() const override { return "MVAPICH2-2.3.7-default"; }
  coll::Selection select(coll::Collective collective,
                         const sim::ClusterSpec& cluster, sim::Topology topo,
                         std::uint64_t msg_bytes) override;
};

class OpenMpiDefaultSelector final : public Selector {
 public:
  std::string name() const override { return "OpenMPI-5.1.0a-default"; }
  coll::Selection select(coll::Collective collective,
                         const sim::ClusterSpec& cluster, sim::Topology topo,
                         std::uint64_t msg_bytes) override;
};

class RandomSelector final : public Selector {
 public:
  explicit RandomSelector(std::uint64_t seed = 99) : rng_(seed) {}
  std::string name() const override { return "Random"; }
  coll::Selection select(coll::Collective collective,
                         const sim::ClusterSpec& cluster, sim::Topology topo,
                         std::uint64_t msg_bytes) override;

 private:
  Rng rng_;
};

class OracleSelector final : public Selector {
 public:
  std::string name() const override { return "Oracle-microbenchmark"; }
  coll::Selection select(coll::Collective collective,
                         const sim::ClusterSpec& cluster, sim::Topology topo,
                         std::uint64_t msg_bytes) override;
};

/// Last rung of the online stage's degradation ladder (docs/API.md): a
/// stateless rule-of-thumb selector used when the trained model and the
/// compiled table are both unavailable. Rules blend the two vendor-default
/// tables above with two hardware signals (PPN-driven NIC congestion and
/// the node structure: congested multi-node jobs switch to leader-based
/// hierarchical schedules) so a degraded deployment still gets a sane,
/// always-valid selection — never an error.
class HeuristicSelector final : public Selector {
 public:
  std::string name() const override { return "PML-heuristic-fallback"; }
  coll::Selection select(coll::Collective collective,
                         const sim::ClusterSpec& cluster, sim::Topology topo,
                         std::uint64_t msg_bytes) override;
};

/// First algorithm in `preference` order valid at world size `p`.
coll::Algorithm first_supported(std::initializer_list<coll::Algorithm> preference,
                                int p);

}  // namespace pml::core
