#include "core/selectors.hpp"

#include <algorithm>
#include <limits>

#include "coll/cost.hpp"
#include "common/error.hpp"

namespace pml::core {

using coll::Algorithm;
using coll::Collective;

void Selector::select_many(Collective collective,
                           const sim::ClusterSpec& cluster, sim::Topology topo,
                           std::span<const std::uint64_t> msg_sizes,
                           std::span<Algorithm> out) {
  if (msg_sizes.size() != out.size()) {
    throw TuningError("select_many: " + std::to_string(msg_sizes.size()) +
                      " sizes but " + std::to_string(out.size()) +
                      " output slots");
  }
  for (std::size_t i = 0; i < msg_sizes.size(); ++i) {
    out[i] = select(collective, cluster, topo, msg_sizes[i]);
  }
}

coll::Algorithm first_supported(
    std::initializer_list<coll::Algorithm> preference, int p) {
  for (const Algorithm a : preference) {
    if (coll::algorithm_supports(a, p)) return a;
  }
  throw TuningError("no supported algorithm in preference list");
}

Algorithm MvapichDefaultSelector::select(Collective collective,
                                         const sim::ClusterSpec& /*cluster*/,
                                         sim::Topology topo,
                                         std::uint64_t msg_bytes) {
  const int p = topo.world_size();
  // Static thresholds in the spirit of the MVAPICH2 2.3.7 generic table:
  // they encode one machine's crossovers and ignore the hardware at hand.
  // Recursive doubling is only chosen at power-of-two worlds (its
  // generalised non-power-of-two schedule is known to be poor).
  if (collective == Collective::kAllgather) {
    const std::uint64_t total = static_cast<std::uint64_t>(p) * msg_bytes;
    if (msg_bytes < 512 && coll::is_power_of_two(p)) {
      return Algorithm::kAgRecursiveDoubling;
    }
    if (total <= 256 * 1024) {
      return first_supported({Algorithm::kAgBruck, Algorithm::kAgRing}, p);
    }
    // MVAPICH2 2.3.7 has no neighbor-exchange allgather: everything past
    // the dissemination range rides the ring, which is what the paper's
    // ML selector improves on in the mid-size window.
    return first_supported({Algorithm::kAgRing, Algorithm::kAgBruck}, p);
  }
  if (collective == Collective::kAlltoall) {
    if (static_cast<std::uint64_t>(p) * msg_bytes <= 32 * 1024) {
      return first_supported({Algorithm::kAaBruck, Algorithm::kAaPairwise}, p);
    }
    if (msg_bytes <= 32 * 1024) {
      return first_supported(
          {Algorithm::kAaScatterDest, Algorithm::kAaPairwise}, p);
    }
    return first_supported({Algorithm::kAaPairwise, Algorithm::kAaScatterDest},
                           p);
  }
  if (collective == Collective::kAllreduce) {
    if (msg_bytes <= 2048) {
      return first_supported(
          {Algorithm::kArRecursiveDoubling, Algorithm::kArRing}, p);
    }
    return first_supported({Algorithm::kArRabenseifner, Algorithm::kArRing},
                           p);
  }
  // MPI_Bcast: thresholds tuned for a mid-size machine; the chunked
  // algorithms' doubling allgather needs a power-of-two world.
  if (msg_bytes <= 32 * 1024) return Algorithm::kBcBinomial;
  if (msg_bytes <= 512 * 1024 && coll::is_power_of_two(p)) {
    return Algorithm::kBcScatterAllgather;
  }
  return Algorithm::kBcPipelinedRing;
}

Algorithm OpenMpiDefaultSelector::select(Collective collective,
                                         const sim::ClusterSpec& /*cluster*/,
                                         sim::Topology topo,
                                         std::uint64_t msg_bytes) {
  const int p = topo.world_size();
  // Fixed decision rules in the spirit of Open MPI's tuned defaults, with
  // the neighbor-exchange mid-range for allgather and earlier pairwise
  // switching for alltoall.
  if (collective == Collective::kAllgather) {
    const std::uint64_t total = static_cast<std::uint64_t>(p) * msg_bytes;
    if (total <= 64 * 1024) {
      return first_supported({Algorithm::kAgBruck, Algorithm::kAgRing}, p);
    }
    if (total <= 512 * 1024 && coll::is_power_of_two(p)) {
      return Algorithm::kAgRecursiveDoubling;
    }
    if (total <= 2 * 1024 * 1024) {
      return first_supported({Algorithm::kAgRdComm, Algorithm::kAgRing}, p);
    }
    return first_supported({Algorithm::kAgRing, Algorithm::kAgRdComm}, p);
  }
  if (collective == Collective::kAlltoall) {
    if (static_cast<std::uint64_t>(p) * msg_bytes <= 16 * 1024) {
      return first_supported({Algorithm::kAaBruck, Algorithm::kAaPairwise}, p);
    }
    if (msg_bytes <= 4 * 1024) {
      return first_supported(
          {Algorithm::kAaScatterDest, Algorithm::kAaPairwise}, p);
    }
    return first_supported({Algorithm::kAaPairwise, Algorithm::kAaScatterDest},
                           p);
  }
  if (collective == Collective::kAllreduce) {
    if (msg_bytes <= 8192) {
      return first_supported(
          {Algorithm::kArRecursiveDoubling, Algorithm::kArRing}, p);
    }
    return first_supported({Algorithm::kArRing, Algorithm::kArRabenseifner},
                           p);
  }
  // MPI_Bcast
  if (msg_bytes <= 8 * 1024) return Algorithm::kBcBinomial;
  if (msg_bytes <= 128 * 1024 && coll::is_power_of_two(p)) {
    return Algorithm::kBcScatterAllgather;
  }
  return Algorithm::kBcPipelinedRing;
}

Algorithm HeuristicSelector::select(Collective collective,
                                    const sim::ClusterSpec& /*cluster*/,
                                    sim::Topology topo,
                                    std::uint64_t msg_bytes) {
  const int p = topo.world_size();
  // High PPN fully subscribes the node's single NIC; prefer algorithms
  // with fewer concurrent inter-node flows when congested.
  const bool congested = topo.ppn > 16;
  if (collective == Collective::kAllgather) {
    const std::uint64_t total = static_cast<std::uint64_t>(p) * msg_bytes;
    if (msg_bytes <= 256 && coll::is_power_of_two(p)) {
      return Algorithm::kAgRecursiveDoubling;
    }
    if (total <= 128 * 1024) {
      return first_supported({Algorithm::kAgBruck, Algorithm::kAgRing}, p);
    }
    if (!congested && total <= 1024 * 1024) {
      return first_supported({Algorithm::kAgRdComm, Algorithm::kAgRing}, p);
    }
    return first_supported({Algorithm::kAgRing, Algorithm::kAgBruck}, p);
  }
  if (collective == Collective::kAlltoall) {
    if (static_cast<std::uint64_t>(p) * msg_bytes <= 16 * 1024) {
      return first_supported({Algorithm::kAaBruck, Algorithm::kAaPairwise}, p);
    }
    if (msg_bytes <= (congested ? 2048u : 8192u)) {
      return first_supported(
          {Algorithm::kAaScatterDest, Algorithm::kAaPairwise}, p);
    }
    return first_supported({Algorithm::kAaPairwise, Algorithm::kAaScatterDest},
                           p);
  }
  if (collective == Collective::kAllreduce) {
    if (msg_bytes <= 4096) {
      return first_supported(
          {Algorithm::kArRecursiveDoubling, Algorithm::kArRing}, p);
    }
    if (congested) {
      return first_supported({Algorithm::kArRabenseifner, Algorithm::kArRing},
                             p);
    }
    return first_supported({Algorithm::kArRing, Algorithm::kArRabenseifner},
                           p);
  }
  // MPI_Bcast
  if (msg_bytes <= 16 * 1024) return Algorithm::kBcBinomial;
  if (coll::is_power_of_two(p) && msg_bytes <= 256 * 1024) {
    return Algorithm::kBcScatterAllgather;
  }
  return Algorithm::kBcPipelinedRing;
}

Algorithm RandomSelector::select(Collective collective,
                                 const sim::ClusterSpec& /*cluster*/,
                                 sim::Topology topo,
                                 std::uint64_t /*msg_bytes*/) {
  const auto valid =
      coll::valid_algorithms(collective, topo.world_size());
  return valid[static_cast<std::size_t>(rng_.uniform_index(valid.size()))];
}

Algorithm OracleSelector::select(Collective collective,
                                 const sim::ClusterSpec& cluster,
                                 sim::Topology topo, std::uint64_t msg_bytes) {
  const sim::NetworkModel model(cluster, topo);
  Algorithm best = Algorithm::kAgRing;
  double lo = std::numeric_limits<double>::infinity();
  for (const Algorithm a :
       coll::valid_algorithms(collective, topo.world_size())) {
    const double t = coll::analytic_cost(model, a, msg_bytes);
    if (t < lo) {
      lo = t;
      best = a;
    }
  }
  return best;
}

}  // namespace pml::core
