#include "core/selectors.hpp"

#include <algorithm>
#include <limits>

#include "coll/cost.hpp"
#include "common/error.hpp"

namespace pml::core {

using coll::Algorithm;
using coll::Collective;

void Selector::select_many(Collective collective,
                           const sim::ClusterSpec& cluster, sim::Topology topo,
                           std::span<const std::uint64_t> msg_sizes,
                           std::span<coll::Selection> out) {
  if (msg_sizes.size() != out.size()) {
    throw TuningError("select_many: " + std::to_string(msg_sizes.size()) +
                      " sizes but " + std::to_string(out.size()) +
                      " output slots");
  }
  for (std::size_t i = 0; i < msg_sizes.size(); ++i) {
    out[i] = select(collective, cluster, topo, msg_sizes[i]);
  }
}

coll::Algorithm first_supported(
    std::initializer_list<coll::Algorithm> preference, int p) {
  for (const Algorithm a : preference) {
    if (coll::algorithm_supports(a, p)) return a;
  }
  throw TuningError("no supported algorithm in preference list");
}

namespace {

Algorithm mvapich_rule(Collective collective, sim::Topology topo,
                       std::uint64_t msg_bytes) {
  const int p = topo.world_size();
  // Static thresholds in the spirit of the MVAPICH2 2.3.7 generic table:
  // they encode one machine's crossovers and ignore the hardware at hand.
  // Recursive doubling is only chosen at power-of-two worlds (its
  // generalised non-power-of-two schedule is known to be poor).
  if (collective == Collective::kAllgather) {
    const std::uint64_t total = static_cast<std::uint64_t>(p) * msg_bytes;
    if (msg_bytes < 512 && coll::is_power_of_two(p)) {
      return Algorithm::kAgRecursiveDoubling;
    }
    if (total <= 256 * 1024) {
      return first_supported({Algorithm::kAgBruck, Algorithm::kAgRing}, p);
    }
    // MVAPICH2 2.3.7 has no neighbor-exchange allgather: everything past
    // the dissemination range rides the ring, which is what the paper's
    // ML selector improves on in the mid-size window.
    return first_supported({Algorithm::kAgRing, Algorithm::kAgBruck}, p);
  }
  if (collective == Collective::kAlltoall) {
    if (static_cast<std::uint64_t>(p) * msg_bytes <= 32 * 1024) {
      return first_supported({Algorithm::kAaBruck, Algorithm::kAaPairwise}, p);
    }
    if (msg_bytes <= 32 * 1024) {
      return first_supported(
          {Algorithm::kAaScatterDest, Algorithm::kAaPairwise}, p);
    }
    return first_supported({Algorithm::kAaPairwise, Algorithm::kAaScatterDest},
                           p);
  }
  if (collective == Collective::kAllreduce) {
    if (msg_bytes <= 2048) {
      return first_supported(
          {Algorithm::kArRecursiveDoubling, Algorithm::kArRing}, p);
    }
    return first_supported({Algorithm::kArRabenseifner, Algorithm::kArRing},
                           p);
  }
  // MPI_Bcast: thresholds tuned for a mid-size machine; the chunked
  // algorithms' doubling allgather needs a power-of-two world.
  if (msg_bytes <= 32 * 1024) return Algorithm::kBcBinomial;
  if (msg_bytes <= 512 * 1024 && coll::is_power_of_two(p)) {
    return Algorithm::kBcScatterAllgather;
  }
  return Algorithm::kBcPipelinedRing;
}

Algorithm openmpi_rule(Collective collective, sim::Topology topo,
                       std::uint64_t msg_bytes) {
  const int p = topo.world_size();
  // Fixed decision rules in the spirit of Open MPI's tuned defaults, with
  // the neighbor-exchange mid-range for allgather and earlier pairwise
  // switching for alltoall.
  if (collective == Collective::kAllgather) {
    const std::uint64_t total = static_cast<std::uint64_t>(p) * msg_bytes;
    if (total <= 64 * 1024) {
      return first_supported({Algorithm::kAgBruck, Algorithm::kAgRing}, p);
    }
    if (total <= 512 * 1024 && coll::is_power_of_two(p)) {
      return Algorithm::kAgRecursiveDoubling;
    }
    if (total <= 2 * 1024 * 1024) {
      return first_supported({Algorithm::kAgRdComm, Algorithm::kAgRing}, p);
    }
    return first_supported({Algorithm::kAgRing, Algorithm::kAgRdComm}, p);
  }
  if (collective == Collective::kAlltoall) {
    if (static_cast<std::uint64_t>(p) * msg_bytes <= 16 * 1024) {
      return first_supported({Algorithm::kAaBruck, Algorithm::kAaPairwise}, p);
    }
    if (msg_bytes <= 4 * 1024) {
      return first_supported(
          {Algorithm::kAaScatterDest, Algorithm::kAaPairwise}, p);
    }
    return first_supported({Algorithm::kAaPairwise, Algorithm::kAaScatterDest},
                           p);
  }
  if (collective == Collective::kAllreduce) {
    if (msg_bytes <= 8192) {
      return first_supported(
          {Algorithm::kArRecursiveDoubling, Algorithm::kArRing}, p);
    }
    return first_supported({Algorithm::kArRing, Algorithm::kArRabenseifner},
                           p);
  }
  // MPI_Bcast
  if (msg_bytes <= 8 * 1024) return Algorithm::kBcBinomial;
  if (msg_bytes <= 128 * 1024 && coll::is_power_of_two(p)) {
    return Algorithm::kBcScatterAllgather;
  }
  return Algorithm::kBcPipelinedRing;
}

Algorithm heuristic_flat_rule(Collective collective, sim::Topology topo,
                              std::uint64_t msg_bytes) {
  const int p = topo.world_size();
  // High PPN fully subscribes the node's single NIC; prefer algorithms
  // with fewer concurrent inter-node flows when congested.
  const bool congested = topo.ppn > 16;
  if (collective == Collective::kAllgather) {
    const std::uint64_t total = static_cast<std::uint64_t>(p) * msg_bytes;
    if (msg_bytes <= 256 && coll::is_power_of_two(p)) {
      return Algorithm::kAgRecursiveDoubling;
    }
    if (total <= 128 * 1024) {
      return first_supported({Algorithm::kAgBruck, Algorithm::kAgRing}, p);
    }
    if (!congested && total <= 1024 * 1024) {
      return first_supported({Algorithm::kAgRdComm, Algorithm::kAgRing}, p);
    }
    return first_supported({Algorithm::kAgRing, Algorithm::kAgBruck}, p);
  }
  if (collective == Collective::kAlltoall) {
    if (static_cast<std::uint64_t>(p) * msg_bytes <= 16 * 1024) {
      return first_supported({Algorithm::kAaBruck, Algorithm::kAaPairwise}, p);
    }
    if (msg_bytes <= (congested ? 2048u : 8192u)) {
      return first_supported(
          {Algorithm::kAaScatterDest, Algorithm::kAaPairwise}, p);
    }
    return first_supported({Algorithm::kAaPairwise, Algorithm::kAaScatterDest},
                           p);
  }
  if (collective == Collective::kAllreduce) {
    if (msg_bytes <= 4096) {
      return first_supported(
          {Algorithm::kArRecursiveDoubling, Algorithm::kArRing}, p);
    }
    if (congested) {
      return first_supported({Algorithm::kArRabenseifner, Algorithm::kArRing},
                             p);
    }
    return first_supported({Algorithm::kArRing, Algorithm::kArRabenseifner},
                           p);
  }
  // MPI_Bcast
  if (msg_bytes <= 16 * 1024) return Algorithm::kBcBinomial;
  if (coll::is_power_of_two(p) && msg_bytes <= 256 * 1024) {
    return Algorithm::kBcScatterAllgather;
  }
  return Algorithm::kBcPipelinedRing;
}

}  // namespace

coll::Selection MvapichDefaultSelector::select(Collective collective,
                                               const sim::ClusterSpec&,
                                               sim::Topology topo,
                                               std::uint64_t msg_bytes) {
  // Vendor default tables are flat-only: the hierarchical SMP paths of the
  // real libraries are not in the paper's §III algorithm set.
  return coll::Selection::flat(mvapich_rule(collective, topo, msg_bytes));
}

coll::Selection OpenMpiDefaultSelector::select(Collective collective,
                                               const sim::ClusterSpec&,
                                               sim::Topology topo,
                                               std::uint64_t msg_bytes) {
  return coll::Selection::flat(openmpi_rule(collective, topo, msg_bytes));
}

coll::Selection HeuristicSelector::select(Collective collective,
                                          const sim::ClusterSpec&,
                                          sim::Topology topo,
                                          std::uint64_t msg_bytes) {
  // Congested multi-node jobs (PPN oversubscribing the NIC) switch to a
  // leader schedule: the inter tier re-runs the flat rules at the leader
  // topology with the aggregated message size, the fan-out tier follows
  // the usual small/large bcast split.
  if (topo.nodes >= 2 && topo.ppn > 16) {
    const auto ppn = static_cast<std::uint64_t>(topo.ppn);
    const std::uint64_t total =
        static_cast<std::uint64_t>(topo.world_size()) * msg_bytes;
    std::uint64_t tier_bytes = msg_bytes;
    std::uint64_t fanout_bytes = msg_bytes;
    bool hierarchical = false;
    switch (collective) {
      case Collective::kAllgather:
        hierarchical = total >= 64 * 1024;
        tier_bytes = ppn * msg_bytes;
        fanout_bytes = total;
        break;
      case Collective::kAlltoall:
        // Aggregation only pays in the latency-dominated regime.
        hierarchical = total <= 16 * 1024;
        tier_bytes = ppn * ppn * msg_bytes;
        break;
      case Collective::kAllreduce:
        hierarchical = msg_bytes >= 4 * 1024;
        break;
      case Collective::kBcast:
        hierarchical = msg_bytes >= 16 * 1024;
        break;
    }
    if (hierarchical) {
      const Algorithm inter = heuristic_flat_rule(
          collective, sim::Topology{topo.nodes, 1}, tier_bytes);
      const Algorithm fanout = fanout_bytes > 64 * 1024
                                   ? Algorithm::kBcPipelinedRing
                                   : Algorithm::kBcBinomial;
      return coll::Selection::leader(inter, fanout);
    }
  }
  return coll::Selection::flat(
      heuristic_flat_rule(collective, topo, msg_bytes));
}

coll::Selection RandomSelector::select(Collective collective,
                                       const sim::ClusterSpec& /*cluster*/,
                                       sim::Topology topo,
                                       std::uint64_t /*msg_bytes*/) {
  const auto valid = coll::valid_selections(collective, topo);
  return valid[static_cast<std::size_t>(rng_.uniform_index(valid.size()))];
}

coll::Selection OracleSelector::select(Collective collective,
                                       const sim::ClusterSpec& cluster,
                                       sim::Topology topo,
                                       std::uint64_t msg_bytes) {
  // Exhaustive offline micro-benchmarking over the full v2 label space:
  // flat and hierarchical candidates compete on analytic cost.
  const auto valid = coll::valid_selections(collective, topo);
  coll::Selection best = valid.front();
  double lo = std::numeric_limits<double>::infinity();
  for (const coll::Selection& s : valid) {
    const double t = coll::analytic_cost(cluster, topo, s, msg_bytes);
    if (t < lo) {
      lo = t;
      best = s;
    }
  }
  return best;
}

}  // namespace pml::core
