// Feature extraction: the 14 features of paper §V-A.
//
// On a real deployment the extraction script shells out to lscpu/lspci and
// the HCA tools; here the same quantities come from the ClusterSpec. The
// feature *vector layout* is part of the shipped-model contract: a model
// trained offline must see identical columns at inference time, so the
// names and order are fixed here and serialized with the model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/hardware.hpp"

namespace pml::core {

/// Names of all 14 features, in column order: 3 MPI-specific
/// (num_nodes, ppn, msg_size) followed by the 11 hardware features.
const std::vector<std::string>& feature_names();

/// Number of features (14).
std::size_t feature_count();

/// Column index of a named feature; throws pml::TuningError if unknown.
std::size_t feature_index(const std::string& name);

/// Extract the full feature row for one (cluster, job, message) point.
std::vector<double> extract_features(const sim::ClusterSpec& cluster,
                                     int nodes, int ppn,
                                     std::uint64_t msg_bytes);

/// extract_features into a reused buffer (resized to feature_count());
/// allocation-free once the buffer has capacity. Inference hot path.
void extract_features_into(const sim::ClusterSpec& cluster, int nodes, int ppn,
                           std::uint64_t msg_bytes, std::vector<double>& out);

/// Project a full feature row onto a column subset (model feature
/// selection, paper: "top 5 features ... to avoid overfitting").
std::vector<double> project_features(const std::vector<double>& full,
                                     const std::vector<std::size_t>& columns);

/// project_features into a reused buffer. Inference hot path.
void project_features_into(const std::vector<double>& full,
                           const std::vector<std::size_t>& columns,
                           std::vector<double>& out);

}  // namespace pml::core
