#include "core/framework.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "obs/export.hpp"

namespace pml::core {

using coll::Collective;

namespace {

/// Whether the top-K feature-selection probe fit runs for these options.
bool probes_features(const TrainOptions& options) {
  return options.top_features > 0 &&
         static_cast<std::size_t>(options.top_features) < feature_count();
}

/// The RNG streams one collective's training consumes. Split off the master
/// RNG sequentially, in collective order, before any parallel dispatch —
/// this reproduces the serial split() sequence exactly, so the trained
/// bundle is bit-identical at any thread count.
struct PartSeeds {
  Rng probe;
  Rng fit;
};

std::vector<PartSeeds> split_seeds(Rng& rng, std::size_t parts,
                                   const TrainOptions& options) {
  std::vector<PartSeeds> seeds(parts);
  for (PartSeeds& s : seeds) {
    if (probes_features(options)) s.probe = rng.split();
    s.fit = rng.split();
  }
  return seeds;
}

/// Train one collective's model, with optional top-K feature selection.
PmlFramework::PerCollective train_part(std::span<const TuningRecord> records,
                                       Collective collective,
                                       const TrainOptions& options,
                                       PartSeeds seeds) {
  std::vector<std::size_t> columns(feature_count());
  std::iota(columns.begin(), columns.end(), 0u);

  if (probes_features(options)) {
    // Preliminary fit on all features ranks them by Gini importance.
    const ml::Dataset full = to_ml_dataset(records, collective);
    ml::RandomForest probe(options.forest);
    probe.fit(full, seeds.probe);
    const auto importances = probe.feature_importances();
    std::sort(columns.begin(), columns.end(),
              [&](std::size_t a, std::size_t b) {
                return importances[a] > importances[b];
              });
    columns.resize(static_cast<std::size_t>(options.top_features));
    std::sort(columns.begin(), columns.end());
  }

  PmlFramework::PerCollective part;
  part.columns = columns;
  const ml::Dataset data = to_ml_dataset(records, collective, columns);
  part.forest = ml::RandomForest(options.forest);
  part.forest.fit(data, seeds.fit);
  return part;
}

/// Propagate the framework-level threads knob down to the forest fits and
/// the dataset sweep. Nested parallel_for calls fall back to serial, so the
/// knob is safe to forward into every layer unconditionally: whichever layer
/// reaches the pool first wins, the rest run inline.
TrainOptions with_forest_threads(const TrainOptions& options) {
  TrainOptions local = options;
  local.forest.threads = options.threads;
  local.build.threads = options.threads;
  return local;
}

/// Materialize a CompileOptions sweep grid, falling back to the target
/// cluster's own benchmarked grid for any axis left empty.
struct ResolvedSweep {
  std::vector<int> node_counts;
  std::vector<int> ppn_values;
  std::vector<std::uint64_t> message_sizes;
};

ResolvedSweep resolve_sweep(const sim::ClusterSpec& cluster,
                            const CompileOptions& options) {
  options.validate();
  ResolvedSweep sweep;
  sweep.node_counts =
      options.node_counts.empty() ? cluster.node_counts : options.node_counts;
  sweep.ppn_values =
      options.ppn_values.empty() ? cluster.ppn_values : options.ppn_values;
  sweep.message_sizes = options.message_sizes.empty()
                            ? (cluster.message_sizes.empty()
                                   ? sim::power_of_two_sizes(21)
                                   : cluster.message_sizes)
                            : options.message_sizes;
  return sweep;
}

// --- Degradation-ladder helpers (filesystem compile_or_cached) ---------------

constexpr const char* kTableArtifactKind = "tuning-table";

/// Structured degradation warning: one stderr line per ladder step, so
/// operators can see why a fallback happened without a trace sink.
void warn_degraded(const std::string& message) {
  std::fprintf(stderr, "pml: warning: %s\n", message.c_str());
}

/// A table covers a request only if it was compiled for the same silicon
/// (name + hardware fingerprint) over the same sweep. Matching on the name
/// alone silently reused a same-named table compiled for different
/// hardware; tables predating the fingerprint never match and get
/// recompiled/upgraded in passing.
bool covers(const TuningTable& table, const sim::ClusterSpec& cluster,
            const ResolvedSweep& sweep) {
  return table.matches_cluster(cluster) && !table.empty() &&
         table.matches_sweep(sweep.node_counts, sweep.ppn_values,
                             sweep.message_sizes);
}

/// Load a cached table, validating the artifact envelope. Any failure is a
/// reason to recompile, not to abort: the verdict is recorded as an
/// online.fallback.* counter plus a warning and nullopt is returned.
std::optional<TuningTable> load_cached_table(const std::filesystem::path& path,
                                             const CompileOptions& options) {
  if (!std::filesystem::exists(path)) return std::nullopt;

  std::string text;
  try {
    text = with_retry(options.cache_retry,
                      [&] { return read_file(path.string()); });
  } catch (const Error& err) {
    static obs::Counter unreadable("online.fallback.cache_unreadable");
    unreadable.increment();
    warn_degraded("cached table unreadable, recompiling: " +
                  std::string(err.what()));
    return std::nullopt;
  }

  try {
    const Json doc = Json::parse(text);
    if (!is_artifact_envelope(doc)) {
      // Pre-envelope cache entries carry no checksum, so a silent
      // corruption would be served as-is: recompile and rewrite them in
      // the enveloped format instead of trusting the bytes.
      static obs::Counter stale("online.fallback.cache_stale");
      stale.increment();
      warn_degraded("cached table at " + path.string() +
                    " predates pml-artifact-v1; recompiling to upgrade it");
      return std::nullopt;
    }
    return TuningTable::from_json(
        artifact_payload(doc, kTableArtifactKind, 1, /*allow_legacy=*/false));
  } catch (const Error& err) {
    static obs::Counter corrupt("online.fallback.cache_corrupt");
    corrupt.increment();
    warn_degraded("cached table at " + path.string() +
                  " is corrupt, recompiling: " + std::string(err.what()));
    return std::nullopt;
  }
}

/// Persist a freshly compiled table. A write failure costs cache reuse on
/// the next run, nothing else — degrade, warn, continue.
void store_cached_table(const std::filesystem::path& path,
                        const TuningTable& table,
                        const CompileOptions& options) {
  try {
    if (!options.cache_dir.empty()) {
      std::filesystem::create_directories(options.cache_dir);
    }
    write_artifact(path.string(), table.to_json(), kTableArtifactKind);
  } catch (const std::exception& err) {
    static obs::Counter write_failed("online.fallback.cache_write_failed");
    write_failed.increment();
    warn_degraded("cannot persist tuning table to " + path.string() + ": " +
                  std::string(err.what()));
  }
}

}  // namespace

void CompileOptions::validate() const {
  for (const int n : node_counts) {
    if (n < 1) {
      throw ConfigError("CompileOptions: node count must be >= 1, got " +
                        std::to_string(n));
    }
  }
  for (const int p : ppn_values) {
    if (p < 1) {
      throw ConfigError("CompileOptions: ppn must be >= 1, got " +
                        std::to_string(p));
    }
  }
}

PmlFramework PmlFramework::train(std::span<const sim::ClusterSpec> clusters,
                                 const TrainOptions& options) {
  obs::ScopedCapture capture(options.trace_sink);
  obs::Span span("train");
  PmlFramework fw;
  fw.threads_ = options.threads;
  const TrainOptions local = with_forest_threads(options);
  Rng rng(options.seed);
  auto seeds = split_seeds(rng, options.collectives.size(), options);

  // Per-collective dataset builds and probe/final fits run concurrently;
  // results land in pre-sized slots and are registered in collective order.
  std::vector<PerCollective> parts(options.collectives.size());
  parallel_for(options.threads, parts.size(), [&](std::size_t i) {
    const Collective collective = options.collectives[i];
    obs::Span part_span("train.collective");
    const auto records = build_records(clusters, collective, local.build);
    parts[i] = train_part(records, collective, local, std::move(seeds[i]));
  });
  for (std::size_t i = 0; i < parts.size(); ++i) {
    fw.parts_.emplace(options.collectives[i], std::move(parts[i]));
  }
  if (fw.parts_.empty()) throw TuningError("train: no collectives requested");
  return fw;
}

PmlFramework PmlFramework::train_on_records(
    std::span<const TuningRecord> allgather_records,
    std::span<const TuningRecord> alltoall_records,
    const TrainOptions& options) {
  PmlFramework fw;
  fw.threads_ = options.threads;
  const TrainOptions local = with_forest_threads(options);
  Rng rng(options.seed);
  auto seeds = split_seeds(rng, 2, options);

  const Collective collectives[2] = {Collective::kAllgather,
                                     Collective::kAlltoall};
  const std::span<const TuningRecord> records[2] = {allgather_records,
                                                    alltoall_records};
  std::vector<PerCollective> parts(2);
  parallel_for(options.threads, 2, [&](std::size_t i) {
    parts[i] =
        train_part(records[i], collectives[i], local, std::move(seeds[i]));
  });
  for (std::size_t i = 0; i < 2; ++i) {
    fw.parts_.emplace(collectives[i], std::move(parts[i]));
  }
  return fw;
}

const PmlFramework::PerCollective& PmlFramework::part(
    Collective collective) const {
  const auto it = parts_.find(collective);
  if (it == parts_.end()) {
    throw TuningError("framework has no model for " +
                      coll::to_string(collective));
  }
  return it->second;
}

namespace {

/// Rank classes by probability (index sort, descending) and return the
/// best selection valid at this topology (the model may favour e.g.
/// power-of-two-only recursive doubling, or a leader schedule on a
/// single-node job). Classes index coll::selection_space(collective), whose
/// flat prefix matches the v1 label space — so a v1 bundle's classes map
/// unchanged. Shared by select() and select_batch() so the two paths break
/// probability ties identically — that is what makes batched table compiles
/// bit-identical to scalar ones.
coll::Selection pick_ranked(std::span<const double> proba,
                            std::span<const coll::Selection> space,
                            std::vector<std::size_t>& order,
                            sim::Topology topo) {
  if (proba.size() > space.size()) {
    throw TuningError("model has " + std::to_string(proba.size()) +
                      " classes but the selection space holds " +
                      std::to_string(space.size()));
  }
  order.resize(proba.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return proba[a] > proba[b]; });
  for (const std::size_t c : order) {
    if (coll::selection_supports(space[c], topo)) return space[c];
  }
  throw TuningError("no valid selection for topology " +
                    std::to_string(topo.nodes) + "x" +
                    std::to_string(topo.ppn));
}

}  // namespace

coll::Selection PmlFramework::select(Collective collective,
                                     const sim::ClusterSpec& cluster,
                                     sim::Topology topo,
                                     std::uint64_t msg_bytes) {
  const PerCollective& p = part(collective);

  // Hot path: one select() per uncached serve request. All scratch is
  // thread_local and only ever grows to num_classes/feature_count, so a
  // steady-state call performs zero heap allocations (guarded by the
  // ml_hotpath bench).
  thread_local std::vector<double> full;
  thread_local std::vector<double> row;
  thread_local std::vector<double> proba;
  thread_local std::vector<std::size_t> order;

  {
    // Paper Fig. 4 decomposition: feature extraction vs. model inference.
    obs::Span span("online.feature_extraction");
    extract_features_into(cluster, topo.nodes, topo.ppn, msg_bytes, full);
    project_features_into(full, p.columns, row);
  }
  obs::Span span("online.inference");
  proba.resize(static_cast<std::size_t>(p.forest.num_classes()));
  p.forest.predict_proba_into(row, proba);
  return pick_ranked(proba, coll::selection_space(collective), order, topo);
}

void PmlFramework::select_batch(Collective collective,
                                const sim::ClusterSpec& cluster,
                                std::span<const SelectQuery> queries,
                                std::span<coll::Selection> out) {
  if (queries.size() != out.size()) {
    throw TuningError("select_batch: " + std::to_string(queries.size()) +
                      " queries but " + std::to_string(out.size()) +
                      " output slots");
  }
  if (queries.empty()) return;
  const PerCollective& p = part(collective);

  // The compile/serve hot path: one call per tuning-table cell (or serve
  // micro-batch), from many threads. Same thread_local scratch discipline
  // as select() — the matrices only ever grow, so steady-state batches
  // allocate nothing.
  thread_local std::vector<double> full;
  thread_local std::vector<double> row;
  thread_local std::vector<std::size_t> order;
  thread_local ml::Matrix features;
  thread_local ml::Matrix proba;

  {
    obs::Span span("online.feature_extraction");
    features.resize(queries.size(), p.columns.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      extract_features_into(cluster, queries[i].topo.nodes, queries[i].topo.ppn,
                            queries[i].msg_bytes, full);
      project_features_into(full, p.columns, row);
      std::ranges::copy(row, features.row(i).begin());
    }
  }
  obs::Span span("online.inference");
  proba.resize(queries.size(), static_cast<std::size_t>(p.forest.num_classes()));
  p.forest.predict_batch(features, proba);

  const auto& space = coll::selection_space(collective);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] = pick_ranked(proba.row(i), space, order, queries[i].topo);
  }
}

void PmlFramework::select_many(Collective collective,
                               const sim::ClusterSpec& cluster,
                               sim::Topology topo,
                               std::span<const std::uint64_t> msg_sizes,
                               std::span<coll::Selection> out) {
  thread_local std::vector<SelectQuery> queries;
  queries.resize(msg_sizes.size());
  for (std::size_t i = 0; i < msg_sizes.size(); ++i) {
    queries[i] = SelectQuery{topo, msg_sizes[i]};
  }
  select_batch(collective, cluster, queries, out);
}

TuningTable PmlFramework::compile_for(const sim::ClusterSpec& cluster,
                                      const CompileOptions& options) {
  obs::ScopedCapture capture(options.trace_sink);
  obs::Span span("online.compile");
  const ResolvedSweep sweep = resolve_sweep(cluster, options);
  const int threads = options.threads == 0 ? threads_ : options.threads;
  std::vector<coll::Collective> trained;
  for (const auto& [collective, part] : parts_) trained.push_back(collective);
  const auto start = std::chrono::steady_clock::now();
  // select() only reads the trained forests, so the sweep can fan out.
  TuningTable table = TuningTable::generate(*this, cluster, sweep.node_counts,
                                            sweep.ppn_values,
                                            sweep.message_sizes, trained,
                                            threads);
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  // Relaxed atomic: concurrent compiles on one framework last-writer-win
  // here; the authoritative per-compile timing rides on the table itself.
  inference_seconds_.store(seconds, std::memory_order_relaxed);
  table.set_compile_seconds(seconds);
  return table;
}

const TuningTable& PmlFramework::compile_or_cached(
    const sim::ClusterSpec& cluster, const CompileOptions& options,
    TuningTable& cache) {
  // Fig. 4: an existing table bypasses ML tuning — but only if it was
  // generated for this hardware (name + fingerprint) over the same sweep
  // grids; a cluster-name match alone would silently serve a table
  // compiled for different silicon or different node/ppn/message sweeps.
  const ResolvedSweep sweep = resolve_sweep(cluster, options);
  if (covers(cache, cluster, sweep)) return cache;
  cache = compile_for(cluster, options);
  return cache;
}

TuningTable PmlFramework::compile_or_cached(const sim::ClusterSpec& cluster,
                                            const CompileOptions& options) {
  const ResolvedSweep sweep = resolve_sweep(cluster, options);
  const std::filesystem::path path =
      std::filesystem::path(options.cache_dir) / (cluster.name + ".table.json");

  // Fallback ladder, rung 1: a valid cached artifact covering this sweep.
  if (auto cached = load_cached_table(path, options)) {
    if (covers(*cached, cluster, sweep)) return *std::move(cached);
  }

  // Rung 2: recompile from the trained model (and repair/upgrade the cache).
  TuningTable table;
  try {
    table = compile_for(cluster, options);
  } catch (const Error& err) {
    if (!options.heuristic_fallback) throw;
    // Rung 3: rule-of-thumb table. Never cached — a later run with a
    // healthy model must not be served the degraded table.
    static obs::Counter heuristic("online.fallback.heuristic");
    heuristic.increment();
    warn_degraded("compile failed, serving heuristic table for " +
                  cluster.name + ": " + std::string(err.what()));
    return heuristic_table(cluster, options);
  }
  store_cached_table(path, table, options);
  return table;
}

TuningTable PmlFramework::compile_for(
    const sim::ClusterSpec& cluster, std::span<const int> node_counts,
    std::span<const int> ppn_values,
    std::span<const std::uint64_t> msg_sizes) {
  CompileOptions options;
  options.node_counts.assign(node_counts.begin(), node_counts.end());
  options.ppn_values.assign(ppn_values.begin(), ppn_values.end());
  options.message_sizes.assign(msg_sizes.begin(), msg_sizes.end());
  return compile_for(cluster, options);
}

const TuningTable& PmlFramework::compile_or_cached(
    const sim::ClusterSpec& cluster, std::span<const int> node_counts,
    std::span<const int> ppn_values, std::span<const std::uint64_t> msg_sizes,
    TuningTable& cache) {
  CompileOptions options;
  options.node_counts.assign(node_counts.begin(), node_counts.end());
  options.ppn_values.assign(ppn_values.begin(), ppn_values.end());
  options.message_sizes.assign(msg_sizes.begin(), msg_sizes.end());
  return compile_or_cached(cluster, options, cache);
}

const ml::RandomForest& PmlFramework::model(Collective collective) const {
  return part(collective).forest;
}

std::vector<double> PmlFramework::full_feature_importances(
    Collective collective) const {
  const PerCollective& p = part(collective);
  const auto compact = p.forest.feature_importances();
  std::vector<double> full(feature_count(), 0.0);
  for (std::size_t i = 0; i < p.columns.size(); ++i) {
    full[p.columns[i]] = compact[i];
  }
  return full;
}

const std::vector<std::size_t>& PmlFramework::selected_columns(
    Collective collective) const {
  return part(collective).columns;
}

Json PmlFramework::to_json() const {
  Json j = Json::object();
  j["format"] = "pml-mpi-model-v1";
  j["feature_names"] = [] {
    Json names = Json::array();
    for (const auto& n : feature_names()) names.push_back(n);
    return names;
  }();
  Json parts = Json::object();
  for (const auto& [collective, p] : parts_) {
    Json pj = Json::object();
    Json cols = Json::array();
    for (const std::size_t c : p.columns) cols.push_back(c);
    pj["columns"] = std::move(cols);
    pj["forest"] = p.forest.to_json();
    parts[coll::to_string(collective)] = std::move(pj);
  }
  j["collectives"] = std::move(parts);
  return j;
}

PmlFramework PmlFramework::load(const Json& j) {
  if (!j.contains("format") ||
      j.at("format").as_string() != "pml-mpi-model-v1") {
    throw TuningError("not a pml-mpi model bundle");
  }
  PmlFramework fw;
  for (const auto& [name, pj] : j.at("collectives").as_object()) {
    PerCollective p;
    for (const Json& c : pj.at("columns").as_array()) {
      p.columns.push_back(static_cast<std::size_t>(c.as_int()));
    }
    p.forest = ml::RandomForest::from_json(pj.at("forest"));
    fw.parts_.emplace(coll::collective_from_string(name), std::move(p));
  }
  if (fw.parts_.empty()) throw TuningError("model bundle has no collectives");
  return fw;
}

PmlFramework PmlFramework::load_file(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  return load(artifact_payload(doc, "model"));
}

CompileOptions resolve_compile_sweep(const sim::ClusterSpec& cluster,
                                     const CompileOptions& options) {
  const ResolvedSweep sweep = resolve_sweep(cluster, options);
  CompileOptions resolved = options;
  resolved.node_counts = sweep.node_counts;
  resolved.ppn_values = sweep.ppn_values;
  resolved.message_sizes = sweep.message_sizes;
  return resolved;
}

TuningTable heuristic_table(const sim::ClusterSpec& cluster,
                            const CompileOptions& options,
                            std::span<const coll::Collective> collectives) {
  const ResolvedSweep sweep = resolve_sweep(cluster, options);
  HeuristicSelector selector;
  const int threads = options.threads == 0 ? 1 : options.threads;
  return TuningTable::generate(
      selector, cluster, sweep.node_counts, sweep.ppn_values,
      sweep.message_sizes,
      collectives.empty() ? std::span<const coll::Collective>(
                                coll::all_collectives())
                          : collectives,
      threads);
}

/// Partial rung of the degradation ladder: the bundle may only cover a
/// subset of collectives (the paper ships allgather + alltoall), leaving
/// e.g. allreduce with no jobs at all. Rather than dropping the whole
/// table to rung 3, top up just the missing collectives with heuristic
/// jobs so every lookup resolves — model quality where the model exists,
/// rules of thumb where it does not.
TuningTable top_up_missing_collectives(TuningTable table,
                                       const sim::ClusterSpec& cluster,
                                       const CompileOptions& options) {
  std::vector<coll::Collective> missing;
  for (const coll::Collective c : options.collectives) {
    const auto& jobs = table.jobs();
    const bool covered =
        std::any_of(jobs.begin(), jobs.end(),
                    [&](const JobTable& job) { return job.collective == c; });
    if (!covered) missing.push_back(c);
  }
  if (missing.empty()) return table;
  static obs::Counter partial("online.fallback.partial");
  partial.increment();
  std::string names;
  for (const coll::Collective c : missing) {
    if (!names.empty()) names += ", ";
    names += coll::to_string(c);
  }
  warn_degraded("model covers no jobs for " + names +
                "; topping up with heuristic entries for " + cluster.name);
  const TuningTable heur = heuristic_table(cluster, options, missing);
  for (const JobTable& job : heur.jobs()) table.add(job);
  return table;
}

TuningTable online_table(const std::string& model_path,
                         const sim::ClusterSpec& cluster,
                         const CompileOptions& options) {
  try {
    PmlFramework fw = PmlFramework::load_file(model_path);
    TuningTable table = fw.compile_or_cached(cluster, options);
    if (options.heuristic_fallback) {
      table = top_up_missing_collectives(std::move(table), cluster, options);
    }
    return table;
  } catch (const Error& err) {
    if (!options.heuristic_fallback) throw;
    static obs::Counter heuristic("online.fallback.heuristic");
    heuristic.increment();
    warn_degraded("model bundle " + model_path +
                  " unusable, serving heuristic table for " + cluster.name +
                  ": " + std::string(err.what()));
    return heuristic_table(cluster, options);
  }
}

}  // namespace pml::core
