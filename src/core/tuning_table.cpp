#include "core/tuning_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace pml::core {

void TuningTable::add(JobTable job) {
  if (job.entries.empty()) throw TuningError("job table has no entries");
  for (std::size_t i = 1; i < job.entries.size(); ++i) {
    if (job.entries[i].max_bytes <= job.entries[i - 1].max_bytes) {
      throw TuningError("job table entries must have ascending max_bytes");
    }
  }
  if (find(job.collective, job.nodes, job.ppn) != nullptr) {
    throw TuningError("duplicate job table for nodes=" +
                      std::to_string(job.nodes) +
                      " ppn=" + std::to_string(job.ppn));
  }
  jobs_.push_back(std::move(job));
}

const JobTable* TuningTable::find(coll::Collective collective, int nodes,
                                  int ppn) const {
  for (const JobTable& j : jobs_) {
    if (j.collective == collective && j.nodes == nodes && j.ppn == ppn) {
      return &j;
    }
  }
  return nullptr;
}

const JobTable* TuningTable::nearest(coll::Collective collective, int nodes,
                                     int ppn) const {
  const JobTable* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const JobTable& j : jobs_) {
    if (j.collective != collective) continue;
    // Geometric distance in (log nodes, log ppn) space.
    const double dn = std::log2(static_cast<double>(j.nodes)) -
                      std::log2(static_cast<double>(nodes));
    const double dp = std::log2(static_cast<double>(j.ppn)) -
                      std::log2(static_cast<double>(ppn));
    const double dist = dn * dn + dp * dp;
    // Ties (e.g. 2x and 8x nodes around a 4x query) are broken by the
    // fixed (nodes, ppn) order documented in the header, not by which job
    // happened to be registered first, so lookups are reproducible for any
    // job ordering. The comparison is exact: tied shapes compute the same
    // squared distance from identical log2 terms.
    const bool tie_wins =
        best != nullptr && dist == best_dist &&
        (j.nodes < best->nodes ||
         (j.nodes == best->nodes && j.ppn < best->ppn));
    if (dist < best_dist || tie_wins) {
      best_dist = dist;
      best = &j;
    }
  }
  return best;
}

bool TuningTable::matches_cluster(const sim::ClusterSpec& cluster) const {
  return cluster_name_ == cluster.name && cluster_fingerprint_ != 0 &&
         cluster_fingerprint_ == cluster.hardware_fingerprint();
}

bool TuningTable::has(coll::Collective collective, int nodes, int ppn) const {
  return find(collective, nodes, ppn) != nullptr;
}

coll::Selection TuningTable::lookup(coll::Collective collective, int nodes,
                                    int ppn, std::uint64_t msg_bytes) const {
  const JobTable* job = find(collective, nodes, ppn);
  if (job == nullptr) job = nearest(collective, nodes, ppn);
  if (job == nullptr) {
    throw TuningError("tuning table has no entries for collective " +
                      coll::to_string(collective));
  }
  for (const TuningEntry& e : job->entries) {
    if (msg_bytes <= e.max_bytes) return e.selection;
  }
  return job->entries.back().selection;  // open-ended final range
}

void TuningTable::set_sweep(std::span<const int> node_counts,
                            std::span<const int> ppn_values,
                            std::span<const std::uint64_t> msg_sizes) {
  sweep_nodes_.assign(node_counts.begin(), node_counts.end());
  sweep_ppn_.assign(ppn_values.begin(), ppn_values.end());
  sweep_msgs_.assign(msg_sizes.begin(), msg_sizes.end());
}

bool TuningTable::matches_sweep(
    std::span<const int> node_counts, std::span<const int> ppn_values,
    std::span<const std::uint64_t> msg_sizes) const noexcept {
  return !sweep_nodes_.empty() &&
         std::ranges::equal(sweep_nodes_, node_counts) &&
         std::ranges::equal(sweep_ppn_, ppn_values) &&
         std::ranges::equal(sweep_msgs_, msg_sizes);
}

TuningTable TuningTable::generate(Selector& selector,
                                  const sim::ClusterSpec& cluster,
                                  std::span<const int> node_counts,
                                  std::span<const int> ppn_values,
                                  std::span<const std::uint64_t> msg_sizes) {
  return generate(selector, cluster, node_counts, ppn_values, msg_sizes,
                  coll::paper_collectives());
}

TuningTable TuningTable::generate(Selector& selector,
                                  const sim::ClusterSpec& cluster,
                                  std::span<const int> node_counts,
                                  std::span<const int> ppn_values,
                                  std::span<const std::uint64_t> msg_sizes,
                                  std::span<const coll::Collective> collectives,
                                  int threads) {
  if (msg_sizes.empty()) throw TuningError("generate: empty size sweep");
  TuningTable table(cluster.name);
  table.set_sweep(node_counts, ppn_values, msg_sizes);
  table.set_cluster_fingerprint(cluster.hardware_fingerprint());

  // Enumerate the job cells up front and fill them into pre-sized slots, so
  // the parallel sweep registers jobs in exactly the serial order.
  struct Cell {
    coll::Collective collective;
    int nodes;
    int ppn;
  };
  std::vector<Cell> cells;
  for (const auto collective : collectives) {
    for (const int nodes : node_counts) {
      for (const int ppn : ppn_values) {
        if (ppn > cluster.hw.threads) continue;
        cells.push_back(Cell{collective, nodes, ppn});
      }
    }
  }

  std::vector<JobTable> jobs(cells.size());
  parallel_for(threads, cells.size(), [&](std::size_t i) {
    const Cell& cell = cells[i];
    obs::Span span("online.sweep_cell");
    JobTable job;
    job.collective = cell.collective;
    job.nodes = cell.nodes;
    job.ppn = cell.ppn;
    // One batched selection per cell: model-backed selectors answer the
    // whole message sweep with a single blocked inference; plain selectors
    // fall back to the per-size select() loop inside select_many. The
    // reused thread_local keeps the sweep allocation-free in steady state.
    thread_local std::vector<coll::Selection> sels;
    sels.resize(msg_sizes.size());
    selector.select_many(cell.collective, cluster,
                         sim::Topology{cell.nodes, cell.ppn}, msg_sizes, sels);
    for (std::size_t m = 0; m < msg_sizes.size(); ++m) {
      const std::uint64_t msg = msg_sizes[m];
      const coll::Selection& sel = sels[m];
      if (!job.entries.empty() && job.entries.back().selection == sel) {
        job.entries.back().max_bytes = msg;  // extend the range
      } else {
        job.entries.push_back(TuningEntry{msg, sel});
      }
    }
    jobs[i] = std::move(job);
  });

  for (JobTable& job : jobs) table.add(std::move(job));
  return table;
}

Json TuningTable::to_json() const {
  obs::Span span("online.table_emission");
  Json j = Json::object();
  j["format"] = "pml-mpi-tuning-table-v2";
  j["cluster"] = cluster_name_;
  if (cluster_fingerprint_ != 0) {
    // Hex string, not a number: uint64 digests overflow the double-backed
    // Json number type.
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(cluster_fingerprint_));
    j["cluster_fingerprint"] = std::string(hex);
  }
  if (!sweep_nodes_.empty()) {
    Json sweep = Json::object();
    Json nodes = Json::array();
    for (const int n : sweep_nodes_) nodes.push_back(n);
    sweep["nodes"] = std::move(nodes);
    Json ppn = Json::array();
    for (const int p : sweep_ppn_) ppn.push_back(p);
    sweep["ppn"] = std::move(ppn);
    Json msgs = Json::array();
    for (const std::uint64_t m : sweep_msgs_) msgs.push_back(m);
    sweep["msg_sizes"] = std::move(msgs);
    j["sweep"] = std::move(sweep);
  }
  Json jobs = Json::array();
  for (const JobTable& job : jobs_) {
    Json jj = Json::object();
    jj["collective"] = coll::to_string(job.collective);
    jj["nodes"] = job.nodes;
    jj["ppn"] = job.ppn;
    Json entries = Json::array();
    for (const TuningEntry& e : job.entries) {
      Json ej = Json::object();
      ej["max_bytes"] = e.max_bytes;
      ej["selection"] = e.selection.encode();
      entries.push_back(std::move(ej));
    }
    jj["entries"] = std::move(entries);
    jobs.push_back(std::move(jj));
  }
  j["jobs"] = std::move(jobs);
  return j;
}

TuningTable TuningTable::from_json(const Json& j) {
  // v2 is current; v1 (flat algorithm names) stays decodable one release.
  if (!j.contains("format")) throw TuningError("not a pml-mpi tuning table");
  const std::string format = j.at("format").as_string();
  if (format != "pml-mpi-tuning-table-v2" &&
      format != "pml-mpi-tuning-table-v1") {
    throw TuningError("not a pml-mpi tuning table");
  }
  TuningTable table(j.at("cluster").as_string());
  if (j.contains("cluster_fingerprint")) {  // absent in pre-fingerprint tables
    table.cluster_fingerprint_ = std::strtoull(
        j.at("cluster_fingerprint").as_string().c_str(), nullptr, 16);
  }
  if (j.contains("sweep")) {  // absent in pre-provenance tables
    const Json& sweep = j.at("sweep");
    for (const Json& n : sweep.at("nodes").as_array()) {
      table.sweep_nodes_.push_back(static_cast<int>(n.as_int()));
    }
    for (const Json& p : sweep.at("ppn").as_array()) {
      table.sweep_ppn_.push_back(static_cast<int>(p.as_int()));
    }
    for (const Json& m : sweep.at("msg_sizes").as_array()) {
      table.sweep_msgs_.push_back(static_cast<std::uint64_t>(m.as_int()));
    }
  }
  for (const Json& jj : j.at("jobs").as_array()) {
    JobTable job;
    job.collective = coll::collective_from_string(jj.at("collective").as_string());
    job.nodes = static_cast<int>(jj.at("nodes").as_int());
    job.ppn = static_cast<int>(jj.at("ppn").as_int());
    for (const Json& ej : jj.at("entries").as_array()) {
      TuningEntry e;
      e.max_bytes = static_cast<std::uint64_t>(ej.at("max_bytes").as_int());
      // v2 stores an encoded selection; v1 a bare algorithm name — both are
      // valid Selection encodings in the collective's context.
      const std::string& key = ej.contains("selection") ? "selection"
                                                        : "algorithm";
      e.selection =
          coll::Selection::decode(job.collective, ej.at(key).as_string());
      job.entries.push_back(e);
    }
    table.add(std::move(job));
  }
  return table;
}

}  // namespace pml::core
